"""Figure 2: maximum clock difference of SSTSP, 500 nodes, m = 4.

The paper's headline accuracy result: after stabilisation SSTSP keeps the
maximum clock difference below ~10 us in a 500-station IBSS, riding out
the churn pattern and the reference departures at 300/500/800 s with only
transient spikes. The reproduction runs the exact section 5 scenario on
the vectorised SSTSP engine with m = 4.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Optional

from repro.analysis.metrics import SyncTrace
from repro.experiments.report import (
    downsample_rows,
    format_table,
    save_trace_csv,
    trace_chart,
)
from repro.sweep import (
    JobSpec,
    SweepOptions,
    add_sweep_arguments,
    run_sweep,
    sweep_options_from_args,
)


@dataclass
class Fig2Result:
    trace: SyncTrace
    reference_changes: int

    def stabilized_error_us(self) -> float:
        """Median max difference over the final quarter of the run."""
        horizon = self.trace.times_us[-1]
        tail = self.trace.window(horizon * 0.75, horizon + 1)
        return float(tail.max_diff_us.max())


def run(
    n: int = 500, m: int = 4, quick: bool = False, seed: int = 1,
    lane: str = "vec",
    sweep: Optional[SweepOptions] = None,
) -> Fig2Result:
    """Reproduce Fig. 2.

    ``lane`` selects the engine: ``"vec"`` (default, fast) or ``"oo"``
    (the reference implementation - slower; pair with ``quick`` and a
    smaller ``n`` for cross-checking). The run executes through the sweep
    orchestrator, so a cached rerun returns instantly.
    """
    if lane not in ("vec", "oo"):
        raise ValueError(f"unknown lane {lane!r}")
    spec = JobSpec.make(
        "scenario_trace",
        {
            "protocol": "sstsp",
            "lane": lane,
            "scenario": "quick" if quick else "paper",
            "n": n,
            "m": m,
            "seed": seed,
        },
        root_seed=seed,
    )
    payload = run_sweep("fig2", [spec], sweep).values[0]
    return Fig2Result(
        trace=payload["trace"], reference_changes=payload["reference_changes"]
    )


def main(argv=None) -> None:
    """CLI entry point; prints the reproduced rows/series."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="60 s smoke run")
    parser.add_argument("--nodes", type=int, default=500)
    parser.add_argument("-m", type=int, default=4, dest="m")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--lane", choices=("vec", "oo"), default="vec",
                        help="engine: vectorised (fast) or reference OO lane")
    add_sweep_arguments(parser)
    args = parser.parse_args(argv)

    result = run(
        n=args.nodes, m=args.m, quick=args.quick, seed=args.seed,
        lane=args.lane, sweep=sweep_options_from_args(args),
    )
    trace = result.trace
    path = save_trace_csv(trace, f"fig2_sstsp_n{args.nodes}_m{args.m}")
    print("=== Figure 2: SSTSP maximum clock difference "
          f"({args.nodes} nodes, m = {args.m}) ===")
    print()
    print(trace_chart(trace, f"SSTSP, {args.nodes} nodes, m={args.m} (series: {path})"))
    print(
        format_table(
            ["time (s)", "max clock diff (us)"],
            [(f"{t:.0f}", f"{d:.1f}") for t, d in downsample_rows(trace)],
        )
    )
    print()
    print(f"steady-state error: {trace.steady_state_error_us():.2f} us "
          "(paper: below 10 us after stabilisation)")
    print(f"max over final quarter: {result.stabilized_error_us():.2f} us")
    print(f"reference changes observed: {result.reference_changes}")


if __name__ == "__main__":
    main()
