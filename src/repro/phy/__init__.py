"""PHY substrate: OFDM timing parameters and the single-hop broadcast channel.

An IBSS (the paper's setting) is a fully connected single-hop network, so
the channel model is: every transmission reaches every awake station,
subject to (a) collisions resolved by the MAC contention cascade, (b) an
independent per-receiver packet error rate, and (c) optional jamming
windows used by the attack scenarios.
"""

from repro.phy.params import (
    OFDM_54MBPS,
    PhyParams,
    SSTSP_BEACON_AIRTIME_SLOTS,
    SSTSP_BEACON_BYTES,
    TSF_BEACON_AIRTIME_SLOTS,
    TSF_BEACON_BYTES,
)
from repro.phy.channel import BroadcastChannel, ChannelStats

__all__ = [
    "PhyParams",
    "OFDM_54MBPS",
    "TSF_BEACON_BYTES",
    "SSTSP_BEACON_BYTES",
    "TSF_BEACON_AIRTIME_SLOTS",
    "SSTSP_BEACON_AIRTIME_SLOTS",
    "BroadcastChannel",
    "ChannelStats",
]
