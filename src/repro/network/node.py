"""A station: hardware clock + TSF timer + protocol driver + presence.

The node also owns the conversion from protocol-local scheduling times to
the shared true-time axis, so clock skew shifts real transmission
instants exactly as on hardware.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.clocks.chain import invert_affine_fixed_point
from repro.clocks.oscillator import HardwareClock, TsfTimer
from repro.protocols.base import ClockKind, SyncProtocol, TxIntent


class Node:
    """One IBSS station."""

    __slots__ = ("node_id", "hw", "timer", "protocol", "present", "include_in_metrics")

    def __init__(
        self,
        node_id: int,
        hw: HardwareClock,
        protocol: Optional[SyncProtocol] = None,
    ) -> None:
        self.node_id = node_id
        self.hw = hw
        self.timer = TsfTimer(hw)
        self.protocol = protocol
        self.present = True
        #: Attacker nodes are excluded from the max-clock-difference metric:
        #: the paper's figures plot the synchronization of the victim
        #: network, and an attacker's advertised clock is not a
        #: synchronized clock.
        self.include_in_metrics = True

    def scheduled_true_time(self, intent: TxIntent) -> float:
        """True time at which the intent's local scheduled time occurs.

        TSF times invert exactly through the timer; adjusted times invert
        the protocol's synchronized clock by fixed-point iteration (the
        clock's slope is within ~1e-3 of 1, so convergence takes 2-3
        steps).
        """
        if intent.clock is ClockKind.TSF:
            return self.timer.true_time_when(intent.local_time)
        if intent.clock is ClockKind.HARDWARE:
            return self.hw.true_time_at(intent.local_time)
        # ClockKind.ADJUSTED: find hw with synchronized_time(hw) == local.
        try:
            hw_guess = invert_affine_fixed_point(
                self.protocol.synchronized_time, intent.local_time
            )
        except ArithmeticError as exc:  # pragma: no cover - pathological slope
            raise ArithmeticError(
                f"clock inversion did not converge for node {self.node_id}"
            ) from exc
        true_time = self.hw.true_time_at(hw_guess)
        if math.isnan(true_time) or math.isinf(true_time):
            raise ArithmeticError(f"invalid scheduled time for node {self.node_id}")
        return true_time

    def synchronized_time_at(self, true_time: float) -> float:
        """The node's synchronized clock at true time ``true_time``."""
        return self.protocol.synchronized_time(self.hw.read(true_time))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "present" if self.present else "away"
        return f"Node(id={self.node_id}, {state}, {self.protocol!r})"
