"""Unit tests for PHY parameters and the broadcast channel."""

import numpy as np
import pytest

from repro.phy.channel import BroadcastChannel, ChannelStats, merge_stats
from repro.phy.params import (
    OFDM_54MBPS,
    PhyParams,
    SSTSP_BEACON_AIRTIME_SLOTS,
    SSTSP_BEACON_BYTES,
    TSF_BEACON_AIRTIME_SLOTS,
    TSF_BEACON_BYTES,
)


class TestPhyParams:
    def test_paper_beacon_sizes(self):
        assert TSF_BEACON_BYTES == 56
        assert SSTSP_BEACON_BYTES == 92

    def test_paper_airtimes(self):
        assert TSF_BEACON_AIRTIME_SLOTS == 4
        assert SSTSP_BEACON_AIRTIME_SLOTS == 7
        assert OFDM_54MBPS.beacon_airtime_us == pytest.approx(36.0)
        assert OFDM_54MBPS.with_beacon_airtime(7).beacon_airtime_us == pytest.approx(63.0)

    def test_ofdm_slot_time(self):
        assert OFDM_54MBPS.slot_time_us == 9.0

    def test_airtime_for_bytes(self):
        # 56 bytes at 54 Mbps = 448 bits / 54 bit/us
        assert OFDM_54MBPS.airtime_us_for_bytes(56) == pytest.approx(448 / 54)

    def test_validation(self):
        with pytest.raises(ValueError):
            PhyParams(slot_time_us=0)
        with pytest.raises(ValueError):
            PhyParams(packet_error_rate=1.5)
        with pytest.raises(ValueError):
            PhyParams(beacon_airtime_slots=0)
        with pytest.raises(ValueError):
            PhyParams(propagation_delay_us=-1)
        with pytest.raises(ValueError):
            PhyParams(cca_us=0)


class TestBroadcastChannel:
    def test_lossless_delivery(self, rng):
        channel = BroadcastChannel(PhyParams(packet_error_rate=0.0), rng)
        got = channel.broadcast(0, [0, 1, 2, 3], true_time=0.0, size_bytes=56)
        assert got == [1, 2, 3]  # sender excluded
        assert channel.stats.deliveries == 3
        assert channel.stats.bytes_on_air == 56

    def test_per_drops_expected_fraction(self, rng):
        channel = BroadcastChannel(PhyParams(packet_error_rate=0.2), rng)
        receivers = list(range(1, 2001))
        got = channel.broadcast(0, receivers, 0.0, 56)
        ratio = len(got) / len(receivers)
        assert 0.75 < ratio < 0.85
        assert channel.stats.per_drops == len(receivers) - len(got)

    def test_jam_window_blocks_everything(self, rng):
        channel = BroadcastChannel(PhyParams(packet_error_rate=0.0), rng)
        channel.add_jam_window(100.0, 200.0)
        assert channel.is_jammed(150.0)
        assert not channel.is_jammed(200.0)  # half-open
        got = channel.broadcast(0, [1, 2], true_time=150.0, size_bytes=56)
        assert got == []
        assert channel.stats.jammed_drops == 2

    def test_jam_window_validation(self, rng):
        channel = BroadcastChannel(PhyParams(), rng)
        with pytest.raises(ValueError):
            channel.add_jam_window(5.0, 5.0)

    def test_timestamp_error_bounded(self, rng):
        phy = PhyParams(timestamp_jitter_us=2.0)
        channel = BroadcastChannel(phy, rng)
        errors = channel.sample_timestamp_errors(10_000)
        assert np.all(np.abs(errors) <= 2.0)
        assert abs(errors.mean()) < 0.1
        scalar = channel.sample_timestamp_error()
        assert abs(scalar) <= 2.0

    def test_zero_jitter(self, rng):
        channel = BroadcastChannel(PhyParams(timestamp_jitter_us=0.0), rng)
        assert channel.sample_timestamp_error() == 0.0
        assert np.all(channel.sample_timestamp_errors(5) == 0.0)

    def test_record_collision_counts_parties(self, rng):
        channel = BroadcastChannel(PhyParams(), rng)
        channel.record_collision(3)
        assert channel.stats.collisions == 1
        assert channel.stats.transmissions == 3

    def test_delivery_ratio(self, rng):
        stats = ChannelStats(deliveries=90, per_drops=10)
        assert stats.delivery_ratio() == pytest.approx(0.9)
        assert ChannelStats().delivery_ratio() == 1.0

    def test_merge_stats(self):
        a = ChannelStats(transmissions=1, deliveries=2, bytes_on_air=56)
        b = ChannelStats(transmissions=3, collisions=1, per_drops=4)
        total = merge_stats([a, b])
        assert total.transmissions == 4
        assert total.collisions == 1
        assert total.deliveries == 2
        assert total.per_drops == 4
        assert total.bytes_on_air == 56
