"""Applications of synchronized time - the paper's motivating workloads.

The introduction motivates time synchronization with three IBSS
workloads; each gets an evaluation module that consumes a per-node clock
trace (``SyncTrace.values_us``, recorded with ``keep_values=True``) and
turns synchronization error into the application's own currency:

* :mod:`repro.apps.powersave` - IEEE 802.11 IBSS power saving: stations
  sleep between beacons and must wake *together* for the ATIM window;
  sync error eats window overlap, and the minimum safe window (hence the
  energy budget) is set by the clock error.
* :mod:`repro.apps.fhss` - the FHSS PHY: every station derives the current
  hop channel from synchronized time; clocks off by a fraction of the
  dwell time lose exactly that fraction of airtime at each hop boundary.
* :mod:`repro.apps.tdma` - slotted real-time (QoS) schedules: per-slot
  guard intervals must absorb the worst clock difference; the guard is
  pure capacity overhead.
"""

from repro.apps.powersave import PowerSaveConfig, PowerSaveReport, evaluate_power_save
from repro.apps.fhss import FhssConfig, FhssReport, evaluate_fhss
from repro.apps.tdma import TdmaConfig, TdmaReport, evaluate_tdma

__all__ = [
    "PowerSaveConfig",
    "PowerSaveReport",
    "evaluate_power_save",
    "FhssConfig",
    "FhssReport",
    "evaluate_fhss",
    "TdmaConfig",
    "TdmaReport",
    "evaluate_tdma",
]
