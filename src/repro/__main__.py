"""``python -m repro``: the experiment CLI (alias of ``sstsp-experiment``)."""

from repro.experiments.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
