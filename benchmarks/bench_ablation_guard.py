"""Ablation: the guard time delta.

The guard bounds what an insider reference can inject per beacon. The
sweep shows the trade directly: the attacker's sustainable drag rate is
proportional to the guard (shave above it gets rejected and costs the
attacker the channel), while an honest network is insensitive to the
guard as long as it clears the noise floor.
"""

from __future__ import annotations

from conftest import paper_rows

from repro.core.config import SstspConfig
from repro.experiments.scenarios import quick_spec
from repro.fastlane import run_sstsp_vectorized
from repro.network.ibss import AttackerSpec
from repro.sim.units import S


def _attack_run(guard_us: float, shave_us: float, seed: int = 3):
    spec = quick_spec(
        40, seed=seed, duration_s=40.0,
        attacker=AttackerSpec(start_s=10.0, end_s=30.0, shave_per_period_us=shave_us),
    )
    config = SstspConfig(m=4, guard_fine_us=guard_us)
    return run_sstsp_vectorized(spec, config=config)


def test_guard_bounds_insider_drag(benchmark):
    def sweep():
        rows = []
        for guard, shave in ((150.0, 40.0), (300.0, 40.0), (600.0, 160.0)):
            result = _attack_run(guard, shave)
            trace = result.trace
            rows.append(
                {
                    "guard": guard,
                    "shave": shave,
                    "during": float(
                        trace.window(11 * S, 30 * S).max_diff_us.max()
                    ),
                    "drag": float(trace.mean_vs_true_us[-1]),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # a within-guard shave keeps the network synchronized at every guard
    assert all(row["during"] < row["guard"] for row in rows)
    # the achievable drag grows with the permitted shave (guard-bound)
    assert abs(rows[2]["drag"]) > abs(rows[0]["drag"]) * 2
    paper_rows(
        benchmark,
        "ablation: guard time vs insider drag",
        [
            f"guard={row['guard']:.0f}us shave={row['shave']:.0f}us/BP: "
            f"max-diff-during={row['during']:.1f}us "
            f"virtual-clock drag={row['drag']:.0f}us"
            for row in rows
        ],
    )


def test_excess_shave_is_rejected(benchmark):
    result = benchmark.pedantic(
        lambda: _attack_run(guard_us=250.0, shave_us=900.0), rounds=1, iterations=1
    )
    trace = result.trace
    # the attacker trips the guard, loses the channel, a legitimate
    # reference takes over and the network stays synchronized
    assert float(trace.window(35 * S, 40 * S).max_diff_us.max()) < 20.0
    paper_rows(
        benchmark,
        "ablation: excess shave",
        [
            "shave=900us/BP vs guard=250us: attacker rejected, network "
            f"re-synchronized to "
            f"{float(trace.window(35 * S, 40 * S).max_diff_us.max()):.1f}us",
        ],
    )
