"""Slotted real-time (QoS) schedules on top of synchronized clocks.

The paper's third motivation: synchronization "plays an important role in
the support of QoS in ad hoc networks, particularly for real-time
applications". In a slotted (TDMA-style) schedule each station transmits
in its own slot; each slot needs a *guard interval* absorbing the worst
clock difference between any transmitter/receiver pair, or transmissions
bleed into neighbouring slots. The guard is pure overhead: capacity
efficiency = payload / (payload + guard).

This module sizes the guard from a measured clock trace and reports the
collision rate a given guard would have suffered, plus the capacity
comparison between two synchronization qualities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.metrics import SyncTrace


@dataclass(frozen=True)
class TdmaConfig:
    """Slotted-schedule parameters.

    Attributes
    ----------
    slot_payload_us:
        Useful airtime per slot.
    guard_us:
        Guard interval provisioned per slot.
    safety_factor:
        Margin multiplier when deriving the minimum guard from measured
        error (deployments provision above the observed worst case).
    """

    slot_payload_us: float = 1_000.0
    guard_us: float = 50.0
    safety_factor: float = 1.2

    def __post_init__(self) -> None:
        if self.slot_payload_us <= 0 or self.guard_us < 0:
            raise ValueError("invalid slot/guard sizes")
        if self.safety_factor < 1.0:
            raise ValueError("safety_factor must be >= 1")


@dataclass(frozen=True)
class TdmaReport:
    """Slotted-schedule evaluation over one run."""

    #: Fraction of periods whose worst pairwise error exceeded the guard.
    violation_rate: float
    #: Smallest guard that would have absorbed every observed difference
    #: (with the safety factor applied).
    min_guard_us: float
    #: Capacity efficiency with the configured and with the minimal guard.
    efficiency: float
    min_guard_efficiency: float

    def capacity_gain_vs(self, other: "TdmaReport") -> float:
        """Relative capacity advantage of this run over ``other`` when both
        provision their minimal guards."""
        if other.min_guard_efficiency == 0:
            return 0.0
        return self.min_guard_efficiency / other.min_guard_efficiency - 1.0


def evaluate_tdma(trace: SyncTrace, config: Optional[TdmaConfig] = None) -> TdmaReport:
    """Size slotted-schedule guards from a measured clock trace."""
    config = config if config is not None else TdmaConfig()
    if trace.values_us is None:
        raise ValueError(
            "this evaluation needs the per-node clock matrix: run with "
            "keep_values=True"
        )
    values = trace.values_us
    worst = np.nanmax(values, axis=1) - np.nanmin(values, axis=1)
    worst = worst[np.isfinite(worst)]
    if worst.size == 0:
        raise ValueError("trace holds no synchronized samples")
    violations = float((worst > config.guard_us).mean())
    min_guard = float(worst.max() * config.safety_factor)
    payload = config.slot_payload_us
    return TdmaReport(
        violation_rate=violations,
        min_guard_us=min_guard,
        efficiency=payload / (payload + config.guard_us),
        min_guard_efficiency=payload / (payload + min_guard),
    )
