"""Property-based tests on the clock substrate (hypothesis)."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.clocks.adjusted import AdjustedClock, MonotonicityError
from repro.clocks.oscillator import HardwareClock, TsfTimer

rates = st.floats(min_value=0.999, max_value=1.001)
offsets = st.floats(min_value=-1e6, max_value=1e6)
times = st.floats(min_value=0.0, max_value=1e9)
slopes = st.floats(min_value=0.995, max_value=1.005)


class TestHardwareClockProperties:
    @given(rate=rates, offset=offsets, t=times)
    def test_read_inverts(self, rate, offset, t):
        clock = HardwareClock(rate=rate, initial_offset=offset)
        assert math.isclose(clock.true_time_at(clock.read(t)), t, abs_tol=1e-3)

    @given(rate=rates, offset=offsets, t1=times, t2=times)
    def test_strictly_increasing(self, rate, offset, t1, t2):
        assume(t2 > t1 + 1e-3)  # below float resolution ties are expected
        clock = HardwareClock(rate=rate, initial_offset=offset)
        assert clock.read(t2) > clock.read(t1)

    @given(rate=rates, offset=offsets, t1=times, t2=times)
    def test_linearity(self, rate, offset, t1, t2):
        clock = HardwareClock(rate=rate, initial_offset=offset)
        midpoint = (t1 + t2) / 2
        assert math.isclose(
            clock.read(midpoint),
            (clock.read(t1) + clock.read(t2)) / 2,
            rel_tol=1e-12,
            abs_tol=1e-6,
        )


class TestTsfTimerProperties:
    @given(
        rate=rates,
        sets=st.lists(
            st.tuples(times, st.floats(min_value=-1e4, max_value=1e4)),
            min_size=1,
            max_size=20,
        ),
    )
    def test_timer_never_decreases_under_any_adoption_sequence(self, rate, sets):
        timer = TsfTimer(HardwareClock(rate=rate))
        previous_time = 0.0
        previous_value = timer.raw(0.0)
        for t, delta in sorted(sets):
            timer.set_forward(timer.raw(t) + delta, t)
            value = timer.raw(max(t, previous_time))
            assert value >= previous_value - 1e-6
            previous_time = max(t, previous_time)
            previous_value = timer.raw(previous_time)


class TestAdjustedClockProperties:
    @given(
        adjustments=st.lists(
            st.tuples(
                st.floats(min_value=1.0, max_value=1e7),  # time step
                slopes,
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=50)
    def test_continuous_slews_preserve_monotonicity(self, adjustments):
        clock = AdjustedClock()
        t = 0.0
        for step, slope in adjustments:
            t += step
            clock.slew_to(0.0, slope, at_local_time=t)
        assert clock.is_monotonic(0.0, t + 1e6, samples=128)

    @given(
        t_switch=st.floats(min_value=1.0, max_value=1e8),
        slope=slopes,
        probe=st.floats(min_value=0.0, max_value=1e-3),
    )
    def test_continuity_at_switch_point(self, t_switch, slope, probe):
        clock = AdjustedClock()
        clock.slew_to(0.0, slope, at_local_time=t_switch)
        before = clock.read(t_switch - probe)
        after = clock.read(t_switch + probe)
        # values within 2 * probe * max_slope of each other
        assert abs(after - before) <= 2 * probe * 1.01 + 1e-3

    @given(jump=st.floats(min_value=0.01, max_value=1e6))
    def test_discontinuity_always_rejected(self, jump):
        clock = AdjustedClock()
        try:
            clock.adjust(1.0, jump, at_local_time=100.0)
        except MonotonicityError:
            return
        raise AssertionError("discontinuous adjustment accepted")
