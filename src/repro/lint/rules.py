"""The reprolint ruleset: determinism and unit-safety checks.

Each rule targets a failure mode that historically corrupts simulation
results *silently* — nothing crashes, the numbers are just wrong, and
the byte-identical-CSV / lane-parity guarantees quietly stop holding:

========  ===========================================================
``D001``  process-global randomness (``random.*``, ``np.random.*``
          module state) outside the seeded-stream registry
``D002``  wall-clock reads (``time.time`` …, ``datetime.now``) outside
          the orchestrator's progress/ETA reporting and the profiling
          module (``obs/profile.py``)
``D003``  iteration over unordered collections (``set`` literals,
          ``set()``/``frozenset()`` calls, ``dict.keys()``, filesystem
          enumeration) in result-affecting packages
``D004``  float ``==``/``!=`` on time-valued expressions (``*_us``,
          ``*_ms``, ``*_s``, ``*_tu`` names)
``D005``  mutable default arguments
``D006``  direct ``hashlib`` use outside ``crypto/primitives.py``
========  ===========================================================

Rules are syntactic: they resolve imported names (``import numpy as
np`` makes ``np.random.seed`` recognisable) but do not infer types, so
a variable *holding* a set cannot be caught — see
``docs/static-analysis.md`` for the limitations and the suppression
policy (``# reprolint: disable=Dxxx``).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import ClassVar, Dict, FrozenSet, Iterator, Optional, Tuple

from repro.lint.diagnostics import Diagnostic

#: Result-affecting subpackages: anything whose control flow or output
#: feeds a simulation result, a job key, or a cache key. ``experiments``
#: is included because job payload functions live there; ``analysis``
#: and ``apps`` reduce already-computed traces and are covered by the
#: sweep job-key path instead.
DEFAULT_ORDERED_PACKAGES: FrozenSet[str] = frozenset(
    {
        "clocks",
        "core",
        "crypto",
        "experiments",
        "fastlane",
        "faults",
        "lint",
        "mac",
        "multihop",
        "network",
        "obs",
        "phy",
        "protocols",
        "security",
        "sim",
        "sweep",
    }
)


@dataclass(frozen=True)
class LintConfig:
    """Per-repository policy knobs for the ruleset.

    The defaults encode *this* repository's layout; tests and other
    trees can pass their own instance. Paths are package-relative with
    posix separators, e.g. ``"sim/rng.py"`` (see
    :func:`repro.lint.engine.package_relative`).
    """

    #: Modules allowed to touch global RNG machinery (D001) — the one
    #: place seeded streams are derived.
    rng_allow: FrozenSet[str] = frozenset({"sim/rng.py"})
    #: Modules allowed to read the host clock (D002): progress/ETA
    #: reporting in the sweep orchestrator, plus the profiling module
    #: (``repro.obs.profile``) — the single sanctioned home for section
    #: timers; everything else takes time from the simulation engine.
    wallclock_allow: FrozenSet[str] = frozenset(
        {"sweep/orchestrator.py", "obs/profile.py"}
    )
    #: First path components where unordered iteration (D003) is an
    #: error because it can reorder results.
    ordered_packages: FrozenSet[str] = DEFAULT_ORDERED_PACKAGES
    #: Modules allowed to call hashlib directly (D006): the crypto
    #: primitive layer that owns digest/truncation policy.
    hash_allow: FrozenSet[str] = frozenset({"crypto/primitives.py"})
    #: Identifier suffixes that mark a name as time-valued for D004.
    time_suffixes: Tuple[str, ...] = ("_us", "_ms", "_s", "_tu")
    #: Dotted names of the trace-event bus entry point; calls to these
    #: are what the E-series checks against the event schema (and what
    #: T103 skips — payload unit policy is E204's job).
    emit_funcs: FrozenSet[str] = frozenset(
        {"repro.obs.events.emit", "repro.obs.emit"}
    )
    #: Kernel packages where *any* RNG generator construction is an
    #: R301 finding: kernel code receives streams from the registry /
    #: driver seam, it never mints them. Orchestration layers
    #: (``experiments``, ``analysis``, ``sweep``) may construct
    #: generators — from derived seeds; unseeded construction is
    #: flagged everywhere.
    rng_kernel_packages: FrozenSet[str] = frozenset(
        {
            "clocks",
            "core",
            "crypto",
            "fastlane",
            "faults",
            "mac",
            "multihop",
            "network",
            "phy",
            "protocols",
            "security",
        }
    )
    #: Modules exempt from R301 entirely — the seeded-stream factory.
    rng_construct_allow: FrozenSet[str] = frozenset({"sim/rng.py"})
    #: Glob patterns (against the package-relative path) selecting the
    #: modules held to the RNG-free protocol-driver seam contract
    #: (R302): protocol state must draw via ``ctx.slot_rng`` /
    #: ``ctx.sample_timestamp_error``, never hold a generator.
    rng_seam_modules: Tuple[str, ...] = ("protocols/multihop_*.py",)
    #: Seam modules exempt from R302 — the seam *definition* itself.
    rng_seam_allow: FrozenSet[str] = frozenset({"protocols/multihop_base.py"})


@dataclass
class FileContext:
    """Everything a rule needs to know about one parsed file."""

    #: Path string exactly as the engine will report it.
    path: str
    #: Package-relative posix path ("sim/rng.py") used by allowlists.
    rel: str
    #: The parsed module.
    tree: ast.AST
    #: Active configuration.
    config: LintConfig
    #: Local name -> dotted module/attribute path, from the file's
    #: imports (``{"np": "numpy", "perf_counter": "time.perf_counter"}``).
    aliases: Dict[str, str] = field(default_factory=dict)
    #: This file's :class:`repro.lint.project.ModuleInfo`, when the
    #: engine built a project model (typed loosely to keep the import
    #: direction rules -> project -> flowrules -> engine acyclic).
    module: Optional[object] = None
    #: The :class:`repro.lint.project.ProjectModel` spanning every file
    #: of the run — what lets T103 resolve cross-module call signatures.
    project: Optional[object] = None

    @property
    def package(self) -> str:
        """First path component of :attr:`rel` ("" for root modules)."""
        return self.rel.split("/", 1)[0] if "/" in self.rel else ""


def build_aliases(tree: ast.AST) -> Dict[str, str]:
    """Map local names to dotted import paths for one module.

    ``import numpy as np`` yields ``{"np": "numpy"}``; ``from time
    import perf_counter`` yields ``{"perf_counter":
    "time.perf_counter"}``. Relative imports are skipped — they can
    never name stdlib/numpy modules, which is all the rules care about.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                if name.asname:
                    aliases[name.asname] = name.name
                else:
                    root = name.name.split(".", 1)[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.level or not node.module:
                continue
            for name in node.names:
                aliases[name.asname or name.name] = f"{node.module}.{name.name}"
    return aliases


def qualify(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve an attribute chain to its dotted import path, if any.

    With ``{"np": "numpy"}``, the expression ``np.random.seed``
    resolves to ``"numpy.random.seed"``. Returns None for chains not
    rooted in an imported name (locals, attributes of call results, …).
    """
    parts = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    base = aliases.get(current.id)
    if base is None:
        return None
    parts.append(base)
    return ".".join(reversed(parts))


class Rule:
    """One lint rule: a stable code plus a check over a parsed file.

    Subclasses set :attr:`code`, :attr:`title` and :attr:`rationale`
    (the *why*, surfaced by ``--list-rules`` and the docs) and
    implement :meth:`check`. Pragma and baseline filtering happen in
    the engine, not here.
    """

    code: ClassVar[str] = ""
    title: ClassVar[str] = ""
    rationale: ClassVar[str] = ""

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        """Yield every finding of this rule in ``ctx`` (unfiltered)."""
        raise NotImplementedError

    def _diag(self, ctx: FileContext, node: ast.AST, message: str) -> Diagnostic:
        diag_line = getattr(node, "lineno", 1)
        diag_col = getattr(node, "col_offset", 0)
        return Diagnostic(ctx.path, diag_line, diag_col, self.code, message)


#: numpy.random attributes that are fine: explicit-seed constructors and
#: generator/bit-generator types — everything that does *not* touch the
#: hidden module-global RandomState.
_NUMPY_RANDOM_OK: FrozenSet[str] = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
    }
)


class UnseededRandomness(Rule):
    """D001: randomness that does not flow from a seeded stream.

    Flags any use of the stdlib ``random`` module (its functions share
    one hidden process-global state) and numpy module-state calls
    (``np.random.seed/random/randint/…``). Explicitly seeded
    constructions — ``np.random.default_rng(seed)``, ``Generator``,
    ``SeedSequence`` — are fine.
    """

    code = "D001"
    title = "unseeded or process-global randomness"
    rationale = (
        "A draw from shared global state makes every downstream draw depend on "
        "call order and other consumers, so runs stop being reproducible; all "
        "randomness must come from named streams (sim.rng.RngRegistry) or an "
        "explicitly seeded Generator."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        """Flag ``random.*`` and numpy module-state randomness uses."""
        if ctx.rel in ctx.config.rng_allow:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Name, ast.Attribute)):
                continue
            if not isinstance(getattr(node, "ctx", None), ast.Load):
                continue
            qual = qualify(node, ctx.aliases)
            if qual is None:
                continue
            if qual.startswith("random."):
                yield self._diag(
                    ctx,
                    node,
                    f"use of process-global stdlib randomness '{qual}' — draw from "
                    "a named stream (sim.rng.RngRegistry) or a seeded "
                    "np.random.Generator instead",
                )
            elif qual.startswith("numpy.random."):
                leaf = qual.split(".")[2]
                if leaf not in _NUMPY_RANDOM_OK:
                    yield self._diag(
                        ctx,
                        node,
                        f"numpy module-state randomness '{qual}' — use a seeded "
                        "Generator (sim.rng.RngRegistry or "
                        "np.random.default_rng(seed)) instead",
                    )


#: Fully qualified callables that read the host's clock.
_WALLCLOCK: FrozenSet[str] = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


class WallClockRead(Rule):
    """D002: reading the host's clock inside the simulation stack.

    Simulated time comes from the event engine; host time leaking into
    model code makes results depend on machine speed and scheduling.
    Only the allowlisted orchestrator (progress/ETA display) and the
    profiling module (section timers that report, never feed back into
    results) may look at the real clock.
    """

    code = "D002"
    title = "wall-clock read outside orchestration"
    rationale = (
        "Host-clock reads make results a function of machine load and break "
        "run-to-run and worker-count invariance; simulation code must take "
        "time from the engine, never from the host."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        """Flag ``time.*``/``datetime.now``-style host-clock reads."""
        if ctx.rel in ctx.config.wallclock_allow:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Name, ast.Attribute)):
                continue
            if not isinstance(getattr(node, "ctx", None), ast.Load):
                continue
            qual = qualify(node, ctx.aliases)
            if qual in _WALLCLOCK:
                yield self._diag(
                    ctx,
                    node,
                    f"wall-clock read '{qual}' — simulation code must take time "
                    "from the engine; only orchestrator progress/ETA reporting "
                    "may read the host clock",
                )


def _iteration_targets(tree: ast.AST) -> Iterator[ast.expr]:
    """Yield every expression a ``for`` or comprehension iterates over."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for gen in node.generators:
                yield gen.iter


_FS_METHODS = frozenset({"glob", "rglob", "iterdir"})
_FS_FUNCS = frozenset({"os.listdir", "os.scandir"})


def describe_unordered(target: ast.expr, aliases: Dict[str, str]) -> Optional[str]:
    """Describe why an iteration target is unordered, or None if it isn't.

    Shared by D003 (unordered iteration) and R303 (RNG draws inside
    unordered iteration), so both agree on what "unordered" means: set
    literals/comprehensions, ``set()``/``frozenset()`` calls,
    ``.keys()``, and filesystem enumeration.
    """
    if isinstance(target, ast.Set):
        return "a set literal"
    if isinstance(target, ast.SetComp):
        return "a set comprehension"
    if isinstance(target, ast.Call):
        func = target.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return f"{func.id}(...)"
        if isinstance(func, ast.Attribute):
            if func.attr == "keys":
                return ".keys()"
            if func.attr in _FS_METHODS:
                return f".{func.attr}(...) (filesystem order is platform-dependent)"
        if qualify(func, aliases) in _FS_FUNCS:
            return f"{qualify(func, aliases)}(...) (filesystem order is platform-dependent)"
    return None


class UnorderedIteration(Rule):
    """D003: iterating an unordered collection where order reaches results.

    Flags ``for``/comprehension iteration whose target is a set literal,
    set comprehension, ``set()``/``frozenset()`` call, ``.keys()`` call,
    or a filesystem enumeration (``glob``/``rglob``/``iterdir``/
    ``os.listdir``/``os.scandir``) — all sources whose order can vary
    between runs or platforms. ``sorted(set(...))`` is the fix and is
    not flagged. Purely syntactic: a *variable* holding a set is not
    detectable.
    """

    code = "D003"
    title = "unordered iteration in a result-affecting module"
    rationale = (
        "Set and filesystem iteration order can differ between processes and "
        "platforms, silently reordering beacons, job dispatch or CSV rows and "
        "breaking the byte-identical-output and lane-parity guarantees; "
        "wrap the iterable in sorted(...)."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        """Flag unordered iteration targets in scoped packages."""
        if ctx.package not in ctx.config.ordered_packages:
            return
        for target in _iteration_targets(ctx.tree):
            what = describe_unordered(target, ctx.aliases)
            if what is not None:
                yield self._diag(
                    ctx,
                    target,
                    f"iteration over {what} in a result-affecting module — "
                    "wrap the iterable in sorted(...) to pin the order",
                )


class TimeFloatEquality(Rule):
    """D004: ``==``/``!=`` between float time values.

    Simulation times are float microseconds; slewing (eqs. 2–5 of the
    paper) makes exact equality a rounding accident. Flags equality
    comparisons where either operand's name carries a time suffix
    (``*_us``, ``*_ms``, ``*_s``, ``*_tu``) or is a unit-conversion
    call from ``sim.units``.
    """

    code = "D004"
    title = "float equality on time-valued expressions"
    rationale = (
        "After drift and (k, b) slewing two clocks agree only approximately; "
        "exact float equality on *_us/*_s values flips on 1-ulp differences "
        "between lanes, breaking parity — compare with a tolerance "
        "(math.isclose, abs(a-b) <= eps) or quantise to integer ticks."
    )

    _UNIT_FUNCS = frozenset({"us_to_s", "s_to_us"})

    def _time_name(self, node: ast.expr, config: LintConfig) -> Optional[str]:
        name: Optional[str] = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        elif isinstance(node, ast.Call):
            func = node.func
            leaf = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
            if leaf in self._UNIT_FUNCS:
                return f"{leaf}(...)"
            return None
        if name is not None and any(name.endswith(s) for s in config.time_suffixes):
            return name
        return None

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        """Flag Eq/NotEq comparisons touching time-named operands."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            sides = [node.left] + list(node.comparators)
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                pair = (sides[index], sides[index + 1])
                if any(
                    isinstance(s, ast.Constant) and (s.value is None or isinstance(s.value, str))
                    for s in pair
                ):
                    continue
                named = next(
                    (n for n in (self._time_name(s, ctx.config) for s in pair) if n),
                    None,
                )
                if named is not None:
                    yield self._diag(
                        ctx,
                        node,
                        f"float equality on time-valued expression '{named}' — "
                        "compare with a tolerance (math.isclose, abs(a-b) <= eps) "
                        "or quantise to integer ticks first",
                    )
                    break


class MutableDefaultArg(Rule):
    """D005: mutable default argument values.

    A default is evaluated once at ``def`` time; mutating it leaks
    state across calls — and across *simulations* when the function is
    a runner entry point, which is a determinism bug, not just a style
    one.
    """

    code = "D005"
    title = "mutable default argument"
    rationale = (
        "Defaults are shared across every call; a list/dict/set default that "
        "gets mutated carries state from one run into the next, so replaying "
        "the same seed no longer replays the same results — default to None "
        "and construct inside the function."
    )

    _MUTABLE_CALLS = frozenset(
        {"list", "dict", "set", "bytearray", "deque", "defaultdict", "Counter", "OrderedDict"}
    )

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            leaf = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
            return leaf in self._MUTABLE_CALLS
        return False

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        """Flag list/dict/set(-building) default values."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self._diag(
                        ctx,
                        default,
                        f"mutable default argument '{ast.unparse(default)}' — "
                        "default to None and construct inside the function",
                    )


class DirectHashlib(Rule):
    """D006: importing ``hashlib`` outside the crypto primitive layer.

    ``crypto/primitives.py`` owns digest choice and the paper's
    truncation policy (``HASH_BYTES``); ad-hoc hashing elsewhere forks
    that policy and silently weakens or desynchronises it.
    """

    code = "D006"
    title = "direct hashlib use outside crypto/primitives"
    rationale = (
        "Digest algorithm and truncation policy live in repro.crypto.primitives; "
        "a second direct hashlib call site can disagree on either, which breaks "
        "interoperability of authenticated beacons — route hashing through the "
        "primitives (or pragma-justify non-security uses like cache keys)."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        """Flag ``import hashlib`` / ``from hashlib import …``."""
        if ctx.rel in ctx.config.hash_allow:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                if any(n.name.split(".", 1)[0] == "hashlib" for n in node.names):
                    yield self._diag(
                        ctx,
                        node,
                        "direct hashlib import — route protocol hashing through "
                        "repro.crypto.primitives (pragma-justify non-security "
                        "uses such as cache keys)",
                    )
            elif isinstance(node, ast.ImportFrom):
                if not node.level and node.module == "hashlib":
                    yield self._diag(
                        ctx,
                        node,
                        "direct hashlib import — route protocol hashing through "
                        "repro.crypto.primitives (pragma-justify non-security "
                        "uses such as cache keys)",
                    )


#: The active ruleset, ordered by code.
RULES: Tuple[Rule, ...] = (
    UnseededRandomness(),
    WallClockRead(),
    UnorderedIteration(),
    TimeFloatEquality(),
    MutableDefaultArg(),
    DirectHashlib(),
)

#: Every known code (including D000, the engine's parse-failure code).
ALL_CODES: FrozenSet[str] = frozenset({r.code for r in RULES} | {"D000"})

#: Sanity: codes must be unique and well-formed.
_CODE_RE = re.compile(r"^D\d{3}$")
assert all(_CODE_RE.match(r.code) for r in RULES)
assert len({r.code for r in RULES}) == len(RULES)
