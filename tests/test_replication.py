"""Tests for the replication statistics and trace serialization."""

import math

import numpy as np
import pytest

from repro.analysis.metrics import TraceRecorder, SyncTrace
from repro.analysis.replication import (
    compare,
    replicate,
    summarize,
    t975,
)


class TestSummarize:
    def test_basic(self):
        summary = summarize([10.0, 12.0, 8.0, 11.0, 9.0])
        assert summary.mean == pytest.approx(10.0)
        assert summary.n == 5
        low, high = summary.ci95
        assert low < 10.0 < high

    def test_single_value_infinite_ci(self):
        summary = summarize([5.0])
        assert summary.mean == 5.0
        assert math.isinf(summary.ci95_half_width)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_none_and_nan_gaps_dropped(self):
        # Quarantined sweep cells (PR 6) leave None/NaN holes in value
        # lists; the summary covers the replicas that reported.
        summary = summarize([10.0, None, 12.0, float("nan"), 8.0])
        assert summary.n == 3
        assert summary.mean == pytest.approx(10.0)

    def test_all_gaps_rejected(self):
        with pytest.raises(ValueError):
            summarize([None, float("nan")])

    def test_t_quantiles(self):
        assert t975(1) == pytest.approx(12.706)
        assert t975(10) == pytest.approx(2.228)
        assert t975(1000) == pytest.approx(1.96)
        with pytest.raises(ValueError):
            t975(0)

    def test_ci_shrinks_with_replicas(self):
        rng = np.random.default_rng(0)
        small = summarize(rng.normal(0, 1, 5))
        large = summarize(rng.normal(0, 1, 30))
        assert large.ci95_half_width < small.ci95_half_width

    def test_str(self):
        assert "n=3" in str(summarize([1.0, 2.0, 3.0]))


class TestReplicate:
    def test_seeds_are_derived(self):
        seen = []
        replicate(lambda seed: seen.append(seed) or 0.0, replicas=3, base_seed=7)
        assert seen == [7, 1007, 2007]

    def test_validation(self):
        with pytest.raises(ValueError):
            replicate(lambda s: 0.0, replicas=0)

    def test_end_to_end_sync_metric(self):
        from repro.experiments.scenarios import quick_spec
        from repro.fastlane import run_sstsp_vectorized

        def metric(seed):
            spec = quick_spec(15, seed=seed, duration_s=8.0)
            return run_sstsp_vectorized(spec).trace.steady_state_error_us()

        summary = replicate(metric, replicas=3)
        assert 3.0 < summary.mean < 15.0
        assert summary.ci95_half_width < summary.mean


class TestCompare:
    def test_paired_and_significant(self):
        comparison = compare(
            lambda seed: 1.0 + 0.01 * seed % 1,
            lambda seed: 5.0 + 0.01 * seed % 1,
            replicas=5,
        )
        assert comparison.a_smaller_significant
        assert comparison.ratio == pytest.approx(5.0, rel=0.1)

    def test_sstsp_beats_tsf_significantly(self):
        from repro.experiments.scenarios import quick_spec
        from repro.fastlane import run_sstsp_vectorized, run_tsf_vectorized

        def sstsp(seed):
            return run_sstsp_vectorized(
                quick_spec(20, seed=seed, duration_s=8.0)
            ).trace.steady_state_error_us()

        def tsf(seed):
            return run_tsf_vectorized(
                quick_spec(20, seed=seed, duration_s=8.0)
            ).trace.steady_state_error_us()

        comparison = compare(sstsp, tsf, replicas=4)
        assert comparison.a_smaller_significant
        assert comparison.ratio > 2.0


class TestTraceSerialization:
    def make_trace(self, keep_values):
        recorder = TraceRecorder(keep_values=keep_values)
        for i in range(5):
            values = np.array([float(i), i + 2.0])
            recorder.record(
                (i + 1) * 100.0, values, 1,
                full_values=values if keep_values else None,
            )
        return recorder.finalize()

    def test_npz_round_trip(self, tmp_path):
        trace = self.make_trace(keep_values=False)
        path = str(tmp_path / "trace.npz")
        trace.save_npz(path)
        loaded = SyncTrace.load_npz(path)
        assert np.array_equal(loaded.times_us, trace.times_us)
        assert np.array_equal(loaded.max_diff_us, trace.max_diff_us)
        assert loaded.values_us is None

    def test_npz_round_trip_with_values(self, tmp_path):
        trace = self.make_trace(keep_values=True)
        path = str(tmp_path / "trace.npz")
        trace.save_npz(path)
        loaded = SyncTrace.load_npz(path)
        assert np.array_equal(loaded.values_us, trace.values_us)
