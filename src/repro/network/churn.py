"""Membership churn.

The paper's section 5 scenario: 5% of the stations leave at every
``k * 200 s`` and return 50 s later; additionally, the current *reference*
node leaves at 300 s, 500 s and 800 s (to exercise reference re-election)
and likewise returns after 50 s. A :class:`ChurnSchedule` pre-computes the
leave/return events; the special node id :data:`REFERENCE_MARKER` is
resolved by the runner at event time to whoever currently is the
reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.sim.units import S

#: Placeholder node id meaning "whoever is the reference when this fires".
REFERENCE_MARKER: int = -1


@dataclass(frozen=True)
class ChurnEvent:
    """One churn action, applied at the start of ``period``."""

    period: int
    action: str  # "leave" | "return"
    node_ids: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.action not in ("leave", "return"):
            raise ValueError(f"unknown churn action {self.action!r}")


class ChurnSchedule:
    """An ordered collection of churn events, indexed by period."""

    def __init__(self, events: Iterable[ChurnEvent] = ()) -> None:
        self._by_period: dict = {}
        for event in events:
            self._by_period.setdefault(event.period, []).append(event)

    def add(self, event: ChurnEvent) -> None:
        """Append one event."""
        self._by_period.setdefault(event.period, []).append(event)

    def events_for(self, period: int) -> List[ChurnEvent]:
        """Events to apply at the start of ``period``."""
        return self._by_period.get(period, [])

    def periods(self) -> List[int]:
        """Sorted periods having events."""
        return sorted(self._by_period)

    def __len__(self) -> int:
        return sum(len(v) for v in self._by_period.values())

    @classmethod
    def paper_default(
        cls,
        node_ids: Sequence[int],
        total_periods: int,
        rng: np.random.Generator,
        beacon_period_us: float = 0.1 * S,
        leave_fraction: float = 0.05,
        leave_every_s: float = 200.0,
        away_s: float = 50.0,
        reference_leave_times_s: Sequence[float] = (300.0, 500.0, 800.0),
    ) -> "ChurnSchedule":
        """The section 5 churn pattern, scaled to any horizon.

        Group departures happen at ``k * leave_every_s``; each group is an
        independent random ``leave_fraction`` sample of the stations. The
        reference departures use :data:`REFERENCE_MARKER`.
        """
        schedule = cls()
        n = len(node_ids)

        def period_of(t_s: float) -> int:
            return int(round(t_s * S / beacon_period_us))

        away_periods = max(1, period_of(away_s))
        # Station id -> first period it is back (tracked so that when
        # away_s > leave_every_s a station still away cannot be sampled
        # into the next departure group, which would silently mispair its
        # leave/return events).
        away_until: dict = {}
        k = 1
        while True:
            leave_period = period_of(k * leave_every_s)
            if leave_period >= total_periods:
                break
            eligible = np.asarray(
                [i for i in node_ids if away_until.get(i, 0) <= leave_period]
            )
            group_size = max(1, int(round(n * leave_fraction)))
            group_size = min(group_size, len(eligible))
            if group_size == 0:
                k += 1
                continue
            group = tuple(
                int(i)
                for i in rng.choice(eligible, size=group_size, replace=False)
            )
            schedule.add(ChurnEvent(leave_period, "leave", group))
            return_period = leave_period + away_periods
            for i in group:
                away_until[i] = return_period
            if return_period < total_periods:
                schedule.add(ChurnEvent(return_period, "return", group))
            k += 1

        for t_s in reference_leave_times_s:
            leave_period = period_of(t_s)
            if leave_period >= total_periods:
                continue
            schedule.add(ChurnEvent(leave_period, "leave", (REFERENCE_MARKER,)))
            return_period = leave_period + away_periods
            if return_period < total_periods:
                # The marker is resolved at leave time; the runner records
                # the resolved id so the same station returns.
                schedule.add(ChurnEvent(return_period, "return", (REFERENCE_MARKER,)))
        return schedule
