"""The sweep failure policy: retries, backoff, timeouts, quarantine.

A sweep of hundreds of long simulation jobs must survive the three ways
a job can die — it *raises*, it *hangs*, or it *kills its worker
process* — without giving up determinism. This module holds the pure
data/decision side of that contract; the orchestrator
(:mod:`repro.sweep.orchestrator`) does the actual retrying, pool
rebuilding and draining.

Determinism rules, in order of importance:

* every attempt of a job re-seeds from the spec, so a job that failed
  transiently and was retried returns byte-identical results to a
  first-try success;
* the retry backoff schedule is a pure function of the spec hash and the
  attempt number (:meth:`FailurePolicy.backoff_s`) — no wall-clock
  randomness, so two hosts retrying the same job wait the same delays;
* failure *injection* (:func:`should_inject`) is keyed on the job's
  canonical identity and the attempt number, so tests and CI exercise
  the retry paths reproducibly at any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.sweep.spec import JobSpec, derive_backoff_fraction

#: The accepted ``on_error`` modes (see :class:`FailurePolicy`).
ON_ERROR_MODES: Tuple[str, ...] = ("raise", "retry", "quarantine")

#: Environment variable gating deterministic failure injection when no
#: explicit ``FailurePolicy.inject`` pattern is set (same syntax).
INJECT_ENV_VAR = "SSTSP_FAIL_INJECT"


class JobTimeoutError(RuntimeError):
    """One job attempt exceeded the policy's per-job wall-time budget."""


class InjectedFailure(RuntimeError):
    """A deterministic test failure raised by the injection hook."""


class SweepInterrupted(RuntimeError):
    """The sweep drained cleanly after SIGINT/SIGTERM.

    Carries enough state for the caller (or the operator reading the
    message) to resume: the manifest records exactly which jobs
    completed, failed, or never ran.
    """

    def __init__(
        self,
        sweep: str,
        completed: int,
        total: int,
        manifest_path: Optional[str] = None,
    ) -> None:
        self.sweep = sweep
        self.completed = completed
        self.total = total
        self.manifest_path = manifest_path
        hint = (
            f" (manifest: {manifest_path}; rerun with --resume)"
            if manifest_path
            else ""
        )
        super().__init__(
            f"sweep {sweep!r} interrupted after {completed}/{total} jobs{hint}"
        )


@dataclass(frozen=True)
class FailurePolicy:
    """How a sweep reacts when a job errors, hangs, or kills its worker.

    Attributes
    ----------
    on_error:
        ``"raise"`` (default) — fail the whole sweep on the first job
        failure, exactly the pre-policy behaviour; ``"retry"`` — retry a
        failing job up to ``max_retries`` times, then raise;
        ``"quarantine"`` — retry, then record a structured
        :class:`JobFailure` and keep the sweep going (the job's result
        slot stays ``None``).
    max_retries:
        Extra attempts after the first, consumed by job errors, timeouts
        and worker crashes alike. Ignored under ``on_error="raise"``.
    timeout_s:
        Per-*attempt* wall-time budget enforced inside the worker via
        ``SIGALRM`` (None disables). A timed-out attempt counts as a
        failure and follows the same retry/quarantine path.
    backoff_base_s / backoff_cap_s:
        Deterministic exponential backoff between attempts: attempt
        ``k`` (k >= 2) waits ``base * 2**(k-2)`` scaled by a jitter in
        ``[0.5, 1.0)`` derived from the spec hash, capped at the cap.
    inject:
        Deterministic failure-injection pattern ``"<substr>:<k>"`` —
        fail the first ``k`` attempts of every job whose canonical
        ``job_key`` contains ``substr`` (``"*"`` matches every job).
        ``None`` falls back to the ``SSTSP_FAIL_INJECT`` environment
        variable; injection is off when both are unset.
    """

    on_error: str = "raise"
    max_retries: int = 2
    timeout_s: Optional[float] = None
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 5.0
    inject: Optional[str] = None

    def __post_init__(self) -> None:
        if self.on_error not in ON_ERROR_MODES:
            raise ValueError(
                f"on_error must be one of {ON_ERROR_MODES}, got {self.on_error!r}"
            )
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.inject is not None:
            parse_injection(self.inject)  # validate eagerly, fail at build time

    @property
    def attempts(self) -> int:
        """Total attempts a job may consume before the policy gives up."""
        return 1 if self.on_error == "raise" else 1 + self.max_retries

    def backoff_s(self, spec: JobSpec, attempt: int) -> float:
        """Delay before running ``attempt`` (>= 2) of ``spec``.

        A pure function of the spec and the attempt number: exponential
        in the attempt, jittered by a hash-derived fraction so a sweep's
        retries do not stampede in lockstep, capped at
        ``backoff_cap_s``. Never reads a clock or an RNG.
        """
        if attempt < 2:
            return 0.0
        base = self.backoff_base_s * (2.0 ** (attempt - 2))
        jitter = 0.5 + 0.5 * derive_backoff_fraction(spec.spec_hash(), attempt)
        return min(self.backoff_cap_s, base * jitter)


@dataclass(frozen=True)
class JobFailure:
    """One job the sweep gave up on (quarantined), as structured data."""

    seq: int
    kind: str
    hash: str
    job_key: str
    reason: str  # "error" | "timeout" | "worker_crash" | "injected"
    attempts: int
    message: str

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready projection (run logs, manifests, reports)."""
        return {
            "seq": self.seq,
            "kind": self.kind,
            "hash": self.hash,
            "reason": self.reason,
            "attempts": self.attempts,
            "message": self.message,
        }


def parse_injection(text: str) -> Tuple[str, int]:
    """Parse an injection pattern ``"<substr>:<k>"``.

    The split is from the right so ``substr`` may itself contain colons
    (canonical job keys do). Raises ``ValueError`` on malformed input.
    """
    match, sep, count_text = text.rpartition(":")
    if not sep or not match:
        raise ValueError(
            f"bad injection pattern {text!r} (expected '<substr>:<k>')"
        )
    try:
        count = int(count_text)
    except ValueError:
        raise ValueError(
            f"bad injection count in {text!r} (expected '<substr>:<k>')"
        ) from None
    if count < 0:
        raise ValueError(f"injection count must be >= 0, got {count}")
    return match, count


def should_inject(spec: JobSpec, attempt: int, pattern: Optional[str]) -> bool:
    """Whether attempt ``attempt`` of ``spec`` must fail under ``pattern``.

    Pure in every input: the same (spec, attempt, pattern) triple always
    answers the same, whatever process or worker evaluates it.
    """
    if pattern is None or attempt < 1:
        return False
    match, count = parse_injection(pattern)
    if attempt > count:
        return False
    return match == "*" or match in spec.job_key


def maybe_inject_failure(
    spec: JobSpec, attempt: int, pattern: Optional[str]
) -> None:
    """Raise :class:`InjectedFailure` when the pattern says this attempt dies."""
    if should_inject(spec, attempt, pattern):
        raise InjectedFailure(
            f"injected failure (attempt {attempt}) for {spec.kind}-"
            f"{spec.spec_hash()[:16]}"
        )
