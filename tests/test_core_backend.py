"""Unit tests for the crypto backends, including decision equivalence."""

import numpy as np
import pytest

from repro.core.backend import (
    FullCryptoBackend,
    ModeledCryptoBackend,
)
from repro.crypto.mutesla import IntervalSchedule
from repro.mac.beacon import SecureBeaconFrame

BP = 100_000.0
N = 64


@pytest.fixture
def sched():
    return IntervalSchedule(0.0, BP, N)


@pytest.fixture(params=["full", "modeled"])
def backend(request, sched, rng):
    if request.param == "full":
        b = FullCryptoBackend(sched, rng)
    else:
        b = ModeledCryptoBackend(sched)
    b.register_node(1)
    b.register_node(2)
    return b


class TestBackends:
    def test_round_trip_releases_previous_interval(self, backend):
        f1 = backend.make_frame(1, 1, 100_000.0)
        v1 = backend.process(9, f1, local_time_us=1 * BP)
        assert v1.accepted and v1.authenticated_intervals == ()
        f2 = backend.make_frame(1, 2, 200_000.0)
        v2 = backend.process(9, f2, local_time_us=2 * BP)
        assert v2.accepted and v2.authenticated_intervals == (1,)

    def test_unknown_sender_rejected(self, backend):
        frame = SecureBeaconFrame(
            sender=77, timestamp_us=0.0, interval=1,
            mac_tag=b"x" * 16, disclosed_key=b"y" * 16,
        )
        verdict = backend.process(9, frame, 1 * BP)
        assert not verdict.accepted and verdict.reason == "unknown_sender"

    def test_stale_interval_rejected(self, backend):
        frame = backend.make_frame(1, 1, 100_000.0)
        verdict = backend.process(9, frame, local_time_us=3 * BP)
        assert not verdict.accepted and verdict.reason == "unsafe_interval"

    def test_forged_key_rejected(self, backend):
        good = backend.make_frame(1, 1, 100_000.0)
        forged = SecureBeaconFrame(
            sender=1, timestamp_us=good.timestamp_us, interval=1,
            mac_tag=good.mac_tag, disclosed_key=b"\x00" * 16,
        )
        verdict = backend.process(9, forged, 1 * BP)
        assert not verdict.accepted and verdict.reason == "bad_key"

    def test_tampered_timestamp_never_authenticates(self, backend):
        good = backend.make_frame(1, 1, 100_000.0)
        tampered = SecureBeaconFrame(
            sender=1, timestamp_us=good.timestamp_us + 999.0, interval=1,
            mac_tag=good.mac_tag, disclosed_key=good.disclosed_key,
        )
        assert backend.process(9, tampered, 1 * BP).accepted  # buffered...
        v2 = backend.process(9, backend.make_frame(1, 2, 200_000.0), 2 * BP)
        assert v2.authenticated_intervals == ()  # ...but MAC fails silently

    def test_receivers_are_independent(self, backend):
        f1 = backend.make_frame(1, 1, 100_000.0)
        backend.process(8, f1, 1 * BP)
        # receiver 9 never saw interval 1: nothing released for it
        f2 = backend.make_frame(1, 2, 200_000.0)
        assert backend.process(9, f2, 2 * BP).authenticated_intervals == ()
        assert backend.process(8, f2, 2 * BP).authenticated_intervals == (1,)

    def test_senders_are_independent(self, backend):
        backend.process(9, backend.make_frame(1, 1, 100_000.0), 1 * BP)
        v = backend.process(9, backend.make_frame(2, 2, 200_000.0), 2 * BP)
        assert v.accepted and v.authenticated_intervals == ()

    def test_lost_interval_recovered(self, backend):
        backend.process(9, backend.make_frame(1, 1, 100_000.0), 1 * BP)
        # interval 2 lost
        v = backend.process(9, backend.make_frame(1, 3, 300_000.0), 3 * BP)
        assert v.authenticated_intervals == (1,)


class TestModeledSpecifics:
    def test_unregistered_sender_cannot_make_frames(self, sched):
        backend = ModeledCryptoBackend(sched)
        with pytest.raises(ValueError):
            backend.make_frame(5, 1, 0.0)

    def test_frame_sizes_match_paper(self, sched):
        backend = ModeledCryptoBackend(sched)
        backend.register_node(1)
        assert backend.make_frame(1, 1, 0.0).size_bytes == 92


def test_backend_equivalence_randomised(sched, rng):
    """Both backends must produce identical verdict sequences on a shared
    randomised scenario of honest frames, replays, forgeries and losses."""
    full = FullCryptoBackend(sched, np.random.default_rng(0))
    modeled = ModeledCryptoBackend(sched)
    for node in (1, 2):
        full.register_node(node)
        modeled.register_node(node)

    history = {"full": [], "modeled": []}
    stored = {"full": [], "modeled": []}
    for j in range(1, 40):
        local = j * BP + rng.uniform(-100, 100)
        action = rng.choice(["honest", "replay", "forge", "skip", "stale"])
        replay_pick = rng.random()  # one draw shared by both backends
        for name, backend in (("full", full), ("modeled", modeled)):
            if action == "honest":
                frame = backend.make_frame(1, j, float(j * BP))
                stored[name].append(frame)
            elif action == "replay" and stored[name]:
                frame = stored[name][int(replay_pick * len(stored[name]))]
            elif action == "forge":
                frame = SecureBeaconFrame(
                    sender=1, timestamp_us=float(j * BP), interval=j,
                    mac_tag=b"f" * 16, disclosed_key=b"g" * 16,
                )
            elif action == "stale":
                frame = backend.make_frame(2, max(1, j - 2), float(j * BP))
            else:
                history[name].append(("skip",))
                continue
            verdict = backend.process(9, frame, local)
            history[name].append(
                (verdict.accepted, verdict.reason, verdict.authenticated_intervals)
            )
    assert history["full"] == history["modeled"]
