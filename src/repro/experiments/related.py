"""Related-work comparison: every protocol of the paper's section 2.

The paper surveys TSF's scalability fixes (ATSP, TATSP [4], SATSF [10])
and the equal-participation controlled-clock scheme of Rentel-Kunz [1],
arguing that prioritising fast stations narrows but does not close TSF's
gap, while SSTSP removes the steady-state contention entirely. This
experiment runs all six protocols on identical networks (same clock
populations, same channel draws per protocol family) across sizes and
prints the accuracy/traffic comparison behind that argument.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Dict, Sequence

from repro.experiments.report import format_table
from repro.experiments.scenarios import quick_spec
from repro.network.ibss import build_network

PROTOCOLS = ("tsf", "atsp", "tatsp", "satsf", "rentel", "sstsp")


@dataclass
class RelatedRow:
    protocol: str
    n: int
    steady_us: float
    peak_us: float
    beacons: int
    collisions: int


def run(
    n_values: Sequence[int] = (30, 100),
    duration_s: float = 40.0,
    seed: int = 11,
) -> Dict[str, Dict[int, RelatedRow]]:
    """Run every protocol at every size; returns rows[protocol][n]."""
    rows: Dict[str, Dict[int, RelatedRow]] = {name: {} for name in PROTOCOLS}
    for n in n_values:
        spec = quick_spec(n, seed=seed, duration_s=duration_s)
        for name in PROTOCOLS:
            result = build_network(name, spec).run()
            trace = result.trace
            rows[name][n] = RelatedRow(
                protocol=name,
                n=n,
                steady_us=trace.steady_state_error_us(),
                peak_us=trace.peak_error_us(),
                beacons=result.successful_beacons,
                collisions=result.channel.stats.collisions,
            )
    return rows


def main(argv=None) -> None:
    """CLI entry point; prints the reproduced rows/series."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="single size")
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args(argv)
    n_values = (30,) if args.quick else (30, 100)

    rows = run(n_values=n_values, seed=args.seed)
    print("=== Related work (paper section 2), head to head ===")
    for n in n_values:
        table = []
        ordered = sorted(PROTOCOLS, key=lambda p, n=n: rows[p][n].steady_us)
        for name in ordered:
            row = rows[name][n]
            table.append(
                (
                    name,
                    f"{row.steady_us:.2f}",
                    f"{row.peak_us:.1f}",
                    row.beacons,
                    row.collisions,
                )
            )
        print()
        print(
            format_table(
                ["protocol", "steady (us)", "peak (us)", "beacons", "collisions"],
                table,
                title=f"N = {n}",
            )
        )
    print()
    print("reading: the fast-station-priority schemes (ATSP/TATSP/SATSF) "
          "improve on TSF but keep its contention; SSTSP's single steady-"
          "state transmitter wins at every size (section 3.1's argument)")


if __name__ == "__main__":
    main()
