"""Vectorised SSTSP engine.

The reference node is a scalar; *receiver* state is arrays: the active
adjusted-clock segment ``(k, b)``, the pending (unauthenticated) sample,
the two newest authenticated samples, silence counters, and the coarse
re-acquisition accumulators for returning nodes. One beacon period is a
handful of fused numpy expressions over all nodes.

Crypto decisions are the modeled backend's logic inlined: honest and
insider beacons carry genuine chain material (accepted), the interval
safety check and guard time are evaluated per receiver, and delayed
authentication is the one-period sample promotion (with the lost-beacon
key-derivation rule: any pending interval older than the current beacon
releases).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.analysis.metrics import SyncTrace, TraceRecorder
from repro.core.config import SstspConfig
from repro.fastlane.common import ChurnDriver, VectorState, resolve_window
from repro.network.churn import ChurnSchedule
from repro.network.ibss import ScenarioSpec
from repro.obs.counters import count, work_lane
from repro.phy.params import SSTSP_BEACON_AIRTIME_SLOTS
from repro.security.attacks import AttackWindow


@dataclass
class VectorSstspResult:
    """Output of one vectorised SSTSP run."""

    trace: SyncTrace
    successful_beacons: int
    reference_changes: int
    recoveries: int = 0
    events: List[str] = field(default_factory=list)


class _VectorSstsp:
    def __init__(
        self,
        spec: ScenarioSpec,
        config: Optional[SstspConfig],
        keep_values: bool = False,
    ) -> None:
        self._keep_values = keep_values
        self.spec = spec
        has_attacker = spec.attacker is not None
        self.state = VectorState.from_spec(spec, extra_nodes=1 if has_attacker else 0)
        n = self.state.n
        self.n = n
        self.attacker_idx = n - 1 if has_attacker else None
        self.window = (
            AttackWindow.from_seconds(
                spec.attacker.start_s, spec.attacker.end_s, spec.beacon_period_us
            )
            if has_attacker
            else None
        )
        if config is None:
            config = SstspConfig(
                beacon_period_us=spec.beacon_period_us,
                slot_time_us=spec.phy.slot_time_us,
                rx_latency_us=(
                    SSTSP_BEACON_AIRTIME_SLOTS * spec.phy.slot_time_us
                    + spec.phy.propagation_delay_us
                ),
            )
        self.config = config

        # Adjusted clocks: c_i(hw) = k_i * hw + b_i.
        self.k = np.ones(n)
        self.b = np.zeros(n)
        # Pending (unauthenticated) observation per node.
        self.pend_j = np.full(n, -1, dtype=np.int64)
        self.pend_t = np.zeros(n)
        self.pend_ts = np.zeros(n)
        # Two newest authenticated samples per node.
        self.j1 = np.full(n, -1, dtype=np.int64)
        self.t1 = np.zeros(n)
        self.ts1 = np.zeros(n)
        self.j2 = np.full(n, -1, dtype=np.int64)
        self.t2 = np.zeros(n)
        self.ts2 = np.zeros(n)
        self.silent = np.full(n, config.l, dtype=np.int64)
        self.last_ref = np.full(n, -1, dtype=np.int64)
        # Coarse re-acquisition (returning nodes / recovery extension).
        self.in_coarse = np.zeros(n, dtype=bool)
        self.coarse_sum = np.zeros(n)
        self.coarse_cnt = np.zeros(n, dtype=np.int64)
        self.consecutive_rejections = np.zeros(n, dtype=np.int64)
        self.recoveries = 0

        self.ref: Optional[int] = None
        self.reference_changes = 0
        self.successes = 0

        self.slots_rng = self.state.rngs.get("slots")
        self.channel_rng = self.state.rngs.get("channel")
        self.churn = ChurnDriver(
            ChurnSchedule.paper_default(
                list(range(spec.n)), spec.periods, self.state.rngs.get("churn"),
                spec.beacon_period_us,
            )
            if spec.churn == "paper"
            else None
        )
        self.metric_mask = np.ones(n, dtype=bool)
        if self.attacker_idx is not None:
            self.metric_mask[self.attacker_idx] = False
        self.recorder = TraceRecorder(keep_values=keep_values)
        self._hw_buf = np.empty(n)
        self._last_beacon_true = 0.0

    # -- churn hooks ----------------------------------------------------

    def _churn_reference(self) -> int:
        """Reference id for REFERENCE_MARKER churn; the attacker is not a
        legitimate station the scenario can remove."""
        if self.ref is None or self.ref == self.attacker_idx:
            return -1
        return self.ref

    def _on_leave(self, node: int) -> None:
        if self.ref == node:
            self.ref = None

    def _on_return(self, node: int) -> None:
        self.in_coarse[node] = True
        self.coarse_sum[node] = 0.0
        self.coarse_cnt[node] = 0
        self.pend_j[node] = -1
        self.j1[node] = -1
        self.j2[node] = -1
        self.silent[node] = 0
        self.last_ref[node] = -1

    # -- one period -------------------------------------------------------

    def run(self) -> VectorSstspResult:
        cfg = self.config
        spec = self.spec
        bp = cfg.beacon_period_us
        for period in range(1, spec.periods + 1):
            self.churn.apply(
                period,
                self.state.present,
                self._churn_reference,
                on_leave=self._on_leave,
                on_return=self._on_return,
            )
            present = self.state.present
            if self.ref is not None and not present[self.ref]:
                self.ref = None

            attack_active = self.window is not None and self.window.active(period)
            winner, timestamp, tx_true = self._transmitter(period, attack_active)
            if winner is not None:
                self.successes += 1
                self._deliver(period, winner, timestamp, tx_true, attack_active)
                self._last_beacon_true = tx_true
            else:
                eligible = present & ~self.in_coarse
                self.silent[eligible] += 1
                self._last_beacon_true += bp

            # Sample at a fixed phase relative to the *beacon* grid, not the
            # nominal grid: the reference's emission instants drift against
            # nominal at its pace error (~1e-4), so nominal-grid sampling
            # would sweep from 0.9 to 1.9 BP after the last correction over
            # a long run - an artifact, not a protocol property.
            sample_time = self._last_beacon_true + 0.9 * bp
            self.state.hw_at(sample_time, out=self._hw_buf)
            values = self.k * self._hw_buf + self.b
            if attack_active and self.attacker_idx is not None:
                # the attacker's public clock is its claimed (shaved) one;
                # it is excluded from metrics anyway
                values[self.attacker_idx] -= self._shave_total(period)
            # re-acquiring (coarse) nodes are not yet synchronized members
            mask = present & self.metric_mask & ~self.in_coarse
            full = np.where(mask, values, np.nan) if self._keep_values else None
            self.recorder.record(
                sample_time,
                values[mask],
                self.ref if self.ref is not None else -1,
                full_values=full,
            )
        return VectorSstspResult(
            trace=self.recorder.finalize(),
            successful_beacons=self.successes,
            reference_changes=self.reference_changes,
            recoveries=self.recoveries,
            events=self.churn.events,
        )

    # -- helpers ----------------------------------------------------------

    def _shave_total(self, period: int) -> float:
        window = self.window
        if window is None or period < window.start_period:
            return 0.0
        last = min(period, window.end_period - 1)
        return (last - window.start_period) * self.spec.attacker.shave_per_period_us

    def _adjusted_to_true(self, node: int, adjusted_value: float) -> float:
        hw = (adjusted_value - self.b[node]) / self.k[node]
        return (hw - self.state.offsets[node]) / self.state.rates[node]

    def _transmitter(self, period: int, attack_active: bool):
        """Pick this period's transmitter; returns (node, timestamp, tx_true)."""
        cfg = self.config
        nominal = cfg.t0_us + period * cfg.beacon_period_us
        if (
            self.window is not None
            and period == self.window.end_period
            and self.attacker_idx is not None
        ):
            # at window close the attacker rejoins as a listener (coarse
            # re-acquisition): correct whether or not the attack held
            self._on_return(self.attacker_idx)
            if self.ref == self.attacker_idx:
                self.ref = None
        # Candidates: the reference (no delay) plus any synchronized node
        # whose silence counter expired (election) - plus, while attacking,
        # the insider with its lead. All resolved by the shared carrier-
        # sense cascade on skew-exact times: at large N that skew is what
        # lets an election conclude, and it is also what lets honest nodes
        # retake the channel from an attacker whose claimed timeline has
        # receded after guard rejections.
        contenders = self.state.present & ~self.in_coarse & (self.silent >= cfg.l)
        if self.ref is not None:
            contenders[self.ref] = False
        count("mac.slot_draws", self.n)
        slots = self.slots_rng.integers(0, cfg.w + 1, size=self.n).astype(np.float64)
        local = nominal + slots * cfg.slot_time_us
        if self.ref is not None and self.state.present[self.ref]:
            contenders[self.ref] = True
            local[self.ref] = nominal
        if attack_active and self.state.present[self.attacker_idx]:
            attacker = self.attacker_idx
            lead = self.spec.attacker.lead_slots * cfg.slot_time_us
            contenders[attacker] = True
            # scheduled on the *claimed* (shaved) timeline
            local[attacker] = nominal - lead + self._shave_total(period)
        ids = np.flatnonzero(contenders)
        if ids.size == 0:
            return None, 0.0, 0.0
        hw_targets = (local[ids] - self.b[ids]) / self.k[ids]
        tx_times = (hw_targets - self.state.offsets[ids]) / self.state.rates[ids]
        airtime = cfg.rx_latency_us  # airtime + t_p; close enough for busy time
        winner, tx_start, _n_coll = resolve_window(
            ids, tx_times, airtime, self.spec.phy.cca_us
        )
        if winner is None:
            return None, 0.0, 0.0
        hw_tx = self.state.rates[winner] * tx_start + self.state.offsets[winner]
        if winner != self.ref:
            self.ref = winner
            self.reference_changes += 1
            # A new reference free-runs at a hardware-plausible pace: clamp
            # away any transient slewing slope (continuously at hw_tx).
            clamp = cfg.reference_pace_clamp
            k_old = float(self.k[winner])
            k_new = min(max(k_old, 1.0 - clamp), 1.0 + clamp)
            if k_new != k_old:
                c_now = k_old * hw_tx + self.b[winner]
                self.k[winner] = k_new
                self.b[winner] = c_now - k_new * hw_tx
        # timestamp: the winner's adjusted clock at its actual tx start
        # (for the attacking insider: its claimed, shaved clock)
        timestamp = float(self.k[winner] * hw_tx + self.b[winner])
        if attack_active and winner == self.attacker_idx:
            timestamp -= self._shave_total(period)
        return winner, timestamp, tx_start

    def _deliver(
        self,
        period: int,
        winner: int,
        timestamp: float,
        tx_true: float,
        attack_active: bool = False,
    ) -> None:
        cfg = self.config
        spec = self.spec
        n = self.n
        latency = cfg.rx_latency_us
        arrival = tx_true + latency
        hw = self.state.hw_at(arrival)
        local = self.k * hw + self.b

        delivered = self.state.present.copy()
        delivered[winner] = False
        per = spec.phy.packet_error_rate
        count("phy.delivery_attempt", int(delivered.sum()))
        if per > 0.0:
            if spec.phy.loss_model == "per_transmission":
                count("phy.per_draw")
                if self.channel_rng.random() < per:
                    delivered[:] = False
            else:
                count("phy.per_draw", n)
                delivered &= self.channel_rng.random(n) >= per
        jitter = spec.phy.timestamp_jitter_us
        count("phy.ts_jitter_draw", n)
        est = timestamp + latency + self.channel_rng.uniform(-jitter, jitter, size=n)

        # uTESLA interval safety check on each receiver's adjusted clock.
        interval_ok = (
            np.rint((local - cfg.t0_us) / cfg.beacon_period_us).astype(np.int64)
            == period
        )
        guard_ok = np.abs(est - local) <= cfg.guard_fine_us

        # Coarse re-acquisition: returning nodes average raw offsets.
        coarse_rx = delivered & self.in_coarse
        if coarse_rx.any():
            offsets = est - local
            self.coarse_sum[coarse_rx] += offsets[coarse_rx]
            self.coarse_cnt[coarse_rx] += 1
            done = coarse_rx & (self.coarse_cnt >= cfg.coarse_min_samples)
            if done.any():
                self.b[done] += self.coarse_sum[done] / self.coarse_cnt[done]
                self.in_coarse[done] = False
                self.silent[done] = 0

        valid = delivered & ~self.in_coarse & interval_ok & guard_ok
        if attack_active and self.attacker_idx is not None:
            valid[self.attacker_idx] = False  # attacker ignores beacons
        # Optional recovery extension: persistent guard rejections send a
        # node back to the coarse phase (see SstspConfig).
        threshold = cfg.recovery_rejection_threshold
        if threshold is not None:
            rejected = delivered & ~self.in_coarse & interval_ok & ~guard_ok
            self.consecutive_rejections[rejected] += 1
            self.consecutive_rejections[valid] = 0
            recover = rejected & (self.consecutive_rejections >= threshold)
            if recover.any():
                self.recoveries += int(recover.sum())
                self.consecutive_rejections[recover] = 0
                for node in np.flatnonzero(recover):
                    self._on_return(int(node))  # same reset as a re-joiner
        self.silent[valid] = 0
        missed = self.state.present & ~self.in_coarse & ~valid
        missed[winner] = False  # the transmitter does not count itself silent
        self.silent[missed] += 1

        # Reference change: discard samples learned from the old reference.
        changed = valid & (self.last_ref != winner)
        if changed.any():
            self.pend_j[changed] = -1
            self.j1[changed] = -1
            self.j2[changed] = -1
            self.last_ref[changed] = winner

        # Delayed authentication: any pending interval < current releases.
        release = valid & (self.pend_j >= 0) & (self.pend_j < period)
        if release.any():
            self.j2[release] = self.j1[release]
            self.t2[release] = self.t1[release]
            self.ts2[release] = self.ts1[release]
            self.j1[release] = self.pend_j[release]
            self.t1[release] = self.pend_t[release]
            self.ts1[release] = self.pend_ts[release]
        self.pend_j[valid] = period
        self.pend_t[valid] = hw[valid]
        self.pend_ts[valid] = est[valid]

        # The (k, b) update of equations (2)-(5), fully vectorised.
        can_adjust = (
            valid
            & (self.j1 >= 0)
            & (self.j2 >= 0)
            & (period - self.j1 <= cfg.max_sample_age_periods)
            & (self.j1 - self.j2 <= cfg.max_pair_gap_periods)
        )
        can_adjust[winner] = False
        if not can_adjust.any():
            return
        d_ts = self.ts1 - self.ts2
        d_hw = self.t1 - self.t2
        with np.errstate(divide="ignore", invalid="ignore"):
            rate = d_hw / d_ts
            target = cfg.t0_us + (period + cfg.m) * cfg.beacon_period_us + latency
            t_target = self.t1 + rate * (target - self.ts1)
            c_now = self.k * hw + self.b
            k_new = (target - c_now) / (t_target - hw)
            b_new = c_now - k_new * hw
        ok = (
            can_adjust
            & (d_ts > 0)
            & (d_hw > 0)
            & (t_target > hw)
            & (np.abs(k_new - 1.0) <= cfg.k_clamp)
            & np.isfinite(k_new)
        )
        if ok.any():
            self.k[ok] = k_new[ok]
            self.b[ok] = b_new[ok]


def run_sstsp_vectorized(
    spec: ScenarioSpec,
    config: Optional[SstspConfig] = None,
    keep_values: bool = False,
) -> VectorSstspResult:
    """Run the spec's SSTSP scenario on the vector engine.

    ``keep_values`` retains the per-node clock matrix in the trace (used
    by the application-layer evaluations in :mod:`repro.apps`).
    """
    with work_lane("fastlane/sstsp"):
        return _VectorSstsp(spec, config, keep_values=keep_values).run()
