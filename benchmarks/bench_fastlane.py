"""Engine ablation: reference (OO) lane versus vectorised fast lane.

Measures the speedup the numpy engines buy on the same scenario and
asserts that both lanes tell the same story (steady-state errors within a
factor) - the contract that makes the fast lane usable for the paper-
scale figures.
"""

from __future__ import annotations

import pytest

from conftest import paper_rows

from repro.experiments.scenarios import quick_spec
from repro.fastlane import run_sstsp_vectorized, run_tsf_vectorized
from repro.network.ibss import build_network

SPEC = quick_spec(50, seed=3, duration_s=30.0)


def test_sstsp_reference_lane(benchmark):
    result = benchmark.pedantic(
        lambda: build_network("sstsp", SPEC).run(), rounds=1, iterations=1
    )
    benchmark.extra_info["steady_us"] = result.trace.steady_state_error_us()


def test_sstsp_fast_lane(benchmark):
    result = benchmark.pedantic(
        lambda: run_sstsp_vectorized(SPEC), rounds=2, iterations=1
    )
    oo = build_network("sstsp", SPEC).run().trace.steady_state_error_us()
    vec = result.trace.steady_state_error_us()
    assert vec == pytest.approx(oo, rel=0.5)
    paper_rows(
        benchmark,
        "fastlane: SSTSP lanes agree",
        [f"OO steady={oo:.2f}us vec steady={vec:.2f}us"],
    )


def test_tsf_reference_lane(benchmark):
    result = benchmark.pedantic(
        lambda: build_network("tsf", SPEC).run(), rounds=1, iterations=1
    )
    benchmark.extra_info["steady_us"] = result.trace.steady_state_error_us()


def test_tsf_fast_lane(benchmark):
    result = benchmark.pedantic(
        lambda: run_tsf_vectorized(SPEC), rounds=2, iterations=1
    )
    oo = build_network("tsf", SPEC).run().trace.steady_state_error_us()
    vec = result.trace.steady_state_error_us()
    assert vec == pytest.approx(oo, rel=0.6)
    paper_rows(
        benchmark,
        "fastlane: TSF lanes agree",
        [f"OO steady={oo:.2f}us vec steady={vec:.2f}us"],
    )


def test_full_crypto_lane_cost(benchmark):
    """OO lane with real SHA-256 uTESLA: the honest upper bound."""
    small = quick_spec(20, seed=3, duration_s=10.0)
    result = benchmark.pedantic(
        lambda: build_network("sstsp", small, crypto="full").run(),
        rounds=1,
        iterations=1,
    )
    assert result.trace.steady_state_error_us() < 12.0
