#!/usr/bin/env python
"""Why microseconds matter: the paper's motivating applications, evaluated.

The introduction motivates sub-25 us synchronization with three IBSS
workloads - power saving, frequency hopping and slotted QoS. This example
runs the same network twice (TSF vs SSTSP), feeds the measured per-node
clocks into each application model, and prints what the synchronization
difference buys in the application's own currency: energy, airtime,
capacity.

Run:  python examples/applications_demo.py
"""

from repro.apps import (
    FhssConfig,
    PowerSaveConfig,
    TdmaConfig,
    evaluate_fhss,
    evaluate_power_save,
    evaluate_tdma,
)
from repro.experiments.scenarios import quick_spec
from repro.fastlane import run_sstsp_vectorized, run_tsf_vectorized


def main() -> None:
    spec = quick_spec(80, seed=11, duration_s=60.0)
    print("network: 80 stations, 60 s, +-100 ppm oscillators\n")
    tsf = run_tsf_vectorized(spec, keep_values=True).trace
    sstsp = run_sstsp_vectorized(spec, keep_values=True).trace
    # discard the bootstrap transient: applications run on a formed network
    tsf = tsf.window(10e6, 61e6)
    sstsp = sstsp.window(10e6, 61e6)
    print(f"measured sync (steady max clock difference): "
          f"TSF={tsf.steady_state_error_us():.1f} us, "
          f"SSTSP={sstsp.steady_state_error_us():.1f} us\n")

    # -- power save ------------------------------------------------------
    ps_config = PowerSaveConfig(atim_window_us=2_000.0)
    ps_tsf = evaluate_power_save(tsf, ps_config)
    ps_sstsp = evaluate_power_save(sstsp, ps_config)
    print("1) IBSS power save (ATIM window 2 ms, BP 100 ms)")
    for name, report in (("TSF", ps_tsf), ("SSTSP", ps_sstsp)):
        print(f"   {name:<6} wake misalignment median={report.median_misalignment_us:7.1f} us"
              f"  max={report.max_misalignment_us:7.1f} us"
              f"  min safe window={report.min_safe_window_us:7.1f} us"
              f"  duty cycle={report.min_safe_duty_cycle * 100:5.2f}%")
    print(f"   -> SSTSP needs {ps_sstsp.energy_savings_vs(ps_tsf) * 100:.0f}% "
          "less awake time at the minimum safe window\n")

    # -- FHSS --------------------------------------------------------------
    fh_config = FhssConfig(dwell_time_us=10_000.0)
    fh_tsf = evaluate_fhss(tsf, fh_config)
    fh_sstsp = evaluate_fhss(sstsp, fh_config)
    print("2) FHSS hop alignment (dwell 10 ms, 79 channels)")
    for name, report in (("TSF", fh_tsf), ("SSTSP", fh_sstsp)):
        print(f"   {name:<6} worst-pair aligned airtime="
              f"{report.aligned_fraction_worst_pair * 100:6.2f}%"
              f"  frame loss={report.frame_loss_worst_pair * 100:5.2f}%")
    print()

    # -- TDMA / QoS --------------------------------------------------------
    td_config = TdmaConfig(slot_payload_us=1_000.0, guard_us=25.0)
    td_tsf = evaluate_tdma(tsf, td_config)
    td_sstsp = evaluate_tdma(sstsp, td_config)
    print("3) slotted QoS schedule (1 ms payload slots, 25 us guard)")
    for name, report in (("TSF", td_tsf), ("SSTSP", td_sstsp)):
        print(f"   {name:<6} guard violations={report.violation_rate * 100:6.2f}%"
              f"  min guard={report.min_guard_us:7.1f} us"
              f"  capacity efficiency at min guard="
              f"{report.min_guard_efficiency * 100:6.2f}%")
    print(f"   -> SSTSP carries {td_sstsp.capacity_gain_vs(td_tsf) * 100:.1f}% "
          "more payload at safely-provisioned guards")

    assert ps_sstsp.min_safe_window_us < ps_tsf.min_safe_window_us
    assert fh_sstsp.frame_loss_worst_pair < fh_tsf.frame_loss_worst_pair
    assert td_sstsp.min_guard_us < td_tsf.min_guard_us


if __name__ == "__main__":
    main()
