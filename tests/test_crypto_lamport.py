"""Tests for Lamport one-time signatures and the authenticated registry."""

import numpy as np
import pytest

from repro.crypto.lamport import (
    DIGEST_BITS,
    AuthenticatedRegistry,
    LamportSignature,
    LamportSigner,
    verify,
    _anchor_message,
)


@pytest.fixture
def signer(rng):
    return LamportSigner(rng)


class TestLamport:
    def test_sign_verify_round_trip(self, signer):
        signature = signer.sign(b"anchor bytes")
        assert verify(signer.public_key, b"anchor bytes", signature)

    def test_wrong_message_rejected(self, signer):
        signature = signer.sign(b"anchor bytes")
        assert not verify(signer.public_key, b"anchor bytez", signature)

    def test_wrong_key_rejected(self, rng, signer):
        other = LamportSigner(np.random.default_rng(99))
        signature = signer.sign(b"m")
        assert not verify(other.public_key, b"m", signature)

    def test_tampered_signature_rejected(self, signer):
        signature = signer.sign(b"m")
        reveals = list(signature.reveals)
        reveals[7] = b"\x00" * 16
        assert not verify(signer.public_key, b"m", LamportSignature(tuple(reveals)))

    def test_one_time_property_enforced(self, signer):
        signer.sign(b"first")
        with pytest.raises(RuntimeError):
            signer.sign(b"second")

    def test_signature_width(self, signer):
        signature = signer.sign(b"m")
        assert len(signature.reveals) == DIGEST_BITS == 128

    def test_fingerprint_stable(self, signer):
        assert signer.public_key.fingerprint() == signer.public_key.fingerprint()

    def test_malformed_sizes_rejected(self):
        with pytest.raises(ValueError):
            LamportSignature((b"x",))


class TestAuthenticatedRegistry:
    def test_signed_publication_accepted(self, rng):
        registry = AuthenticatedRegistry()
        signer = LamportSigner(rng)
        registry.enroll(5, signer.public_key)
        anchor = b"\xaa" * 16
        signature = signer.sign(_anchor_message(5, anchor, 100))
        registry.publish(5, anchor, 100, signature)
        assert registry.lookup(5) == (anchor, 100)
        assert 5 in registry

    def test_unenrolled_rejected(self, rng):
        registry = AuthenticatedRegistry()
        signer = LamportSigner(rng)
        signature = signer.sign(_anchor_message(5, b"\xaa" * 16, 100))
        with pytest.raises(PermissionError):
            registry.publish(5, b"\xaa" * 16, 100, signature)

    def test_forged_signature_rejected(self, rng):
        registry = AuthenticatedRegistry()
        victim = LamportSigner(rng)
        registry.enroll(5, victim.public_key)
        attacker = LamportSigner(np.random.default_rng(7))
        forged = attacker.sign(_anchor_message(5, b"\xbb" * 16, 100))
        with pytest.raises(PermissionError):
            registry.publish(5, b"\xbb" * 16, 100, forged)

    def test_signature_binds_anchor(self, rng):
        registry = AuthenticatedRegistry()
        signer = LamportSigner(rng)
        registry.enroll(5, signer.public_key)
        signature = signer.sign(_anchor_message(5, b"\xaa" * 16, 100))
        # replaying the signature over a different anchor fails
        with pytest.raises(PermissionError):
            registry.publish(5, b"\xcc" * 16, 100, signature)

    def test_anchor_swap_rejected(self, rng):
        registry = AuthenticatedRegistry()
        a = LamportSigner(np.random.default_rng(1))
        b = LamportSigner(np.random.default_rng(2))
        # a station with two enrolled keys could try swapping anchors; the
        # registry pins the first published anchor regardless
        registry.enroll(5, a.public_key)
        registry.publish(5, b"\xaa" * 16, 100, a.sign(_anchor_message(5, b"\xaa" * 16, 100)))
        registry._public_keys[5] = b.public_key  # simulate re-enrollment abuse
        with pytest.raises(ValueError):
            registry.publish(5, b"\xdd" * 16, 100, b.sign(_anchor_message(5, b"\xdd" * 16, 100)))

    def test_conflicting_enrollment_rejected(self, rng):
        registry = AuthenticatedRegistry()
        registry.enroll(5, LamportSigner(np.random.default_rng(1)).public_key)
        with pytest.raises(ValueError):
            registry.enroll(5, LamportSigner(np.random.default_rng(2)).public_key)


class TestBackendIntegration:
    def test_full_backend_with_authenticated_anchors(self, rng):
        """End to end: Lamport-signed anchor publication feeding uTESLA."""
        from repro.core.backend import FullCryptoBackend
        from repro.crypto.mutesla import IntervalSchedule

        schedule = IntervalSchedule(0.0, 100_000.0, 64)
        backend = FullCryptoBackend(schedule, rng, authenticated_anchors=True)
        backend.register_node(1)
        assert 1 in backend._auth_registry
        assert backend._auth_registry.lookup(1) == backend.registry.lookup(1)
        # the uTESLA pipeline runs unchanged on top
        frame1 = backend.make_frame(1, 1, 100_000.0)
        assert backend.process(9, frame1, 100_000.0).accepted
        frame2 = backend.make_frame(1, 2, 200_000.0)
        assert backend.process(9, frame2, 200_000.0).authenticated_intervals == (1,)
