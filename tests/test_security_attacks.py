"""Unit and integration tests for the attacker models."""

import numpy as np
import pytest

from repro.clocks.oscillator import HardwareClock, TsfTimer
from repro.core.backend import ModeledCryptoBackend
from repro.core.config import SstspConfig
from repro.core.sstsp import SstspProtocol, SstspState
from repro.crypto.mutesla import IntervalSchedule
from repro.network.ibss import ScenarioSpec, build_network
from repro.protocols.base import ClockKind, RxContext
from repro.protocols.tsf import TsfConfig
from repro.security.attacks import (
    AttackWindow,
    ExternalForger,
    ReplayAttacker,
    SstspInsiderAttacker,
    TsfChannelAttacker,
    schedule_pulse_delay_jam,
)
from repro.sim.units import S

BP = 100_000.0


class TestAttackWindow:
    def test_half_open(self):
        window = AttackWindow(10, 20)
        assert window.active(10) and window.active(19)
        assert not window.active(9) and not window.active(20)

    def test_from_seconds(self):
        window = AttackWindow.from_seconds(400.0, 600.0)
        assert window.start_period == 4000
        assert window.end_period == 6000

    def test_validation(self):
        with pytest.raises(ValueError):
            AttackWindow(5, 5)


class TestTsfChannelAttacker:
    def make(self, window=None, **kw):
        timer = TsfTimer(HardwareClock())
        window = window if window is not None else AttackWindow(10, 20)
        return TsfChannelAttacker(
            9, timer, TsfConfig(), np.random.default_rng(0), window=window, **kw
        )

    def test_honest_outside_window(self):
        attacker = self.make()
        intent = attacker.begin_period(5)
        assert intent.local_time >= 5 * BP  # backoff applied

    def test_leads_inside_window(self):
        attacker = self.make(lead_slots=2.0)
        intent = attacker.begin_period(10)
        assert intent.local_time == pytest.approx(10 * BP - 18.0)
        assert intent.clock is ClockKind.TSF

    def test_pace_boost_accumulates(self):
        attacker = self.make(pace_boost_us_per_period=30.0)
        t10 = attacker.begin_period(10).local_time
        t15 = attacker.begin_period(15).local_time
        assert (t15 - t10) == pytest.approx(5 * BP - 150.0)

    def test_erroneous_timestamp_is_slower(self):
        attacker = self.make(error_offset_us=2_000.0)
        frame = attacker.make_frame(hw_time=10 * BP, period=10)
        assert frame.timestamp_us == pytest.approx(10 * BP - 2_000.0)
        assert attacker.attack_beacons == 1

    def test_ignores_beacons_while_attacking(self):
        attacker = self.make()
        rx = RxContext(10 * BP, 10 * BP, 10 * BP + 5_000.0, period=10)
        attacker.on_beacon(None, rx)
        assert attacker.adoptions == 0
        rx = RxContext(5 * BP, 5 * BP, 5 * BP + 5_000.0, period=5)
        attacker.on_beacon(None, rx)
        assert attacker.adoptions == 1


@pytest.fixture
def backend():
    schedule = IntervalSchedule(0.0, BP, 512)
    backend = ModeledCryptoBackend(schedule)
    for node in range(10):
        backend.register_node(node)
    return backend


class TestSstspInsiderAttacker:
    def make(self, backend, window=None, **kw):
        window = window if window is not None else AttackWindow(10, 20)
        return SstspInsiderAttacker(
            9, SstspConfig(), backend, np.random.default_rng(0), window=window, **kw
        )

    def test_shave_starts_at_zero(self, backend):
        attacker = self.make(backend, shave_per_period_us=40.0)
        assert attacker._shave_total(10) == 0.0
        assert attacker._shave_total(12) == 80.0
        assert attacker._shave_total(9) == 0.0

    def test_claims_reference_role(self, backend):
        attacker = self.make(backend, lead_slots=2.0)
        intent = attacker.begin_period(10)
        assert attacker.state is SstspState.REFERENCE
        assert intent.local_time == pytest.approx(10 * BP - 18.0)

    def test_frames_carry_shaved_claimed_clock(self, backend):
        attacker = self.make(backend, shave_per_period_us=40.0)
        attacker.begin_period(12)
        frame = attacker.make_frame(hw_time=12 * BP, period=12)
        assert frame.timestamp_us == pytest.approx(12 * BP - 80.0)
        # and the frame passes the real pipeline (valid chain material)
        verdict = backend.process(1, frame, local_time_us=12 * BP)
        assert verdict.accepted

    def test_rejoins_after_window(self, backend):
        attacker = self.make(backend, shave_per_period_us=40.0)
        for period in range(10, 20):
            attacker.begin_period(period)
        assert attacker.state is SstspState.REFERENCE
        attacker.begin_period(20)  # first post-window call rejoins
        assert attacker._rejoined
        # re-acquires network time like a returning node: coarse phase
        assert attacker.state is SstspState.COARSE

    def test_public_clock_is_claimed_clock(self, backend):
        attacker = self.make(backend, shave_per_period_us=40.0)
        attacker.begin_period(15)
        public = attacker.synchronized_time(15 * BP)
        assert public == pytest.approx(15 * BP - 5 * 40.0)


class TestExternalForger:
    def test_forged_frames_always_rejected(self, backend):
        forger = ExternalForger(
            99, SstspConfig(), backend, np.random.default_rng(0),
            window=AttackWindow(5, 10),
        )
        frame = forger.make_frame(hw_time=5 * BP, period=5)
        verdict = backend.process(1, frame, local_time_us=5 * BP)
        assert not verdict.accepted
        assert verdict.reason == "unknown_sender"

    def test_impersonation_rejected_via_bad_key(self, backend):
        forger = ExternalForger(
            99, SstspConfig(), backend, np.random.default_rng(0),
            window=AttackWindow(5, 10), impersonate=2,
        )
        frame = forger.make_frame(hw_time=5 * BP, period=5)
        assert frame.sender == 2
        verdict = backend.process(1, frame, local_time_us=5 * BP)
        assert not verdict.accepted
        assert verdict.reason == "bad_key"

    def test_passive_time_tracking(self, backend):
        forger = ExternalForger(
            99, SstspConfig(), backend, np.random.default_rng(0),
            window=AttackWindow(5, 10),
        )
        rx = RxContext(3 * BP, 3 * BP, 3 * BP + 500.0, period=3)
        forger.on_beacon(None, rx)
        assert forger.clock.read_current(3 * BP) == pytest.approx(3 * BP + 500.0)


class TestReplayAttacker:
    def test_replays_are_rejected_as_stale(self, backend):
        config = SstspConfig()
        replayer = ReplayAttacker(
            5, config, backend, np.random.default_rng(0),
            window=AttackWindow(8, 12), delay_periods=3,
        )
        victim = SstspProtocol(1, config, backend, np.random.default_rng(1))
        # replayer captures the reference's beacon of interval 5
        original = backend.make_frame(2, 5, 5 * BP)
        rx = RxContext(5 * BP, 5 * BP, 5 * BP + 64.0, period=5)
        replayer.on_beacon(original, rx)
        assert replayer.begin_period(8) is not None
        frame = replayer.make_frame(hw_time=8 * BP, period=8)
        assert frame.interval == 5  # a genuine but stale frame
        victim.on_beacon(frame, RxContext(8 * BP, 8 * BP, 8 * BP + 64.0, period=8))
        assert victim.stats.rejections_by_reason == {"unsafe_interval": 1}
        assert replayer.replayed_frames == 1


class TestPulseDelayJam:
    def test_jam_windows_cover_beacon_instants(self, rng):
        from repro.phy.channel import BroadcastChannel
        from repro.phy.params import PhyParams

        channel = BroadcastChannel(PhyParams(), rng)
        schedule_pulse_delay_jam(
            channel, AttackWindow(10, 12), guard_band_us=1_000.0
        )
        assert channel.is_jammed(10 * BP)
        assert channel.is_jammed(11 * BP - 500.0)
        assert not channel.is_jammed(12 * BP + 2_000.0)

    def test_pulse_delay_attack_is_contained(self):
        """Victims miss the jammed genuine beacons and reject the delayed
        replays: worst case is a brief outage, never a wrong clock."""
        spec = ScenarioSpec(n=10, seed=3, duration_s=20.0)
        runner = build_network("sstsp", spec)
        # jam the genuine beacons for 1 s starting at 10 s
        schedule_pulse_delay_jam(
            runner.channel, AttackWindow(100, 110), guard_band_us=5_000.0
        )
        result = runner.run()
        trace = result.trace
        outage = float(trace.window(10 * S, 12 * S).max_diff_us.max())
        recovered = float(trace.window(15 * S, 20 * S).max_diff_us.max())
        assert outage < 150.0   # drift-bounded outage, no injected error
        assert recovered < 15.0
