"""Membership churn.

The paper's section 5 scenario: 5% of the stations leave at every
``k * 200 s`` and return 50 s later; additionally, the current *reference*
node leaves at 300 s, 500 s and 800 s (to exercise reference re-election)
and likewise returns after 50 s. A :class:`ChurnSchedule` pre-computes the
leave/return events; the special node id :data:`REFERENCE_MARKER` is
resolved by the runner at event time to whoever currently is the
reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.units import S

#: Placeholder node id meaning "whoever is the reference when this fires".
REFERENCE_MARKER: int = -1


@dataclass(frozen=True)
class ChurnEvent:
    """One churn action, applied at the start of ``period``."""

    period: int
    action: str  # "leave" | "return"
    node_ids: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.action not in ("leave", "return"):
            raise ValueError(f"unknown churn action {self.action!r}")


class ChurnSchedule:
    """An ordered collection of churn events, indexed by period."""

    def __init__(self, events: Iterable[ChurnEvent] = ()) -> None:
        self._by_period: dict = {}
        for event in events:
            self._by_period.setdefault(event.period, []).append(event)

    def add(self, event: ChurnEvent) -> None:
        """Append one event."""
        self._by_period.setdefault(event.period, []).append(event)

    def events_for(self, period: int) -> List[ChurnEvent]:
        """Events to apply at the start of ``period``."""
        return self._by_period.get(period, [])

    def periods(self) -> List[int]:
        """Sorted periods having events."""
        return sorted(self._by_period)

    def __len__(self) -> int:
        return sum(len(v) for v in self._by_period.values())

    def merged_with(self, other: "ChurnSchedule") -> "ChurnSchedule":
        """A new schedule containing this schedule's events plus ``other``'s.

        Within a period, this schedule's events come first (insertion
        order is preserved on both sides).
        """
        merged = ChurnSchedule()
        for schedule in (self, other):
            for period in schedule.periods():
                for event in schedule.events_for(period):
                    merged.add(event)
        return merged

    @classmethod
    def paper_default(
        cls,
        node_ids: Sequence[int],
        total_periods: int,
        rng: np.random.Generator,
        beacon_period_us: float = 0.1 * S,
        leave_fraction: float = 0.05,
        leave_every_s: float = 200.0,
        away_s: float = 50.0,
        reference_leave_times_s: Sequence[float] = (300.0, 500.0, 800.0),
    ) -> "ChurnSchedule":
        """The section 5 churn pattern, scaled to any horizon.

        Group departures happen at ``k * leave_every_s``; each group is an
        independent random ``leave_fraction`` sample of the stations. The
        reference departures use :data:`REFERENCE_MARKER`.
        """
        schedule = cls()
        n = len(node_ids)

        def period_of(t_s: float) -> int:
            return int(round(t_s * S / beacon_period_us))

        away_periods = max(1, period_of(away_s))
        # Station id -> first period it is back (tracked so that when
        # away_s > leave_every_s a station still away cannot be sampled
        # into the next departure group, which would silently mispair its
        # leave/return events).
        away_until: dict = {}
        k = 1
        while True:
            leave_period = period_of(k * leave_every_s)
            if leave_period >= total_periods:
                break
            eligible = np.asarray(
                [i for i in node_ids if away_until.get(i, 0) <= leave_period]
            )
            group_size = max(1, int(round(n * leave_fraction)))
            group_size = min(group_size, len(eligible))
            if group_size == 0:
                k += 1
                continue
            group = tuple(
                int(i)
                for i in rng.choice(eligible, size=group_size, replace=False)
            )
            schedule.add(ChurnEvent(leave_period, "leave", group))
            return_period = leave_period + away_periods
            for i in group:
                away_until[i] = return_period
            if return_period < total_periods:
                schedule.add(ChurnEvent(return_period, "return", group))
            k += 1

        for t_s in reference_leave_times_s:
            leave_period = period_of(t_s)
            if leave_period >= total_periods:
                continue
            schedule.add(ChurnEvent(leave_period, "leave", (REFERENCE_MARKER,)))
            return_period = leave_period + away_periods
            if return_period < total_periods:
                # The marker is resolved at leave time; the runner records
                # the resolved id so the same station returns.
                schedule.add(ChurnEvent(return_period, "return", (REFERENCE_MARKER,)))
        return schedule


class ChurnApplier:
    """Stateful churn semantics shared by every lane.

    All three engines (reference, vectorised, multihop) used to carry
    their own copy of the same three rules; this class is the single
    implementation:

    * a ``leave`` only fires for a node that is present, a ``return``
      only for one that is absent (double-booked events are dropped);
    * :data:`REFERENCE_MARKER` leaves resolve to the current reference
      at fire time and are remembered in a FIFO so the matching
      ``return`` brings the *same* station back;
    * a marker leave that resolves to an excluded station (e.g. an
      attacker masquerading as reference) is dropped without consuming
      the FIFO.

    The applier owns only membership bookkeeping; what "leaving" does to
    a node (presence flags, protocol callbacks, event logs) is supplied
    by the caller.
    """

    def __init__(self, schedule: Optional[ChurnSchedule]) -> None:
        self.schedule = schedule
        self._marker_left: List[int] = []

    @property
    def marker_left(self) -> List[int]:
        """FIFO of resolved reference ids that left and have not returned."""
        return self._marker_left

    def resolve_marker(
        self,
        node_id: int,
        action: str,
        current_reference: Callable[[], Optional[int]],
        exclude: Optional[Callable[[int], bool]] = None,
    ) -> Optional[int]:
        """Resolve :data:`REFERENCE_MARKER` (a real id passes through)."""
        if node_id != REFERENCE_MARKER:
            return node_id
        if action == "leave":
            ref = current_reference()
            if ref is None or ref < 0:
                return None
            if exclude is not None and exclude(ref):
                return None
            self._marker_left.append(ref)
            return ref
        if self._marker_left:
            return self._marker_left.pop(0)
        return None

    def apply(
        self,
        period: int,
        current_reference: Callable[[], Optional[int]],
        is_present: Callable[[int], Optional[bool]],
        leave: Callable[[int], None],
        ret: Callable[[int], None],
        exclude: Optional[Callable[[int], bool]] = None,
    ) -> None:
        """Apply the events due at ``period``.

        ``is_present`` returns None for unknown node ids (the event is
        dropped); ``leave`` / ``ret`` perform the engine-specific state
        change for ids that pass the presence gate.
        """
        if self.schedule is None:
            return
        for event in self.schedule.events_for(period):
            for node_id in event.node_ids:
                resolved = self.resolve_marker(
                    node_id, event.action, current_reference, exclude
                )
                if resolved is None:
                    continue
                present = is_present(resolved)
                if present is None:
                    continue
                if event.action == "leave" and present:
                    leave(resolved)
                elif event.action == "return" and not present:
                    ret(resolved)
