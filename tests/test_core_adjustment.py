"""Unit tests for the (k, b) adjustment math and the lemma calculators."""


import pytest

from repro.core.adjustment import (
    AdjustmentSample,
    DegenerateSamplesError,
    error_bound_after_change,
    optimal_m,
    paper_closed_form,
    periods_to_converge,
    predicted_error_ratio,
    reference_change_ratio,
    solve_adjustment,
)

BP = 100_000.0


def make_samples(t0=1_000_000.0, rate=1.0001, offset=30.0):
    """Two consecutive samples of a reference seen through a skewed clock."""
    ts1, ts2 = t0 + BP, t0
    older = AdjustmentSample(1, rate * ts2 + offset, ts2)
    newest = AdjustmentSample(2, rate * ts1 + offset, ts1)
    return newest, older


class TestSolveAdjustment:
    def test_matches_paper_closed_form(self):
        newest, older = make_samples()
        t_now = newest.local_hw_time + BP * 1.0001
        target = older.ref_timestamp + 5 * BP
        k, b = solve_adjustment(1.0, 0.0, t_now, newest, older, target)
        kp, bp_ = paper_closed_form(
            1.0,
            0.0,
            t_now,
            newest.local_hw_time,
            newest.ref_timestamp,
            older.local_hw_time,
            older.ref_timestamp,
            target,
        )
        assert k == pytest.approx(kp, rel=1e-12)
        assert b == pytest.approx(bp_, rel=1e-9)

    def test_convergence_point_is_hit(self):
        newest, older = make_samples(rate=0.99995, offset=-12.0)
        t_now = newest.local_hw_time + BP * 0.99995
        target = older.ref_timestamp + 4 * BP
        k, b = solve_adjustment(1.0, 50.0, t_now, newest, older, target)
        # at the extrapolated hardware time of the target, c == target
        rate = (newest.local_hw_time - older.local_hw_time) / (
            newest.ref_timestamp - older.ref_timestamp
        )
        t_target = newest.local_hw_time + rate * (target - newest.ref_timestamp)
        assert k * t_target + b == pytest.approx(target, abs=1e-6)

    def test_continuity_at_t_now(self):
        newest, older = make_samples()
        t_now = newest.local_hw_time + BP
        prev_k, prev_b = 1.00002, -7.5
        k, b = solve_adjustment(prev_k, prev_b, t_now, newest, older, older.ref_timestamp + 400_000.0)
        assert k * t_now + b == pytest.approx(prev_k * t_now + prev_b, abs=1e-6)

    def test_perfectly_synced_clock_keeps_slope(self):
        # if the local clock already equals the reference, k stays ~rate
        newest, older = make_samples(rate=1.0, offset=0.0)
        t_now = newest.local_hw_time + BP
        k, b = solve_adjustment(1.0, 0.0, t_now, newest, older, older.ref_timestamp + 400_000.0)
        assert k == pytest.approx(1.0, abs=1e-12)
        assert b == pytest.approx(0.0, abs=1e-3)

    def test_error_shrinks_geometrically(self):
        # iterate the update against an ideal reference and check Lemma 1
        rate, offset = 1.00008, 40.0
        k, b = 1.0, 80.0  # initial adjusted clock is 80 us off
        m = 2
        samples = []
        errors = []
        for j in range(1, 25):
            ts = j * BP + 1_000_000.0
            hw = rate * ts + offset
            samples.append(AdjustmentSample(j, hw, ts))
            if len(samples) >= 3:
                newest, older = samples[-2], samples[-3]
                t_now = hw
                target = (j + m) * BP + 1_000_000.0
                k, b = solve_adjustment(k, b, t_now, newest, older, target)
            errors.append(abs(k * hw + b - ts))
        assert errors[-1] < 0.01
        assert errors[-1] < errors[4] / 100

    def test_degenerate_equal_timestamps(self):
        s = AdjustmentSample(1, 100.0, 50.0)
        with pytest.raises(DegenerateSamplesError):
            solve_adjustment(1.0, 0.0, 300.0, s, AdjustmentSample(0, 90.0, 50.0), 1000.0)

    def test_degenerate_non_monotone_hw(self):
        newest = AdjustmentSample(2, 100.0, 200.0)
        older = AdjustmentSample(1, 150.0, 100.0)
        with pytest.raises(DegenerateSamplesError):
            solve_adjustment(1.0, 0.0, 300.0, newest, older, 1000.0)

    def test_degenerate_target_in_past(self):
        newest, older = make_samples()
        t_now = newest.local_hw_time + BP
        with pytest.raises(DegenerateSamplesError):
            solve_adjustment(1.0, 0.0, t_now, newest, older, older.ref_timestamp - 10 * BP)

    def test_paper_closed_form_zero_denominator(self):
        with pytest.raises(DegenerateSamplesError):
            paper_closed_form(1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 1.0)


class TestLemma1:
    def test_ratio_below_one_for_m_greater_1(self):
        for m in [2, 3, 4, 5]:
            assert predicted_error_ratio(m, BP, d_us=500.0) < 1.0

    def test_m1_requires_small_delay(self):
        assert predicted_error_ratio(1, BP, d_us=100.0) == pytest.approx(100.0 / (BP - 100.0))

    def test_larger_m_converges_slower(self):
        ratios = [predicted_error_ratio(m, BP, 0.0) for m in range(2, 6)]
        assert ratios == sorted(ratios)

    def test_periods_to_converge(self):
        n = periods_to_converge(112.0, 25.0, m=2, beacon_period_us=BP)
        assert 1 <= n <= 10
        assert periods_to_converge(10.0, 25.0, m=2, beacon_period_us=BP) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            predicted_error_ratio(0, BP, 0.0)
        with pytest.raises(ValueError):
            predicted_error_ratio(2, BP, -1.0)


class TestLemma2:
    def test_optimal_m_is_l_plus_3(self):
        assert optimal_m(1) == 4
        assert reference_change_ratio(m=4, l=1) == pytest.approx(0.0)

    def test_bounded_by_l_plus_2_at_m_1(self):
        l = 1
        assert abs(reference_change_ratio(m=1, l=l)) == pytest.approx(l + 2)

    def test_error_bound_after_change(self):
        bound = error_bound_after_change(10.0, m=4, l=1, epsilon_us=5.0)
        assert bound == pytest.approx(10.0)  # ratio 0 => only 2 * epsilon
        bound = error_bound_after_change(10.0, m=1, l=1, epsilon_us=5.0)
        assert bound == pytest.approx(3 * 10.0 + 10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            reference_change_ratio(0, 1)
        with pytest.raises(ValueError):
            optimal_m(0)
