"""``sstsp-experiment``: run any (or all) paper experiments.

Every experiment CLI shares the sweep-execution flags installed by
:func:`repro.sweep.add_sweep_arguments` — ``--workers``, caching,
tracing/profiling, and the resilience set (``--retries``,
``--job-timeout``, ``--on-error``, ``--resume``); see
``docs/simulation.md`` ("Sweep resilience").

Examples
--------
::

    sstsp-experiment fig1 --quick
    sstsp-experiment table1
    sstsp-experiment table1 --workers 4 --on-error quarantine --retries 2
    sstsp-experiment table1 --resume
    sstsp-experiment all --quick
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List

from repro.experiments import (
    ablations,
    chaos,
    fig1,
    fig2,
    fig3,
    fig4,
    lemmas,
    multihop,
    overhead,
    related,
    shootout,
    table1,
)

EXPERIMENTS: Dict[str, Callable[[List[str]], None]] = {
    "fig1": fig1.main,
    "fig2": fig2.main,
    "fig3": fig3.main,
    "fig4": fig4.main,
    "table1": table1.main,
    "multihop": multihop.main,
    "shootout": shootout.main,
    "overhead": overhead.main,
    "lemmas": lemmas.main,
    "related": related.main,
    "ablations": ablations.main,
    "chaos": chaos.main,
}


def main(argv=None) -> int:
    """Dispatch one (or all) experiment reproductions."""
    argv = list(sys.argv[1:] if argv is None else argv)
    parser = argparse.ArgumentParser(
        prog="sstsp-experiment",
        description="Reproduce the SSTSP paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS)
        + ["all", "analyze", "bench-gate", "lint", "profile", "trace"],
        help="which table/figure to regenerate ('analyze' rolls sweep "
        "output into summary tables with CIs; 'bench-gate' compares a "
        "BENCH_*.json against a baseline; 'lint' runs reprolint, "
        "the determinism/unit-safety static analysis; 'profile' runs a "
        "job under spans + deterministic work counters; 'trace' inspects "
        "event-trace JSONL files)",
    )
    args, passthrough = parser.parse_known_args(argv)
    if args.experiment == "profile":
        from repro.obs.profilecli import main as profile_main

        return profile_main(passthrough)
    if args.experiment == "lint":
        from repro.lint.cli import main as lint_main

        return lint_main(passthrough)
    if args.experiment == "trace":
        from repro.obs.cli import main as trace_main

        return trace_main(passthrough)
    if args.experiment == "analyze":
        from repro.analysis.cli import main as analyze_main

        return analyze_main(passthrough)
    if args.experiment == "bench-gate":
        from repro.analysis.benchgate import main as benchgate_main

        return benchgate_main(passthrough)
    if args.experiment == "all":
        for name in (
            "fig1", "fig2", "table1", "fig3", "fig4",
            "overhead", "lemmas", "related", "ablations",
        ):
            print(f"\n{'#' * 70}\n# {name}\n{'#' * 70}")
            EXPERIMENTS[name](passthrough)
        return 0
    EXPERIMENTS[args.experiment](passthrough)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
