"""Standing multi-hop protocol shootout through the sweep orchestrator.

Runs every registered :class:`~repro.protocols.multihop_base.MultiHopProtocol`
(the paper's SSTSP relaying plus the related-work competitors: Huan-style
beaconless one-way dissemination and Hu–Servetto-style cooperative spatial
averaging) across the shared multi-hop scenario suite
(:data:`repro.experiments.multihop.DEFAULT_SCENARIOS`), optionally over
several seed replicas.

Each (protocol, scenario, replica) cell is one content-addressed
:class:`~repro.sweep.spec.JobSpec`, so the shootout inherits the
orchestrator's contract: ``--workers N`` fans cells across processes,
``--cache-dir`` makes reruns cache hits, and the ``results/shootout.csv``
bytes are identical at any worker count. ``repro analyze shootout`` rolls
the replicas up into per-(protocol, scenario) confidence intervals.

Columns beyond the accuracy metrics quantify what each scheme pays for
its accuracy: beacon count, bytes on air (count x the protocol's own
frame size), slot-quantised airtime, and a deterministic convergence
time (earliest sample from which the network-wide error stays under
``CONVERGENCE_THRESHOLD_US`` for the rest of the run).
"""

from __future__ import annotations

import argparse
import os
from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.experiments.multihop import DEFAULT_SCENARIOS
from repro.experiments.report import ensure_results_dir, format_table
from repro.sweep import (
    JobSpec,
    SweepOptions,
    add_sweep_arguments,
    run_sweep,
    sweep_options_from_args,
)

#: A run "converged" at the earliest sample from which every later
#: network-wide max-difference sample stays below this bound. 50 us sits
#: an order of magnitude above the paper's 2*epsilon single-hop bound but
#: well below the initial-offset transient, so it separates "locked on"
#: from "still hunting" for every scheme in the suite.
CONVERGENCE_THRESHOLD_US: float = 50.0

#: Per-replica seed spacing (scenario seeds stay well clear of each other).
_REPLICA_SEED_STRIDE = 101

_CSV_COLUMNS = (
    "protocol,scenario,replica,seed,nodes,max_hop,final_present,"
    "root_changes,beacons_sent,collisions,beacon_bytes,bytes_on_air,"
    "airtime_on_air_us,convergence_time_s,steady_state_error_us,"
    "peak_error_us,hop1_error_us,deepest_hop_error_us"
)


def convergence_time_s(
    times_us: np.ndarray,
    max_diff_us: np.ndarray,
    threshold_us: float = CONVERGENCE_THRESHOLD_US,
) -> Optional[float]:
    """Earliest sample time (seconds) from which every subsequent sample
    is finite and below ``threshold_us``; ``None`` if the trace never
    settles (including an empty trace)."""
    n = len(max_diff_us)
    if n == 0:
        return None
    ok = np.isfinite(max_diff_us) & (max_diff_us <= threshold_us)
    if not bool(ok[-1]):
        return None
    # last index where the condition fails, +1 = start of the stable tail
    bad = np.nonzero(~ok)[0]
    start = int(bad[-1]) + 1 if len(bad) else 0
    return float(times_us[start]) / 1e6


def job_shootout_run(job: JobSpec) -> Dict[str, Any]:
    """Execute one (protocol, scenario, replica) cell.

    Mirrors :func:`repro.experiments.multihop.job_multihop_run` (the
    ``protocol`` param rides through ``_SPEC_PASSTHROUGH`` into
    ``MultiHopSpec``) but keeps the result object in hand so the overhead
    and convergence columns come from the same run — nothing re-executes.
    """
    from repro.multihop.runner import MultiHopSpec, run_multihop
    from repro.protocols.multihop_base import resolve_multihop_protocol

    from repro.experiments.multihop import _SPEC_PASSTHROUGH, _build_topology

    params = job.params_dict()
    topology = _build_topology(params, job)
    overrides = {
        key: params[key] for key in _SPEC_PASSTHROUGH if key in params
    }
    spec = MultiHopSpec(topology=topology, **overrides)
    result = run_multihop(spec)
    trace = result.trace
    protocol_cls = resolve_multihop_protocol(spec.protocol)
    per_hop = dict(result.per_hop_error_us)
    hop1 = per_hop.get(1)
    deepest = per_hop[max(per_hop)] if per_hop else None
    beacon_bytes = protocol_cls.beacon_bytes
    airtime_us = spec.airtime_slots * spec.slot_time_us
    return {
        "protocol": spec.protocol,
        "scenario": params.get("name", job.kind),
        "replica": int(params.get("replica", 0)),
        "seed": spec.seed,
        "nodes": topology.n,
        "max_hop": result.max_hop(),
        "final_present": int(trace.present_counts[-1]) if len(trace) else 0,
        "root_changes": result.root_changes,
        "beacons_sent": result.beacons_sent,
        "collisions": result.collisions_at_receivers,
        "beacon_bytes": beacon_bytes,
        "bytes_on_air": result.beacons_sent * beacon_bytes,
        "airtime_on_air_us": result.beacons_sent * airtime_us,
        "convergence_time_s": convergence_time_s(
            trace.times_us, trace.max_diff_us
        ),
        "steady_state_error_us": trace.steady_state_error_us(),
        "peak_error_us": trace.peak_error_us(),
        "hop1_error_us": hop1,
        "deepest_hop_error_us": deepest,
    }


def shootout_specs(
    scenarios: Sequence[Mapping[str, Any]] = DEFAULT_SCENARIOS,
    protocols: Optional[Sequence[str]] = None,
    seed: int = 1,
    quick: bool = False,
    replicas: int = 1,
) -> List[JobSpec]:
    """Freeze the protocol x scenario x replica grid into sweep specs.

    Row order (protocol-major, then scenario, then replica) is the CSV
    row order — the orchestrator returns values in spec order regardless
    of worker count, which is what keeps the bytes stable.
    """
    from repro.protocols.multihop_base import available_multihop_protocols

    if protocols is None:
        protocols = available_multihop_protocols()
    if replicas < 1:
        raise ValueError(f"replicas must be >= 1, got {replicas}")
    specs = []
    for protocol in protocols:
        for scenario in scenarios:
            for replica in range(replicas):
                params = dict(scenario)
                params["protocol"] = protocol
                params["replica"] = replica
                params["seed"] = (
                    int(params.get("seed", 1)) + replica * _REPLICA_SEED_STRIDE
                )
                if quick:
                    params["duration_s"] = min(
                        float(params.get("duration_s", 30.0)), 8.0
                    )
                specs.append(JobSpec.make("shootout_run", params, root_seed=seed))
    return specs


def run(
    scenarios: Sequence[Mapping[str, Any]] = DEFAULT_SCENARIOS,
    protocols: Optional[Sequence[str]] = None,
    seed: int = 1,
    quick: bool = False,
    replicas: int = 1,
    sweep: Optional[SweepOptions] = None,
) -> List[Dict[str, Any]]:
    """Run the shootout grid; returns payloads in spec order."""
    specs = shootout_specs(
        scenarios, protocols=protocols, seed=seed, quick=quick, replicas=replicas
    )
    return run_sweep("shootout", specs, sweep).values


def save_rows_csv(rows: Sequence[Dict[str, Any]], name: str = "shootout") -> str:
    """Write the shootout payloads as CSV; ``repr`` floats keep the bytes
    a pure function of the values (the parallel-determinism contract)."""
    path = os.path.join(ensure_results_dir(), f"{name}.csv")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(rows_to_csv(rows))
    return path


def rows_to_csv(rows: Sequence[Dict[str, Any]]) -> str:
    """Render payload rows to the canonical CSV text."""
    lines = [_CSV_COLUMNS]
    for row in rows:
        cells = []
        for column in _CSV_COLUMNS.split(","):
            value = row[column]
            if value is None:
                cells.append("")
            elif isinstance(value, float):
                cells.append(repr(value))
            else:
                cells.append(str(value))
        lines.append(",".join(cells))
    return "\n".join(lines) + "\n"


def main(argv=None) -> None:
    """CLI entry point: ``python -m repro shootout``."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="trim scenario durations to ~8 simulated seconds",
    )
    parser.add_argument("--seed", type=int, default=1, help="sweep root seed")
    parser.add_argument(
        "--replicas", type=int, default=1,
        help="seed replicas per (protocol, scenario) cell",
    )
    parser.add_argument(
        "--protocols", default=None,
        help="comma-separated protocol subset (default: every registered one)",
    )
    add_sweep_arguments(parser)
    args = parser.parse_args(argv)

    protocols = (
        [p.strip() for p in args.protocols.split(",") if p.strip()]
        if args.protocols
        else None
    )
    rows = run(
        protocols=protocols,
        seed=args.seed,
        quick=args.quick,
        replicas=args.replicas,
        sweep=sweep_options_from_args(args),
    )
    csv_path = save_rows_csv(rows)
    print("=== Multi-hop protocol shootout ===")
    print()
    table_rows = []
    for row in rows:
        conv = row["convergence_time_s"]
        deepest = row["deepest_hop_error_us"]
        table_rows.append(
            (
                row["protocol"],
                row["scenario"],
                row["replica"],
                row["max_hop"],
                f"{row['steady_state_error_us']:.2f} us",
                f"{deepest:.2f} us" if deepest is not None else "-",
                f"{conv:.2f} s" if conv is not None else "never",
                row["beacons_sent"],
                row["bytes_on_air"],
                row["root_changes"],
            )
        )
    print(
        format_table(
            ["protocol", "scenario", "rep", "max hop", "steady err",
             "deepest err", "converged", "beacons", "bytes", "root chg"],
            table_rows,
        )
    )
    print()
    print(f"rows written to {csv_path}")
    print(
        "shape checks: sstsp pays the largest beacons for authenticated "
        "accuracy; beaconless halves traffic via its duty cycle; coop "
        "floods every period and buys accuracy with density"
    )


if __name__ == "__main__":
    main()
