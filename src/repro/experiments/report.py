"""Terminal reporting: ASCII time-series charts, tables and CSV output.

The environment has no plotting stack, so figures render as log-scale
ASCII charts - enough to eyeball the shapes the paper's figures show -
and every experiment also writes its full series as CSV next to the
repository (``results/``) for external plotting.
"""

from __future__ import annotations

import math
import os
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.metrics import SyncTrace
from repro.sim.units import S

#: Default output directory for CSV series when ``SSTSP_RESULTS_DIR``
#: is unset.
RESULTS_DIR = "results"


def ensure_results_dir() -> str:
    """Create (if needed) and return the CSV output directory.

    ``SSTSP_RESULTS_DIR`` is resolved at call time, not import time, so
    tests and one-off runs can redirect output without reloading the
    module.
    """
    root = os.environ.get("SSTSP_RESULTS_DIR", RESULTS_DIR)
    os.makedirs(root, exist_ok=True)
    return root


def save_trace_csv(trace: SyncTrace, name: str) -> str:
    """Write a trace to ``results/<name>.csv``; returns the path."""
    path = os.path.join(ensure_results_dir(), f"{name}.csv")
    trace.save_csv(path)
    return path


def ascii_chart(
    times_s: Sequence[float],
    values: Sequence[float],
    title: str,
    width: int = 78,
    height: int = 16,
    log_floor: float = 1.0,
) -> str:
    """Render a log-scale ASCII chart of a time series."""
    t = np.asarray(times_s, dtype=float)
    v = np.asarray(values, dtype=float)
    if t.size == 0:
        return f"{title}\n(no data)"
    # bucket to the chart width (max per bucket: figures plot worst case)
    edges = np.linspace(t[0], t[-1], width + 1)
    idx = np.clip(np.searchsorted(edges, t, side="right") - 1, 0, width - 1)
    col_max = np.full(width, np.nan)
    for i in range(width):
        bucket = v[idx == i]
        if bucket.size:
            col_max[i] = bucket.max()
    levels = np.log10(np.maximum(col_max, log_floor))
    finite = levels[np.isfinite(levels)]
    lo = math.floor(finite.min()) if finite.size else 0.0
    hi = math.ceil(finite.max()) if finite.size else 1.0
    hi = max(hi, lo + 1)
    rows: List[str] = [title]
    for r in range(height, 0, -1):
        threshold = lo + (hi - lo) * r / height
        label = 10 ** (lo + (hi - lo) * r / height)
        line = "".join(
            "#" if np.isfinite(levels[i]) and levels[i] >= threshold - (hi - lo) / height else " "
            for i in range(width)
        )
        rows.append(f"{label:>10.1f}us |{line}")
    rows.append(" " * 12 + "+" + "-" * width)
    rows.append(
        " " * 12
        + f"{t[0]:<10.0f}{'time (s)':^{max(0, width - 20)}}{t[-1]:>10.0f}"
    )
    return "\n".join(rows)


def trace_chart(trace: SyncTrace, title: str, **kw) -> str:
    """ASCII chart of a trace's max clock difference over time."""
    return ascii_chart(trace.times_us / S, trace.max_diff_us, title, **kw)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Fixed-width text table."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells):
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))
    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(headers))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def downsample_rows(
    trace: SyncTrace, points: int = 20
) -> List[Tuple[float, float]]:
    """``(time_s, max_diff_us)`` rows at ~evenly spaced sample points."""
    if len(trace) == 0:
        return []
    indices = np.unique(np.linspace(0, len(trace) - 1, points).astype(int))
    return [
        (float(trace.times_us[i] / S), float(trace.max_diff_us[i]))
        for i in indices
    ]
