"""Property-based tests of the SSTSP (k, b) solution (hypothesis)."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.adjustment import (
    AdjustmentSample,
    DegenerateSamplesError,
    paper_closed_form,
    solve_adjustment,
)

BP = 100_000.0

ref_rates = st.floats(min_value=0.9995, max_value=1.0005)
offsets = st.floats(min_value=-500.0, max_value=500.0)
prev_ks = st.floats(min_value=0.999, max_value=1.001)
prev_bs = st.floats(min_value=-1_000.0, max_value=1_000.0)
m_values = st.integers(min_value=1, max_value=8)
jitters = st.floats(min_value=-5.0, max_value=5.0)


def observation(rate, offset, ts):
    """Hardware time at which the reference clock reads ``ts``."""
    return rate * ts + offset


@given(
    rate=ref_rates,
    offset=offsets,
    prev_k=prev_ks,
    prev_b=prev_bs,
    m=m_values,
    base=st.floats(min_value=1e5, max_value=1e8),
)
@settings(max_examples=200)
def test_matches_paper_closed_form(rate, offset, prev_k, prev_b, m, base):
    ts2, ts1 = base, base + BP
    older = AdjustmentSample(1, observation(rate, offset, ts2), ts2)
    newest = AdjustmentSample(2, observation(rate, offset, ts1), ts1)
    t_now = observation(rate, offset, ts1 + BP)
    target = ts1 + (m + 1) * BP
    try:
        k, b = solve_adjustment(prev_k, prev_b, t_now, newest, older, target)
    except DegenerateSamplesError:
        assume(False)
    kp, bp_ = paper_closed_form(
        prev_k, prev_b, t_now,
        newest.local_hw_time, newest.ref_timestamp,
        older.local_hw_time, older.ref_timestamp,
        target,
    )
    assert math.isclose(k, kp, rel_tol=1e-9)
    assert math.isclose(b, bp_, rel_tol=1e-6, abs_tol=1e-3)


@given(
    rate=ref_rates,
    offset=offsets,
    prev_k=prev_ks,
    prev_b=prev_bs,
    m=m_values,
)
@settings(max_examples=200)
def test_continuity_and_target_hit(rate, offset, prev_k, prev_b, m):
    ts2, ts1 = 1e6, 1e6 + BP
    older = AdjustmentSample(1, observation(rate, offset, ts2), ts2)
    newest = AdjustmentSample(2, observation(rate, offset, ts1), ts1)
    t_now = observation(rate, offset, ts1 + BP)
    target = ts1 + (m + 1) * BP
    k, b = solve_adjustment(prev_k, prev_b, t_now, newest, older, target)
    # equation (2): continuity at t_now
    assert math.isclose(k * t_now + b, prev_k * t_now + prev_b, abs_tol=1e-3)
    # equations (3)+(5): the new segment meets the reference at the target
    t_target = observation(rate, offset, target)
    assert math.isclose(k * t_target + b, target, abs_tol=1e-3)


@given(
    rate=ref_rates,
    offset=offsets,
    initial_error=st.floats(min_value=-200.0, max_value=200.0),
    m=st.integers(min_value=2, max_value=5),
)
@settings(max_examples=100)
def test_iterated_updates_contract_error(rate, offset, initial_error, m):
    """Lemma 1 as a property: whatever the initial error (offset *and*
    rate mismatch), iterating the update against a clean reference drives
    the error below 0.5 us within 60 BPs - consistent with the lemma's
    contraction ratio of (m-1)/m per BP."""
    assume(abs(initial_error) > 0.5)
    k, b = 1.0, initial_error  # offset error + implicit rate error (k=1)
    samples = []
    error = None
    for j in range(1, 61):
        ts = 1e6 + j * BP
        hw = observation(rate, offset, ts)
        samples.append(AdjustmentSample(j, hw, ts))
        if len(samples) >= 3:
            newest, older = samples[-2], samples[-3]
            try:
                k, b = solve_adjustment(
                    k, b, hw, newest, older, ts + m * BP
                )
            except DegenerateSamplesError:
                assume(False)
        error = abs(k * hw + b - ts)
    assert error is not None and error < 0.5


@given(
    rate=ref_rates,
    offset=offsets,
    jitter1=jitters,
    jitter2=jitters,
    m=st.integers(min_value=2, max_value=5),
)
@settings(max_examples=200)
def test_slope_stays_hardware_plausible_under_jitter(
    rate, offset, jitter1, jitter2, m
):
    """Starting from a *converged* clock, estimate noise within epsilon
    perturbs the solved slope by at most a few eps/BP (the noise is
    amplified by the gap-closing term, bounded by (m+2)/m here)."""
    ts2, ts1 = 1e6, 1e6 + BP
    older = AdjustmentSample(1, observation(rate, offset, ts2), ts2 + jitter2)
    newest = AdjustmentSample(2, observation(rate, offset, ts1), ts1 + jitter1)
    t_now = observation(rate, offset, ts1 + BP)
    # converged previous segment: c(hw) == ts exactly
    prev_k = 1.0 / rate
    prev_b = -offset / rate
    try:
        k, _ = solve_adjustment(
            prev_k, prev_b, t_now, newest, older, ts1 + (m + 1) * BP
        )
    except DegenerateSamplesError:
        assume(False)
    noise = abs(jitter1) + abs(jitter2)
    assert abs(k - prev_k) <= 1e-9 + 6 * noise / BP
