"""ATSP - Adaptive Timing Synchronization Procedure (Lai & Zhou, AINA 2003).

The paper's reference [4]: TSF's fastest-node asynchronization is
mitigated by letting the station that *believes* it is fastest compete for
beacon transmission every BP while everyone else competes only every
``I_max`` BPs:

* when a station adopts a received timestamp (someone faster exists), it
  sets its contention interval ``I`` to ``I_max``;
* when a station goes ``promote_after`` consecutive BPs without being
  beaten, it concludes it is the fastest and sets ``I = 1``.

``I_max`` trades scalability against stability (paper section 2: it
"should be carefully chosen to reach a compromise").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.clocks.oscillator import TsfTimer
from repro.mac.beacon import BeaconFrame
from repro.protocols.base import RxContext, TxIntent
from repro.protocols.tsf import TsfConfig, TsfProtocol


@dataclass(frozen=True)
class AtspConfig(TsfConfig):
    """ATSP parameters on top of the TSF ones."""

    #: Contention interval of stations that know a faster station exists.
    i_max: int = 30
    #: Consecutive unbeaten BPs after which a station assumes it is fastest.
    promote_after: int = 30

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.i_max < 1:
            raise ValueError("i_max must be >= 1")
        if self.promote_after < 1:
            raise ValueError("promote_after must be >= 1")


class AtspProtocol(TsfProtocol):
    """One station's ATSP driver."""

    protocol_name = "atsp"

    def __init__(
        self,
        node_id: int,
        timer: TsfTimer,
        config: AtspConfig,
        rng: np.random.Generator,
    ) -> None:
        super().__init__(node_id, timer, config, rng)
        self.config: AtspConfig = config
        self.interval = 1  # everyone starts eager, like TSF
        self.unbeaten_streak = 0
        self._beaten_this_period = False
        # Random phase so stations with equal intervals do not sync up.
        self._countdown = int(rng.integers(0, self.interval + 1))

    def begin_period(self, period: int) -> Optional[TxIntent]:
        if self._countdown > 0:
            self._countdown -= 1
            return None
        self._countdown = self.interval - 1
        return super().begin_period(period)

    def on_beacon(self, frame: BeaconFrame, rx: RxContext) -> None:
        before = self.adoptions
        super().on_beacon(frame, rx)
        if self.adoptions > before:
            self._beaten_this_period = True

    def end_period(
        self, period: int, heard_beacon: bool, transmitted: bool, tx_success: bool
    ) -> None:
        if self._beaten_this_period:
            # Someone faster exists: back off to the slow contention tier.
            self.interval = self.config.i_max
            self.unbeaten_streak = 0
            self._countdown = max(self._countdown, 1)
        else:
            self.unbeaten_streak += 1
            if self.unbeaten_streak >= self.config.promote_after and self.interval != 1:
                self.interval = 1
                self._countdown = 0
        self._beaten_this_period = False
