"""Cooperative time synchronization via spatial averaging (Hu-Servetto
style).

Modeled after Hu & Servetto (cs/0611003, cs/0503031): instead of hanging
off a single upstream, every station treats *all* the beacons it decodes
in a period as one aggregate observation and steers its clock toward
their **average** — the spatial-averaging estimator whose error, in the
dense-network limit, decays with the number of cooperating neighbours
rather than accumulating per relay link.

Mapping onto this simulator's discrete-beacon world:

* every decoded frame ``i`` yields an offset observation
  ``est_i - local_i``; the period's correction steers toward the *mean*
  offset with gain ``_ALPHA`` (averaging with the neighbourhood, not
  snapping to one parent);
* the rate is tracked from consecutive aggregate observations (implied
  ``d est / d hw`` slope, EWMA-blended), so the steady state absorbs
  oscillator drift instead of re-measuring it every period;
* ``hop`` bookkeeping is ``1 + min(heard hops)`` — it orders the
  beacon-window segments and the takeover election, but unlike SSTSP it
  does not privilege the low-hop sender's timestamp;
* every synchronized station relays *every* period (cooperation wants
  density); the shootout's overhead column shows what that costs.

Corrections are slews through the shared
:class:`~repro.clocks.adjusted.AdjustedClock` (continuous re-sloping at
the current instant), so ``audit_no_leaps`` holds here too.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.clocks.adjusted import AdjustedClock, MonotonicityError
from repro.clocks.chain import ClockChain
from repro.phy.params import COOP_BEACON_AIRTIME_SLOTS, COOP_BEACON_BYTES
from repro.protocols.multihop_base import (
    MultiHopContext,
    MultiHopFrame,
    MultiHopProtocol,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.multihop.runner import MultiHopSpec

#: Fraction of the neighbourhood-mean offset corrected per period.
_ALPHA = 0.5
#: EWMA weight of the newest implied rate sample.
_RATE_GAIN = 0.2


class CoopAverageProtocol(MultiHopProtocol):
    """One station's spatial-averaging driver."""

    protocol_name = "coop"
    beacon_bytes = COOP_BEACON_BYTES
    beacon_airtime_slots = COOP_BEACON_AIRTIME_SLOTS

    def __init__(
        self, node_id: int, chain: ClockChain, spec: "MultiHopSpec"
    ) -> None:
        super().__init__(node_id, chain, spec)
        #: Last aggregate observation: (hw_on_grid, mean upstream time).
        self._last_agg: Optional[Tuple[float, float]] = None
        #: Tracked rate factor (EWMA of implied d est / d hw).
        self._rate = 1.0

    def reset_sync(self) -> None:
        super().reset_sync()
        self._last_agg = None
        self._rate = 1.0

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------

    def begin_period(self, period: int, ctx: MultiHopContext) -> Optional[float]:
        spec = self.spec
        if self.node_id == ctx.root:
            return 0.0
        if ctx.orphan_election and self.hop == 1 and self.silent >= spec.l:
            slot = int(ctx.slot_rng.integers(0, self._backoff_range()))
            return slot * spec.slot_time_us
        if self.hop is not None and self.hop >= 1 and self.adjustments >= 1:
            # cooperation wants density: every synchronized station
            # relays every period (modulo the shared thinning knob)
            if spec.relay_probability < 1.0:
                if ctx.slot_rng.random() >= spec.relay_probability:
                    return None
            slot = int(ctx.slot_rng.integers(0, self._backoff_range()))
            return (self.hop * spec.hop_stride_slots + slot) * spec.slot_time_us
        return None

    def make_frame(
        self, period: int, delay_us: float, tx_true: float, ctx: MultiHopContext
    ) -> MultiHopFrame:
        nominal = period * self.spec.beacon_period_us
        hop = (
            0
            if self.node_id == ctx.root
            else (self.hop if self.hop is not None else 0)
        )
        return MultiHopFrame(
            sender=self.node_id,
            hop=hop,
            interval=period,
            tx_true=tx_true,
            timestamp=nominal,
            delay_us=delay_us,
        )

    def _backoff_range(self) -> int:
        return max(1, self.spec.hop_stride_slots - self.spec.airtime_slots)

    # ------------------------------------------------------------------
    # Reception: average over every decoded frame
    # ------------------------------------------------------------------

    def on_receptions(
        self, period: int, decoded: List[MultiHopFrame], ctx: MultiHopContext
    ) -> bool:
        spec = self.spec
        decoded.sort(key=lambda tx: (tx.hop, tx.tx_true))
        # Aggregate every decoded frame: per-frame timestamp jitter is
        # independent, so averaging genuinely suppresses it.
        hw_sum = 0.0
        est_sum = 0.0
        offset_sum = 0.0
        for tx in decoded:
            arrival = tx.tx_true + ctx.rx_latency_us
            jitter = ctx.sample_timestamp_error()
            hw = self.chain.hw.read(arrival) - tx.delay_us
            est = tx.timestamp + ctx.rx_latency_us + jitter
            hw_sum += hw
            est_sum += est
            offset_sum += est - self.clock.read_current(hw)
        n = len(decoded)
        hw_mean = hw_sum / n
        est_mean = est_sum / n
        offset_mean = offset_sum / n
        self.silent = 0
        min_hop = decoded[0].hop
        self.upstream = decoded[0].sender  # best-hop sender, for diagnostics
        if self.hop is None:
            local = self.clock.read_current(hw_mean)
            self.chain.adjusted = AdjustedClock(
                self.clock.k, self.clock.b + (est_mean - local)
            )
            self.hop = min_hop + 1
            self._last_agg = (hw_mean, est_mean)
            return True
        self.hop = min_hop + 1
        if self._last_agg is not None:
            prev_hw, prev_est = self._last_agg
            d_hw = hw_mean - prev_hw
            d_est = est_mean - prev_est
            if d_hw > 0 and d_est > 0:
                implied = d_est / d_hw
                implied = min(
                    max(implied, 1.0 - spec.k_clamp), 1.0 + spec.k_clamp
                )
                self._rate += _RATE_GAIN * (implied - self._rate)
        self._last_agg = (hw_mean, est_mean)
        self._steer(offset_mean, hw_mean)
        return True

    def _steer(self, offset_mean: float, hw_now: float) -> None:
        """Slew toward the neighbourhood mean: slope = tracked rate plus
        the gain-weighted offset spread over one beacon period."""
        spec = self.spec
        bp = spec.beacon_period_us
        slope = self._rate + _ALPHA * offset_mean / bp
        slope = min(max(slope, 1.0 - spec.k_clamp), 1.0 + spec.k_clamp)
        current = self.clock.read_current(hw_now)
        try:
            self.clock.adjust(slope, current - slope * hw_now, hw_now)
        except MonotonicityError:
            return
        self.adjustments += 1

    # ------------------------------------------------------------------
    # Silence
    # ------------------------------------------------------------------

    def end_period(self, period: int, accepted: bool, ctx: MultiHopContext) -> None:
        spec = self.spec
        if accepted:
            return
        self.silent += 1
        if self.silent > 4 * spec.l:
            self._last_agg = None  # a stale aggregate would alias the rate
            self.upstream = None
        if self.silent > spec.resync_after_periods and self.hop is not None:
            self.reset_sync()
