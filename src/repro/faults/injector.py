"""Applies a :class:`~repro.faults.spec.FaultPlan` to a live network.

The :class:`~repro.network.runner.NetworkRunner` consults an attached
injector at two well-defined points of every beacon period:

* :meth:`FaultInjector.on_period_start` — right after churn, before any
  protocol hook runs: crash/restart toggles, clock mutations, ramp
  increments, jam-window installation, loss-burst and partition setup;
* :meth:`FaultInjector.on_period_end` — after the metric sample: teardown
  of channel windows that expire with this period.

Between the hooks the runner queries :meth:`stalled_ids` (nodes frozen
this period) and :meth:`partition_groups` (the active channel split, used
to resolve carrier sensing and delivery per group). Because every
mutation happens at a period boundary through these hooks, injected
faults interleave deterministically with churn, contention and loss —
same plan, same seed, same trace.

Clock faults mutate the target's :class:`~repro.clocks.oscillator.
HardwareClock` in place. Frequency steps and ramps are continuous in
*value* at the fire instant (the oscillator does not teleport, its pace
changes); timestamp jumps are discontinuous by design.
"""

from __future__ import annotations

import logging
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Tuple

from repro.faults.spec import FaultPlan, FaultSpec
from repro.network.churn import REFERENCE_MARKER
from repro.obs.events import emit

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.network.runner import NetworkRunner

logger = logging.getLogger(__name__)


class FaultInjector:
    """Replays one fault plan against the runner it is bound to.

    Parameters
    ----------
    plan:
        The declarative schedule to apply.

    Attributes
    ----------
    log:
        Human-readable record of every applied (or skipped) fault.
    reference_crashes:
        ``(period, node_id)`` for each crash that hit the station holding
        the reference role — the chaos re-election invariant reads this.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.log: List[str] = []
        self.reference_crashes: List[Tuple[int, int]] = []
        self._runner: Optional["NetworkRunner"] = None
        self._starts: Dict[int, List[FaultSpec]] = {}
        for spec in plan:
            self._starts.setdefault(spec.start_period, []).append(spec)
        # node -> (per-period ppm increment, first period NOT ramped)
        self._ramps: Dict[int, Tuple[float, int]] = {}
        # period -> node ids to restart at its start
        self._restarts: Dict[int, List[int]] = {}
        # stall windows with markers resolved: (node, start, end)
        self._stalls: List[Tuple[int, int, int]] = []
        # active partition: (groups, end_period)
        self._partition: Optional[Tuple[Dict[int, int], int]] = None
        # periods at whose end a channel override expires
        self._loss_burst_ends: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def bind(self, runner: "NetworkRunner") -> None:
        """Attach to the runner whose nodes/channel the faults mutate."""
        self._runner = runner

    def _note(self, period: int, message: str) -> None:
        line = f"p{period}: fault {message}"
        self.log.append(line)
        t_us: Optional[float] = None
        if self._runner is not None:
            self._runner._events.append(line)
            t_us = period * self._runner.params.beacon_period_us
        emit("fault_applied", t_us=t_us, period=period, detail=message)
        logger.info("fault injection: %s", line)

    def _resolve(self, period: int, node_id: int) -> Optional[int]:
        """Resolve :data:`REFERENCE_MARKER` to the current reference."""
        if node_id != REFERENCE_MARKER:
            return node_id
        ref = self._runner.current_reference()
        return ref if ref >= 0 else None

    # ------------------------------------------------------------------
    # Runner-facing queries
    # ------------------------------------------------------------------

    def stalled_ids(self, period: int) -> FrozenSet[int]:
        """Nodes frozen (no tx/rx/processing) during ``period``."""
        return frozenset(
            node for node, start, end in self._stalls if start <= period < end
        )

    def partition_groups(self, period: int) -> Optional[Dict[int, int]]:
        """Active ``node_id -> group`` split, or None when connected."""
        if self._partition is None:
            return None
        groups, end = self._partition
        return groups if period < end else None

    # ------------------------------------------------------------------
    # Period hooks
    # ------------------------------------------------------------------

    def on_period_start(self, period: int) -> None:
        """Apply every fault scheduled for ``period`` plus ramp increments."""
        if self._runner is None:
            raise RuntimeError("injector is not bound to a runner")
        for node_id in self._restarts.pop(period, ()):
            self._restart(period, node_id)
        for spec in self._starts.get(period, ()):
            self._fire(period, spec)
        self._apply_ramps(period)

    def on_period_end(self, period: int) -> None:
        """Tear down channel effects that expire with ``period``."""
        if self._loss_burst_ends:
            expired = [
                token
                for token, end in self._loss_burst_ends.items()
                if end - 1 == period
            ]
            for token in expired:
                del self._loss_burst_ends[token]
            if expired and not self._loss_burst_ends:
                self._runner.channel.set_per_override(None)
                self._note(period, "loss_burst cleared")
        if self._partition is not None and self._partition[1] - 1 == period:
            self._partition = None
            self._note(period, "partition healed")

    # ------------------------------------------------------------------
    # Fault application
    # ------------------------------------------------------------------

    def _fire(self, period: int, spec: FaultSpec) -> None:
        handler = getattr(self, f"_apply_{spec.kind}")
        handler(period, spec)

    def _target(self, period: int, spec: FaultSpec):
        resolved = self._resolve(period, spec.node_id)
        if resolved is None:
            self._note(period, f"{spec.kind} skipped (no reference to target)")
            return None, None
        node = self._runner._by_id.get(resolved)
        if node is None:
            self._note(period, f"{spec.kind} skipped (unknown node {resolved})")
            return None, None
        return resolved, node

    def _apply_freq_step(self, period: int, spec: FaultSpec) -> None:
        resolved, node = self._target(period, spec)
        if node is None:
            return
        self._step_rate(period, node, spec.magnitude)
        self._note(period, f"freq_step node {resolved} {spec.magnitude:+.1f} ppm")

    def _apply_freq_ramp(self, period: int, spec: FaultSpec) -> None:
        resolved, node = self._target(period, spec)
        if node is None:
            return
        per_period = spec.magnitude / spec.duration_periods
        self._ramps[resolved] = (per_period, spec.end_period)
        self._note(
            period,
            f"freq_ramp node {resolved} {spec.magnitude:+.1f} ppm "
            f"over {spec.duration_periods} BPs",
        )

    def _apply_clock_jump(self, period: int, spec: FaultSpec) -> None:
        resolved, node = self._target(period, spec)
        if node is None:
            return
        node.hw.initial_offset += spec.magnitude
        self._note(period, f"clock_jump node {resolved} {spec.magnitude:+.1f} us")

    def _apply_crash(self, period: int, spec: FaultSpec) -> None:
        resolved, node = self._target(period, spec)
        if node is None or not node.present:
            if node is not None:
                self._note(period, f"crash skipped (node {resolved} absent)")
            return
        was_reference = resolved == self._runner.current_reference()
        # A hard crash: presence drops with no graceful on_leave; the
        # protocol object keeps its (now stale) state until the reboot.
        node.present = False
        if was_reference:
            self.reference_crashes.append((period, resolved))
        if spec.duration_periods > 0:
            restart = spec.start_period + spec.duration_periods
            self._restarts.setdefault(restart, []).append(resolved)
        self._note(
            period,
            f"crash node {resolved}"
            + (" (reference)" if was_reference else "")
            + (
                f", restart at p{spec.start_period + spec.duration_periods}"
                if spec.duration_periods > 0
                else ", no restart"
            ),
        )

    def _restart(self, period: int, node_id: int) -> None:
        node = self._runner._by_id.get(node_id)
        if node is None or node.present:
            return
        node.present = True
        node.protocol.on_return(period)
        self._note(period, f"restart node {node_id}")

    def _apply_stall(self, period: int, spec: FaultSpec) -> None:
        resolved, node = self._target(period, spec)
        if node is None:
            return
        self._stalls.append((resolved, spec.start_period, spec.end_period))
        self._note(
            period, f"stall node {resolved} for {spec.duration_periods} BPs"
        )

    def _apply_jam(self, period: int, spec: FaultSpec) -> None:
        bp = self._runner.params.beacon_period_us
        start_us = spec.start_period * bp
        end_us = spec.end_period * bp
        self._runner.channel.add_jam_window(start_us, end_us)
        self._note(period, f"jam for {spec.duration_periods} BPs")

    def _apply_loss_burst(self, period: int, spec: FaultSpec) -> None:
        self._runner.channel.set_per_override(spec.magnitude)
        self._loss_burst_ends[id(spec)] = spec.end_period
        self._note(
            period,
            f"loss_burst per={spec.magnitude:.2f} "
            f"for {spec.duration_periods} BPs",
        )

    def _apply_partition(self, period: int, spec: FaultSpec) -> None:
        ids = sorted(node.node_id for node in self._runner.nodes)
        cut = max(1, min(len(ids) - 1, round(spec.magnitude * len(ids))))
        groups = {nid: (0 if i < cut else 1) for i, nid in enumerate(ids)}
        self._partition = (groups, spec.end_period)
        self._note(
            period,
            f"partition {cut}/{len(ids) - cut} "
            f"for {spec.duration_periods} BPs",
        )

    def _apply_ramps(self, period: int) -> None:
        done = []
        for node_id, (per_period, end) in self._ramps.items():
            if period >= end:
                done.append(node_id)
                continue
            node = self._runner._by_id.get(node_id)
            if node is not None:
                self._step_rate(period, node, per_period)
        for node_id in done:
            del self._ramps[node_id]

    def _step_rate(self, period: int, node, ppm: float) -> None:
        """Change ``node``'s oscillator rate by ``ppm``, continuous in
        value at the current period boundary."""
        now = period * self._runner.params.beacon_period_us
        hw = node.hw
        value = hw.read(now)
        hw.rate = hw.rate * (1.0 + ppm * 1e-6)
        hw.initial_offset = value - hw.rate * now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FaultInjector(plan={self.plan.name or 'unnamed'}, "
            f"faults={len(self.plan)}, applied={len(self.log)})"
        )
