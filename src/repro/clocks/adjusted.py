"""Piecewise-linear adjusted clocks (SSTSP's ``c_i(t) = k^j * t + b^j``).

SSTSP never touches the hardware clock. Each node maintains an *adjusted*
clock that maps local hardware time ``t`` to synchronized time through the
current linear segment ``(k, b)``. Every accepted reference beacon replaces
the segment, subject to two invariants the paper guarantees (section 3.3):

* **continuity** - equation (2) forces the old and new segments to agree at
  the switch point, so the adjusted clock never jumps;
* **monotonicity** - the slope ``k`` stays positive, so the adjusted clock
  never runs backward.

:class:`AdjustedClock` enforces both at adjustment time and keeps the full
segment history so tests and the leap audit
(:func:`repro.analysis.metrics.audit_no_leaps`) can re-derive the entire
trajectory.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import List


class MonotonicityError(ValueError):
    """Raised when an adjustment would create a backward or discontinuous leap."""


@dataclass(frozen=True)
class ClockSegment:
    """One linear piece of an adjusted clock, active for ``t >= start``.

    Attributes
    ----------
    start:
        Hardware time (microseconds) at which this segment became active.
    k, b:
        Slope and intercept of ``c(t) = k * t + b`` on this segment.
    """

    start: float
    k: float
    b: float

    def value(self, local_time: float) -> float:
        """Adjusted time this segment maps ``local_time`` to."""
        return self.k * local_time + self.b


#: Continuity slack allowed at a segment switch, in microseconds. The
#: closed-form (k, b) solution is exact in real arithmetic; this only
#: absorbs float rounding over ~1e9 us magnitudes.
CONTINUITY_TOL_US: float = 1e-3


class AdjustedClock:
    """SSTSP adjusted clock: continuous, strictly increasing, piecewise linear.

    Parameters
    ----------
    k, b:
        Initial segment. The paper initialises ``k = 1, b = 0`` (identity)
        before the coarse phase contributes an offset.

    Examples
    --------
    >>> c = AdjustedClock()
    >>> c.read(100.0)
    100.0
    >>> c.adjust(1.0001, -0.01, at_local_time=100.0)
    >>> round(c.read(100.0), 6)
    100.0
    """

    __slots__ = ("_segments", "_starts")

    def __init__(self, k: float = 1.0, b: float = 0.0) -> None:
        _validate_slope(k)
        self._segments: List[ClockSegment] = [
            ClockSegment(start=-math.inf, k=float(k), b=float(b))
        ]
        self._starts: List[float] = [-math.inf]

    @property
    def k(self) -> float:
        """Slope of the currently active (latest) segment."""
        return self._segments[-1].k

    @property
    def b(self) -> float:
        """Intercept of the currently active (latest) segment."""
        return self._segments[-1].b

    @property
    def segments(self) -> List[ClockSegment]:
        """Full segment history, oldest first (copy)."""
        return list(self._segments)

    @property
    def adjustments(self) -> int:
        """Number of ``adjust`` calls applied so far."""
        return len(self._segments) - 1

    def read(self, local_time: float) -> float:
        """Adjusted time at hardware time ``local_time``.

        Works for any ``local_time``, including times inside older segments
        (used by audits); new adjustments may only be appended after the
        latest segment start.
        """
        idx = bisect.bisect_right(self._starts, local_time) - 1
        return self._segments[idx].value(local_time)

    def read_current(self, local_time: float) -> float:
        """Adjusted time using only the active segment (the protocol's view)."""
        return self._segments[-1].value(local_time)

    def adjust(self, k: float, b: float, at_local_time: float) -> None:
        """Switch to segment ``(k, b)`` effective at hardware time
        ``at_local_time``.

        Raises
        ------
        MonotonicityError
            If ``k <= 0`` (backward-running clock), if the new segment does
            not join the old one continuously at the switch point, or if the
            switch point precedes the previous one.
        """
        _validate_slope(k)
        last = self._segments[-1]
        if at_local_time < self._starts[-1]:
            raise MonotonicityError(
                f"adjustment at t={at_local_time} precedes previous segment "
                f"start {self._starts[-1]}"
            )
        old_value = last.value(at_local_time)
        new_value = k * at_local_time + b
        if abs(new_value - old_value) > CONTINUITY_TOL_US:
            raise MonotonicityError(
                "discontinuous adjustment: segment values differ by "
                f"{new_value - old_value:.6f}us at t={at_local_time}"
            )
        self._segments.append(
            ClockSegment(start=float(at_local_time), k=float(k), b=float(b))
        )
        self._starts.append(float(at_local_time))

    def slew_to(
        self, target_value: float, target_slope: float, at_local_time: float
    ) -> None:
        """Convenience: install the segment of slope ``target_slope`` that is
        continuous at ``at_local_time`` (so ``b`` is derived, not given)."""
        current = self.read_current(at_local_time)
        b = current - target_slope * at_local_time
        del target_value  # kept for signature symmetry with tests
        self.adjust(target_slope, b, at_local_time)

    def is_monotonic(self, t_start: float, t_end: float, samples: int = 256) -> bool:
        """Check the adjusted clock never decreases on ``[t_start, t_end]``.

        Piecewise-linear with positive slopes and continuous joins is
        monotone by construction; this re-verifies it numerically over the
        segment breakpoints plus a uniform grid (used by property tests).
        """
        if t_end < t_start:
            raise ValueError("t_end must be >= t_start")
        points = [t_start + (t_end - t_start) * i / samples for i in range(samples + 1)]
        points.extend(s for s in self._starts if t_start <= s <= t_end)
        points.sort()
        previous = -math.inf
        for point in points:
            value = self.read(point)
            if value < previous - 1e-6:
                return False
            previous = value
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"AdjustedClock(k={self.k:.9f}, b={self.b:.3f}, "
            f"adjustments={self.adjustments})"
        )


def _validate_slope(k: float) -> None:
    if not (k > 0.0) or math.isinf(k) or math.isnan(k):
        raise MonotonicityError(f"slope k must be finite and > 0, got {k}")
