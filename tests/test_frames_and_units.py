"""Unit tests for beacon frames, units, and the fastlane plumbing."""

import numpy as np
import pytest

from repro.fastlane.common import ChurnDriver, VectorState, resolve_window
from repro.mac.beacon import BeaconFrame, SecureBeaconFrame
from repro.network.churn import REFERENCE_MARKER, ChurnEvent, ChurnSchedule
from repro.network.ibss import ScenarioSpec
from repro.sim.units import MS, S, US, s_to_us, us_to_s


class TestUnits:
    def test_constants(self):
        assert US == 1.0
        assert MS == 1_000.0
        assert S == 1_000_000.0

    def test_conversions_roundtrip(self):
        assert us_to_s(s_to_us(12.5)) == 12.5
        assert s_to_us(0.1) == 100_000.0


class TestBeaconFrames:
    def test_tsf_beacon_defaults(self):
        frame = BeaconFrame(sender=3, timestamp_us=123.0)
        assert frame.size_bytes == 56
        assert b"B|3|" in frame.payload_for_mac()

    def test_secure_beacon_wraps_inner(self):
        frame = SecureBeaconFrame(
            sender=3, timestamp_us=123.0, interval=7,
            mac_tag=b"t" * 16, disclosed_key=b"k" * 16,
        )
        assert frame.size_bytes == 92
        inner = frame.inner()
        assert inner.sender == 3 and inner.timestamp_us == 123.0
        assert frame.payload_for_mac().endswith(b"|7")

    def test_payload_binds_timestamp(self):
        a = SecureBeaconFrame(1, 100.0, 2, b"t" * 16, b"k" * 16)
        b = SecureBeaconFrame(1, 100.5, 2, b"t" * 16, b"k" * 16)
        assert a.payload_for_mac() != b.payload_for_mac()

    def test_frames_are_immutable(self):
        frame = BeaconFrame(sender=1, timestamp_us=1.0)
        with pytest.raises(AttributeError):
            frame.timestamp_us = 2.0


class TestVectorState:
    def test_from_spec_shapes(self):
        spec = ScenarioSpec(n=10, seed=1, duration_s=1.0)
        state = VectorState.from_spec(spec)
        assert state.n == 10
        assert state.present.all()

    def test_extra_nodes(self):
        spec = ScenarioSpec(n=10, seed=1, duration_s=1.0)
        state = VectorState.from_spec(spec, extra_nodes=1)
        assert state.n == 11

    def test_hw_at_matches_linear_model(self):
        spec = ScenarioSpec(n=5, seed=1, duration_s=1.0)
        state = VectorState.from_spec(spec)
        t = 123_456.0
        expected = state.rates * t + state.offsets
        assert np.allclose(state.hw_at(t), expected)

    def test_reproducible(self):
        spec = ScenarioSpec(n=5, seed=9, duration_s=1.0)
        a = VectorState.from_spec(spec)
        b = VectorState.from_spec(spec)
        assert np.array_equal(a.rates, b.rates)


class TestResolveWindow:
    def test_single_candidate(self):
        winner, start, collisions = resolve_window(
            np.array([4]), np.array([100.0]), 63.0, 9.0
        )
        assert winner == 4 and start == 100.0 and collisions == 0

    def test_empty(self):
        winner, start, collisions = resolve_window(
            np.array([], dtype=int), np.array([]), 63.0, 9.0
        )
        assert winner is None and start is None

    def test_collision_counted(self):
        winner, _, collisions = resolve_window(
            np.array([1, 2]), np.array([0.0, 4.0]), 63.0, 9.0
        )
        assert winner is None and collisions == 1

    def test_deferred_start_reported(self):
        # 1 and 2 collide; 3 deferred to the busy end wins there
        winner, start, _ = resolve_window(
            np.array([1, 2, 3]), np.array([0.0, 4.0, 20.0]), 63.0, 9.0
        )
        assert winner == 3
        assert start == pytest.approx(63.0)


class TestChurnDriver:
    def test_leave_and_return(self):
        schedule = ChurnSchedule(
            [ChurnEvent(5, "leave", (1,)), ChurnEvent(9, "return", (1,))]
        )
        driver = ChurnDriver(schedule)
        present = np.ones(3, dtype=bool)
        left, returned = [], []
        driver.apply(5, present, lambda: -1, on_leave=left.append)
        assert not present[1] and left == [1]
        driver.apply(9, present, lambda: -1, on_return=returned.append)
        assert present[1] and returned == [1]
        assert len(driver.events) == 2

    def test_reference_marker_resolution(self):
        schedule = ChurnSchedule(
            [
                ChurnEvent(5, "leave", (REFERENCE_MARKER,)),
                ChurnEvent(9, "return", (REFERENCE_MARKER,)),
            ]
        )
        driver = ChurnDriver(schedule)
        present = np.ones(3, dtype=bool)
        driver.apply(5, present, lambda: 2)
        assert not present[2]
        driver.apply(9, present, lambda: -1)
        assert present[2]

    def test_marker_with_no_reference_noop(self):
        schedule = ChurnSchedule([ChurnEvent(5, "leave", (REFERENCE_MARKER,))])
        driver = ChurnDriver(schedule)
        present = np.ones(3, dtype=bool)
        driver.apply(5, present, lambda: -1)
        assert present.all()

    def test_none_schedule(self):
        driver = ChurnDriver(None)
        present = np.ones(2, dtype=bool)
        driver.apply(1, present, lambda: -1)
        assert present.all()

    def test_out_of_range_ids_ignored(self):
        schedule = ChurnSchedule([ChurnEvent(1, "leave", (99,))])
        driver = ChurnDriver(schedule)
        present = np.ones(3, dtype=bool)
        driver.apply(1, present, lambda: -1)
        assert present.all()
