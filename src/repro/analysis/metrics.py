"""Synchronization metrics.

The paper's figures all plot one quantity: the **maximum clock
difference** between any two (present) nodes, sampled every beacon period.
:class:`TraceRecorder` collects it during a run; :class:`SyncTrace` is the
resulting series with summary helpers; :func:`sync_latency_us` extracts
the Table 1 latency (first time the maximum difference falls - and stays -
under the industry threshold of 25 us).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.clocks.adjusted import AdjustedClock
from repro.sim.units import S

#: "The industrial expectation that the maximum clock drift should be
#: under 25 us for an IBSS of any size" (paper section 5).
INDUSTRY_THRESHOLD_US: float = 25.0


def max_pairwise_difference(values: Sequence[Optional[float]]) -> float:
    """``max_i x_i - min_i x_i``: the maximum difference between any two
    clocks read at the same instant (0.0 for fewer than two values).

    ``None`` entries and NaN gaps are ignored: a quarantined sweep cell
    (PR 6) or an absent node leaves a hole in the value vector, and a
    hole carries no clock reading to compare — it must not poison the
    spread of the nodes that *are* present.
    """
    arr = np.asarray(
        [v for v in values if v is not None], dtype=np.float64
    )
    arr = arr[np.isfinite(arr)]
    if arr.size < 2:
        return 0.0
    return float(arr.max() - arr.min())


@dataclass
class SyncTrace:
    """A per-BP synchronization trace.

    Attributes
    ----------
    times_us:
        Sample instants (true time).
    max_diff_us:
        Maximum pairwise clock difference at each sample.
    mean_vs_true_us:
        Mean of (synchronized clock - true time); shows an attacker
        dragging the shared virtual clock even while the network stays
        internally synchronized (extra diagnostic beyond the paper).
    present_counts:
        Number of present nodes at each sample (churn visibility).
    reference_ids:
        Station believed to be the reference at each sample (-1 if none).
    values_us:
        Optional full per-node clock matrix (samples x nodes, NaN for
        absent nodes) kept when the recorder was built with
        ``keep_values=True`` - application-layer evaluations (power save,
        FHSS, TDMA) consume this.
    """

    times_us: np.ndarray
    max_diff_us: np.ndarray
    mean_vs_true_us: np.ndarray
    present_counts: np.ndarray
    reference_ids: np.ndarray
    values_us: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        lengths = {
            len(self.times_us),
            len(self.max_diff_us),
            len(self.mean_vs_true_us),
            len(self.present_counts),
            len(self.reference_ids),
        }
        if self.values_us is not None:
            lengths.add(len(self.values_us))
        if len(lengths) != 1:
            raise ValueError("trace arrays must have equal length")

    def __len__(self) -> int:
        return len(self.times_us)

    def window(self, start_us: float, end_us: float) -> "SyncTrace":
        """The sub-trace with ``start_us <= t < end_us``.

        Raises ValueError on an inverted/empty interval
        (``end_us <= start_us``) — that is always a caller bug, and the
        silently empty trace it used to yield turns into opaque numpy
        warnings several calls later. A *valid* interval that happens to
        contain no samples still returns an empty trace (callers probing
        sparse regions rely on that).
        """
        if end_us <= start_us:
            raise ValueError(
                f"window requires end_us > start_us, got "
                f"[{start_us!r}, {end_us!r})"
            )
        mask = (self.times_us >= start_us) & (self.times_us < end_us)
        return SyncTrace(
            self.times_us[mask],
            self.max_diff_us[mask],
            self.mean_vs_true_us[mask],
            self.present_counts[mask],
            self.reference_ids[mask],
            None if self.values_us is None else self.values_us[mask],
        )

    def steady_state_error_us(self, skip_fraction: float = 0.25) -> float:
        """Median max-difference after discarding the initial transient.

        ``skip_fraction`` must lie in ``[0, 1)``. On short traces the
        skip is capped so at least one sample always remains (a fraction
        that rounded up to the whole trace used to produce a numpy
        empty-slice warning and a silent NaN). An empty trace raises —
        there is no steady state to report.
        """
        if not 0.0 <= skip_fraction < 1.0:
            raise ValueError(
                f"skip_fraction must be in [0, 1), got {skip_fraction!r}"
            )
        if not len(self):
            raise ValueError("steady_state_error_us on an empty trace")
        skip = min(int(len(self) * skip_fraction), len(self) - 1)
        tail = self.max_diff_us[skip:]
        finite = tail[np.isfinite(tail)]
        if not finite.size:
            raise ValueError(
                "steady_state_error_us: every post-transient sample is a "
                "NaN gap (all contributing cells missing/quarantined)"
            )
        return float(np.median(finite))

    def peak_error_us(self) -> float:
        """Worst max-difference over the whole trace (NaN gaps ignored)."""
        if not len(self):
            return math.nan
        finite = self.max_diff_us[np.isfinite(self.max_diff_us)]
        return float(finite.max()) if finite.size else math.nan

    def reference_changes(self) -> int:
        """Number of times the believed reference station changed."""
        ids = self.reference_ids
        if ids.size < 2:
            return 0
        valid = ids >= 0
        changes = 0
        last = None
        for rid, ok in zip(ids, valid):
            if not ok:
                continue
            if last is not None and rid != last:
                changes += 1
            last = rid
        return changes

    def to_rows(self) -> Iterator[Tuple[float, float]]:
        """Iterate ``(time_s, max_diff_us)`` rows (for CSV / table output)."""
        for t, d in zip(self.times_us, self.max_diff_us):
            yield t / S, float(d)

    def save_csv(self, path: str) -> None:
        """Write the full trace as CSV."""
        header = "time_s,max_diff_us,mean_vs_true_us,present,reference_id"
        data = np.column_stack(
            [
                self.times_us / S,
                self.max_diff_us,
                self.mean_vs_true_us,
                self.present_counts,
                self.reference_ids,
            ]
        )
        np.savetxt(path, data, delimiter=",", header=header, comments="")

    def save_npz(self, path: str) -> None:
        """Write the trace (including the per-node matrix if kept) as a
        compressed npz archive loadable with :meth:`load_npz`."""
        payload = {
            "times_us": self.times_us,
            "max_diff_us": self.max_diff_us,
            "mean_vs_true_us": self.mean_vs_true_us,
            "present_counts": self.present_counts,
            "reference_ids": self.reference_ids,
        }
        if self.values_us is not None:
            payload["values_us"] = self.values_us
        np.savez_compressed(path, **payload)

    @classmethod
    def load_npz(cls, path: str) -> "SyncTrace":
        """Load a trace previously written with :meth:`save_npz`."""
        with np.load(path) as data:
            return cls(
                times_us=data["times_us"],
                max_diff_us=data["max_diff_us"],
                mean_vs_true_us=data["mean_vs_true_us"],
                present_counts=data["present_counts"],
                reference_ids=data["reference_ids"],
                values_us=data["values_us"] if "values_us" in data else None,
            )


class TraceRecorder:
    """Accumulates per-BP samples during a run; finalises to a trace.

    Parameters
    ----------
    keep_values:
        Also retain the full per-node clock matrix (``full_values`` must
        then be passed to every :meth:`record` call). Costs
        ``8 * samples * nodes`` bytes; application-layer evaluations need
        it, the paper metrics do not.
    """

    def __init__(self, keep_values: bool = False) -> None:
        self._times: List[float] = []
        self._max_diff: List[float] = []
        self._mean_vs_true: List[float] = []
        self._present: List[int] = []
        self._refs: List[int] = []
        self._keep_values = keep_values
        self._values: List[np.ndarray] = []

    def record(
        self,
        true_time_us: float,
        clock_values: Sequence[float],
        reference_id: int = -1,
        full_values: Optional[np.ndarray] = None,
    ) -> None:
        """Record one sample of all present nodes' synchronized clocks.

        ``clock_values`` holds the synchronized members only (drives the
        metrics); ``full_values`` is the fixed-width per-node vector (NaN
        for absent/unsynchronized nodes), required iff ``keep_values``.
        """
        arr = np.asarray(clock_values, dtype=np.float64)
        self._times.append(true_time_us)
        self._max_diff.append(max_pairwise_difference(arr))
        self._mean_vs_true.append(float(arr.mean() - true_time_us) if arr.size else 0.0)
        self._present.append(arr.size)
        self._refs.append(reference_id)
        if self._keep_values:
            if full_values is None:
                raise ValueError("keep_values recorder needs full_values")
            self._values.append(np.asarray(full_values, dtype=np.float64).copy())

    def finalize(self) -> SyncTrace:
        """Build the immutable trace."""
        return SyncTrace(
            np.asarray(self._times),
            np.asarray(self._max_diff),
            np.asarray(self._mean_vs_true),
            np.asarray(self._present, dtype=np.int64),
            np.asarray(self._refs, dtype=np.int64),
            np.vstack(self._values) if self._keep_values and self._values else None,
        )


def sync_latency_us(
    trace: SyncTrace,
    threshold_us: float = INDUSTRY_THRESHOLD_US,
    sustain_samples: int = 5,
    start_us: float = 0.0,
) -> Optional[float]:
    """Time (from ``start_us``) until the max difference first drops below
    ``threshold_us`` and stays there for ``sustain_samples`` samples.

    Returns None if the network never synchronizes. Used for the Table 1
    "synchronization latency" column ("we consider the network to be
    synchronized when the maximum clock difference between any two nodes
    is under 25 us").
    """
    if sustain_samples < 1:
        raise ValueError("sustain_samples must be >= 1")
    below = trace.max_diff_us < threshold_us
    eligible = trace.times_us >= start_us
    run = 0
    for i in range(len(trace)):
        if not eligible[i]:
            continue
        run = run + 1 if below[i] else 0
        if run >= sustain_samples:
            first = i - sustain_samples + 1
            return float(trace.times_us[first] - start_us)
    return None


def audit_no_leaps(
    clock: AdjustedClock,
    t_start_hw: float,
    t_end_hw: float,
    samples: int = 512,
) -> bool:
    """Verify the paper's no-leap guarantee on a node's adjusted clock:
    continuous (at every segment join) and never decreasing over the
    hardware-time window."""
    for segment in clock.segments[1:]:
        if not t_start_hw <= segment.start <= t_end_hw:
            continue
    return clock.is_monotonic(t_start_hw, t_end_hw, samples=samples)
