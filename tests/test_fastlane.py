"""Cross-validation of the vectorised engines against the reference lane.

The lanes share RNG stream *names* but consume draws differently, so
equality is statistical: steady-state errors must agree within a factor,
and every qualitative claim (attack outcomes, churn survival, Fig. 1/2
shapes) must hold on both lanes.
"""

import numpy as np
import pytest

from repro.fastlane import run_sstsp_vectorized, run_tsf_vectorized
from repro.network.ibss import AttackerSpec, ScenarioSpec, build_network
from repro.sim.units import S


def wmax(trace, a_s, b_s):
    return float(trace.window(a_s * S, b_s * S).max_diff_us.max())


class TestTsfAgreement:
    def test_steady_state_matches_reference_lane(self):
        spec = ScenarioSpec(n=40, seed=3, duration_s=40.0)
        oo = build_network("tsf", spec).run().trace.steady_state_error_us()
        vec = run_tsf_vectorized(spec).trace.steady_state_error_us()
        assert vec == pytest.approx(oo, rel=0.5)

    def test_error_grows_with_n(self):
        small = run_tsf_vectorized(ScenarioSpec(n=20, seed=1, duration_s=40.0))
        large = run_tsf_vectorized(ScenarioSpec(n=120, seed=1, duration_s=40.0))
        assert (
            large.trace.steady_state_error_us()
            > small.trace.steady_state_error_us()
        )
        assert large.collisions > small.collisions * 2

    def test_success_rate_drops_with_n(self):
        small = run_tsf_vectorized(ScenarioSpec(n=20, seed=1, duration_s=40.0))
        large = run_tsf_vectorized(ScenarioSpec(n=120, seed=1, duration_s=40.0))
        assert large.successful_beacons < small.successful_beacons

    def test_attack_desynchronizes(self):
        spec = ScenarioSpec(
            n=30, seed=5, duration_s=30.0,
            attacker=AttackerSpec(start_s=10.0, end_s=20.0),
        )
        trace = run_tsf_vectorized(spec).trace
        assert wmax(trace, 12, 20) > 5 * wmax(trace, 5, 10)

    def test_trace_has_every_period(self):
        spec = ScenarioSpec(n=10, seed=2, duration_s=5.0)
        result = run_tsf_vectorized(spec)
        assert len(result.trace) == spec.periods


class TestSstspAgreement:
    def test_steady_state_matches_reference_lane(self):
        spec = ScenarioSpec(n=40, seed=3, duration_s=40.0)
        oo = build_network("sstsp", spec).run().trace.steady_state_error_us()
        vec = run_sstsp_vectorized(spec).trace.steady_state_error_us()
        assert vec == pytest.approx(oo, rel=0.35)

    def test_paper_accuracy_at_scale(self):
        spec = ScenarioSpec(n=200, seed=1, duration_s=60.0)
        trace = run_sstsp_vectorized(spec).trace
        assert trace.steady_state_error_us() < 15.0

    def test_large_network_election_concludes(self):
        # the 500-node bootstrap: error grows while clocks de-quantise,
        # then a reference emerges and the network converges (Fig. 2 shape)
        spec = ScenarioSpec(n=500, seed=1, duration_s=30.0)
        result = run_sstsp_vectorized(spec)
        assert result.reference_changes >= 1
        assert wmax(result.trace, 25, 30) < 20.0

    def test_insider_attack_bounded(self):
        spec = ScenarioSpec(
            n=50, seed=3, duration_s=30.0,
            attacker=AttackerSpec(start_s=10.0, end_s=20.0, shave_per_period_us=40.0),
        )
        trace = run_sstsp_vectorized(spec).trace
        assert wmax(trace, 11, 20) < 60.0
        assert trace.mean_vs_true_us[-1] < -1_000.0  # dragged virtual clock
        assert wmax(trace, 25, 30) < 15.0

    def test_churn_survived(self):
        spec = ScenarioSpec(n=40, seed=4, duration_s=260.0, churn="paper")
        result = run_sstsp_vectorized(spec)
        assert len(result.events) >= 2
        assert wmax(result.trace, 160.0, 200.0) < 15.0

    def test_deterministic(self):
        spec = ScenarioSpec(n=30, seed=9, duration_s=10.0)
        a = run_sstsp_vectorized(spec).trace.max_diff_us
        b = run_sstsp_vectorized(spec).trace.max_diff_us
        assert np.array_equal(a, b)


class TestLaneDivergenceBounds:
    """The lanes must agree on *who wins by how much*, the repro contract."""

    def test_protocol_ordering_preserved(self):
        spec = ScenarioSpec(n=40, seed=6, duration_s=30.0)
        tsf_vec = run_tsf_vectorized(spec).trace.steady_state_error_us()
        sstsp_vec = run_sstsp_vectorized(spec).trace.steady_state_error_us()
        tsf_oo = build_network("tsf", spec).run().trace.steady_state_error_us()
        sstsp_oo = build_network("sstsp", spec).run().trace.steady_state_error_us()
        assert sstsp_vec < tsf_vec / 3
        assert sstsp_oo < tsf_oo / 3
