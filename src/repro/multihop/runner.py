"""The multi-hop SSTSP simulation, as a client of the shared kernel.

One designated *root* (the paper's "first node arriving in the network"
that publishes ``T_0``) beacons at every BP exactly like the single-hop
reference node. Every synchronized node at hop ``h`` relays inside the
``h``-th segment of the beacon window (with a small random backoff inside
the segment, so same-hop relayers decorrelate), letting the time wave
cross the whole diameter within one BP. Reception is *spatial*: a station
hears exactly its graph neighbours, overlapping transmissions from two
audible neighbours collide at that receiver only.

Receivers run the unchanged SSTSP pipeline against their best upstream
(lowest hop, then earliest): per-relayer uTESLA material (modeled backend
semantics), the guard time, and the (k, b) slewing of equations (2)-(5) -
with one generalisation: the convergence target extrapolates the
*upstream's* timestamp grid (``ts1 + (j + m - j1) * BP``) instead of the
global ``T^{j+m}`` grid, because a relay's emission instant includes its
hop segment and backoff. For the root's direct children the two coincide.

If the root leaves, its orphaned hop-1 children run the single-hop
election among themselves; the winner becomes the new root.

This lane shares the simulation kernel with the single-hop engines:

* **clocks** — every station is a :class:`~repro.network.node.Node`
  holding a :class:`~repro.clocks.oscillator.HardwareClock` plus the
  :class:`~repro.clocks.chain.ClockChain` conversion between true /
  hardware / adjusted time;
* **MAC** — spatial carrier sensing runs through
  :func:`repro.mac.contention.resolve_neighborhood` (partition faults
  restrict each sender's hearing set);
* **PHY** — delivery runs through
  :class:`~repro.phy.channel.SpatialBroadcastChannel`, gaining the
  shared loss models (per-receiver / per-transmission /
  Gilbert-Elliott), jam windows, loss-burst overrides and per-link
  error overrides;
* **churn** — ``leave_at`` / ``return_at`` and an optional
  :class:`~repro.network.churn.ChurnSchedule` (reference markers
  included) apply through the shared
  :class:`~repro.network.churn.ChurnApplier`;
* **faults** — a :class:`~repro.faults.injector.FaultInjector` attaches
  exactly as on the single-hop runner (period hooks, stalls,
  partitions, crashes, clock mutations);
* **metrics** — samples are recorded with the shared
  :class:`~repro.analysis.metrics.TraceRecorder`.

A *complete* topology is the degenerate case where the spatial model
adds nothing over the single-hop IBSS; :meth:`MultiHopRunner.run` then
delegates to the reference :class:`~repro.network.runner.NetworkRunner`
built from :func:`degenerate_scenario`, so complete-graph multi-hop
specs reproduce the single-hop lane's election and adjustment decisions
exactly (see ``tests/test_differential_parity.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.analysis.metrics import SyncTrace, TraceRecorder
from repro.clocks.adjusted import AdjustedClock, MonotonicityError
from repro.clocks.chain import ClockChain
from repro.clocks.population import ClockPopulation
from repro.core.adjustment import (
    AdjustmentSample,
    DegenerateSamplesError,
    solve_adjustment,
)
from repro.core.config import SstspConfig
from repro.mac.contention import resolve_neighborhood
from repro.multihop.topology import Topology
from repro.network.churn import ChurnApplier, ChurnEvent, ChurnSchedule
from repro.network.ibss import ScenarioSpec, build_sstsp_network
from repro.network.node import Node
from repro.network.runner import RunnerParams
from repro.obs.events import emit
from repro.phy.channel import SpatialBroadcastChannel
from repro.phy.params import SSTSP_BEACON_BYTES, PhyParams
from repro.sim.rng import RngRegistry
from repro.sim.units import S

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.injector import FaultInjector

_LOSS_MODELS = ("per_receiver", "per_transmission", "gilbert_elliott")


@dataclass(frozen=True)
class MultiHopSpec:
    """Scenario description for one multi-hop run."""

    topology: Topology
    seed: int = 1
    duration_s: float = 60.0
    beacon_period_us: float = 0.1 * S
    drift_ppm: float = 100.0
    initial_offset_us: float = 0.0
    root: int = 0
    #: Beacon-window slots reserved per hop level. Must exceed the beacon
    #: airtime (7 slots) or adjacent hop segments overlap on the air and
    #: collide at every station hearing both hops.
    hop_stride_slots: int = 16
    slot_time_us: float = 9.0
    #: Airtime of one secure beacon (7 slots, as in single-hop SSTSP).
    beacon_airtime_slots: int = 7
    propagation_delay_us: float = 1.0
    timestamp_jitter_us: float = 2.0
    packet_error_rate: float = 1e-4
    #: Probability a relay-eligible node transmits in a given BP. Dense
    #: neighbourhoods benefit from thinning (fewer same-segment collisions).
    relay_probability: float = 1.0
    #: Multi-hop default is deeper filtering than single-hop (m = 4): each
    #: hop tracks a *tracking* clock, so the estimator's noise gain
    #: compounds per hop; small m amplifies it into instability.
    m: int = 4
    l: int = 2
    #: Guard time grows with the sender's hop: per-hop error accumulates
    #: roughly linearly, so a flat guard would cut off deep hops.
    guard_fine_us: float = 500.0
    guard_per_hop_us: float = 100.0
    #: After this many silent periods a node discards its synchronization
    #: state entirely and re-acquires from the first beacon it hears (the
    #: multi-hop analogue of the recovery extension).
    resync_after_periods: int = 10
    k_clamp: float = 5e-3
    #: Shared channel loss model (see :class:`repro.phy.params.PhyParams`).
    loss_model: str = "per_receiver"
    #: Optional churn schedule, merged with ``leave_at`` / ``return_at``
    #: (reference markers resolve to the current root).
    churn: Optional[ChurnSchedule] = None

    def __post_init__(self) -> None:
        if not 0 <= self.root < self.topology.n:
            raise ValueError("root must be a topology node")
        if not 0.0 < self.relay_probability <= 1.0:
            raise ValueError("relay_probability must be in (0, 1]")
        if self.hop_stride_slots < 1:
            raise ValueError("hop_stride_slots must be >= 1")
        if self.hop_stride_slots <= self.beacon_airtime_slots:
            raise ValueError(
                "hop_stride_slots must exceed beacon_airtime_slots: adjacent "
                "hop segments would overlap on the air"
            )
        if self.loss_model not in _LOSS_MODELS:
            raise ValueError(f"unknown loss model {self.loss_model!r}")

    @property
    def periods(self) -> int:
        return int(round(self.duration_s * S / self.beacon_period_us))


class _RelayProtocol:
    """Per-station multi-hop relay state (the SstspProtocol analogue).

    Exposes the protocol surface the shared kernel plumbing drives:
    ``is_synchronized`` / ``is_reference`` / ``clock`` for metrics and
    chaos invariants, ``on_leave`` / ``on_return`` for churn and fault
    restarts, ``synchronized_time`` for sampling. The heavy lifting
    (relay scheduling, guard, adjustment) lives in the runner, which
    mutates this state directly.
    """

    __slots__ = (
        "node_id",
        "chain",
        "hop",
        "upstream",
        "silent",
        "adjustments",
        "samples",
        "pending",
    )

    def __init__(self, node_id: int, chain: ClockChain) -> None:
        self.node_id = node_id
        self.chain = chain
        self.hop: Optional[int] = None  # None = not yet synchronized; 0 = root
        self.upstream: Optional[int] = None
        self.silent = 0
        self.adjustments = 0
        self.samples: List[AdjustmentSample] = []
        self.pending: Optional[Tuple[int, float, float]] = None

    @property
    def clock(self) -> AdjustedClock:
        """The station's adjusted clock (chaos monotonicity audits read it)."""
        return self.chain.adjusted

    def reset_sync(self) -> None:
        self.hop = None
        self.upstream = None
        self.samples.clear()
        self.pending = None
        self.silent = 0

    def synchronized_time(self, hw_time: float) -> float:
        return self.chain.adjusted.read_current(hw_time)

    def is_synchronized(self) -> bool:
        return self.hop is not None

    def is_reference(self) -> bool:
        return self.hop == 0

    def on_leave(self, period: int) -> None:
        """Graceful departure keeps state (the station may return in sync)."""

    def on_return(self, period: int) -> None:
        """A returning/restarted station re-acquires from scratch."""
        self.reset_sync()


class RelayNode(Node):
    """A multi-hop station: a kernel :class:`Node` whose protocol is the
    relay state, with the relay fields surfaced for tests/diagnostics."""

    __slots__ = ()

    @property
    def hop(self) -> Optional[int]:
        return self.protocol.hop

    @property
    def upstream(self) -> Optional[int]:
        return self.protocol.upstream

    @property
    def clock(self) -> AdjustedClock:
        return self.protocol.clock


@dataclass
class _Transmission:
    """One on-air relay beacon.

    ``timestamp`` is the sender's *normalized* time reference: its
    adjusted-clock estimate of the period start ``T^j`` (its actual
    emission instant is ``T^j + delay_us`` on its own clock, where
    ``delay_us`` - hop segment plus backoff - is deterministic schedule
    information carried in the beacon). Receivers subtract ``delay_us``
    from the reception time too, so sample pairs sit on a clean BP grid
    and per-period backoff never pollutes rate estimation - without this
    normalisation the backoff jitter (~3 slots) compounds per hop and
    blows up the deep-hop error.
    """

    sender: int
    hop: int
    interval: int
    tx_true: float
    timestamp: float
    delay_us: float


@dataclass
class MultiHopResult:
    """Outcome of one multi-hop run."""

    trace: SyncTrace
    per_hop_error_us: Dict[int, float]
    hop_of: Dict[int, int]
    root: int
    root_changes: int
    beacons_sent: int
    collisions_at_receivers: int

    def max_hop(self) -> int:
        """Deepest hop distance present in the final tree."""
        return max(self.hop_of.values()) if self.hop_of else 0


def degenerate_scenario(spec: MultiHopSpec) -> Tuple[ScenarioSpec, SstspConfig]:
    """Translate a complete-graph multi-hop spec to the single-hop lane.

    On a complete graph every station hears every other, hop distances
    are all 1 and the relay machinery degenerates to the IBSS election;
    the returned ``(scenario, config)`` pair builds the reference
    :class:`~repro.network.runner.NetworkRunner` with the same clocks,
    channel parameters and protocol constants (the per-hop guard
    collapses to ``guard_fine + guard_per_hop`` - one hop).
    """
    phy = PhyParams(
        slot_time_us=spec.slot_time_us,
        beacon_airtime_slots=spec.beacon_airtime_slots,
        propagation_delay_us=spec.propagation_delay_us,
        timestamp_jitter_us=spec.timestamp_jitter_us,
        packet_error_rate=spec.packet_error_rate,
        loss_model=spec.loss_model,
    )
    scenario = ScenarioSpec(
        n=spec.topology.n,
        seed=spec.seed,
        duration_s=spec.duration_s,
        beacon_period_us=spec.beacon_period_us,
        drift_ppm=spec.drift_ppm,
        initial_offset_us=spec.initial_offset_us,
        phy=phy,
    )
    config = SstspConfig(
        beacon_period_us=spec.beacon_period_us,
        slot_time_us=spec.slot_time_us,
        l=spec.l,
        m=spec.m,
        guard_fine_us=spec.guard_fine_us + spec.guard_per_hop_us,
        k_clamp=spec.k_clamp,
        rx_latency_us=(
            spec.beacon_airtime_slots * spec.slot_time_us
            + spec.propagation_delay_us
        ),
    )
    return scenario, config


class MultiHopRunner:
    """Drives one multi-hop SSTSP network on the shared kernel."""

    def __init__(self, spec: MultiHopSpec) -> None:
        self.spec = spec
        self.n = spec.topology.n
        self.rngs = RngRegistry(spec.seed)
        population = ClockPopulation.sample(
            self.n,
            self.rngs.get("clocks"),
            drift_ppm=spec.drift_ppm,
            initial_offset_us=spec.initial_offset_us,
        )
        self._slot_rng = self.rngs.get("slots")
        self.phy = PhyParams(
            slot_time_us=spec.slot_time_us,
            beacon_airtime_slots=spec.beacon_airtime_slots,
            propagation_delay_us=spec.propagation_delay_us,
            timestamp_jitter_us=spec.timestamp_jitter_us,
            packet_error_rate=spec.packet_error_rate,
            loss_model=spec.loss_model,
        )
        self.channel: SpatialBroadcastChannel = SpatialBroadcastChannel(
            self.phy, self.rngs.get("channel"), spec.topology
        )
        self.params = RunnerParams(
            beacon_period_us=spec.beacon_period_us,
            periods=spec.periods,
            beacon_airtime_slots=spec.beacon_airtime_slots,
        )
        self.nodes: List[Node] = []
        for i in range(self.n):
            hw = population.clock(i)
            node = RelayNode(i, hw)
            node.protocol = _RelayProtocol(i, ClockChain(hw))
            self.nodes.append(node)
        self._by_id: Dict[int, Node] = {node.node_id: node for node in self.nodes}
        self.root = spec.root
        self._state(self.root).hop = 0
        self._last_valid_root = spec.root
        self.root_changes = 0
        self.beacons_sent = 0
        self.collisions = 0
        self.recorder = TraceRecorder()
        self._per_hop_errors: Dict[int, List[float]] = {}
        self._relay_phase: Dict[Tuple[int, Optional[int], int], int] = {}
        #: scheduled departures: period -> list of nodes (tests/examples use
        #: this to exercise root failover)
        self.leave_at: Dict[int, List[int]] = {}
        self.return_at: Dict[int, List[int]] = {}
        self._events: List[str] = []
        self.injector: Optional["FaultInjector"] = None
        self._churn_applier: Optional[ChurnApplier] = None

    # ------------------------------------------------------------------
    # Kernel surface (shared with NetworkRunner)
    # ------------------------------------------------------------------

    def attach_injector(self, injector: "FaultInjector") -> None:
        """Bind a fault injector; its hooks run every period from now on."""
        injector.bind(self)
        self.injector = injector

    def current_reference(self) -> int:
        """The current root (-1 while orphaned) - the reference role of
        this lane, consulted by churn markers and crash bookkeeping."""
        if self.root >= 0 and self._by_id[self.root].present:
            return self.root
        return -1

    def _state(self, node_id: int) -> _RelayProtocol:
        return self._by_id[node_id].protocol

    # ------------------------------------------------------------------
    # Clock plumbing (through the shared ClockChain)
    # ------------------------------------------------------------------

    def _hw_at(self, node_id: int, true_time: float) -> float:
        return self._by_id[node_id].hw.read(true_time)

    def _true_at_adjusted(self, node_id: int, adjusted_value: float) -> float:
        return self._state(node_id).chain.true_at_adjusted(adjusted_value)

    def _adjusted_at(self, node_id: int, true_time: float) -> float:
        return self._state(node_id).chain.adjusted_at(true_time)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self) -> MultiHopResult:
        """Simulate all periods; returns the result bundle."""
        spec = self.spec
        if self.n >= 2 and spec.topology.is_complete():
            return self._run_degenerate()
        self._churn_applier = ChurnApplier(self._merged_churn())
        for period in range(1, spec.periods + 1):
            self._run_period(period)
        per_hop = {
            hop: float(np.median(values))
            for hop, values in sorted(self._per_hop_errors.items())
        }
        hop_of = (
            spec.topology.hop_distances(self.root) if self.root >= 0 else {}
        )
        return MultiHopResult(
            trace=self.recorder.finalize(),
            per_hop_error_us=per_hop,
            hop_of=hop_of,
            root=self.root,
            root_changes=self.root_changes,
            beacons_sent=self.beacons_sent,
            collisions_at_receivers=self.collisions,
        )

    def _run_period(self, period: int) -> None:
        self._apply_churn(period)
        if self.injector is not None:
            self.injector.on_period_start(period)
            stalled = self.injector.stalled_ids(period)
            partition = self.injector.partition_groups(period)
        else:
            stalled: frozenset = frozenset()
            partition = None
        # A crashed root orphans the tree exactly like a departed one.
        if self.root >= 0 and not self._by_id[self.root].present:
            self.root = -1
        transmissions = self._collect_transmissions(period, stalled, partition)
        receptions = self._resolve_receptions(transmissions, stalled, partition)
        accepted = self._process_receptions(period, receptions)
        self._end_period(period, accepted, stalled)
        self._sample_metrics(period)
        if self.injector is not None:
            self.injector.on_period_end(period)

    # ------------------------------------------------------------------
    # Degenerate (complete-graph) delegation
    # ------------------------------------------------------------------

    def _run_degenerate(self) -> MultiHopResult:
        """Run a complete-graph spec on the single-hop reference lane."""
        spec = self.spec
        scenario, config = degenerate_scenario(spec)
        inner = build_sstsp_network(scenario, config=config)
        # Keep the full clock matrix: per-hop errors are reconstructed
        # from it after the run.
        inner.params = replace(inner.params, keep_values=True)
        inner.recorder = TraceRecorder(keep_values=True)
        merged = self._merged_churn()
        if len(merged):
            inner.set_churn(merged)
        if self.injector is not None:
            inner.attach_injector(self.injector)
        result = inner.run()
        # Re-expose the inner kernel surface so post-run inspection
        # (chaos invariants, fault logs) sees the network that actually ran.
        self.nodes = inner.nodes
        self._by_id = inner._by_id
        self.channel = inner.channel  # type: ignore[assignment]
        self.params = inner.params
        self._events = inner._events

        trace = result.trace
        ref_ids = trace.reference_ids
        valid = ref_ids[ref_ids >= 0]
        final_root = int(valid[-1]) if valid.size else -1
        hop_of = (
            spec.topology.hop_distances(final_root) if final_root >= 0 else {}
        )
        per_hop_samples: Dict[int, List[float]] = {}
        if trace.values_us is not None and final_root >= 0:
            half = spec.periods // 2
            for idx in range(len(trace)):
                if idx + 1 <= half:  # mirror "period > periods // 2"
                    continue
                rid = int(ref_ids[idx])
                if rid < 0:
                    continue
                row = trace.values_us[idx]
                root_value = row[rid]
                if math.isnan(root_value):
                    continue
                for col in range(row.shape[0]):
                    hop = hop_of.get(col)
                    if hop is None or hop == 0:
                        continue
                    value = row[col]
                    if math.isnan(value):
                        continue
                    per_hop_samples.setdefault(hop, []).append(
                        abs(value - root_value)
                    )
        per_hop = {
            hop: float(np.median(values))
            for hop, values in sorted(per_hop_samples.items())
        }
        self.root = final_root
        self.root_changes = trace.reference_changes()
        self.beacons_sent = result.successful_beacons
        self.collisions = inner.channel.stats.collisions
        return MultiHopResult(
            trace=trace,
            per_hop_error_us=per_hop,
            hop_of=hop_of,
            root=final_root,
            root_changes=self.root_changes,
            beacons_sent=self.beacons_sent,
            collisions_at_receivers=self.collisions,
        )

    # ------------------------------------------------------------------
    # Churn
    # ------------------------------------------------------------------

    def _merged_churn(self) -> ChurnSchedule:
        """The spec's schedule plus the runner's leave_at/return_at dicts."""
        schedule = self.spec.churn or ChurnSchedule()
        extra = ChurnSchedule()
        for period in sorted(self.leave_at):
            extra.add(ChurnEvent(period, "leave", tuple(self.leave_at[period])))
        for period in sorted(self.return_at):
            extra.add(ChurnEvent(period, "return", tuple(self.return_at[period])))
        return schedule.merged_with(extra)

    def _apply_churn(self, period: int) -> None:
        def is_present(node_id: int) -> Optional[bool]:
            node = self._by_id.get(node_id)
            return None if node is None else node.present

        t_us = period * self.spec.beacon_period_us

        def leave(node_id: int) -> None:
            node = self._by_id[node_id]
            node.present = False
            node.protocol.on_leave(period)
            self._events.append(f"p{period}: node {node_id} left")
            emit("churn_leave", t_us=t_us, node=node_id, period=period)
            if node_id == self.root:
                self.root = -1  # orphaned; hop-1 children will elect

        def ret(node_id: int) -> None:
            node = self._by_id[node_id]
            node.present = True
            node.protocol.on_return(period)
            self._events.append(f"p{period}: node {node_id} returned")
            emit("churn_return", t_us=t_us, node=node_id, period=period)

        assert self._churn_applier is not None
        self._churn_applier.apply(
            period,
            current_reference=self.current_reference,
            is_present=is_present,
            leave=leave,
            ret=ret,
        )

    # ------------------------------------------------------------------
    # Phases of one period
    # ------------------------------------------------------------------

    def _relay_turn(self, node: int, period: int) -> bool:
        """Relay scheduling with deterministic same-hop rotation.

        With every same-hop station relaying every BP, dense neighbourhoods
        collide persistently; with *random* thinning, receivers keep
        flipping upstreams (each flip resets their sample history). A
        deterministic rotation - each station relays every K-th period at
        a fixed (randomly drawn, then frozen) phase - cuts collisions while
        keeping each upstream's beacons periodic, so downstream sample
        pairs stay within the pair-gap limit.

        The rotation counts same-hop stations over the *two-hop*
        neighbourhood: hidden terminals (same-hop stations out of carrier-
        sense range but sharing a receiver) are exactly the pairs that
        carrier sensing cannot separate.
        """
        spec = self.spec
        if spec.relay_probability < 1.0:
            return self._slot_rng.random() < spec.relay_probability
        state = self._state(node)
        same_hop = sum(
            1
            for other in spec.topology.two_hop_neighbors(node)
            if self._by_id[other].present
            and self._state(other).hop == state.hop
        )
        if same_hop == 0:
            return True
        cycle = min(4, 1 + same_hop)
        return period % cycle == self._relay_phase_for(node, cycle)

    def _relay_phase_for(self, node: int, cycle: int) -> int:
        """Greedy phase coloring over the same-hop/2-hop conflict graph.

        Two hidden same-hop stations with *equal* fixed phases would
        collide forever at their common receivers; purely random per-period
        draws starve dense neighbourhoods instead. Greedily picking the
        phase least used by already-colored conflicting stations keeps
        relaying periodic (downstream sample pairs stay fresh) while
        resolving the permanent-collision cases. Phases are re-colored
        when a station's hop (and thus its conflict set) changes.
        """
        state = self._state(node)
        key = (node, state.hop, cycle)
        phase = self._relay_phase.get(key)
        if phase is not None:
            return phase
        used = [0] * cycle
        for other in self.spec.topology.two_hop_neighbors(node):
            other_state = self._state(other)
            if other_state.hop != state.hop:
                continue
            other_phase = self._relay_phase.get((other, other_state.hop, cycle))
            if other_phase is not None:
                used[other_phase] += 1
        least = min(used)
        candidates = [p for p, count in enumerate(used) if count == least]
        phase = candidates[node % len(candidates)]
        self._relay_phase[key] = phase
        return phase

    def _backoff_range(self) -> int:
        """Backoff slots usable inside a hop segment without bleeding the
        transmission into the next segment."""
        return max(
            1, self.spec.hop_stride_slots - self.spec.beacon_airtime_slots
        )

    def _collect_transmissions(
        self,
        period: int,
        stalled: frozenset,
        partition: Optional[Dict[int, int]],
    ) -> List[_Transmission]:
        spec = self.spec
        nominal = period * spec.beacon_period_us
        out: List[_Transmission] = []
        orphan_election = self.root < 0 or not self._by_id[self.root].present
        for i in range(self.n):
            node = self._by_id[i]
            if not node.present or i in stalled:
                continue
            state = node.protocol
            if i == self.root:
                delay = 0.0
            elif orphan_election and state.hop == 1 and state.silent >= spec.l:
                # orphaned children of a departed root: contend in segment 0
                slot = int(self._slot_rng.integers(0, self._backoff_range()))
                delay = slot * spec.slot_time_us
            elif (
                state.hop is not None
                and state.hop >= 1
                and state.adjustments >= 1
                and self._relay_turn(i, period)
            ):
                slot = int(self._slot_rng.integers(0, self._backoff_range()))
                delay = (
                    state.hop * spec.hop_stride_slots + slot
                ) * spec.slot_time_us
            else:
                continue
            tx_true = state.chain.true_at_adjusted(nominal + delay)
            # normalized reference: the sender's clock reads exactly
            # nominal + delay at tx, so its T^j estimate is ``nominal``
            timestamp = nominal
            hop = 0 if i == self.root else (state.hop if state.hop is not None else 0)
            out.append(_Transmission(i, hop, period, tx_true, timestamp, delay))
        return self._carrier_sense(out, partition)

    def _carrier_sense(
        self,
        candidates: List[_Transmission],
        partition: Optional[Dict[int, int]],
    ) -> List[_Transmission]:
        """802.11 deferral/cancellation over the hearing graph: a relay
        whose backoff expires while an *audible* neighbour's transmission
        is on the air cancels (it just received that beacon). Mutually
        hidden transmitters still collide downstream - that is physics,
        handled at the receivers. A partition fault cuts hearing across
        groups."""
        spec = self.spec
        airtime = spec.beacon_airtime_slots * spec.slot_time_us
        by_sender = {tx.sender: tx for tx in candidates}

        def hears(sender: int):
            neighbors = spec.topology.neighbors(sender)
            if partition is None:
                return neighbors
            group = partition.get(sender)
            return [n for n in neighbors if partition.get(n) == group]

        result = resolve_neighborhood(
            [(tx.sender, tx.tx_true) for tx in candidates], airtime, hears
        )
        self.beacons_sent += len(result.kept)
        kept = [by_sender[sender] for sender, _start in result.kept]
        for tx in kept:
            emit(
                "beacon_tx",
                t_us=tx.tx_true,
                node=tx.sender,
                period=tx.interval,
                hop=tx.hop,
                proto="sstsp",
            )
        return kept

    def _resolve_receptions(
        self,
        transmissions: List[_Transmission],
        stalled: frozenset,
        partition: Optional[Dict[int, int]],
    ) -> Dict[int, List[_Transmission]]:
        """Per-receiver spatial reception through the shared channel."""
        spec = self.spec
        airtime = spec.beacon_airtime_slots * spec.slot_time_us
        by_sender = {tx.sender: tx for tx in transmissions}
        receivers = [
            i
            for i in range(self.n)
            if self._by_id[i].present and i not in stalled
        ]
        audible = None
        if partition is not None:
            groups = partition

            def audible(receiver: int, sender: int) -> bool:
                return groups.get(receiver) == groups.get(sender)

        delivery = self.channel.deliver_window(
            [(tx.sender, tx.tx_true) for tx in transmissions],
            receivers,
            airtime,
            size_bytes=SSTSP_BEACON_BYTES,
            audible=audible,
        )
        self.collisions += delivery.collisions
        return {
            receiver: [by_sender[s] for s in senders]
            for receiver, senders in delivery.receptions.items()
        }

    def _process_receptions(
        self, period: int, receptions: Dict[int, List[_Transmission]]
    ) -> Set[int]:
        """Returns the set of receivers that *accepted* a beacon (decoded,
        interval-fresh and guard-passing) - the input to silence tracking."""
        spec = self.spec
        accepted: Set[int] = set()
        latency = (
            spec.beacon_airtime_slots * spec.slot_time_us
            + spec.propagation_delay_us
        )
        for receiver, decoded in receptions.items():
            for tx in decoded:
                emit(
                    "beacon_rx",
                    t_us=tx.tx_true + latency,
                    node=receiver,
                    src=tx.sender,
                    period=period,
                    proto="sstsp",
                )
            if receiver == self.root:
                accepted.add(receiver)
                continue
            state = self._state(receiver)
            # Upstream selection: stick with the current upstream whenever
            # its beacon decoded (switching resets the sample history);
            # switch only to a strictly better hop, or when the current
            # upstream went quiet.
            decoded.sort(key=lambda tx: (tx.hop, tx.tx_true))
            best = decoded[0]
            current = next(
                (tx for tx in decoded if tx.sender == state.upstream), None
            )
            if current is not None and best.hop >= current.hop:
                chosen = current
            elif current is not None and best.hop < current.hop:
                chosen = best  # strictly better hop: re-hang
            elif state.upstream is None or state.silent >= 2 * self.spec.l:
                chosen = best
            else:
                continue  # upstream not heard this period; stay patient
            arrival = chosen.tx_true + latency
            jitter = self.channel.sample_timestamp_error()
            # normalise out the sender's deterministic schedule delay (see
            # _Transmission): both sides of the sample sit on the BP grid
            hw = self._hw_at(receiver, arrival) - chosen.delay_us
            est = chosen.timestamp + latency + jitter
            local = state.clock.read_current(hw)
            if state.hop is None:
                # first contact: loose initialisation (the coarse phase of
                # a joiner, collapsed to one sample for founding nodes that
                # are loosely synchronized already)
                state.chain.adjusted = AdjustedClock(
                    state.clock.k, state.clock.b + (est - local)
                )
                state.hop = chosen.hop + 1
                state.upstream = chosen.sender
                state.silent = 0
                accepted.add(receiver)
                continue
            guard = spec.guard_fine_us + spec.guard_per_hop_us * (chosen.hop + 1)
            if abs(est - local) > guard:
                emit(
                    "guard_reject",
                    t_us=local,
                    node=receiver,
                    diff_us=abs(est - local),
                    threshold_us=guard,
                )
                continue  # guard time: replayed/delayed/forged or far drift
            silent_before = state.silent
            state.silent = 0
            accepted.add(receiver)
            better_hop = chosen.hop + 1 < state.hop
            if chosen.sender != state.upstream:
                if (
                    better_hop
                    or state.upstream is None
                    or silent_before >= 2 * spec.l
                ):
                    state.upstream = chosen.sender
                    state.hop = chosen.hop + 1
                    state.samples.clear()
                    state.pending = None
                else:
                    continue  # stick with the current upstream
            else:
                state.hop = chosen.hop + 1
            # uTESLA delayed authentication: last period's pending
            # observation from this upstream becomes a sample now
            if state.pending is not None and state.pending[0] < period:
                interval, p_hw, p_est = state.pending
                state.samples.append(AdjustmentSample(interval, p_hw, p_est))
                del state.samples[:-2]
            state.pending = (period, hw, est)
            self._try_adjust(receiver, period, hw)
        return accepted

    def _try_adjust(self, receiver: int, period: int, hw_now: float) -> None:
        spec = self.spec
        state = self._state(receiver)
        if len(state.samples) < 2:
            return
        newest, older = state.samples[-1], state.samples[-2]
        # freshness limits sized to the relay rotation: an upstream on a
        # cycle-4 rotation yields samples up to 4 periods apart
        if period - newest.interval > 6 or newest.interval - older.interval > 9:
            return
        # generalised equation (5): extrapolate the upstream's own grid
        target = newest.ref_timestamp + (
            period + spec.m - newest.interval
        ) * spec.beacon_period_us
        try:
            k, b = solve_adjustment(
                state.clock.k, state.clock.b, hw_now, newest, older, target
            )
        except DegenerateSamplesError:
            return
        if abs(k - 1.0) > spec.k_clamp:
            return
        try:
            state.clock.adjust(k, b, hw_now)
        except MonotonicityError:
            return
        state.adjustments += 1

    def _end_period(
        self, period: int, accepted: Set[int], stalled: frozenset
    ) -> None:
        spec = self.spec
        orphan_election = self.root < 0
        for i in range(self.n):
            node = self._by_id[i]
            if not node.present or i == self.root or i in stalled:
                continue
            state = node.protocol
            if i not in accepted:
                state.silent += 1
                if state.silent > 4 * spec.l and state.upstream is not None:
                    # upstream lost: detach and re-acquire from any beacon
                    state.samples.clear()
                    state.pending = None
                    state.upstream = None
                if state.silent > spec.resync_after_periods and state.hop is not None:
                    # nothing acceptable heard for a long stretch: this
                    # clock has diverged beyond the guard - start over
                    state.reset_sync()
        if orphan_election:
            # a hop-1 orphan that transmitted and heard nothing becomes root
            candidates = [
                i
                for i in range(self.n)
                if self._by_id[i].present
                and i not in stalled
                and self._state(i).hop == 1
                and i not in accepted
            ]
            # the transmission set for this period is gone; approximate the
            # single-winner rule with the earliest-slot draw equivalent:
            if candidates:
                winner = candidates[0]
                self.root = winner
                state = self._state(winner)
                state.hop = 0
                state.upstream = None
                self.root_changes += 1
                emit(
                    "reference_change",
                    t_us=period * spec.beacon_period_us,
                    old_ref=self._last_valid_root,
                    new_ref=winner,
                    period=period,
                )
                self._last_valid_root = winner
                # the new root is the timebase: clamp away any transient
                # slewing slope (same rationale as the single-hop
                # reference_pace_clamp), continuously at the current time
                hw_now = self._hw_at(winner, (period + 1) * spec.beacon_period_us)
                k_old = state.clock.k
                k_new = min(max(k_old, 1.0 - 3e-4), 1.0 + 3e-4)
                if k_new != k_old:
                    state.clock.slew_to(0.0, k_new, at_local_time=hw_now)

    def _sample_metrics(self, period: int) -> None:
        spec = self.spec
        sample_time = (period + 0.9) * spec.beacon_period_us
        values = []
        present_synced = []
        for i in range(self.n):
            node = self._by_id[i]
            if node.present and node.protocol.hop is not None:
                values.append(self._adjusted_at(i, sample_time))
                present_synced.append(i)
        self.recorder.record(
            sample_time, values, self.root if self.root >= 0 else -1
        )
        # per-hop error vs the root (second half of the run only)
        if self.root >= 0 and period > spec.periods // 2:
            root_value = self._adjusted_at(self.root, sample_time)
            hops = self.spec.topology.hop_distances(self.root)
            for i, value in zip(present_synced, values):
                hop = hops.get(i)
                if hop is None or hop == 0:
                    continue
                self._per_hop_errors.setdefault(hop, []).append(
                    abs(value - root_value)
                )


def run_multihop(spec: MultiHopSpec) -> MultiHopResult:
    """Convenience wrapper."""
    return MultiHopRunner(spec).run()
