"""Extension bench: multi-hop SSTSP (the paper's future work).

Runs the multi-hop scenario suite through the sweep orchestrator (the
same lane as ``python -m repro multihop``), so the bench inherits the
shared ``--sweep-workers`` / ``--sweep-cache-dir`` flags, and checks the
extension's qualitative contract: hop-1 at single-hop accuracy, smooth
(amplifying) growth with depth, all stations synchronized well inside a
beacon period.
"""

from __future__ import annotations

from conftest import paper_rows

from repro.experiments import multihop

#: One content-addressed JobSpec per scenario: the worst-case chain and
#: a random unit-disk deployment (drawn from the job's derived seed).
SCENARIOS = (
    {
        "name": "chain15",
        "topology": "chain",
        "n": 15,
        "duration_s": 30.0,
        "seed": 3,
        "m": 8,
    },
    {
        "name": "disk40",
        "topology": "unit_disk",
        "n": 40,
        "area_m": 1_000.0,
        "radius_m": 300.0,
        "duration_s": 30.0,
        "seed": 3,
    },
)


def _run_suite(sweep):
    return multihop.run(scenarios=SCENARIOS, sweep=sweep)


def test_multihop_suite(benchmark, sweep_options):
    chain, disk = benchmark.pedantic(
        _run_suite, args=(sweep_options,), rounds=1, iterations=1
    )

    # chain of 15: the error-vs-hop-distance profile
    errors = chain["per_hop_error_us"]
    assert set(errors) == set(range(1, 15))
    assert errors[1] < 10.0                      # single-hop accuracy
    assert errors[14] > errors[1]                # amplification with depth
    assert max(errors.values()) < 10_000.0       # inside 10% of a BP
    paper_rows(
        benchmark,
        "multihop: error vs hop distance (chain of 15)",
        [f"hop {h}: {errors[h]:.1f}us" for h in sorted(errors)],
    )

    # unit-disk 40: whole deployment synchronized (the odd straggler may
    # be re-acquiring when the run ends)
    assert disk["final_present"] >= 38
    assert disk["per_hop_error_us"][1] < 10.0
    paper_rows(
        benchmark,
        "multihop: unit-disk 40 stations",
        [
            f"hop {h}: {v:.1f}us"
            for h, v in sorted(disk["per_hop_error_us"].items())
        ],
    )
