"""Tests for the application-layer evaluations (power save, FHSS, TDMA)."""

import numpy as np
import pytest

from repro.analysis.metrics import TraceRecorder
from repro.apps import (
    FhssConfig,
    PowerSaveConfig,
    TdmaConfig,
    evaluate_fhss,
    evaluate_power_save,
    evaluate_tdma,
)
from repro.apps.fhss import hop_channel
from repro.experiments.scenarios import quick_spec
from repro.fastlane import run_sstsp_vectorized


def make_trace(offsets_by_period, n=4):
    """A trace whose per-node clocks are t + given offsets."""
    recorder = TraceRecorder(keep_values=True)
    for i, offsets in enumerate(offsets_by_period):
        t = (i + 1) * 100_000.0
        values = np.asarray([t + o for o in offsets], dtype=float)
        recorder.record(t, values[np.isfinite(values)], 0, full_values=values)
    return recorder.finalize()


class TestRecorderValues:
    def test_values_matrix_kept(self):
        trace = make_trace([[0.0, 5.0, -5.0, np.nan]] * 3)
        assert trace.values_us.shape == (3, 4)
        assert np.isnan(trace.values_us[0, 3])

    def test_window_slices_values(self):
        trace = make_trace([[0.0, 1.0, 2.0, 3.0]] * 10)
        sub = trace.window(250_000.0, 550_000.0)
        assert sub.values_us.shape[0] == len(sub)

    def test_keep_values_requires_full(self):
        recorder = TraceRecorder(keep_values=True)
        with pytest.raises(ValueError):
            recorder.record(1.0, [1.0, 2.0], 0)

    def test_engine_produces_values(self):
        spec = quick_spec(10, seed=1, duration_s=3.0)
        trace = run_sstsp_vectorized(spec, keep_values=True).trace
        assert trace.values_us is not None
        assert trace.values_us.shape == (spec.periods, 10)


class TestPowerSave:
    def test_perfect_sync_needs_only_airtime(self):
        trace = make_trace([[0.0, 0.0, 0.0, 0.0]] * 5)
        report = evaluate_power_save(trace, PowerSaveConfig(atim_window_us=1_000.0))
        assert report.failure_rate == 0.0
        assert report.min_safe_window_us == pytest.approx(100.0)

    def test_misalignment_drives_window(self):
        trace = make_trace([[0.0, 200.0, -200.0, 50.0]] * 5)
        report = evaluate_power_save(trace, PowerSaveConfig(atim_window_us=1_000.0))
        assert report.max_misalignment_us == pytest.approx(400.0)
        assert report.min_safe_window_us == pytest.approx(500.0)

    def test_failures_counted(self):
        config = PowerSaveConfig(atim_window_us=300.0, announcement_airtime_us=100.0)
        trace = make_trace([[0.0, 250.0]] * 3 + [[0.0, 100.0]] * 7, n=2)
        report = evaluate_power_save(trace, config)
        assert report.failure_rate == pytest.approx(0.3)

    def test_energy_savings_comparison(self):
        good = evaluate_power_save(make_trace([[0.0, 10.0]] * 5, n=2))
        bad = evaluate_power_save(make_trace([[0.0, 1_000.0]] * 5, n=2))
        assert good.energy_savings_vs(bad) > 0.5

    def test_needs_values(self):
        recorder = TraceRecorder()
        recorder.record(1.0, [1.0, 2.0], 0)
        with pytest.raises(ValueError):
            evaluate_power_save(recorder.finalize())

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PowerSaveConfig(atim_window_us=0)
        with pytest.raises(ValueError):
            PowerSaveConfig(announcement_airtime_us=5_000.0)
        with pytest.raises(ValueError):
            PowerSaveConfig(beacon_period_us=1_000.0)


class TestFhss:
    def test_perfect_alignment(self):
        trace = make_trace([[0.0, 0.0, 0.0, 0.0]] * 5)
        report = evaluate_fhss(trace)
        assert report.aligned_fraction_worst_pair == pytest.approx(1.0)
        assert report.misalignment_over_dwell == 0.0

    def test_misalignment_costs_airtime(self):
        config = FhssConfig(dwell_time_us=10_000.0, frame_airtime_us=500.0)
        trace = make_trace([[0.0, 1_000.0]] * 5, n=2)
        report = evaluate_fhss(trace, config)
        assert report.aligned_fraction_worst_pair == pytest.approx(0.9)
        assert report.frame_loss_worst_pair == pytest.approx(0.15)

    def test_beyond_dwell_never_aligned(self):
        config = FhssConfig(dwell_time_us=1_000.0, frame_airtime_us=100.0)
        trace = make_trace([[0.0, 5_000.0]] * 5, n=2)
        report = evaluate_fhss(trace, config)
        assert report.aligned_fraction_worst_pair == 0.0
        assert report.frame_loss_worst_pair == 1.0

    def test_hop_channel_deterministic_and_in_range(self):
        config = FhssConfig(channels=79)
        channels = {hop_channel(t * 10_000.0, config) for t in range(200)}
        assert all(0 <= c < 79 for c in channels)
        assert len(channels) > 30  # spreads over the band
        assert hop_channel(123_456.0, config) == hop_channel(123_456.0, config)

    def test_same_slot_same_channel(self):
        config = FhssConfig(dwell_time_us=10_000.0)
        assert hop_channel(5_000.0, config) == hop_channel(9_999.0, config)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FhssConfig(dwell_time_us=0)
        with pytest.raises(ValueError):
            FhssConfig(channels=1)
        with pytest.raises(ValueError):
            FhssConfig(frame_airtime_us=20_000.0)


class TestTdma:
    def test_violations_counted(self):
        config = TdmaConfig(guard_us=100.0)
        trace = make_trace([[0.0, 150.0]] * 4 + [[0.0, 50.0]] * 6, n=2)
        report = evaluate_tdma(trace, config)
        assert report.violation_rate == pytest.approx(0.4)

    def test_min_guard_has_safety_factor(self):
        config = TdmaConfig(safety_factor=1.5)
        trace = make_trace([[0.0, 100.0]] * 5, n=2)
        report = evaluate_tdma(trace, config)
        assert report.min_guard_us == pytest.approx(150.0)

    def test_efficiency(self):
        config = TdmaConfig(slot_payload_us=1_000.0, guard_us=100.0)
        trace = make_trace([[0.0, 10.0]] * 5, n=2)
        report = evaluate_tdma(trace, config)
        assert report.efficiency == pytest.approx(1_000.0 / 1_100.0)

    def test_capacity_gain(self):
        good = evaluate_tdma(make_trace([[0.0, 5.0]] * 5, n=2))
        bad = evaluate_tdma(make_trace([[0.0, 500.0]] * 5, n=2))
        assert good.capacity_gain_vs(bad) > 0.2

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TdmaConfig(slot_payload_us=0)
        with pytest.raises(ValueError):
            TdmaConfig(safety_factor=0.5)


class TestEndToEnd:
    def test_sstsp_beats_tsf_on_every_application(self):
        from repro.fastlane import run_tsf_vectorized

        spec = quick_spec(30, seed=4, duration_s=20.0)
        tsf = run_tsf_vectorized(spec, keep_values=True).trace.window(5e6, 21e6)
        sstsp = run_sstsp_vectorized(spec, keep_values=True).trace.window(5e6, 21e6)
        assert (
            evaluate_power_save(sstsp).min_safe_window_us
            < evaluate_power_save(tsf).min_safe_window_us
        )
        assert (
            evaluate_fhss(sstsp).frame_loss_worst_pair
            <= evaluate_fhss(tsf).frame_loss_worst_pair
        )
        assert evaluate_tdma(sstsp).min_guard_us < evaluate_tdma(tsf).min_guard_us
