"""Micro-benchmarks of the simulation substrates.

These are regression guards on the kernels everything else is built from:
the event queue, vectorised clock reads, and the per-period cost of both
engines at a fixed size.
"""

from __future__ import annotations

import numpy as np

from conftest import measure_work

from repro.clocks.population import ClockPopulation
from repro.experiments.scenarios import quick_spec
from repro.fastlane import run_sstsp_vectorized
from repro.sim.engine import Simulator


def test_event_queue_throughput(benchmark):
    def run_events():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1

        for i in range(10_000):
            sim.schedule(float(i), tick)
        sim.run()
        return count[0]

    assert benchmark(run_events) == 10_000
    assert measure_work(benchmark, run_events) == 10_000


def test_clock_population_read(benchmark):
    rng = np.random.default_rng(0)
    population = ClockPopulation.sample(10_000, rng)
    out = np.empty(10_000)
    benchmark(lambda: population.read_all(123_456.789, out=out))
    measure_work(benchmark, lambda: population.read_all(123_456.789, out=out))


def test_sstsp_vec_period_cost(benchmark):
    """Per-BP cost of the vector engine at 500 nodes (~0.03 ms/period
    keeps the 10,000-period paper run under a second)."""
    spec = quick_spec(500, seed=1, duration_s=10.0)
    result = benchmark.pedantic(
        lambda: run_sstsp_vectorized(spec), rounds=2, iterations=1
    )
    assert len(result.trace) == spec.periods
    measure_work(benchmark, run_sstsp_vectorized, spec)
