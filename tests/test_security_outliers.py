"""Unit tests for the outlier filters (threshold and GESD)."""

import pytest

from repro.security.outliers import gesd_outliers, robust_offset_average, threshold_filter


class TestThresholdFilter:
    def test_keeps_values_near_median(self):
        mask = threshold_filter([1.0, 2.0, 3.0, 100.0], threshold=10.0)
        assert mask.tolist() == [True, True, True, False]

    def test_median_not_mean_resists_bias(self):
        # one enormous outlier must not drag the reference point
        offsets = [0.0, 1.0, -1.0, 2.0, 1e9]
        mask = threshold_filter(offsets, threshold=5.0)
        assert mask.tolist() == [True, True, True, True, False]

    def test_empty(self):
        assert threshold_filter([], 5.0).size == 0

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            threshold_filter([1.0], -1.0)

    def test_zero_threshold_keeps_median_only(self):
        mask = threshold_filter([1.0, 1.0, 5.0], threshold=0.0)
        assert mask.tolist() == [True, True, False]


class TestGesd:
    def test_detects_planted_outliers(self, rng):
        data = rng.normal(0.0, 1.0, 60).tolist()
        data[5] = 40.0
        data[20] = -35.0
        outliers = gesd_outliers(data, max_outliers=8)
        assert set(outliers) == {5, 20}

    def test_clean_data_yields_none(self, rng):
        data = rng.normal(0.0, 1.0, 60)
        assert gesd_outliers(data, max_outliers=8) == []

    def test_handles_small_samples(self):
        assert gesd_outliers([1.0, 2.0], max_outliers=1) == []

    def test_zero_variance(self):
        assert gesd_outliers([5.0] * 10, max_outliers=3) == []

    def test_max_outliers_zero(self):
        assert gesd_outliers([1.0, 2.0, 50.0], max_outliers=0) == []

    def test_negative_max_rejected(self):
        with pytest.raises(ValueError):
            gesd_outliers([1.0, 2.0, 3.0], max_outliers=-1)

    def test_masking_resistant(self, rng):
        # two nearby outliers mask each other for single-pass tests; GESD
        # is designed to find both
        data = rng.normal(0.0, 1.0, 50).tolist()
        data[10] = 25.0
        data[11] = 26.0
        outliers = gesd_outliers(data, max_outliers=6)
        assert {10, 11} <= set(outliers)


class TestRobustAverage:
    def test_malicious_offsets_excluded(self, rng):
        honest = rng.normal(10.0, 1.0, 20)
        offsets = honest.tolist() + [50_000.0, -90_000.0]
        average, used = robust_offset_average(offsets, threshold=100.0)
        assert used == 20
        assert average == pytest.approx(honest.mean(), abs=1e-9)

    def test_gesd_pass_tightens(self, rng):
        honest = rng.normal(0.0, 1.0, 30)
        offsets = honest.tolist() + [80.0]  # inside a loose threshold
        avg_plain, used_plain = robust_offset_average(offsets, threshold=100.0)
        avg_gesd, used_gesd = robust_offset_average(
            offsets, threshold=100.0, use_gesd=True
        )
        assert used_gesd < used_plain
        assert abs(avg_gesd) < abs(avg_plain)

    def test_all_rejected_returns_zero_used(self):
        average, used = robust_offset_average([1e9, -1e9], threshold=1.0)
        # the median of two extreme values keeps at least one inlier by
        # construction; verify behaviour is sane rather than crashing
        assert used >= 0

    def test_empty(self):
        assert robust_offset_average([], threshold=10.0) == (0.0, 0)
