"""Coarse synchronization phase (paper section 3.3).

A node joining the network scans beacons for several BPs *without*
transmitting, collects the offsets between received timestamps and its own
clock, eliminates biased offsets (threshold filter, optionally GESD, per
reference [7]), and applies the average of the survivors as a one-time
initial adjustment. The goal is only the *loose* synchronization uTESLA
needs (within half a beacon period); precision comes later from the
fine-grained phase.

The one-time application is an initialisation, not a runtime leap: the
node is not yet part of the synchronized network while in this phase, so
the no-discontinuity guarantee (which protects consumers of an already-
synchronized clock) does not apply yet.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.config import SstspConfig
from repro.obs.events import emit
from repro.security.outliers import robust_offset_average


class CoarseSynchronizer:
    """Offset collection and robust aggregation for one joining node."""

    def __init__(self, config: SstspConfig, node_id: Optional[int] = None) -> None:
        self._config = config
        self._node_id = node_id
        self._offsets: List[float] = []
        self._periods_scanned = 0
        self.samples_rejected = 0
        self.batches_retried = 0

    @property
    def samples_collected(self) -> int:
        """Raw offsets collected so far (before filtering)."""
        return len(self._offsets)

    @property
    def periods_scanned(self) -> int:
        """BPs spent scanning so far."""
        return self._periods_scanned

    def add_sample(self, offset_us: float) -> None:
        """Record one observed offset (estimated timestamp - own clock)."""
        self._offsets.append(float(offset_us))

    def tick_period(self) -> None:
        """Mark the end of one scanned BP."""
        self._periods_scanned += 1

    def try_finish(self) -> Optional[float]:
        """Return the initial offset to apply, or None to keep scanning.

        Finishes when ``coarse_min_samples`` offsets were collected, or
        when ``coarse_max_periods`` BPs elapsed with at least one sample.
        Returns None (keep scanning) if fewer than
        ``coarse_min_survivors`` offsets survive the bias filter —
        averaging a possibly-biased remnant is worse than another scan.
        """
        cfg = self._config
        enough = len(self._offsets) >= cfg.coarse_min_samples
        timed_out = self._periods_scanned >= cfg.coarse_max_periods and self._offsets
        if not (enough or timed_out):
            return None
        average, used = robust_offset_average(
            self._offsets,
            threshold=cfg.guard_coarse_us,
            use_gesd=cfg.coarse_use_gesd,
        )
        if used < cfg.coarse_min_survivors:
            # Too few trustworthy offsets: drop the batch and keep scanning.
            self.samples_rejected += len(self._offsets)
            self.batches_retried += 1
            emit(
                "coarse_retry",
                node=self._node_id,
                samples=len(self._offsets),
                survivors=used,
            )
            self._offsets.clear()
            self._periods_scanned = 0
            return None
        self.samples_rejected += len(self._offsets) - used
        # t_us deliberately absent: this layer sees offsets, not a clock.
        emit(
            "coarse_done",
            node=self._node_id,
            samples=len(self._offsets),
            survivors=used,
            offset_us=average,
        )
        return average
