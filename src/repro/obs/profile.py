"""Opt-in wall-clock section profiling for the orchestration layer.

Everything below the orchestrator takes time from the simulation engine
— reprolint's D002 rule enforces that a host-clock read anywhere in the
simulation stack is an error, because wall time makes results a
function of machine load. Profiling, however, is *about* wall time:
"where did this sweep's 40 seconds go — engine, crypto, cache?" is a
question only the host clock answers.

This module is the single sanctioned home for those reads. It is
allowlisted for D002 alongside ``sweep/orchestrator.py`` (see
:class:`repro.lint.rules.LintConfig.wallclock_allow`), and the contract
that keeps the carve-out safe is:

* a :class:`Profiler` may be *driven* from anywhere, but only this
  module ever calls ``time.perf_counter`` — instrumented code holds a
  section handle, never a clock;
* profiling never feeds back into simulation decisions: a
  :class:`Profiler` accumulates durations for *reporting* (the sweep
  summary line, the run-log ``profile`` record) and nothing in the
  result path reads them;
* everything defaults to :data:`NULL_PROFILER`, whose sections cost two
  attribute lookups and read no clock, so profiling is pay-for-use.

Phase names are free-form; the orchestrator uses ``cache`` (result
cache lookups and write-backs), ``engine`` (job execution, which for
secure-beacon scenarios is dominated by the crypto backend) and ``log``
(run-log writes).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional


class _Section:
    """One timed section; used as a context manager."""

    __slots__ = ("_profiler", "_name", "_start")

    def __init__(self, profiler: "Profiler", name: str) -> None:
        self._profiler = profiler
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Section":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._profiler.add(self._name, time.perf_counter() - self._start)


class _NullSection:
    """A section that reads no clock and records nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSection":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_SECTION = _NullSection()


class Profiler:
    """Accumulates wall-clock seconds per named phase.

    ::

        profiler = Profiler()
        with profiler.section("cache"):
            ...
        profiler.totals()  # {"cache": 0.0123}
    """

    enabled: bool = True

    def __init__(self) -> None:
        self._seconds: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}

    def section(self, name: str) -> _Section:
        """A context manager timing one ``name`` phase entry."""
        return _Section(self, name)

    def add(self, name: str, seconds: float) -> None:
        """Record ``seconds`` spent in phase ``name``."""
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds
        self._counts[name] = self._counts.get(name, 0) + 1

    def totals(self) -> Dict[str, float]:
        """Seconds per phase, sorted by phase name."""
        return {name: round(self._seconds[name], 6) for name in sorted(self._seconds)}

    def counts(self) -> Dict[str, int]:
        """Section entries per phase, sorted by phase name."""
        return {name: self._counts[name] for name in sorted(self._counts)}

    def format_summary(self, wall_s: Optional[float] = None) -> str:
        """One human-readable line: ``phase 1.2s (60%), ...``."""
        totals = self.totals()
        if not totals:
            return "no profiled sections"
        parts: List[str] = []
        for name, seconds in sorted(totals.items(), key=lambda kv: -kv[1]):
            if wall_s:
                parts.append(f"{name} {seconds:.2f}s ({100.0 * seconds / wall_s:.0f}%)")
            else:
                parts.append(f"{name} {seconds:.2f}s")
        return ", ".join(parts)


class NullProfiler(Profiler):
    """The disabled profiler: sections read no clock, totals are empty."""

    enabled = False

    def section(self, name: str) -> _NullSection:  # type: ignore[override]
        return _NULL_SECTION

    def add(self, name: str, seconds: float) -> None:
        pass


#: Shared disabled instance (stateless, safe to reuse everywhere).
NULL_PROFILER = NullProfiler()
