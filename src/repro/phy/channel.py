"""Single-hop broadcast channel with per-receiver loss and jamming.

Collisions are resolved *before* delivery by the MAC contention cascade
(:mod:`repro.mac.contention`); the channel's job is the per-receiver fate
of an un-collided transmission: an independent packet-error coin flip per
receiver, suppression during jamming windows, and bookkeeping for the
traffic-overhead model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.phy.params import PhyParams


@dataclass
class ChannelStats:
    """Running counters over the life of a channel."""

    transmissions: int = 0
    collisions: int = 0
    deliveries: int = 0
    per_drops: int = 0
    jammed_drops: int = 0
    bytes_on_air: int = 0

    def delivery_ratio(self) -> float:
        """Delivered / attempted receiver-deliveries (1.0 when nothing sent)."""
        attempted = self.deliveries + self.per_drops + self.jammed_drops
        return self.deliveries / attempted if attempted else 1.0


class BroadcastChannel:
    """Fully connected wireless broadcast domain (an IBSS).

    Parameters
    ----------
    phy:
        Timing/loss parameters.
    rng:
        Stream for the per-receiver packet-error draws.
    """

    def __init__(self, phy: PhyParams, rng: np.random.Generator) -> None:
        self.phy = phy
        self._rng = rng
        self.stats = ChannelStats()
        self._jam_windows: List[Tuple[float, float]] = []

    def add_jam_window(self, start_us: float, end_us: float) -> None:
        """Suppress all receptions whose transmission starts in
        ``[start_us, end_us)`` (true time). Used by pulse-delay attacks."""
        if end_us <= start_us:
            raise ValueError("jam window must have end > start")
        self._jam_windows.append((float(start_us), float(end_us)))

    def is_jammed(self, true_time: float) -> bool:
        """Whether a transmission starting at ``true_time`` is jammed."""
        return any(start <= true_time < end for start, end in self._jam_windows)

    def record_collision(self, parties: int) -> None:
        """Account a collision of ``parties`` simultaneous transmitters."""
        self.stats.collisions += 1
        self.stats.transmissions += parties

    def broadcast(
        self,
        sender: int,
        receivers: Sequence[int],
        true_time: float,
        size_bytes: int,
    ) -> List[int]:
        """Deliver one un-collided transmission; return receivers that decode it.

        Each receiver independently loses the frame with probability
        ``phy.packet_error_rate``. If ``true_time`` falls in a jam window,
        nobody receives.
        """
        self.stats.transmissions += 1
        self.stats.bytes_on_air += size_bytes
        receivers = [r for r in receivers if r != sender]
        if not receivers:
            return []
        if self.is_jammed(true_time):
            self.stats.jammed_drops += len(receivers)
            return []
        per = self.phy.packet_error_rate
        if per <= 0.0:
            self.stats.deliveries += len(receivers)
            return list(receivers)
        if self.phy.loss_model == "per_transmission":
            if self._rng.random() < per:
                self.stats.per_drops += len(receivers)
                return []
            self.stats.deliveries += len(receivers)
            return list(receivers)
        lost = self._rng.random(len(receivers)) < per
        delivered = [r for r, drop in zip(receivers, lost) if not drop]
        self.stats.per_drops += len(receivers) - len(delivered)
        self.stats.deliveries += len(delivered)
        return delivered

    def sample_timestamp_error(self) -> float:
        """Receive-side timestamping error for one reception.

        Uniform in ``+- timestamp_jitter_us``; this is the source of the
        paper's ``epsilon`` bound on ``|ts_ref - t_ref|``.
        """
        j = self.phy.timestamp_jitter_us
        if j == 0.0:
            return 0.0
        return float(self._rng.uniform(-j, j))

    def sample_timestamp_errors(self, n: int) -> np.ndarray:
        """Vectorised version of :meth:`sample_timestamp_error`."""
        j = self.phy.timestamp_jitter_us
        if j == 0.0:
            return np.zeros(n)
        return self._rng.uniform(-j, j, size=n)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BroadcastChannel(stats={self.stats})"


def merge_stats(stats: Iterable[ChannelStats]) -> ChannelStats:
    """Aggregate several channels' counters (multi-replica experiments)."""
    total = ChannelStats()
    for s in stats:
        total.transmissions += s.transmissions
        total.collisions += s.collisions
        total.deliveries += s.deliveries
        total.per_drops += s.per_drops
        total.jammed_drops += s.jammed_drops
        total.bytes_on_air += s.bytes_on_air
    return total
