"""The reprolint engine: file walking, pragmas, and rule dispatch.

The engine parses each file once with :mod:`ast`, builds the
cross-module :class:`~repro.lint.project.ProjectModel` over every file
in the run, hands each tree (plus the model) to every rule in
:data:`ALL_RULES` — the per-file D-series from
:mod:`repro.lint.rules` and the project-wide T/E/R families from
:mod:`repro.lint.flowrules` — and filters the findings through
suppression pragmas. Directory arguments expand to their ``*.py`` files
in sorted order, so output order — and therefore baseline files and CI
logs — is deterministic (the engine holds itself to its own D003 rule).

Suppression pragmas are comments anywhere on a line::

    value = hashlib.sha256(key)  # reprolint: disable=D006 -- cache key, not crypto
    # reprolint: disable-next=D004
    if t_us == previous_us: ...
    # reprolint: disable-file=D003

``disable`` suppresses the listed codes on its own line,
``disable-next`` on the following line, ``disable-file`` everywhere in
the file. Justification prose after the codes is encouraged and ignored
by the parser.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.diagnostics import Diagnostic
from repro.lint.flowrules import FLOW_RULES
from repro.lint.project import ModuleInfo, ProjectModel, build_module_info
from repro.lint.rules import RULES, FileContext, LintConfig, Rule, build_aliases

#: The full default ruleset: per-file D-series plus project-wide T/E/R.
ALL_RULES: Tuple[Rule, ...] = tuple(RULES) + tuple(FLOW_RULES)

_PRAGMA_RE = re.compile(
    r"#\s*reprolint:\s*(disable(?:-next|-file)?)\s*=\s*"
    r"([A-Za-z]\d+(?:\s*,\s*[A-Za-z]\d+)*)"
)


def package_relative(path: Path) -> str:
    """The path of ``path`` relative to its enclosing ``repro`` package.

    ``src/repro/sim/rng.py`` maps to ``"sim/rng.py"`` — the coordinate
    system every :class:`~repro.lint.rules.LintConfig` allowlist uses.
    Files outside any ``repro`` directory map to their bare filename,
    which never collides with an allowlist entry (those all contain a
    directory component or a distinctive name).
    """
    parts = path.parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index + 1 :])
    return path.name


def _parse_pragmas(source: str) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """Extract suppression pragmas: (line -> codes, file-wide codes)."""
    per_line: Dict[int, Set[str]] = {}
    file_wide: Set[str] = set()
    for lineno, text in enumerate(source.splitlines(), start=1):
        for match in _PRAGMA_RE.finditer(text):
            kind = match.group(1)
            codes = {c.strip().upper() for c in match.group(2).split(",")}
            if kind == "disable":
                per_line.setdefault(lineno, set()).update(codes)
            elif kind == "disable-next":
                per_line.setdefault(lineno + 1, set()).update(codes)
            else:  # disable-file
                file_wide.update(codes)
    return per_line, file_wide


def _parse_one(path: Path) -> Tuple[str, str, Optional[ast.AST], Optional[Diagnostic]]:
    """Parse one file: (path string, source, tree | None, D000 | None)."""
    path_str = path.as_posix()
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=path_str)
    except SyntaxError as exc:
        diag = Diagnostic(
            path_str,
            exc.lineno or 1,
            (exc.offset or 1) - 1,
            "D000",
            f"file does not parse: {exc.msg}",
        )
        return path_str, source, None, diag
    return path_str, source, tree, None


def _lint_parsed(
    path_str: str,
    rel: str,
    source: str,
    tree: ast.AST,
    config: LintConfig,
    rules: Sequence[Rule],
    module: Optional[ModuleInfo],
    project: Optional[ProjectModel],
) -> List[Diagnostic]:
    """Run rules over one already-parsed file; apply its pragmas."""
    ctx = FileContext(
        path=path_str,
        rel=rel,
        tree=tree,
        config=config,
        aliases=build_aliases(tree),
        module=module,
        project=project,
    )
    findings: List[Diagnostic] = []
    for rule in rules:
        findings.extend(rule.check(ctx))
    per_line, file_wide = _parse_pragmas(source)
    kept = [
        d
        for d in findings
        if d.code not in file_wide and d.code not in per_line.get(d.line, ())
    ]
    return sorted(kept, key=lambda d: (d.line, d.col, d.code))


def lint_file(
    path: Path,
    config: Optional[LintConfig] = None,
    rules: Sequence[Rule] = ALL_RULES,
) -> List[Diagnostic]:
    """Lint one file; return its findings sorted by position then code.

    The project model spans just this file, so cross-module signature
    resolution (T103) only sees the file's own symbols — use
    :func:`lint_paths` for the full cross-module view. Unparseable
    files yield a single ``D000`` diagnostic (suppressible like any
    other code, though fixing the file is the real answer).
    """
    config = config or LintConfig()
    path_str, source, tree, parse_error = _parse_one(path)
    if tree is None:
        return [parse_error] if parse_error else []
    rel = package_relative(path)
    module = build_module_info(rel, tree)
    project = ProjectModel([module])
    return _lint_parsed(
        path_str, rel, source, tree, config, rules, module, project
    )


def expand_paths(paths: Iterable[Path]) -> List[Path]:
    """Expand directories to their ``*.py`` files, sorted; dedupe.

    Explicit file arguments are kept in the order given (deduplicated);
    each directory contributes its recursive ``*.py`` listing in sorted
    order so results are independent of filesystem enumeration order.
    """
    seen: Set[Path] = set()
    ordered: List[Path] = []
    for path in paths:
        if path.is_dir():
            candidates: List[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                ordered.append(candidate)
    return ordered


def lint_paths(
    paths: Iterable[Path],
    config: Optional[LintConfig] = None,
    rules: Sequence[Rule] = ALL_RULES,
) -> List[Diagnostic]:
    """Lint files and directories; return all findings in stable order.

    All files are parsed first and folded into one
    :class:`~repro.lint.project.ProjectModel`, so the T/E/R families
    see every module of the run — a unit mismatch at a call into
    another linted module resolves against that module's real
    signature, not a guess.
    """
    config = config or LintConfig()
    parsed: List[Tuple[str, str, str, ast.AST]] = []
    findings: List[Diagnostic] = []
    infos: List[ModuleInfo] = []
    for path in expand_paths(paths):
        path_str, source, tree, parse_error = _parse_one(path)
        if tree is None:
            if parse_error is not None:
                findings.append(parse_error)
            continue
        rel = package_relative(path)
        parsed.append((path_str, rel, source, tree))
        infos.append(build_module_info(rel, tree))
    project = ProjectModel(infos)
    for path_str, rel, source, tree in parsed:
        findings.extend(
            _lint_parsed(
                path_str,
                rel,
                source,
                tree,
                config,
                rules,
                project.module_for(rel),
                project,
            )
        )
    return findings
