"""Fig. 2 bench: SSTSP max clock difference, 500 nodes, m = 4.

Shape under test: a 500-station IBSS converges after the initial election
and stays below ~10 us steady-state - two to three orders of magnitude
better than TSF at the same size.
"""

from __future__ import annotations

from conftest import paper_rows

from repro.core.config import SstspConfig
from repro.experiments.scenarios import quick_spec
from repro.fastlane import run_sstsp_vectorized, run_tsf_vectorized
from repro.sim.units import S


def _run_fig2():
    spec = quick_spec(500, seed=1, duration_s=60.0)
    config = SstspConfig(m=4)
    return run_sstsp_vectorized(spec, config=config)


def test_fig2_sstsp_500_nodes(benchmark):
    result = benchmark.pedantic(_run_fig2, rounds=1, iterations=1)
    trace = result.trace
    steady = trace.steady_state_error_us()
    tail = trace.window(40 * S, 61 * S)
    assert steady < 10.0  # the paper's "below 10 us after stabilisation"
    assert float(tail.max_diff_us.max()) < 100.0  # spikes bounded
    # who-wins check against TSF at the same (reduced) scale
    tsf = run_tsf_vectorized(quick_spec(100, seed=1, duration_s=30.0))
    assert steady < tsf.trace.steady_state_error_us() / 3
    paper_rows(
        benchmark,
        "fig2: SSTSP 500 nodes, m=4",
        [
            f"steady-state={steady:.2f}us (paper: <10us)",
            f"peak during bootstrap={trace.peak_error_us():.1f}us",
            f"reference changes={result.reference_changes}",
            f"vs TSF(100 nodes) steady={tsf.trace.steady_state_error_us():.1f}us",
        ],
    )
