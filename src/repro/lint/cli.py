"""Command-line front end: ``python -m repro.lint [paths]``.

Exit codes follow lint convention: ``0`` clean (or after
``--write-baseline``), ``1`` findings remain, ``2`` usage error.

Examples
--------
::

    python -m repro.lint                     # lint src/repro
    python -m repro.lint src/repro/sweep     # one subpackage
    python -m repro.lint --format json       # machine-readable report
    python -m repro.lint --list-rules        # what each code means
    python -m repro.lint --baseline .reprolint-baseline.json \
        --write-baseline                     # grandfather current findings
"""

from __future__ import annotations

import argparse
import sys
import textwrap
from pathlib import Path
from typing import List, Optional

from repro.lint.diagnostics import (
    apply_baseline,
    load_baseline,
    render_json,
    write_baseline,
)
from repro.lint.engine import ALL_RULES, expand_paths, lint_paths

#: Linted when no paths are given, resolved against the cwd.
DEFAULT_TARGET = "src/repro"


def build_parser() -> argparse.ArgumentParser:
    """The reprolint argument parser (shared with the ``lint`` subcommand)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Determinism & unit-safety lint for the simulation kernel.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help=f"files or directories to lint (default: {DEFAULT_TARGET})",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        metavar="FILE",
        help="JSON baseline of grandfathered findings; matching findings "
        "are suppressed (one per baseline entry)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to --baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="describe every rule code and exit",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format: 'text' (one line per finding, default) or "
        "'json' (byte-stable document for CI artifacts)",
    )
    return parser


def _print_rules() -> None:
    for rule in ALL_RULES:
        print(f"{rule.code}  {rule.title}")
        print(textwrap.indent(textwrap.fill(rule.rationale, width=74), "      "))


def main(argv: Optional[List[str]] = None) -> int:
    """Run the linter; return the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        _print_rules()
        return 0

    paths: List[Path] = args.paths or [Path(DEFAULT_TARGET)]
    missing = [p for p in paths if not p.exists()]
    if missing:
        parser.error(f"no such path: {', '.join(map(str, missing))}")
    if args.write_baseline and args.baseline is None:
        parser.error("--write-baseline requires --baseline FILE")

    findings = lint_paths(paths)
    checked = len(expand_paths(paths))

    if args.write_baseline:
        write_baseline(args.baseline, findings)
        print(
            f"reprolint: wrote baseline with {len(findings)} finding(s) "
            f"to {args.baseline}",
            file=sys.stderr,
        )
        return 0

    if args.baseline is not None:
        if not args.baseline.exists():
            parser.error(f"baseline file not found: {args.baseline}")
        findings = apply_baseline(findings, load_baseline(args.baseline))

    if args.format == "json":
        sys.stdout.write(render_json(findings, checked))
    else:
        for diag in findings:
            print(diag.render())
    if findings:
        print(f"reprolint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"reprolint: clean ({checked} files)", file=sys.stderr)
    return 0
