"""The project-wide rule families: timebase flow, trace contract, RNG streams.

Where the D-series checks one file at a time, these rules consume the
:mod:`repro.lint.project` model (and, for the E-series, the runtime's
own event schema) to catch the cross-cutting failure modes:

========  ===========================================================
``T101``  cross-timebase arithmetic: ``+``/``-`` between expressions
          whose inferred unit domains disagree (``t_us + timeout_s``)
``T102``  cross-timebase comparison: any comparison between
          expressions of different unit domains
``T103``  call-argument unit mismatch: an argument whose inferred
          unit disagrees with the parameter's declared unit, resolved
          across module boundaries via the project model
``E201``  unknown or non-literal trace-event name at an ``emit()``
          call site
``E202``  ``emit()`` call missing a required payload field (or a
          required ``t_us``/``node``) for its event kind
``E203``  ``emit()`` call passing fields the event's schema does not
          declare (including ``t_us``/``node`` on events that forbid
          them)
``E204``  trace payload unit violation: a non-microsecond time-suffixed
          payload key, or a value whose inferred unit contradicts the
          key's ``_us`` suffix
``R301``  RNG generator construction outside the seeded-stream
          plumbing: unseeded anywhere, any construction inside kernel
          packages
``R302``  RNG object crossing the protocol-driver seam: multi-hop
          protocol state taking or storing a generator instead of
          drawing through ``ctx.slot_rng``
``R303``  RNG draw inside unordered iteration — draw *order* is part
          of the stream contract, so an unordered loop scrambles every
          draw after it
========  ===========================================================

The E-series loads :mod:`repro.obs.events_schema` **by file location**
(not import), so linting works without numpy on the path and without
executing ``repro.obs``'s package ``__init__`` — while still checking
against the exact schema the runtime validates traces with.
"""

from __future__ import annotations

import ast
import importlib.util
import re
import sys
from fnmatch import fnmatch
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.diagnostics import Diagnostic
from repro.lint.project import FunctionSig, ModuleInfo, ProjectModel
from repro.lint.rules import FileContext, Rule, describe_unordered, qualify
from repro.lint.timebase import (
    CALL_PARAM_UNITS,
    call_leaf,
    iter_scoped_nodes,
    unit_of_expr,
    unit_of_identifier,
)

# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------

_SCHEMAS: Optional[Dict[str, object]] = None
_SCHEMAS_LOADED = False


def load_event_schemas() -> Optional[Dict[str, object]]:
    """The runtime's ``EVENT_SCHEMAS``, loaded by file location (cached).

    Loading by location rather than ``import repro.obs.events_schema``
    keeps the linter runnable on a bare interpreter: executing the
    ``repro.obs`` package ``__init__`` would drag in numpy. Returns
    None when the schema module is missing (linting a foreign tree) —
    the E-series rules then disable themselves rather than guess.
    """
    global _SCHEMAS, _SCHEMAS_LOADED
    if _SCHEMAS_LOADED:
        return _SCHEMAS
    _SCHEMAS_LOADED = True
    schema_path = Path(__file__).resolve().parents[1] / "obs" / "events_schema.py"
    if not schema_path.exists():
        return None
    spec = importlib.util.spec_from_file_location(
        "_reprolint_events_schema", schema_path
    )
    if spec is None or spec.loader is None:
        return None
    module = importlib.util.module_from_spec(spec)
    # The dataclass machinery resolves the class's module through
    # sys.modules, so the module must be registered before executing.
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    _SCHEMAS = dict(module.EVENT_SCHEMAS)
    return _SCHEMAS


def _is_emit_call(node: ast.Call, ctx: FileContext) -> bool:
    qual = qualify(node.func, ctx.aliases)
    return qual is not None and qual in ctx.config.emit_funcs


def _project_of(ctx: FileContext) -> Optional[ProjectModel]:
    project = ctx.project
    return project if isinstance(project, ProjectModel) else None


def _module_of(ctx: FileContext) -> Optional[ModuleInfo]:
    module = ctx.module
    return module if isinstance(module, ModuleInfo) else None


class _EmitCall:
    """One decoded ``emit()`` call site."""

    def __init__(self, node: ast.Call, env: Dict[str, str]) -> None:
        self.node = node
        self.env = env
        args = node.args
        self.event_node: Optional[ast.expr] = args[0] if args else None
        self.extra_positional: List[ast.expr] = list(args[3:])
        self.has_star_kwargs = any(kw.arg is None for kw in node.keywords)
        self.keywords: Dict[str, ast.expr] = {
            kw.arg: kw.value for kw in node.keywords if kw.arg is not None
        }
        # Positional slots 1/2 are emit()'s t_us/node parameters.
        for slot, name in ((1, "t_us"), (2, "node")):
            if len(args) > slot and name not in self.keywords:
                self.keywords[name] = args[slot]
        if self.event_node is None and "event" in self.keywords:
            self.event_node = self.keywords.pop("event")

    @property
    def event_name(self) -> Optional[str]:
        node = self.event_node
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        return None

    def provides(self, name: str) -> bool:
        """Whether the call passes ``name`` with a non-None value."""
        value = self.keywords.get(name)
        if value is None:
            return False
        return not (isinstance(value, ast.Constant) and value.value is None)

    def payload_keys(self) -> Set[str]:
        return set(self.keywords) - {"t_us", "node"}


def _iter_emit_calls(ctx: FileContext) -> Iterator[_EmitCall]:
    for env, node in iter_scoped_nodes(ctx.tree):
        if isinstance(node, ast.Call) and _is_emit_call(node, ctx):
            yield _EmitCall(node, env)


# ---------------------------------------------------------------------------
# T-series: timebase flow
# ---------------------------------------------------------------------------


class CrossTimebaseArithmetic(Rule):
    """T101: ``+``/``-`` between expressions of different unit domains.

    ``t_us + timeout_s`` type-checks, runs, and silently produces a
    number six orders of magnitude off — precisely the bug class the
    paper's microsecond error bounds cannot survive. Conversion goes
    through ``sim.units`` / ``ClockChain``; raw arithmetic across
    domains is always wrong.
    """

    code = "T101"
    title = "cross-timebase arithmetic"
    rationale = (
        "Adding or subtracting values from different time domains (us/ms/s/tu) "
        "produces a silently wrong number — convert through sim.units or the "
        "ClockChain surface first; a genuinely unitless intermediate should "
        "not carry a unit suffix."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        """Flag Add/Sub (and augmented +=/-=) across unit domains."""
        for env, node in iter_scoped_nodes(ctx.tree):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                pair = (node.left, node.right)
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                pair = (node.target, node.value)
            else:
                continue
            left = unit_of_expr(pair[0], env)
            right = unit_of_expr(pair[1], env)
            if left is not None and right is not None and left != right:
                yield self._diag(
                    ctx,
                    node,
                    f"arithmetic across time domains ('{left}' vs '{right}') — "
                    "convert through sim.units/ClockChain before combining",
                )


class CrossTimebaseComparison(Rule):
    """T102: comparing expressions of different unit domains.

    A guard like ``if delay_us > timeout_s:`` is effectively always (or
    never) true; unlike T101 the result is not even a number, so the
    bug hides inside control flow.
    """

    code = "T102"
    title = "cross-timebase comparison"
    rationale = (
        "Comparing values from different time domains makes the branch "
        "condition meaningless (a us value dwarfs any s value); convert both "
        "sides to one domain before comparing."
    )

    _OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        """Flag comparisons whose adjacent operands' units disagree."""
        for env, node in iter_scoped_nodes(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            sides = [node.left] + list(node.comparators)
            for index, op in enumerate(node.ops):
                if not isinstance(op, self._OPS):
                    continue
                left = unit_of_expr(sides[index], env)
                right = unit_of_expr(sides[index + 1], env)
                if left is not None and right is not None and left != right:
                    yield self._diag(
                        ctx,
                        node,
                        f"comparison across time domains ('{left}' vs "
                        f"'{right}') — convert both sides to one domain first",
                    )
                    break


class CallArgumentUnitMismatch(Rule):
    """T103: argument unit disagrees with the parameter's unit.

    Resolves the callee through the project model — its own module, an
    imported module, or a package re-export — and checks every
    positional and keyword argument whose unit *and* whose parameter's
    unit are both known. Also checks the ``sim.units`` converters by
    name (``us_to_s(period_s)``) even when the callee is outside the
    linted path set, and any keyword whose name carries a unit suffix.
    ``emit()`` payloads are excluded — their unit policy is E204's.
    """

    code = "T103"
    title = "call argument in the wrong time domain"
    rationale = (
        "A microsecond value passed where the callee declares seconds (by "
        "suffix or Annotated unit) corrupts the result at the module "
        "boundary, where review is least likely to catch it; convert at the "
        "call site or rename the carrier to its true domain."
    )

    def _check_call(
        self,
        ctx: FileContext,
        call: ast.Call,
        env: Dict[str, str],
        sig: Optional[FunctionSig],
    ) -> Iterator[Diagnostic]:
        # Keyword-name suffix vs value unit: checkable on any call.
        for kw in call.keywords:
            if kw.arg is None:
                continue
            want = unit_of_identifier(kw.arg)
            got = unit_of_expr(kw.value, env)
            if want is not None and got is not None and want != got:
                yield self._diag(
                    ctx,
                    kw.value,
                    f"keyword '{kw.arg}' declares domain '{want}' but the "
                    f"argument is in '{got}'",
                )
        if sig is not None:
            for pos, arg in enumerate(call.args):
                if isinstance(arg, ast.Starred) or pos >= len(sig.params):
                    break
                param = sig.params[pos]
                got = unit_of_expr(arg, env)
                if param.unit is not None and got is not None and param.unit != got:
                    yield self._diag(
                        ctx,
                        arg,
                        f"argument {pos + 1} of {sig.qualname}() is in "
                        f"'{got}' but parameter '{param.name}' declares "
                        f"'{param.unit}'",
                    )
            for kw in call.keywords:
                if kw.arg is None:
                    continue
                param = sig.param_named(kw.arg)
                if param is None:
                    continue
                # Suffix-derived keyword units were checked above; only
                # an Annotated override adds information here.
                if param.unit is None or param.unit == unit_of_identifier(kw.arg):
                    continue
                got = unit_of_expr(kw.value, env)
                if got is not None and got != param.unit:
                    yield self._diag(
                        ctx,
                        kw.value,
                        f"keyword '{kw.arg}' of {sig.qualname}() declares "
                        f"domain '{param.unit}' but the argument is in "
                        f"'{got}'",
                    )
        else:
            leaf = call_leaf(call)
            expected = CALL_PARAM_UNITS.get(leaf or "")
            if expected:
                for pos, arg in enumerate(call.args[: len(expected)]):
                    want = expected[pos]
                    got = unit_of_expr(arg, env)
                    if want is not None and got is not None and want != got:
                        yield self._diag(
                            ctx,
                            arg,
                            f"argument {pos + 1} of {leaf}() must be in "
                            f"'{want}' but the expression is in '{got}'",
                        )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        """Flag unit conflicts at resolvable (and converter) call sites."""
        project = _project_of(ctx)
        module = _module_of(ctx)
        for env, node in iter_scoped_nodes(ctx.tree):
            if not isinstance(node, ast.Call) or _is_emit_call(node, ctx):
                continue
            sig = None
            if project is not None and module is not None:
                sig = project.resolve_call(node, module)
            yield from self._check_call(ctx, node, env, sig)


# ---------------------------------------------------------------------------
# E-series: trace contract
# ---------------------------------------------------------------------------


class UnknownTraceEvent(Rule):
    """E201: ``emit()`` with an unknown or non-literal event name.

    The event inventory is :data:`repro.obs.events_schema.EVENT_SCHEMAS`
    — the same mapping the runtime derives its catalog from and
    validates traces against. An unknown name here would produce
    records ``read_events(validate=True)`` rejects; a non-literal name
    cannot be checked at all, which the trace contract forbids.
    """

    code = "E201"
    title = "unknown trace-event name at emit() call site"
    rationale = (
        "Every emit() must name an event declared in "
        "repro.obs.events_schema.EVENT_SCHEMAS (as a string literal, so the "
        "contract is statically checkable); an undeclared name produces "
        "trace records downstream validators and the docs catalog know "
        "nothing about."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        """Flag emit() calls whose event name is missing/dynamic/unknown."""
        schemas = load_event_schemas()
        if schemas is None:
            return
        for call in _iter_emit_calls(ctx):
            if call.event_node is None:
                yield self._diag(ctx, call.node, "emit() call without an event name")
            elif call.event_name is None:
                yield self._diag(
                    ctx,
                    call.event_node,
                    "emit() event name must be a string literal so the trace "
                    "contract is statically checkable",
                )
            elif call.event_name not in schemas:
                yield self._diag(
                    ctx,
                    call.event_node,
                    f"unknown trace event '{call.event_name}' — declare it in "
                    "repro.obs.events_schema.EVENT_SCHEMAS first",
                )


class MissingTracePayload(Rule):
    """E202: ``emit()`` missing required fields for its event kind.

    A record missing a required payload key (or a required ``t_us`` /
    ``node``) fails strict validation and breaks every consumer that
    indexes on that key. Calls forwarding ``**payload`` are skipped —
    the static view cannot see through the dict.
    """

    code = "E202"
    title = "emit() call missing required trace fields"
    rationale = (
        "The event schema declares which payload keys (and which of "
        "t_us/node) every record of a kind must carry; a call site that "
        "omits one writes records read_events(validate=True) rejects and "
        "analysis code crashes on."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        """Flag emit() calls omitting schema-required fields."""
        schemas = load_event_schemas()
        if schemas is None:
            return
        for call in _iter_emit_calls(ctx):
            spec = schemas.get(call.event_name or "")
            if spec is None or call.has_star_kwargs:
                continue
            missing = [
                key for key in spec.required if key not in call.payload_keys()
            ]
            for envelope in ("t_us", "node"):
                if getattr(spec, envelope) == "required" and not call.provides(
                    envelope
                ):
                    missing.insert(0, envelope)
            if missing:
                yield self._diag(
                    ctx,
                    call.node,
                    f"emit('{call.event_name}') missing required field(s) "
                    f"{', '.join(sorted(missing))}",
                )


class UndeclaredTracePayload(Rule):
    """E203: ``emit()`` passing fields the event schema does not declare.

    Extra keys would make the written record fail strict validation;
    the schema (not the call site) is where a new field gets added, so
    the docs catalog, validator and linter move together.
    """

    code = "E203"
    title = "emit() call with undeclared trace fields"
    rationale = (
        "Payload keys not declared (required or optional) for the event — "
        "including t_us/node on events whose schema forbids them — produce "
        "records strict validation rejects; declare the field in "
        "EVENT_SCHEMAS or drop it."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        """Flag schema-undeclared payload keys and forbidden envelope use."""
        schemas = load_event_schemas()
        if schemas is None:
            return
        for call in _iter_emit_calls(ctx):
            spec = schemas.get(call.event_name or "")
            if spec is None:
                continue
            declared = set(spec.required) | set(spec.optional)
            for key in sorted(call.payload_keys() - declared):
                yield self._diag(
                    ctx,
                    call.keywords[key],
                    f"emit('{call.event_name}') passes undeclared field "
                    f"'{key}' — declare it in EVENT_SCHEMAS or drop it",
                )
            for envelope in ("t_us", "node"):
                if getattr(spec, envelope) == "absent" and call.provides(envelope):
                    yield self._diag(
                        ctx,
                        call.keywords[envelope],
                        f"emit('{call.event_name}') passes '{envelope}' but "
                        "the event's schema declares it absent",
                    )
            for extra in call.extra_positional:
                yield self._diag(
                    ctx,
                    extra,
                    "emit() takes at most event, t_us, node positionally — "
                    "payload fields must be keywords",
                )


class TracePayloadUnitViolation(Rule):
    """E204: trace payload values that contradict the µs-only unit policy.

    The trace schema has a single time domain — every time-valued
    payload field is microseconds, suffix ``_us`` (enforced on the
    schema itself by an import-time assertion). This rule holds the
    *call sites* to it: no ``_ms``/``_s``/``_tu``-suffixed keys, and no
    value whose inferred domain contradicts a ``_us`` key (including
    ``t_us`` itself).
    """

    code = "E204"
    title = "trace payload unit violation"
    rationale = (
        "Trace records carry exactly one time domain (microseconds, suffix "
        "_us) so consumers never guess units; a key in another domain or a "
        "non-us value bound to a _us key silently corrupts every downstream "
        "analysis — convert at the call site."
    )

    _BAD_SUFFIXES = ("ms", "s", "tu")

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        """Flag non-µs keys and unit-contradicting values in emit() calls."""
        for call in _iter_emit_calls(ctx):
            for key, value in sorted(call.keywords.items()):
                unit = unit_of_identifier(key)
                if unit in self._BAD_SUFFIXES:
                    yield self._diag(
                        ctx,
                        value,
                        f"trace payload key '{key}' is in domain '{unit}' — "
                        "trace records are microseconds-only; convert and "
                        "rename to *_us",
                    )
                elif unit == "us":
                    got = unit_of_expr(value, call.env)
                    if got is not None and got != "us":
                        yield self._diag(
                            ctx,
                            value,
                            f"trace payload key '{key}' is microseconds but "
                            f"the value is in '{got}' — convert before "
                            "emitting",
                        )


# ---------------------------------------------------------------------------
# R-series: RNG streams
# ---------------------------------------------------------------------------

#: Generator constructions R301 polices. ``random.Random`` and
#: ``numpy.random.RandomState`` are already D001 findings; these two
#: are the *sanctioned* constructors whose placement still matters.
_RNG_CONSTRUCTORS = frozenset({"numpy.random.default_rng", "numpy.random.Generator"})

#: Method names that advance a generator's stream.
_DRAW_METHODS = frozenset(
    {
        "betavariate",
        "choice",
        "exponential",
        "gauss",
        "integers",
        "normal",
        "permutation",
        "poisson",
        "randint",
        "random",
        "randrange",
        "sample",
        "shuffle",
        "standard_normal",
        "uniform",
    }
)


def _rng_named(name: str) -> bool:
    """Whether an identifier names an RNG by this repo's conventions."""
    return name in ("rng", "_rng", "generator") or name.endswith("_rng")


class StrayRngConstruction(Rule):
    """R301: generator construction outside the seeded-stream plumbing.

    Every stream must descend from the root seed through ``derive_seed``
    / ``RngRegistry``. Unseeded construction (OS entropy) is flagged
    everywhere; *any* construction inside kernel packages is flagged —
    kernel code receives its streams from the registry or the driver
    seam, it never mints them.
    """

    code = "R301"
    title = "RNG construction outside the seeded-stream plumbing"
    rationale = (
        "default_rng() with no seed draws OS entropy and is unreproducible "
        "by construction; and even a seeded generator minted inside kernel "
        "code bypasses the derive_seed/RngRegistry stream naming that keeps "
        "draws independent of worker count and call order — take streams "
        "from the registry (or, in multi-hop protocols, from ctx.slot_rng)."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        """Flag unseeded (anywhere) and kernel-package constructions."""
        if ctx.rel in ctx.config.rng_construct_allow:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = qualify(node.func, ctx.aliases)
            if qual not in _RNG_CONSTRUCTORS:
                continue
            leaf = qual.rsplit(".", 1)[1]
            if not node.args and not node.keywords:
                yield self._diag(
                    ctx,
                    node,
                    f"unseeded {leaf}() draws OS entropy — derive the seed "
                    "via sim.rng.derive_seed and pass it explicitly",
                )
            elif ctx.package in ctx.config.rng_kernel_packages:
                yield self._diag(
                    ctx,
                    node,
                    f"{leaf}() constructed inside kernel package "
                    f"'{ctx.package}' — kernel code takes named streams from "
                    "sim.rng.RngRegistry (or ctx.slot_rng at the multi-hop "
                    "seam), it never constructs generators",
                )


class RngAcrossSeam(Rule):
    """R302: an RNG object crossing the protocol-driver seam.

    The multi-hop seam contract (PR 8) is that protocol state is
    RNG-free: all stochastic inputs arrive through
    ``MultiHopContext.slot_rng`` / ``sample_timestamp_error``, keyed by
    (period, slot, node), so per-node draw streams are independent of
    protocol implementation and beacon arrival order. A protocol that
    accepts or stores a generator re-couples its draws to call order.
    """

    code = "R302"
    title = "RNG object crossing the protocol-driver seam"
    rationale = (
        "Multi-hop protocol state holding its own generator couples draw "
        "streams to message-processing order, breaking cross-protocol parity "
        "of environment noise; draw through ctx.slot_rng / "
        "ctx.sample_timestamp_error instead."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        """Flag rng-named params and attribute stores in seam modules."""
        if ctx.rel in ctx.config.rng_seam_allow:
            return
        if not any(fnmatch(ctx.rel, pat) for pat in ctx.config.rng_seam_modules):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                args = node.args
                every = (
                    list(args.posonlyargs)
                    + list(args.args)
                    + list(args.kwonlyargs)
                )
                for arg in every:
                    if arg.arg not in ("self", "cls") and _rng_named(arg.arg):
                        yield self._diag(
                            ctx,
                            arg,
                            f"parameter '{arg.arg}' passes an RNG across the "
                            "protocol-driver seam — draw through ctx.slot_rng "
                            "/ ctx.sample_timestamp_error instead",
                        )
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Attribute) and _rng_named(
                        target.attr
                    ):
                        yield self._diag(
                            ctx,
                            target,
                            f"protocol state stores an RNG ('{target.attr}') "
                            "— the multi-hop seam contract keeps protocol "
                            "objects RNG-free",
                        )


class RngDrawInUnorderedIteration(Rule):
    """R303: advancing an RNG stream inside unordered iteration.

    Draw *order* is part of the stream contract: two runs that visit a
    set in different orders assign different variates to the same
    logical entity, even with identical seeds. Shares D003's definition
    of "unordered"; fires on the draw itself so the finding points at
    the stream being scrambled, not just the loop.
    """

    code = "R303"
    title = "RNG draw inside unordered iteration"
    rationale = (
        "A seeded stream only reproduces if draws happen in a fixed order; "
        "drawing inside iteration over a set/dict-keys/filesystem listing "
        "binds variates to entities in platform-dependent order — sort the "
        "iterable (which also clears D003) before drawing."
    )

    def _draw_calls(self, root: ast.AST) -> Iterator[ast.Call]:
        for node in ast.walk(root):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) or func.attr not in _DRAW_METHODS:
                continue
            owner = func.value
            name = None
            if isinstance(owner, ast.Name):
                name = owner.id
            elif isinstance(owner, ast.Attribute):
                name = owner.attr
            if name is not None and _rng_named(name):
                yield node

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        """Flag rng draw calls under unordered for/comprehension targets."""
        if ctx.package not in ctx.config.ordered_packages:
            return
        for node in ast.walk(ctx.tree):
            scopes: List[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if describe_unordered(node.iter, ctx.aliases) is not None:
                    scopes = list(node.body) + list(node.orelse)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                if any(
                    describe_unordered(gen.iter, ctx.aliases) is not None
                    for gen in node.generators
                ):
                    scopes = [node]
            for scope in scopes:
                for call in self._draw_calls(scope):
                    yield self._diag(
                        ctx,
                        call,
                        "RNG draw inside unordered iteration — the stream's "
                        "draw order becomes platform-dependent; sort the "
                        "iterable before drawing",
                    )


#: The project-wide rule families, ordered by code.
FLOW_RULES: Tuple[Rule, ...] = (
    CrossTimebaseArithmetic(),
    CrossTimebaseComparison(),
    CallArgumentUnitMismatch(),
    UnknownTraceEvent(),
    MissingTracePayload(),
    UndeclaredTracePayload(),
    TracePayloadUnitViolation(),
    StrayRngConstruction(),
    RngAcrossSeam(),
    RngDrawInUnorderedIteration(),
)

#: Sanity: codes must be unique and family-prefixed.
_CODE_RE = re.compile(r"^[TER]\d{3}$")
assert all(_CODE_RE.match(r.code) for r in FLOW_RULES)
assert len({r.code for r in FLOW_RULES}) == len(FLOW_RULES)
