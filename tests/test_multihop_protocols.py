"""The multi-hop protocol interface: registry, spec resolution, and the
per-protocol behavioural invariants of the shootout competitors."""

import pytest

from repro.analysis.metrics import audit_no_leaps
from repro.multihop import MultiHopRunner, MultiHopSpec, Topology
from repro.multihop.runner import run_multihop
from repro.phy.params import (
    BEACONLESS_BEACON_AIRTIME_SLOTS,
    BEACONLESS_BEACON_BYTES,
    COOP_BEACON_AIRTIME_SLOTS,
    SSTSP_BEACON_AIRTIME_SLOTS,
    SSTSP_BEACON_BYTES,
)
from repro.protocols.multihop_base import (
    MULTIHOP_PROTOCOLS,
    MultiHopProtocol,
    available_multihop_protocols,
    resolve_multihop_protocol,
)


class TestRegistry:
    def test_registered_names(self):
        assert available_multihop_protocols() == ("sstsp", "beaconless", "coop")

    def test_resolve_returns_protocol_subclasses(self):
        for name in available_multihop_protocols():
            cls = resolve_multihop_protocol(name)
            assert issubclass(cls, MultiHopProtocol)
            assert cls.protocol_name == name

    def test_unknown_name_lists_known(self):
        with pytest.raises(ValueError, match="sstsp"):
            resolve_multihop_protocol("ntp")

    def test_frame_economics_are_per_protocol(self):
        sizes = {
            resolve_multihop_protocol(name).beacon_bytes
            for name in MULTIHOP_PROTOCOLS
        }
        assert len(sizes) == len(MULTIHOP_PROTOCOLS)  # all distinct
        assert resolve_multihop_protocol("sstsp").beacon_bytes == SSTSP_BEACON_BYTES
        assert (
            resolve_multihop_protocol("beaconless").beacon_bytes
            == BEACONLESS_BEACON_BYTES
        )


class TestSpecResolution:
    def test_airtime_defaults_to_protocol_declaration(self):
        chain = Topology.chain(4)
        assert (
            MultiHopSpec(topology=chain).airtime_slots
            == SSTSP_BEACON_AIRTIME_SLOTS
        )
        assert (
            MultiHopSpec(topology=chain, protocol="beaconless").airtime_slots
            == BEACONLESS_BEACON_AIRTIME_SLOTS
        )
        assert (
            MultiHopSpec(topology=chain, protocol="coop").airtime_slots
            == COOP_BEACON_AIRTIME_SLOTS
        )

    def test_explicit_airtime_override_wins(self):
        spec = MultiHopSpec(
            topology=Topology.chain(4), protocol="beaconless",
            beacon_airtime_slots=5,
        )
        assert spec.airtime_slots == 5

    def test_unknown_protocol_rejected_at_spec_construction(self):
        with pytest.raises(ValueError, match="ntp"):
            MultiHopSpec(topology=Topology.chain(4), protocol="ntp")

    def test_only_sstsp_declares_a_degenerate_lane(self):
        assert (
            resolve_multihop_protocol("sstsp").degenerate_runner(
                MultiHopSpec(topology=Topology.full_mesh(4))
            )
            is not None
        )
        for name in ("beaconless", "coop"):
            spec = MultiHopSpec(topology=Topology.full_mesh(4), protocol=name)
            assert resolve_multihop_protocol(name).degenerate_runner(spec) is None


def _run(protocol, topology, seed=3, duration_s=15.0, **kw):
    spec = MultiHopSpec(
        topology=topology, seed=seed, duration_s=duration_s,
        protocol=protocol, **kw,
    )
    return spec, run_multihop(spec)


class TestCompetitorConvergence:
    def test_beaconless_chain_converges_all_hops(self):
        spec, result = _run("beaconless", Topology.chain(6))
        assert set(result.hop_of) == set(range(6))
        assert result.trace.steady_state_error_us() < 25.0
        # regression windows keep deep hops tight too
        assert max(result.per_hop_error_us.values()) < 25.0

    def test_beaconless_duty_cycle_halves_traffic(self):
        _, sparse = _run("beaconless", Topology.chain(6))
        _, dense = _run("sstsp", Topology.chain(6))
        assert sparse.beacons_sent < dense.beacons_sent
        # ... and the smaller unauthenticated frame compounds the saving
        assert (
            sparse.beacons_sent * BEACONLESS_BEACON_BYTES
            < dense.beacons_sent * SSTSP_BEACON_BYTES
        )

    def test_coop_grid_converges_all_nodes(self):
        spec, result = _run("coop", Topology.grid(3, 3))
        assert set(result.hop_of) == set(range(9))
        assert result.trace.steady_state_error_us() < 25.0

    def test_coop_relays_every_period(self):
        _, coop = _run("coop", Topology.grid(3, 3))
        _, sstsp = _run("sstsp", Topology.grid(3, 3))
        assert coop.beacons_sent > sstsp.beacons_sent

    def test_beaconless_full_mesh_runs_spatially(self):
        # no degenerate lane: the complete graph still runs on the
        # spatial harness and synchronizes everyone at hop 1
        spec, result = _run("beaconless", Topology.full_mesh(5), duration_s=8.0)
        assert set(result.hop_of) == set(range(5))
        assert result.max_hop() == 1


class TestMonotonicityProperty:
    @pytest.mark.parametrize("protocol", available_multihop_protocols())
    def test_synchronized_time_never_leaps(self, protocol):
        """Any registered protocol must express corrections through the
        clock chain: adjusted time stays continuous and non-decreasing
        (the paper's no-leap guarantee, audited per node)."""
        spec = MultiHopSpec(
            topology=Topology.chain(5), seed=2, duration_s=8.0,
            protocol=protocol,
        )
        runner = MultiHopRunner(spec)
        runner.run()
        for state in runner.nodes:
            assert audit_no_leaps(state.clock, 0.0, spec.duration_s * 1e6)

    @pytest.mark.parametrize("protocol", available_multihop_protocols())
    def test_deterministic(self, protocol):
        spec = MultiHopSpec(
            topology=Topology.grid(2, 3), seed=4, duration_s=6.0,
            protocol=protocol,
        )
        a = run_multihop(spec)
        b = run_multihop(spec)
        assert a.beacons_sent == b.beacons_sent
        assert a.hop_of == b.hop_of
        assert list(a.trace.max_diff_us) == list(b.trace.max_diff_us)
