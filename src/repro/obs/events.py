"""The structured event-tracing bus.

Protocol-level *events* — who won beacon contention, which beacons the
guard rejected, when uTESLA deferred vs. authenticated, when the
reference role changed hands — are what SSTSP's claims are about, yet
the traces the kernel records are aggregate error curves. This module
is the bus those events flow over: instrumented kernel code calls
:func:`emit`, and when a :class:`RunObserver` is installed the event is
recorded (in memory, to JSONL, or both) and its counter incremented in
the observer's :class:`~repro.obs.registry.MetricsRegistry`.

The bus is a **strict no-op when disabled**: :func:`emit` costs one
module-global load and a ``None`` check, draws no randomness, reads no
clock and mutates no simulation state, so enabling tracing cannot change
any result — the tier-1 parity suites assert exactly that
(``tests/test_differential_parity.py``). This is the property that lets
every lane stay instrumented permanently.

Event records are JSON objects with a stable schema
(:data:`TRACE_SCHEMA_VERSION`); see ``docs/observability.md`` for the
catalog, per-event timebase notes, and the version policy. Records
carry no wall-clock timestamps — only simulation time — so a seeded run
traces to byte-identical JSONL on every machine (the golden-fixture
test pins this).
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, IO, Iterator, List, Optional

from repro.obs.events_schema import (
    EVENT_SCHEMAS,
    TRACE_SCHEMA_VERSION,
    validate_record,
)
from repro.obs.registry import MetricsRegistry

#: The event catalog: event name -> owning subsystem. *Derived* from
#: :data:`repro.obs.events_schema.EVENT_SCHEMAS` — the machine-readable
#: per-event field spec that the reprolint E-series checks call sites
#: against and :func:`read_events` validates records against — so the
#: runtime bus, the validator and the linter share one event inventory.
EVENT_CATALOG: Dict[str, str] = {
    name: spec.subsystem for name, spec in EVENT_SCHEMAS.items()
}


class RunObserver:
    """Collects one run's events and metrics.

    Parameters
    ----------
    path:
        JSONL destination, or None for in-memory only. The file is
        opened immediately and receives a ``trace_header`` record.
    keep_events:
        Retain events in :attr:`events` (default: True when no path is
        given, else False — long runs stream to disk without holding
        the whole trace in memory).
    """

    def __init__(
        self,
        path: Optional[str] = None,
        keep_events: Optional[bool] = None,
    ) -> None:
        self.path = path
        self.keep_events = keep_events if keep_events is not None else path is None
        self.events: List[Dict[str, Any]] = []
        self.registry = MetricsRegistry()
        self._seq = 0
        self._fh: Optional[IO[str]] = None
        if path is not None:
            directory = os.path.dirname(path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._fh = open(path, "w", encoding="utf-8")
            self._write({"event": "trace_header", "schema": TRACE_SCHEMA_VERSION, "seq": 0})

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record(
        self,
        event: str,
        t_us: Optional[float],
        node: Optional[int],
        fields: Dict[str, Any],
    ) -> None:
        """Record one event (the bus calls this; prefer :func:`emit`)."""
        self._seq += 1
        record: Dict[str, Any] = {"event": event, "seq": self._seq}
        if t_us is not None:
            record["t_us"] = float(t_us)
        if node is not None:
            record["node"] = node
        record.update(fields)
        if self.keep_events:
            self.events.append(record)
        self._write(record)
        self.registry.inc(f"events.{event}", node=node)

    def observe_value(
        self, name: str, value: float, node: Optional[int] = None
    ) -> None:
        """Histogram observation forwarded to the registry."""
        self.registry.observe(name, value, node=node)

    def _write(self, record: Dict[str, Any]) -> None:
        if self._fh is not None:
            self._fh.write(json.dumps(record, sort_keys=True) + "\n")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def event_count(self) -> int:
        """Events recorded so far (header excluded)."""
        return self._seq

    def close(self) -> None:
        """Flush and close the JSONL file (idempotent)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunObserver":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


#: The currently installed observer; None disables the bus.
_OBSERVER: Optional[RunObserver] = None


def emit(
    event: str,
    t_us: Optional[float] = None,
    node: Optional[int] = None,
    **fields: Any,
) -> None:
    """Emit one protocol event onto the bus (no-op when tracing is off).

    ``t_us`` is the event's *simulation*-time stamp; which clock it is
    read from (true / adjusted / hardware) is fixed per event kind and
    documented in the catalog. ``node`` is the acting station, if any.
    """
    observer = _OBSERVER
    if observer is not None:
        observer.record(event, t_us, node, fields)


def observe_value(name: str, value: float, node: Optional[int] = None) -> None:
    """Record a histogram observation (no-op when tracing is off)."""
    observer = _OBSERVER
    if observer is not None:
        observer.observe_value(name, value, node=node)


def tracing_enabled() -> bool:
    """Whether an observer is installed (hot loops may check once)."""
    return _OBSERVER is not None


def current_observer() -> Optional[RunObserver]:
    """The installed observer, or None."""
    return _OBSERVER


class observe_run:
    """Context manager installing a :class:`RunObserver` on the bus.

    ::

        with observe_run("run.jsonl") as obs:
            runner.run()
        print(obs.registry.counter_total("events.guard_reject"))

    The previous observer (normally None) is restored on exit and the
    JSONL file is closed, including on exceptions. Implemented as a
    class rather than ``@contextmanager`` so the observer is also
    reachable as ``observe_run(...).observer`` in tests.
    """

    def __init__(
        self, path: Optional[str] = None, keep_events: Optional[bool] = None
    ) -> None:
        self.observer = RunObserver(path=path, keep_events=keep_events)
        self._previous: Optional[RunObserver] = None

    def __enter__(self) -> RunObserver:
        global _OBSERVER
        self._previous = _OBSERVER
        _OBSERVER = self.observer
        return self.observer

    def __exit__(self, *exc_info: Any) -> None:
        global _OBSERVER
        _OBSERVER = self._previous
        self.observer.close()


def read_events(path: str, validate: bool = False) -> Iterator[Dict[str, Any]]:
    """Iterate the records of one trace JSONL file (header included).

    Raises ValueError when the file's schema version is newer than this
    reader understands; blank lines are skipped. With ``validate=True``
    every record is additionally checked against
    :data:`repro.obs.events_schema.EVENT_SCHEMAS` (unknown events,
    missing required fields, undeclared extras all raise) — the strict
    mode for traces this very tree produced; leave it off when reading
    traces from a newer producer, whose unknown events must be skipped,
    not rejected.
    """
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("event") == "trace_header":
                schema = record.get("schema")
                if schema is not None and schema > TRACE_SCHEMA_VERSION:
                    raise ValueError(
                        f"trace schema {schema} is newer than supported "
                        f"{TRACE_SCHEMA_VERSION}: {path}"
                    )
            if validate:
                problem = validate_record(record)
                if problem is not None:
                    raise ValueError(f"{path}:{lineno}: {problem}")
            yield record
