"""Unit tests for the SSTSP protocol driver state machine and pipeline."""

import numpy as np
import pytest

from repro.core.backend import ModeledCryptoBackend
from repro.core.config import SstspConfig
from repro.core.sstsp import SstspProtocol, SstspState
from repro.crypto.mutesla import IntervalSchedule
from repro.mac.beacon import BeaconFrame, SecureBeaconFrame
from repro.protocols.base import ClockKind, RxContext

BP = 100_000.0


@pytest.fixture
def config():
    return SstspConfig(l=1, m=2)


@pytest.fixture
def backend(config):
    schedule = IntervalSchedule(config.t0_us, config.beacon_period_us, 512)
    backend = ModeledCryptoBackend(schedule)
    for node in range(8):
        backend.register_node(node)
    return backend


def make_node(node_id, config, backend, founding=True, seed=None):
    return SstspProtocol(
        node_id, config, backend,
        np.random.default_rng(node_id if seed is None else seed),
        founding=founding,
    )


def honest_beacon(backend, sender, period, timestamp=None):
    ts = period * BP if timestamp is None else timestamp
    return backend.make_frame(sender, period, ts)


def rx_at(period, hw_offset=10.0, est=None):
    hw = period * BP + hw_offset
    return RxContext(
        true_time=hw, hw_time=hw,
        est_timestamp=period * BP + 64.0 if est is None else est,
        period=period,
    )


class TestStateMachine:
    def test_founding_node_contends_immediately(self, config, backend):
        proto = make_node(1, config, backend)
        intent = proto.begin_period(1)
        assert intent is not None
        assert proto.state is SstspState.CONTENDING
        assert intent.clock is ClockKind.ADJUSTED
        delay = intent.local_time - BP
        assert 0 <= delay <= config.w * config.slot_time_us

    def test_winner_becomes_reference(self, config, backend):
        proto = make_node(1, config, backend)
        proto.begin_period(1)
        proto.end_period(1, heard_beacon=False, transmitted=True, tx_success=True)
        assert proto.state is SstspState.REFERENCE
        assert proto.current_ref == 1

    def test_reference_beacons_every_period_without_delay(self, config, backend):
        proto = make_node(1, config, backend)
        proto.begin_period(1)
        proto.end_period(1, False, True, True)
        for m in range(2, 6):
            intent = proto.begin_period(m)
            assert intent.local_time == pytest.approx(m * BP)

    def test_loser_returns_to_synced(self, config, backend):
        proto = make_node(1, config, backend)
        proto.begin_period(1)
        proto.on_beacon(honest_beacon(backend, 2, 1), rx_at(1))
        proto.end_period(1, True, False, False)
        assert proto.state is SstspState.SYNCED
        assert proto.current_ref == 2

    def test_collision_keeps_contending(self, config, backend):
        proto = make_node(1, config, backend)
        proto.begin_period(1)
        proto.end_period(1, heard_beacon=False, transmitted=True, tx_success=False)
        assert proto.state is SstspState.CONTENDING
        assert proto.begin_period(2) is not None

    def test_silence_triggers_election_after_l(self, config, backend):
        proto = make_node(1, config, backend)
        proto.begin_period(1)
        proto.on_beacon(honest_beacon(backend, 2, 1), rx_at(1))
        proto.end_period(1, True, False, False)
        assert proto.begin_period(2) is None  # synced, reference alive
        proto.end_period(2, False, False, False)  # missed one beacon (l=1)
        assert proto.begin_period(3) is not None
        assert proto.state is SstspState.CONTENDING

    def test_reference_steps_down_on_foreign_valid_beacon(self, config, backend):
        proto = make_node(1, config, backend)
        proto.begin_period(1)
        proto.end_period(1, False, True, True)
        proto.begin_period(2)
        proto.on_beacon(honest_beacon(backend, 2, 2), rx_at(2))
        proto.end_period(2, True, False, False)
        assert proto.state is SstspState.SYNCED

    def test_invalid_beacon_does_not_suppress_election(self, config, backend):
        proto = make_node(1, config, backend)
        proto.begin_period(1)
        proto.on_beacon(honest_beacon(backend, 2, 1), rx_at(1))
        proto.end_period(1, True, False, False)
        # forged beacon (unknown sender) at period 2: pipeline rejects it
        forged = SecureBeaconFrame(
            sender=999, timestamp_us=2 * BP, interval=2,
            mac_tag=b"f" * 16, disclosed_key=b"f" * 16,
        )
        proto.on_beacon(forged, rx_at(2))
        proto.end_period(2, True, False, False)
        assert proto.begin_period(3) is not None  # silence detected anyway

    def test_plain_tsf_beacon_ignored(self, config, backend):
        proto = make_node(1, config, backend)
        proto.begin_period(1)
        proto.on_beacon(BeaconFrame(sender=3, timestamp_us=1 * BP), rx_at(1))
        proto.end_period(1, True, False, False)
        assert proto.state is SstspState.CONTENDING  # not counted as heard


class TestPipeline:
    def run_reference_stream(self, proto, backend, periods, sender=2, jitter=0.0):
        for m in range(1, periods + 1):
            frame = honest_beacon(backend, sender, m)
            proto.on_beacon(frame, rx_at(m, est=m * BP + 64.0 + jitter))
            proto.end_period(m, True, False, False)

    def test_adjustment_starts_at_third_beacon(self, config, backend):
        proto = make_node(1, config, backend)
        self.run_reference_stream(proto, backend, 2)
        assert proto.stats.adjustments == 0
        self.run_reference_stream(proto, backend, 3)
        # note: stream restarted at period 1 is stale; use a fresh node
        proto = make_node(1, config, backend)
        for m in range(1, 4):
            proto.on_beacon(honest_beacon(backend, 2, m), rx_at(m))
            proto.end_period(m, True, False, False)
        assert proto.stats.adjustments == 1

    def test_guard_rejected_beacon_never_becomes_sample(self, config, backend):
        proto = make_node(1, config, backend)
        proto.on_beacon(honest_beacon(backend, 2, 1), rx_at(1))
        # period 2: timestamp wildly off -> guard rejects
        bad = backend.make_frame(2, 2, 2 * BP + 100_000.0)
        proto.on_beacon(bad, rx_at(2, est=2 * BP + 100_000.0))
        assert proto.stats.rejected_guard == 1
        # period 3 releases intervals 1 and 2; only 1 has a stored record
        proto.on_beacon(honest_beacon(backend, 2, 3), rx_at(3))
        assert all(
            s.interval != 2 for s in proto._samples[2]
        )

    def test_reference_change_resets_samples(self, config, backend):
        proto = make_node(1, config, backend)
        for m in range(1, 4):
            proto.on_beacon(honest_beacon(backend, 2, m), rx_at(m))
        assert len(proto._samples[2]) == 2
        proto.on_beacon(honest_beacon(backend, 3, 4), rx_at(4))
        assert 2 not in proto._samples

    def test_adjusted_clock_continuous_and_monotone(self, config, backend):
        proto = make_node(1, config, backend)
        for m in range(1, 30):
            proto.on_beacon(honest_beacon(backend, 2, m), rx_at(m))
            proto.end_period(m, True, False, False)
        assert proto.stats.adjustments > 20
        assert proto.clock.is_monotonic(0.0, 30 * BP)

    def test_converges_to_reference_timeline(self, config, backend):
        proto = make_node(1, config, backend)
        for m in range(1, 40):
            proto.on_beacon(honest_beacon(backend, 2, m), rx_at(m))
            proto.end_period(m, True, False, False)
        # adjusted clock at reception of beacon m equals the estimated
        # reference timestamp (the convergence target of equation (3))
        hw = 39 * BP + 10.0
        assert proto.clock.read_current(hw) == pytest.approx(39 * BP + 64.0, abs=2.0)

    def test_stats_rejections_by_reason(self, config, backend):
        proto = make_node(1, config, backend)
        stale = honest_beacon(backend, 2, 1)
        proto.on_beacon(stale, rx_at(5))  # replay: stale interval
        assert proto.stats.rejections_by_reason == {"unsafe_interval": 1}


class TestJoinerAndChurn:
    def test_joiner_starts_in_coarse(self, config, backend):
        proto = make_node(1, config, backend, founding=False)
        assert proto.state is SstspState.COARSE
        assert proto.begin_period(1) is None

    def test_joiner_acquires_offset_then_syncs(self, config, backend):
        proto = make_node(1, config, backend, founding=False)
        # joiner's clock is 400 us behind network time
        for m in range(1, 5):
            hw = m * BP - 400.0
            rx = RxContext(hw, hw, est_timestamp=m * BP + 64.0, period=m)
            proto.on_beacon(honest_beacon(backend, 2, m), rx)
            proto.end_period(m, True, False, False)
            if proto.state is not SstspState.COARSE:
                break
        assert proto.state is SstspState.SYNCED
        hw = 4 * BP - 400.0
        assert proto.clock.read_current(hw) == pytest.approx(4 * BP + 64.0, abs=25.0)

    def test_on_return_reenters_coarse(self, config, backend):
        proto = make_node(1, config, backend)
        proto.begin_period(1)
        proto.end_period(1, False, True, True)
        proto.on_leave(5)
        assert proto.state is SstspState.SYNCED
        proto.on_return(50)
        assert proto.state is SstspState.COARSE
        assert proto._samples == {}

    def test_reference_stops_beaconing_after_leave(self, config, backend):
        proto = make_node(1, config, backend)
        proto.begin_period(1)
        proto.end_period(1, False, True, True)
        proto.on_leave(3)
        assert proto.state is not SstspState.REFERENCE
