"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(30.0, order.append, "c")
    sim.schedule(10.0, order.append, "a")
    sim.schedule(20.0, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]


def test_ties_break_fifo():
    sim = Simulator()
    order = []
    for tag in "abcd":
        sim.schedule(5.0, order.append, tag)
    sim.run()
    assert order == list("abcd")


def test_now_tracks_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(7.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [7.5]
    assert sim.now == 7.5


def test_schedule_in_is_relative():
    sim = Simulator(start_time=100.0)
    seen = []
    sim.schedule_in(5.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [105.0]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "x")
    sim.schedule(0.5, handle.cancel)
    sim.run()
    assert fired == []


def test_cancel_is_idempotent_and_safe_after_fire():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    sim.run()
    handle.cancel()
    handle.cancel()


def test_events_can_schedule_events():
    sim = Simulator()
    order = []

    def chain(depth):
        order.append(depth)
        if depth < 3:
            sim.schedule_in(1.0, chain, depth + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert order == [0, 1, 2, 3]


def test_run_until_stops_and_advances_clock():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(10.0, fired.append, "b")
    sim.run(until=5.0)
    assert fired == ["a"]
    assert sim.now == 5.0
    sim.run()
    assert fired == ["a", "b"]


def test_run_until_includes_boundary_event():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, fired.append, "edge")
    sim.run(until=5.0)
    assert fired == ["edge"]


def test_cannot_schedule_in_past():
    sim = Simulator(start_time=10.0)
    with pytest.raises(SimulationError):
        sim.schedule(5.0, lambda: None)


def test_cannot_schedule_nan():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(float("nan"), lambda: None)


def test_cannot_schedule_infinity():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(float("inf"), lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule(float("-inf"), lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule_in(float("inf"), lambda: None)


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule_in(-1.0, lambda: None)


def test_step_runs_single_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    assert sim.step()
    assert fired == ["a"]
    assert sim.step()
    assert not sim.step()
    assert fired == ["a", "b"]


def test_peek_skips_cancelled():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    handle.cancel()
    assert sim.peek() == 2.0


def test_events_processed_counter():
    sim = Simulator()
    cancelled = sim.schedule(1.0, lambda: None)
    cancelled.cancel()
    sim.schedule(2.0, lambda: None)
    sim.run()
    assert sim.events_processed == 1


def test_not_reentrant():
    sim = Simulator()

    def reenter():
        with pytest.raises(SimulationError):
            sim.run()

    sim.schedule(1.0, reenter)
    sim.run()


def test_schedule_at_now_runs():
    sim = Simulator()
    fired = []

    def at_now():
        sim.schedule(sim.now, fired.append, "same-time")

    sim.schedule(1.0, at_now)
    sim.run()
    assert fired == ["same-time"]
