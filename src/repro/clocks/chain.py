"""The per-node clock chain: true time -> hardware clock -> adjusted clock.

Every lane of the simulator needs the same three conversions, and before
this module each lane carried its own copy (``network/runner.py`` read the
oscillator inline, ``multihop/runner.py`` kept private ``_hw_at`` /
``_adjusted_at`` / ``_true_at_adjusted`` helpers, ``fastlane/common.py``
re-derived the vectorised read). :class:`ClockChain` is the one place the
composition lives:

``true time --(HardwareClock)--> hardware time --(AdjustedClock)--> adjusted``

Both inverses are provided. The oscillator and the active adjusted-clock
segment are affine, so the exact closed-form inversion is used where the
active segment is known (:meth:`ClockChain.true_at_adjusted`). Protocol
drivers that only expose an opaque ``synchronized_time`` mapping instead
invert by fixed-point iteration (:func:`invert_affine_fixed_point`), which
is how :meth:`repro.network.node.Node.scheduled_true_time` maps adjusted
TBTTs onto the true-time axis.

The chain holds *references*: mutating the hardware clock in place (as
``freq_step`` faults do) or replacing :attr:`ClockChain.adjusted` (as a
sync re-acquisition does) is immediately visible through the chain.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.clocks.adjusted import AdjustedClock
from repro.clocks.oscillator import HardwareClock
from repro.obs.counters import count


class ClockChain:
    """One node's hardware oscillator with an adjusted clock stacked on top."""

    __slots__ = ("hw", "adjusted")

    def __init__(
        self, hw: HardwareClock, adjusted: Optional[AdjustedClock] = None
    ) -> None:
        self.hw = hw
        self.adjusted = adjusted if adjusted is not None else AdjustedClock()

    def hw_at(self, true_time: float) -> float:
        """Hardware clock reading at true time ``true_time``."""
        count("clock.hw_at")
        return self.hw.read(true_time)

    def adjusted_at(self, true_time: float) -> float:
        """Adjusted clock reading (active segment) at true time ``true_time``."""
        count("clock.adjusted_at")
        return self.adjusted.read_current(self.hw.read(true_time))

    def true_at_hw(self, hw_value: float) -> float:
        """True time at which the hardware clock reads ``hw_value``."""
        count("clock.true_at_hw")
        return self.hw.true_time_at(hw_value)

    def true_at_adjusted(self, value: float) -> float:
        """True time at which the adjusted clock (active segment) reads
        ``value``.

        Exact affine inversion: first through the active segment
        ``c = k * hw + b``, then through the oscillator.
        """
        count("clock.true_at_adjusted")
        hw_value = (value - self.adjusted.b) / self.adjusted.k
        return self.hw.true_time_at(hw_value)


def invert_affine_fixed_point(
    mapping: Callable[[float], float],
    target: float,
    tol_us: float = 1e-4,
    max_iterations: int = 12,
) -> float:
    """Invert a near-identity clock mapping by fixed-point iteration.

    ``mapping`` is any hardware-time -> synchronized-time function whose
    slope is within a few hundred ppm of 1 (every clock in this simulator
    qualifies); the iteration ``guess += target - mapping(guess)``
    contracts with factor ``|1 - slope|`` and converges in 2-3 steps.

    Raises :class:`ArithmeticError` when it fails to converge within
    ``max_iterations`` (pathological slope).
    """
    guess = target
    for _ in range(max_iterations):
        error = target - mapping(guess)
        if abs(error) < tol_us:
            break
        guess += error
    else:  # pragma: no cover - pathological slope
        raise ArithmeticError("clock inversion did not converge")
    return guess
