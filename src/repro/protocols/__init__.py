"""Synchronization protocols.

All protocols - the TSF baseline, the related-work schemes the paper
surveys (ATSP, TATSP [4], SATSF [10], Rentel-Kunz [1]) and SSTSP itself
(:mod:`repro.core`) - implement the per-node driver interface of
:mod:`repro.protocols.base` and run unchanged inside the
:mod:`repro.network` harness.

Multi-hop schemes implement :class:`~repro.protocols.multihop_base.
MultiHopProtocol` instead and run inside the spatial
:mod:`repro.multihop` harness; they register by short name in
:data:`~repro.protocols.multihop_base.MULTIHOP_PROTOCOLS` (lazy dotted
paths, so importing this package stays light).
"""

from repro.protocols.base import (
    ClockKind,
    RxContext,
    SyncProtocol,
    TxIntent,
)
from repro.protocols.multihop_base import (
    MULTIHOP_PROTOCOLS,
    MultiHopContext,
    MultiHopFrame,
    MultiHopProtocol,
    available_multihop_protocols,
    resolve_multihop_protocol,
)
from repro.protocols.tsf import TsfConfig, TsfProtocol
from repro.protocols.atsp import AtspConfig, AtspProtocol
from repro.protocols.tatsp import TatspConfig, TatspProtocol
from repro.protocols.satsf import SatsfConfig, SatsfProtocol
from repro.protocols.rentel import RentelConfig, RentelProtocol

__all__ = [
    "ClockKind",
    "SyncProtocol",
    "TxIntent",
    "RxContext",
    "TsfConfig",
    "TsfProtocol",
    "AtspConfig",
    "AtspProtocol",
    "TatspConfig",
    "TatspProtocol",
    "SatsfConfig",
    "SatsfProtocol",
    "RentelConfig",
    "RentelProtocol",
    "MULTIHOP_PROTOCOLS",
    "MultiHopContext",
    "MultiHopFrame",
    "MultiHopProtocol",
    "available_multihop_protocols",
    "resolve_multihop_protocol",
]
