"""Design-space ablations: the knobs DESIGN.md calls load-bearing.

Three sweeps, each isolating one design choice of SSTSP:

* **guard** - the insider attacker's sustainable drag rate is set by the
  guard time; an over-guard shave costs it the channel (section 4's
  argument, quantified);
* **l** - the reference-loss patience: larger l suppresses spurious
  elections under loss at the price of slower reaction to real departures
  (section 3.3's stated trade-off);
* **m** - the slewing aggressiveness: convergence latency vs noise
  filtering vs reference-change robustness (Table 1 + Lemma 2 together).

Every sweep runs its points through the orchestrator
(:mod:`repro.sweep`): each point is a frozen job, so ``--workers`` fans
them across processes and ``--cache-dir`` memoizes them, with identical
row values at any worker count.
"""

from __future__ import annotations

import argparse
from typing import Dict, Optional, Sequence


from repro.analysis.metrics import sync_latency_us
from repro.core.adjustment import reference_change_ratio
from repro.core.config import SstspConfig
from repro.experiments.report import format_table
from repro.experiments.scenarios import TABLE1_INITIAL_OFFSET_US, quick_spec
from repro.fastlane import run_sstsp_vectorized
from repro.network.churn import REFERENCE_MARKER, ChurnEvent
from repro.network.ibss import AttackerSpec, build_network
from repro.sim.units import S
from repro.sweep import (
    JobSpec,
    SweepOptions,
    add_sweep_arguments,
    run_sweep,
    sweep_options_from_args,
)


def job_guard_point(job: JobSpec) -> Dict[str, float]:
    """One guard-ablation point: insider drag at ``guard_us``."""
    p = job.params_dict()
    guard = p["guard_us"]
    shave = p["shave_fraction"] * guard
    spec = quick_spec(
        p["n"], seed=p["seed"], duration_s=40.0,
        attacker=AttackerSpec(start_s=10.0, end_s=30.0, shave_per_period_us=shave),
    )
    config = SstspConfig(m=4, guard_fine_us=guard)
    trace = run_sstsp_vectorized(spec, config=config).trace
    return {
        "shave": shave,
        "during_max": float(trace.window(11 * S, 30 * S).max_diff_us.max()),
        "drag": float(trace.mean_vs_true_us[-1]),
    }


def job_l_point(job: JobSpec) -> Dict[str, float]:
    """One l-ablation point: spurious elections and departure reaction."""
    p = job.params_dict()
    l = p["l"]
    spec = quick_spec(p["n"], seed=p["seed"], duration_s=40.0)
    config = SstspConfig(l=l, m=l + 3)
    result = run_sstsp_vectorized(spec, config=config)
    # reaction to a real departure, reference lane with a forced leave
    runner = build_network(
        "sstsp", quick_spec(20, seed=p["seed"], duration_s=20.0),
        sstsp_config=SstspConfig(l=l, m=l + 3),
    )
    runner.churn.add(ChurnEvent(80, "leave", (REFERENCE_MARKER,)))
    trace = runner.run().trace
    gap = trace.window(8.0 * S, 12.0 * S)
    return {
        "reference_changes": result.reference_changes,
        "steady": result.trace.steady_state_error_us(),
        "departure_transient": float(gap.max_diff_us.max()),
    }


def job_m_point(job: JobSpec) -> Dict[str, float]:
    """One m-ablation point: latency / steady error / Lemma 2 ratio."""
    p = job.params_dict()
    m = p["m"]
    spec = quick_spec(
        p["n"], seed=p["seed"], duration_s=30.0,
        initial_offset_us=TABLE1_INITIAL_OFFSET_US,
    )
    config = SstspConfig(m=m)
    trace = run_sstsp_vectorized(spec, config=config).trace
    latency = sync_latency_us(trace)
    return {
        "latency_s": (latency / S) if latency is not None else float("nan"),
        "steady": trace.steady_state_error_us(),
        "lemma2_ratio": reference_change_ratio(m, l=1),
    }


def sweep_guard(
    guards_us: Sequence[float] = (150.0, 300.0, 600.0, 1_200.0),
    shave_fraction: float = 0.15,
    n: int = 40,
    seed: int = 3,
    sweep: Optional[SweepOptions] = None,
) -> Dict[float, Dict[str, float]]:
    """Insider drag vs guard: the attacker shaves ``shave_fraction * guard``
    per BP (safely inside the guard at every setting)."""
    specs = [
        JobSpec.make(
            "ablation_guard",
            {"guard_us": guard, "shave_fraction": shave_fraction,
             "n": n, "seed": seed},
            root_seed=seed,
        )
        for guard in guards_us
    ]
    values = run_sweep("ablation-guard", specs, sweep).values
    return dict(zip(guards_us, values))


def sweep_l(
    l_values: Sequence[int] = (1, 2, 4),
    n: int = 60,
    seed: int = 2,
    sweep: Optional[SweepOptions] = None,
) -> Dict[int, Dict[str, float]]:
    """Reference-loss patience: spurious elections and reaction time."""
    specs = [
        JobSpec.make("ablation_l", {"l": l, "n": n, "seed": seed}, root_seed=seed)
        for l in l_values
    ]
    values = run_sweep("ablation-l", specs, sweep).values
    return dict(zip(l_values, values))


def sweep_m(
    m_values: Sequence[int] = (1, 2, 3, 4, 6),
    n: int = 60,
    seed: int = 1,
    sweep: Optional[SweepOptions] = None,
) -> Dict[int, Dict[str, float]]:
    """Aggressiveness: latency / steady error / Lemma 2 ratio."""
    specs = [
        JobSpec.make("ablation_m", {"m": m, "n": n, "seed": seed}, root_seed=seed)
        for m in m_values
    ]
    values = run_sweep("ablation-m", specs, sweep).values
    return dict(zip(m_values, values))


def main(argv=None) -> None:
    """CLI entry point; prints the reproduced rows/series."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="fewer points")
    parser.add_argument("--seed", type=int, default=3)
    add_sweep_arguments(parser)
    args = parser.parse_args(argv)
    sweep = sweep_options_from_args(args)

    guards = (300.0, 600.0) if args.quick else (150.0, 300.0, 600.0, 1_200.0)
    print("=== Ablation: guard time vs insider drag ===")
    rows = sweep_guard(guards_us=guards, seed=args.seed, sweep=sweep)
    print(
        format_table(
            ["guard (us)", "shave (us/BP)", "max diff during (us)", "drag (us)"],
            [
                (f"{g:.0f}", f"{r['shave']:.0f}", f"{r['during_max']:.1f}",
                 f"{r['drag']:.0f}")
                for g, r in sorted(rows.items())
            ],
        )
    )
    print("reading: within-guard shaving never desynchronizes; the drag an "
          "insider can sustain scales with the guard\n")

    print("=== Ablation: l (reference-loss patience) ===")
    l_values = (1, 4) if args.quick else (1, 2, 4)
    rows = sweep_l(l_values=l_values, seed=args.seed, sweep=sweep)
    print(
        format_table(
            ["l", "ref changes (no-loss run)", "steady (us)",
             "departure transient (us)"],
            [
                (l, r["reference_changes"], f"{r['steady']:.2f}",
                 f"{r['departure_transient']:.1f}")
                for l, r in sorted(rows.items())
            ],
        )
    )
    print("reading: larger l suppresses spurious elections but lets the "
          "error grow longer when the reference really leaves\n")

    print("=== Ablation: m (slewing aggressiveness) ===")
    m_values = (1, 4) if args.quick else (1, 2, 3, 4, 6)
    rows = sweep_m(m_values=m_values, seed=args.seed, sweep=sweep)
    print(
        format_table(
            ["m", "latency (s)", "steady (us)", "Lemma 2 ratio (l=1)"],
            [
                (m, f"{r['latency_s']:.2f}", f"{r['steady']:.1f}",
                 f"{r['lemma2_ratio']:+.2f}")
                for m, r in sorted(rows.items())
            ],
        )
    )
    print("reading: latency grows with m; error flattens by m~3; the "
          "reference-change amplification vanishes at m = l + 3")


if __name__ == "__main__":
    main()
