"""The SSTSP per-node protocol driver (paper section 3.3).

State machine
-------------

::

    COARSE ──(offset applied)──> SYNCED ──(l silent BPs)──> CONTENDING
                                   ^  ^                        │   │
                                   │  └──(heard a beacon)──────┘   │
                                   │                               │
                                   └────(heard a beacon)── REFERENCE
                                            (steps down)      ^
                                                               │
                                    (won contention, heard nothing)

* Founding nodes start SYNCED with their silence counter saturated, so
  the very first BP holds the initial election ("all nodes contend to
  emit the synchronization beacon at the beginning", section 3.1).
* The REFERENCE beacons at ``T^j = T_0 + j * BP`` on its adjusted clock
  with *no random delay*; everyone else disables beacon emission.
* Every received beacon runs the security pipeline: uTESLA interval and
  key checks, guard-time check, and delayed MAC authentication; only
  *authenticated* observations ever become clock-adjustment samples, and
  only beacons that pass all checks count as "hearing the reference".

Recovery hardening (all opt-in through :class:`SstspConfig`, see
``SstspConfig.hardened``): persistent guard rejections restart
synchronization from the coarse phase; a coarse-phase node facing a
*silent* network gives up scanning and enters the election (otherwise an
all-coarse network deadlocks — coarse nodes never transmit); consecutive
failed election rounds widen the contention window with a bounded
exponential backoff; and a node hearing nothing for a configured stretch
clamps its adjusted clock to a free-run pace so mid-slew transients are
not extrapolated across the outage.
"""

from __future__ import annotations

import enum
import logging
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.clocks.adjusted import AdjustedClock, MonotonicityError
from repro.core.adjustment import (
    AdjustmentSample,
    DegenerateSamplesError,
    solve_adjustment,
)
from repro.core.backend import CryptoBackend
from repro.core.coarse import CoarseSynchronizer
from repro.core.config import SstspConfig
from repro.core.guard import GuardPolicy
from repro.mac.beacon import SecureBeaconFrame
from repro.protocols.base import ClockKind, RxContext, SyncProtocol, TxIntent

logger = logging.getLogger(__name__)


class SstspState(enum.Enum):
    """Protocol phase of one node."""

    COARSE = "coarse"
    SYNCED = "synced"
    CONTENDING = "contending"
    REFERENCE = "reference"


@dataclass
class SstspStats:
    """Per-node protocol counters (tests and analysis read these)."""

    beacons_sent: int = 0
    beacons_received: int = 0
    rejected_pipeline: int = 0
    rejected_guard: int = 0
    adjustments: int = 0
    adjustments_skipped: int = 0
    elections_entered: int = 0
    became_reference: int = 0
    recoveries: int = 0
    coarse_watchdog_trips: int = 0
    free_run_clamps: int = 0
    rejections_by_reason: Dict[str, int] = field(default_factory=dict)


class SstspProtocol(SyncProtocol):
    """One node's SSTSP driver.

    Parameters
    ----------
    node_id:
        Station identity.
    config:
        Protocol parameters.
    backend:
        Shared beacon-protection backend (the node must already be
        registered with it).
    rng:
        Stream for this node's election backoff draws.
    founding:
        True for nodes present at network formation (they are loosely
        synchronized by construction and skip the coarse phase); False for
        later joiners, which start in COARSE.
    initial_offset_us:
        Initial adjusted-clock intercept (founding nodes start with their
        hardware clock: ``c = hw + 0``).
    """

    secure_beacons = True
    protocol_name = "sstsp"

    def __init__(
        self,
        node_id: int,
        config: SstspConfig,
        backend: CryptoBackend,
        rng: np.random.Generator,
        founding: bool = True,
        initial_offset_us: float = 0.0,
    ) -> None:
        self.node_id = node_id
        self.config = config
        self.backend = backend
        self._rng = rng
        self.clock = AdjustedClock(1.0, initial_offset_us)
        self.guard = GuardPolicy(config.guard_fine_us, node_id=node_id)
        self.stats = SstspStats()
        self.state = SstspState.SYNCED if founding else SstspState.COARSE
        self._coarse = None if founding else CoarseSynchronizer(config, node_id=node_id)
        # Saturated silence counter: founding nodes contend immediately.
        self._silent_periods = config.l if founding else 0
        self._valid_beacon_this_period = False
        self._consecutive_guard_rejections = 0
        self._pace_reset_pending = False
        self._last_hw_time: Optional[float] = None
        self._heard_in_coarse = False
        self._coarse_silent_periods = 0
        self._election_rounds = 0
        self.current_ref: Optional[int] = None
        # sender -> authenticated samples, newest last (we keep two).
        self._samples: Dict[int, List[AdjustmentSample]] = defaultdict(list)
        # (sender, interval) -> (hw_time, est_timestamp) of guard-passing
        # receptions awaiting authentication.
        self._pending_rx: Dict[Tuple[int, int], Tuple[float, float]] = {}

    # ------------------------------------------------------------------
    # SyncProtocol interface
    # ------------------------------------------------------------------

    def on_period_time(self, period: int, hw_time: float) -> None:
        self._last_hw_time = hw_time

    def begin_period(self, period: int) -> Optional[TxIntent]:
        if self.state is SstspState.COARSE:
            return None
        nominal = self._nominal_time(period)
        if self.state is SstspState.REFERENCE:
            # The reference beacons at the start of every BP, no delay.
            return TxIntent(local_time=nominal, clock=ClockKind.ADJUSTED)
        if self.state is SstspState.SYNCED and self._silent_periods >= self.config.l:
            self.state = SstspState.CONTENDING
            self.stats.elections_entered += 1
        if self.state is SstspState.CONTENDING:
            slot = int(self._rng.integers(0, self._election_window() + 1))
            return TxIntent(
                local_time=nominal + slot * self.config.slot_time_us,
                clock=ClockKind.ADJUSTED,
            )
        return None

    def _election_window(self) -> int:
        """Contention window in slots: ``w``, doubled per consecutive
        failed election round, capped at ``w * election_backoff_cap``."""
        cfg = self.config
        if cfg.election_backoff_cap <= 1 or self._election_rounds == 0:
            return cfg.w
        rounds = min(self._election_rounds, 16)  # avoid silly exponents
        return min(cfg.w * (2 ** rounds), cfg.w * cfg.election_backoff_cap)

    def make_frame(self, hw_time: float, period: int) -> SecureBeaconFrame:
        if self._pace_reset_pending:
            self._reset_reference_pace(hw_time)
        timestamp = self.clock.read_current(hw_time)
        self.stats.beacons_sent += 1
        return self.backend.make_frame(self.node_id, period, timestamp)

    def on_beacon(self, frame, rx: RxContext) -> None:
        self.stats.beacons_received += 1
        if not isinstance(frame, SecureBeaconFrame):
            return  # a plain TSF beacon carries no authenticator: ignore
        if self.state is SstspState.COARSE:
            self._heard_in_coarse = True
            offset = rx.est_timestamp - self.clock.read_current(rx.hw_time)
            self._coarse.add_sample(offset)
            return
        local_adjusted = self.clock.read_current(rx.hw_time)
        verdict = self.backend.process(self.node_id, frame, local_adjusted)
        if not verdict.accepted:
            self.stats.rejected_pipeline += 1
            reasons = self.stats.rejections_by_reason
            reasons[verdict.reason] = reasons.get(verdict.reason, 0) + 1
            return
        # Guard-time check on the (not yet authenticated) current beacon; a
        # failing beacon is discarded - it will authenticate later but its
        # reception record is never stored, so it can never become a sample.
        if not self.guard.check(rx.est_timestamp, local_adjusted):
            self.stats.rejected_guard += 1
            self._consecutive_guard_rejections += 1
            self._maybe_recover()
            return
        self._consecutive_guard_rejections = 0
        self._valid_beacon_this_period = True
        sender = frame.sender
        if self.current_ref != sender:
            self._on_reference_changed(sender)
        self._pending_rx[(sender, frame.interval)] = (rx.hw_time, rx.est_timestamp)
        self._prune_pending(frame.interval)
        # Promote any newly authenticated receptions to samples.
        for interval in verdict.authenticated_intervals:
            record = self._pending_rx.pop((sender, interval), None)
            if record is None:
                continue
            samples = self._samples[sender]
            samples.append(AdjustmentSample(interval, record[0], record[1]))
            del samples[:-2]
        self._try_adjust(sender, frame.interval, rx.hw_time)

    def end_period(
        self, period: int, heard_beacon: bool, transmitted: bool, tx_success: bool
    ) -> None:
        if self.state is SstspState.COARSE:
            self._coarse.tick_period()
            if self._heard_in_coarse:
                self._coarse_silent_periods = 0
            else:
                self._coarse_silent_periods += 1
                if self._coarse_watchdog_trips(period):
                    return
            self._heard_in_coarse = False
            offset = self._coarse.try_finish()
            if offset is not None:
                # One-time initialisation (documented in repro.core.coarse).
                # The offsets were measured against the *current* segment, so
                # the slope must be preserved: shifting only the intercept
                # moves the whole clock by exactly the measured offset.
                self.clock = AdjustedClock(self.clock.k, self.clock.b + offset)
                self.state = SstspState.SYNCED
                self._silent_periods = 0
            return
        heard_valid = self._valid_beacon_this_period
        self._valid_beacon_this_period = False
        if heard_valid:
            self._silent_periods = 0
        else:
            self._silent_periods += 1
            self._maybe_clamp_free_run()
        if self.state is SstspState.CONTENDING:
            if tx_success and not heard_valid:
                self.state = SstspState.REFERENCE
                logger.info(
                    "node %d became the reference at period %d",
                    self.node_id, period,
                )
                self.stats.became_reference += 1
                self.current_ref = self.node_id
                self._silent_periods = 0
                self._election_rounds = 0
                # The reference is the timebase: a transient slewing slope
                # must not be frozen in (applied on the next beacon, when a
                # hardware timestamp is available).
                self._pace_reset_pending = True
            elif heard_valid:
                self.state = SstspState.SYNCED
                self._election_rounds = 0
            else:
                # Contended, nobody won, nothing heard: a failed round -
                # the next draw backs off (bounded) to break livelock.
                self._election_rounds += 1
        elif self.state is SstspState.REFERENCE and heard_valid:
            # Another station's beacon passed all checks: it took over
            # (post-collision double win, or a lead-transmitting insider).
            self.state = SstspState.SYNCED

    def synchronized_time(self, hw_time: float) -> float:
        return self.clock.read_current(hw_time)

    def is_synchronized(self) -> bool:
        return self.state is not SstspState.COARSE

    def on_leave(self, period: int) -> None:
        if self.state is SstspState.REFERENCE or self.state is SstspState.CONTENDING:
            self.state = SstspState.SYNCED
        self._silent_periods = 0
        self._election_rounds = 0

    def on_return(self, period: int) -> None:
        # A returning node is a re-joiner: while away its clock free-ran
        # and may have drifted beyond the fine guard, in which case it
        # could never re-acquire the reference. Per the paper's joining
        # rule it re-enters the coarse phase (scan, filter, average) and
        # only then resumes fine-grained synchronization.
        self._samples.clear()
        self._pending_rx.clear()
        self._silent_periods = 0
        self._election_rounds = 0
        self._coarse_silent_periods = 0
        self._heard_in_coarse = False
        self.current_ref = None
        self.state = SstspState.COARSE
        self._coarse = CoarseSynchronizer(self.config, node_id=self.node_id)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def is_reference(self) -> bool:
        """Whether this node currently believes it is the reference."""
        return self.state is SstspState.REFERENCE

    def _nominal_time(self, period: int) -> float:
        """``T^j = T_0 + j * BP`` on the synchronized (adjusted) axis."""
        return self.config.t0_us + period * self.config.beacon_period_us

    def _reset_reference_pace(self, hw_time: float) -> None:
        """Clamp the new reference's clock slope to a hardware-plausible
        free-run pace (continuous at ``hw_time``); see
        ``SstspConfig.reference_pace_clamp``."""
        self._pace_reset_pending = False
        self._clamp_pace(hw_time)

    def _clamp_pace(self, hw_time: float) -> bool:
        """Clamp the adjusted-clock slope to ``1 +- reference_pace_clamp``
        continuously at ``hw_time``. Returns True when a new segment was
        installed."""
        clamp = self.config.reference_pace_clamp
        k = self.clock.k
        clamped = min(max(k, 1.0 - clamp), 1.0 + clamp)
        if clamped == k:
            return False
        try:
            self.clock.slew_to(0.0, clamped, at_local_time=hw_time)
        except MonotonicityError:
            # hw_time predates the latest segment (a beacon arrived later
            # in the same period) - skip; the next period retries.
            return False
        return True

    def _maybe_clamp_free_run(self) -> None:
        """Graceful free-run: once silence exceeds the configured stretch,
        stop extrapolating a transient slewing slope and fall back to a
        hardware-plausible pace (continuous - no leap) until a reference
        reappears."""
        after = self.config.free_run_clamp_after
        if (
            after is None
            or self._silent_periods != after
            or self._last_hw_time is None
        ):
            return
        if self._clamp_pace(self._last_hw_time):
            self.stats.free_run_clamps += 1
            logger.info(
                "node %d: no reference for %d periods - clamped to free-run pace",
                self.node_id, after,
            )

    def _coarse_watchdog_trips(self, period: int) -> bool:
        """Coarse-silence watchdog: a scanning node that heard *nothing*
        for the configured stretch stops waiting for a network that is
        not transmitting and enters the election as a founder of last
        resort (its clock is the best timeline it has). Returns True when
        the watchdog fired and the state changed."""
        watchdog = self.config.coarse_silence_watchdog_periods
        if watchdog is None or self._coarse_silent_periods < watchdog:
            return False
        self.stats.coarse_watchdog_trips += 1
        self.stats.elections_entered += 1
        logger.warning(
            "node %d: %d silent periods in the coarse phase - entering "
            "the election at period %d",
            self.node_id, self._coarse_silent_periods, period,
        )
        self._coarse_silent_periods = 0
        self._coarse = CoarseSynchronizer(self.config, node_id=self.node_id)
        self._silent_periods = self.config.l
        self.current_ref = None
        self.state = SstspState.CONTENDING
        return True

    def _maybe_recover(self) -> None:
        """The paper's future-work recovery (opt-in, see SstspConfig):
        persistent guard rejections mean this node's clock has diverged
        from the network's timeline beyond repair - restart the
        synchronization procedure from the coarse phase."""
        threshold = self.config.recovery_rejection_threshold
        if threshold is None or self._consecutive_guard_rejections < threshold:
            return
        self.stats.recoveries += 1
        logger.warning(
            "node %d: %d consecutive guard rejections - restarting "
            "synchronization from the coarse phase",
            self.node_id, threshold,
        )
        self._consecutive_guard_rejections = 0
        self._samples.clear()
        self._pending_rx.clear()
        self.current_ref = None
        self._silent_periods = 0
        self._election_rounds = 0
        self._coarse_silent_periods = 0
        self._heard_in_coarse = False
        self.state = SstspState.COARSE
        self._coarse = CoarseSynchronizer(self.config, node_id=self.node_id)

    def _on_reference_changed(self, sender: int) -> None:
        self.current_ref = sender
        # Samples from the old reference describe a different clock.
        for other in list(self._samples):
            if other != sender:
                del self._samples[other]

    def _prune_pending(self, current_interval: int) -> None:
        horizon = current_interval - self.config.max_sample_age_periods - 2
        stale = [key for key in self._pending_rx if key[1] < horizon]
        for key in stale:
            del self._pending_rx[key]

    def _try_adjust(self, sender: int, interval: int, t_now_hw: float) -> None:
        if sender != self.current_ref:
            return
        samples = self._samples.get(sender, ())
        if len(samples) < 2:
            return
        newest, older = samples[-1], samples[-2]
        cfg = self.config
        if interval - newest.interval > cfg.max_sample_age_periods:
            self.stats.adjustments_skipped += 1
            return
        if newest.interval - older.interval > cfg.max_pair_gap_periods:
            self.stats.adjustments_skipped += 1
            return
        target = self._nominal_time(interval + cfg.m) + cfg.rx_latency_us
        try:
            k, b = solve_adjustment(
                self.clock.k, self.clock.b, t_now_hw, newest, older, target
            )
        except DegenerateSamplesError:
            self.stats.adjustments_skipped += 1
            return
        if abs(k - 1.0) > cfg.k_clamp:
            self.stats.adjustments_skipped += 1
            return
        try:
            self.clock.adjust(k, b, t_now_hw)
        except MonotonicityError:
            self.stats.adjustments_skipped += 1
            return
        self.stats.adjustments += 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SstspProtocol(node={self.node_id}, state={self.state.value}, "
            f"ref={self.current_ref})"
        )
