"""The multi-hop harness, as a client of the shared kernel.

This module is protocol-agnostic: it drives any registered
:class:`~repro.protocols.multihop_base.MultiHopProtocol` (selected by
``MultiHopSpec.protocol``) over a spatial radio topology, owning only
kernel concerns:

* **clocks** — every station is a :class:`~repro.network.node.Node`
  holding a :class:`~repro.clocks.oscillator.HardwareClock` plus the
  :class:`~repro.clocks.chain.ClockChain` conversion between true /
  hardware / adjusted time;
* **MAC** — spatial carrier sensing runs through
  :func:`repro.mac.contention.resolve_neighborhood` (partition faults
  restrict each sender's hearing set);
* **PHY** — delivery runs through
  :class:`~repro.phy.channel.SpatialBroadcastChannel`, gaining the
  shared loss models (per-receiver / per-transmission /
  Gilbert-Elliott), jam windows, loss-burst overrides and per-link
  error overrides. Beacon size and airtime come from the *protocol's*
  frame declaration, not from any hardcoded constant;
* **churn** — ``leave_at`` / ``return_at`` and an optional
  :class:`~repro.network.churn.ChurnSchedule` (reference markers
  included) apply through the shared
  :class:`~repro.network.churn.ChurnApplier`;
* **faults** — a :class:`~repro.faults.injector.FaultInjector` attaches
  exactly as on the single-hop runner (period hooks, stalls,
  partitions, crashes, clock mutations);
* **metrics** — samples are recorded with the shared
  :class:`~repro.analysis.metrics.TraceRecorder`.

Everything synchronization-specific — who transmits when, what a frame
carries, how receivers filter and apply it, who takes over as root —
lives in the protocol implementation
(:mod:`repro.protocols.multihop_sstsp` is the paper's scheme, moved
verbatim out of this file; ``multihop_beaconless`` and ``multihop_coop``
are the related-work competitors).

If the root leaves, the harness runs the orphan election through the
protocol's takeover hooks; the winner becomes the new root.

A *complete* topology is the degenerate case where the spatial model
adds nothing over the single-hop IBSS; when the protocol declares a
single-hop counterpart (:meth:`MultiHopProtocol.degenerate_runner`),
:meth:`MultiHopRunner.run` delegates to that reference
:class:`~repro.network.runner.NetworkRunner`, so complete-graph
multi-hop specs reproduce the single-hop lane's election and adjustment
decisions exactly (see ``tests/test_differential_parity.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.analysis.metrics import SyncTrace, TraceRecorder
from repro.clocks.adjusted import AdjustedClock
from repro.clocks.chain import ClockChain
from repro.clocks.population import ClockPopulation
from repro.core.config import SstspConfig
from repro.mac.contention import resolve_neighborhood
from repro.multihop.topology import Topology
from repro.network.churn import ChurnApplier, ChurnEvent, ChurnSchedule
from repro.network.ibss import ScenarioSpec
from repro.network.node import Node
from repro.network.runner import NetworkRunner, RunnerParams
from repro.obs.counters import work_lane
from repro.obs.events import emit
from repro.obs.profile import span
from repro.phy.channel import SpatialBroadcastChannel
from repro.phy.params import PhyParams
from repro.protocols.multihop_base import (
    MultiHopContext,
    MultiHopFrame,
    MultiHopProtocol,
    resolve_multihop_protocol,
)
from repro.sim.rng import RngRegistry
from repro.sim.units import S

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.injector import FaultInjector

_LOSS_MODELS = ("per_receiver", "per_transmission", "gilbert_elliott")


@dataclass(frozen=True)
class MultiHopSpec:
    """Scenario description for one multi-hop run."""

    topology: Topology
    seed: int = 1
    duration_s: float = 60.0
    beacon_period_us: float = 0.1 * S
    drift_ppm: float = 100.0
    initial_offset_us: float = 0.0
    root: int = 0
    #: Which registered multi-hop protocol drives the stations (see
    #: :data:`repro.protocols.multihop_base.MULTIHOP_PROTOCOLS`).
    protocol: str = "sstsp"
    #: Beacon-window slots reserved per hop level. Must exceed the beacon
    #: airtime or adjacent hop segments overlap on the air and collide at
    #: every station hearing both hops.
    hop_stride_slots: int = 16
    slot_time_us: float = 9.0
    #: Airtime of one beacon in slots. ``None`` (the default) resolves to
    #: the protocol's own frame declaration (7 slots for secure SSTSP
    #: beacons, smaller for the lighter competitor schemes).
    beacon_airtime_slots: Optional[int] = None
    propagation_delay_us: float = 1.0
    timestamp_jitter_us: float = 2.0
    packet_error_rate: float = 1e-4
    #: Probability a relay-eligible node transmits in a given BP. Dense
    #: neighbourhoods benefit from thinning (fewer same-segment collisions).
    relay_probability: float = 1.0
    #: Multi-hop default is deeper filtering than single-hop (m = 4): each
    #: hop tracks a *tracking* clock, so the estimator's noise gain
    #: compounds per hop; small m amplifies it into instability.
    m: int = 4
    l: int = 2
    #: Guard time grows with the sender's hop: per-hop error accumulates
    #: roughly linearly, so a flat guard would cut off deep hops.
    guard_fine_us: float = 500.0
    guard_per_hop_us: float = 100.0
    #: After this many silent periods a node discards its synchronization
    #: state entirely and re-acquires from the first beacon it hears (the
    #: multi-hop analogue of the recovery extension).
    resync_after_periods: int = 10
    k_clamp: float = 5e-3
    #: Shared channel loss model (see :class:`repro.phy.params.PhyParams`).
    loss_model: str = "per_receiver"
    #: Optional churn schedule, merged with ``leave_at`` / ``return_at``
    #: (reference markers resolve to the current root).
    churn: Optional[ChurnSchedule] = None

    def __post_init__(self) -> None:
        if not 0 <= self.root < self.topology.n:
            raise ValueError("root must be a topology node")
        if not 0.0 < self.relay_probability <= 1.0:
            raise ValueError("relay_probability must be in (0, 1]")
        if self.hop_stride_slots < 1:
            raise ValueError("hop_stride_slots must be >= 1")
        # Resolving also validates the protocol name.
        protocol_cls = resolve_multihop_protocol(self.protocol)
        if self.beacon_airtime_slots is None:
            object.__setattr__(
                self, "beacon_airtime_slots", protocol_cls.beacon_airtime_slots
            )
        if self.hop_stride_slots <= self.airtime_slots:
            raise ValueError(
                "hop_stride_slots must exceed beacon_airtime_slots: adjacent "
                "hop segments would overlap on the air"
            )
        if self.loss_model not in _LOSS_MODELS:
            raise ValueError(f"unknown loss model {self.loss_model!r}")

    @property
    def airtime_slots(self) -> int:
        """``beacon_airtime_slots`` after protocol-default resolution
        (``__post_init__`` guarantees it is set)."""
        value = self.beacon_airtime_slots
        assert value is not None
        return value

    @property
    def periods(self) -> int:
        return int(round(self.duration_s * S / self.beacon_period_us))


class RelayNode(Node):
    """A multi-hop station: a kernel :class:`Node` whose protocol is a
    :class:`MultiHopProtocol`, with the relay fields surfaced for
    tests/diagnostics."""

    __slots__ = ()

    @property
    def hop(self) -> Optional[int]:
        return self.protocol.hop

    @property
    def upstream(self) -> Optional[int]:
        return self.protocol.upstream

    @property
    def clock(self) -> AdjustedClock:
        return self.protocol.clock


@dataclass
class MultiHopResult:
    """Outcome of one multi-hop run."""

    trace: SyncTrace
    per_hop_error_us: Dict[int, float]
    hop_of: Dict[int, int]
    root: int
    root_changes: int
    beacons_sent: int
    collisions_at_receivers: int

    def max_hop(self) -> int:
        """Deepest hop distance present in the final tree."""
        return max(self.hop_of.values()) if self.hop_of else 0


def degenerate_scenario(spec: MultiHopSpec) -> Tuple[ScenarioSpec, SstspConfig]:
    """Translate a complete-graph multi-hop spec to the single-hop SSTSP
    lane (kept as a module function for the differential-parity tests;
    the translation itself lives on the protocol —
    :meth:`~repro.protocols.multihop_sstsp.SstspRelayProtocol.single_hop_lane`)."""
    from repro.protocols.multihop_sstsp import SstspRelayProtocol

    return SstspRelayProtocol.single_hop_lane(spec)


class MultiHopRunner:
    """Drives one multi-hop network on the shared kernel."""

    def __init__(self, spec: MultiHopSpec) -> None:
        self.spec = spec
        self.n = spec.topology.n
        self._protocol_cls = resolve_multihop_protocol(spec.protocol)
        self.protocol_name = self._protocol_cls.protocol_name
        self.rngs = RngRegistry(spec.seed)
        population = ClockPopulation.sample(
            self.n,
            self.rngs.get("clocks"),
            drift_ppm=spec.drift_ppm,
            initial_offset_us=spec.initial_offset_us,
        )
        self._slot_rng = self.rngs.get("slots")
        self.phy = PhyParams(
            slot_time_us=spec.slot_time_us,
            beacon_airtime_slots=spec.airtime_slots,
            propagation_delay_us=spec.propagation_delay_us,
            timestamp_jitter_us=spec.timestamp_jitter_us,
            packet_error_rate=spec.packet_error_rate,
            loss_model=spec.loss_model,
        )
        self.channel: SpatialBroadcastChannel = SpatialBroadcastChannel(
            self.phy, self.rngs.get("channel"), spec.topology
        )
        self.params = RunnerParams(
            beacon_period_us=spec.beacon_period_us,
            periods=spec.periods,
            beacon_airtime_slots=spec.airtime_slots,
        )
        chains = [
            ClockChain(population.clock(i)) for i in range(self.n)
        ]
        stations = self._protocol_cls.build(spec, chains)
        self.nodes: List[Node] = []
        for i in range(self.n):
            node = RelayNode(i, chains[i].hw)
            node.protocol = stations[i]
            self.nodes.append(node)
        self._by_id: Dict[int, Node] = {node.node_id: node for node in self.nodes}
        self.ctx = MultiHopContext(
            spec,
            self._slot_rng,
            rx_latency_us=(
                spec.airtime_slots * spec.slot_time_us
                + spec.propagation_delay_us
            ),
            sample_timestamp_error=self.channel.sample_timestamp_error,
            state_of=self._state,
            is_present=lambda node_id: self._by_id[node_id].present,
        )
        self.root = spec.root
        self._state(self.root).hop = 0
        self._last_valid_root = spec.root
        self.root_changes = 0
        self.beacons_sent = 0
        self.collisions = 0
        self.recorder = TraceRecorder()
        self._per_hop_errors: Dict[int, List[float]] = {}
        #: scheduled departures: period -> list of nodes (tests/examples use
        #: this to exercise root failover)
        self.leave_at: Dict[int, List[int]] = {}
        self.return_at: Dict[int, List[int]] = {}
        self._events: List[str] = []
        self.injector: Optional["FaultInjector"] = None
        self._churn_applier: Optional[ChurnApplier] = None

    # ------------------------------------------------------------------
    # Kernel surface (shared with NetworkRunner)
    # ------------------------------------------------------------------

    def attach_injector(self, injector: "FaultInjector") -> None:
        """Bind a fault injector; its hooks run every period from now on."""
        injector.bind(self)
        self.injector = injector

    def current_reference(self) -> int:
        """The current root (-1 while orphaned) - the reference role of
        this lane, consulted by churn markers and crash bookkeeping."""
        if self.root >= 0 and self._by_id[self.root].present:
            return self.root
        return -1

    def _state(self, node_id: int) -> MultiHopProtocol:
        return self._by_id[node_id].protocol

    def _adjusted_at(self, node_id: int, true_time: float) -> float:
        return self._state(node_id).chain.adjusted_at(true_time)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self) -> MultiHopResult:
        """Simulate all periods; returns the result bundle."""
        spec = self.spec
        if self.n >= 2 and spec.topology.is_complete():
            inner = self._protocol_cls.degenerate_runner(spec)
            if inner is not None:
                return self._run_degenerate(inner)
        self._churn_applier = ChurnApplier(self._merged_churn())
        with work_lane(f"multihop/{self.protocol_name}"):
            for period in range(1, spec.periods + 1):
                self._run_period(period)
        per_hop = {
            hop: float(np.median(values))
            for hop, values in sorted(self._per_hop_errors.items())
        }
        hop_of = (
            spec.topology.hop_distances(self.root) if self.root >= 0 else {}
        )
        return MultiHopResult(
            trace=self.recorder.finalize(),
            per_hop_error_us=per_hop,
            hop_of=hop_of,
            root=self.root,
            root_changes=self.root_changes,
            beacons_sent=self.beacons_sent,
            collisions_at_receivers=self.collisions,
        )

    def _run_period(self, period: int) -> None:
        with span("multihop.period"):
            with span("multihop.churn"):
                self._apply_churn(period)
            if self.injector is not None:
                self.injector.on_period_start(period)
                stalled = self.injector.stalled_ids(period)
                partition = self.injector.partition_groups(period)
            else:
                stalled: frozenset = frozenset()
                partition = None
            # A crashed root orphans the tree exactly like a departed one.
            if self.root >= 0 and not self._by_id[self.root].present:
                self.root = -1
            with span("multihop.collect"):
                transmissions = self._collect_transmissions(
                    period, stalled, partition
                )
            with span("multihop.receptions"):
                receptions = self._resolve_receptions(
                    transmissions, stalled, partition
                )
            with span("multihop.process"):
                accepted = self._process_receptions(period, receptions)
            with span("multihop.end_period"):
                self._end_period(period, accepted, stalled)
            with span("multihop.sample"):
                self._sample_metrics(period)
            if self.injector is not None:
                self.injector.on_period_end(period)

    # ------------------------------------------------------------------
    # Degenerate (complete-graph) delegation
    # ------------------------------------------------------------------

    def _run_degenerate(self, inner: NetworkRunner) -> MultiHopResult:
        """Run a complete-graph spec on the protocol's single-hop lane."""
        spec = self.spec
        # Keep the full clock matrix: per-hop errors are reconstructed
        # from it after the run.
        inner.params = replace(inner.params, keep_values=True)
        inner.recorder = TraceRecorder(keep_values=True)
        merged = self._merged_churn()
        if len(merged):
            inner.set_churn(merged)
        if self.injector is not None:
            inner.attach_injector(self.injector)
        result = inner.run()
        # Re-expose the inner kernel surface so post-run inspection
        # (chaos invariants, fault logs) sees the network that actually ran.
        self.nodes = inner.nodes
        self._by_id = inner._by_id
        self.channel = inner.channel  # type: ignore[assignment]
        self.params = inner.params
        self._events = inner._events

        trace = result.trace
        ref_ids = trace.reference_ids
        valid = ref_ids[ref_ids >= 0]
        final_root = int(valid[-1]) if valid.size else -1
        hop_of = (
            spec.topology.hop_distances(final_root) if final_root >= 0 else {}
        )
        per_hop_samples: Dict[int, List[float]] = {}
        if trace.values_us is not None and final_root >= 0:
            half = spec.periods // 2
            for idx in range(len(trace)):
                if idx + 1 <= half:  # mirror "period > periods // 2"
                    continue
                rid = int(ref_ids[idx])
                if rid < 0:
                    continue
                row = trace.values_us[idx]
                root_value = row[rid]
                if math.isnan(root_value):
                    continue
                for col in range(row.shape[0]):
                    hop = hop_of.get(col)
                    if hop is None or hop == 0:
                        continue
                    value = row[col]
                    if math.isnan(value):
                        continue
                    per_hop_samples.setdefault(hop, []).append(
                        abs(value - root_value)
                    )
        per_hop = {
            hop: float(np.median(values))
            for hop, values in sorted(per_hop_samples.items())
        }
        self.root = final_root
        self.root_changes = trace.reference_changes()
        self.beacons_sent = result.successful_beacons
        self.collisions = inner.channel.stats.collisions
        return MultiHopResult(
            trace=trace,
            per_hop_error_us=per_hop,
            hop_of=hop_of,
            root=final_root,
            root_changes=self.root_changes,
            beacons_sent=self.beacons_sent,
            collisions_at_receivers=self.collisions,
        )

    # ------------------------------------------------------------------
    # Churn
    # ------------------------------------------------------------------

    def _merged_churn(self) -> ChurnSchedule:
        """The spec's schedule plus the runner's leave_at/return_at dicts."""
        schedule = self.spec.churn or ChurnSchedule()
        extra = ChurnSchedule()
        for period in sorted(self.leave_at):
            extra.add(ChurnEvent(period, "leave", tuple(self.leave_at[period])))
        for period in sorted(self.return_at):
            extra.add(ChurnEvent(period, "return", tuple(self.return_at[period])))
        return schedule.merged_with(extra)

    def _apply_churn(self, period: int) -> None:
        def is_present(node_id: int) -> Optional[bool]:
            node = self._by_id.get(node_id)
            return None if node is None else node.present

        t_us = period * self.spec.beacon_period_us

        def leave(node_id: int) -> None:
            node = self._by_id[node_id]
            node.present = False
            node.protocol.on_leave(period)
            self._events.append(f"p{period}: node {node_id} left")
            emit("churn_leave", t_us=t_us, node=node_id, period=period)
            if node_id == self.root:
                self.root = -1  # orphaned; first-hop children will elect

        def ret(node_id: int) -> None:
            node = self._by_id[node_id]
            node.present = True
            node.protocol.on_return(period)
            self._events.append(f"p{period}: node {node_id} returned")
            emit("churn_return", t_us=t_us, node=node_id, period=period)

        assert self._churn_applier is not None
        self._churn_applier.apply(
            period,
            current_reference=self.current_reference,
            is_present=is_present,
            leave=leave,
            ret=ret,
        )

    # ------------------------------------------------------------------
    # Phases of one period
    # ------------------------------------------------------------------

    def _collect_transmissions(
        self,
        period: int,
        stalled: frozenset,
        partition: Optional[Dict[int, int]],
    ) -> List[MultiHopFrame]:
        spec = self.spec
        nominal = period * spec.beacon_period_us
        out: List[MultiHopFrame] = []
        self.ctx.root = self.root
        self.ctx.orphan_election = (
            self.root < 0 or not self._by_id[self.root].present
        )
        for i in range(self.n):
            node = self._by_id[i]
            if not node.present or i in stalled:
                continue
            state = node.protocol
            delay = state.begin_period(period, self.ctx)
            if delay is None:
                continue
            # The intent's schedule lives on the station's synchronized
            # clock; map it to the true-time axis through the chain.
            tx_true = state.chain.true_at_adjusted(nominal + delay)
            out.append(state.make_frame(period, delay, tx_true, self.ctx))
        return self._carrier_sense(out, partition)

    def _carrier_sense(
        self,
        candidates: List[MultiHopFrame],
        partition: Optional[Dict[int, int]],
    ) -> List[MultiHopFrame]:
        """802.11 deferral/cancellation over the hearing graph: a relay
        whose backoff expires while an *audible* neighbour's transmission
        is on the air cancels (it just received that beacon). Mutually
        hidden transmitters still collide downstream - that is physics,
        handled at the receivers. A partition fault cuts hearing across
        groups."""
        spec = self.spec
        airtime = spec.airtime_slots * spec.slot_time_us
        by_sender = {tx.sender: tx for tx in candidates}

        def hears(sender: int):
            neighbors = spec.topology.neighbors(sender)
            if partition is None:
                return neighbors
            group = partition.get(sender)
            return [n for n in neighbors if partition.get(n) == group]

        result = resolve_neighborhood(
            [(tx.sender, tx.tx_true) for tx in candidates], airtime, hears
        )
        self.beacons_sent += len(result.kept)
        kept = [by_sender[sender] for sender, _start in result.kept]
        for tx in kept:
            emit(
                "beacon_tx",
                t_us=tx.tx_true,
                node=tx.sender,
                period=tx.interval,
                hop=tx.hop,
                proto=self.protocol_name,
            )
        return kept

    def _resolve_receptions(
        self,
        transmissions: List[MultiHopFrame],
        stalled: frozenset,
        partition: Optional[Dict[int, int]],
    ) -> Dict[int, List[MultiHopFrame]]:
        """Per-receiver spatial reception through the shared channel."""
        spec = self.spec
        airtime = spec.airtime_slots * spec.slot_time_us
        by_sender = {tx.sender: tx for tx in transmissions}
        receivers = [
            i
            for i in range(self.n)
            if self._by_id[i].present and i not in stalled
        ]
        audible = None
        if partition is not None:
            groups = partition

            def audible(receiver: int, sender: int) -> bool:
                return groups.get(receiver) == groups.get(sender)

        delivery = self.channel.deliver_window(
            [(tx.sender, tx.tx_true) for tx in transmissions],
            receivers,
            airtime,
            size_bytes=self._protocol_cls.beacon_bytes,
            audible=audible,
        )
        self.collisions += delivery.collisions
        return {
            receiver: [by_sender[s] for s in senders]
            for receiver, senders in delivery.receptions.items()
        }

    def _process_receptions(
        self, period: int, receptions: Dict[int, List[MultiHopFrame]]
    ) -> Set[int]:
        """Returns the set of receivers that *accepted* a beacon (decoded,
        interval-fresh and plausibility-passing) - the input to silence
        tracking. The accept/reject decision itself is the protocol's."""
        accepted: Set[int] = set()
        latency = self.ctx.rx_latency_us
        for receiver, decoded in receptions.items():
            for tx in decoded:
                emit(
                    "beacon_rx",
                    t_us=tx.tx_true + latency,
                    node=receiver,
                    src=tx.sender,
                    period=period,
                    proto=self.protocol_name,
                )
            if receiver == self.root:
                accepted.add(receiver)
                continue
            if self._state(receiver).on_receptions(period, decoded, self.ctx):
                accepted.add(receiver)
        return accepted

    def _end_period(
        self, period: int, accepted: Set[int], stalled: frozenset
    ) -> None:
        orphan_election = self.root < 0
        for i in range(self.n):
            node = self._by_id[i]
            if not node.present or i == self.root or i in stalled:
                continue
            node.protocol.end_period(period, i in accepted, self.ctx)
        if orphan_election:
            # a volunteer that transmitted and heard nothing becomes root
            candidates = [
                i
                for i in range(self.n)
                if self._by_id[i].present
                and i not in stalled
                and self._state(i).wants_root_takeover(i in accepted)
            ]
            # the transmission set for this period is gone; approximate the
            # single-winner rule with the earliest-slot draw equivalent:
            if candidates:
                winner = candidates[0]
                self.root = winner
                self.root_changes += 1
                emit(
                    "reference_change",
                    t_us=period * self.spec.beacon_period_us,
                    old_ref=self._last_valid_root,
                    new_ref=winner,
                    period=period,
                )
                self._last_valid_root = winner
                self._state(winner).on_elected_root(period, self.ctx)

    def _sample_metrics(self, period: int) -> None:
        spec = self.spec
        sample_time = (period + 0.9) * spec.beacon_period_us
        values = []
        present_synced = []
        for i in range(self.n):
            node = self._by_id[i]
            if node.present and node.protocol.is_synchronized():
                values.append(self._adjusted_at(i, sample_time))
                present_synced.append(i)
        self.recorder.record(
            sample_time, values, self.root if self.root >= 0 else -1
        )
        # per-hop error vs the root (second half of the run only)
        if self.root >= 0 and period > spec.periods // 2:
            root_value = self._adjusted_at(self.root, sample_time)
            hops = self.spec.topology.hop_distances(self.root)
            for i, value in zip(present_synced, values):
                hop = hops.get(i)
                if hop is None or hop == 0:
                    continue
                self._per_hop_errors.setdefault(hop, []).append(
                    abs(value - root_value)
                )


def run_multihop(spec: MultiHopSpec) -> MultiHopResult:
    """Convenience wrapper."""
    return MultiHopRunner(spec).run()
