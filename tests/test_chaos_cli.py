"""Failure path of the chaos soak CLI.

A fault plan that violates the configured Lemma-2 bound must make the
CLI exit non-zero *and* name the violated invariant — a soak harness
that fails silently (or green) under a broken bound is worse than none.
The bound is driven to an unachievable 0.5 us so any real network
violates it deterministically.
"""

from __future__ import annotations

import pytest

from repro.experiments import chaos


@pytest.fixture
def isolated_results(monkeypatch, tmp_path):
    # keep run logs out of the repo's results/ directory
    monkeypatch.setenv("SSTSP_RESULTS_DIR", str(tmp_path))
    return tmp_path


ARGS = [
    "--plans", "1",
    "--seed", "7",
    "--nodes", "8",
    "--periods", "160",
    "--no-cache",
]


def test_violated_bound_exits_nonzero_and_names_invariant(
    isolated_results, capsys
):
    with pytest.raises(SystemExit) as excinfo:
        chaos.main(ARGS + ["--bound-us", "0.5", "--converged-us", "0.4"])
    assert excinfo.value.code == 1

    out = capsys.readouterr().out
    assert "violated invariants:" in out
    assert "plan 0:" in out
    # the specific invariant is spelled out with the configured bound
    assert "tail error" in out and "0.5us" in out
    assert "not re-converged" in out


def test_default_bounds_pass_and_exit_zero(isolated_results, capsys):
    # same plan under the real Lemma-2 bound: green, no SystemExit
    chaos.main(ARGS)
    out = capsys.readouterr().out
    assert "1/1 plans green" in out
    assert "violated invariants:" not in out
