"""The per-BP network runner.

Each beacon period the runner:

1. applies churn events due this period (``REFERENCE_MARKER`` resolved to
   the current reference);
2. fires the attached fault injector's period-start hook (crashes,
   restarts, clock mutations, channel windows) and queries it for the
   period's stalled nodes and partition split;
3. asks every present, un-stalled node's protocol for a transmission
   intent and maps it to the true-time axis through that node's clocks;
4. resolves the beacon window with the carrier-sense contention cascade —
   per partition group when the network is split, so carrier sensing
   never leaks across a partition;
5. builds the winning beacon(s), pushes them through the lossy broadcast
   channel, and dispatches receptions with per-receiver
   timestamp-estimate jitter;
6. runs end-of-period hooks, records the metric sample, and fires the
   injector's period-end hook (expiring channel effects).

Rounds and churn are sequenced through the discrete-event kernel so that
other event sources (tests inject their own) interleave correctly.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.injector import FaultInjector

from repro.analysis.metrics import TraceRecorder, SyncTrace
from repro.mac.contention import ContentionResult, partition_domains, resolve_contention
from repro.obs.counters import work_lane
from repro.obs.events import emit
from repro.obs.profile import span
from repro.network.churn import ChurnApplier, ChurnSchedule
from repro.network.node import Node
from repro.phy.channel import BroadcastChannel
from repro.phy.params import PhyParams
from repro.protocols.base import RxContext
from repro.sim.engine import Simulator
from repro.sim.units import S

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class RunnerParams:
    """Run-shape parameters.

    Attributes
    ----------
    beacon_period_us:
        ``BP``.
    periods:
        Number of beacon periods to simulate (period indices start at 1,
        aligning with uTESLA interval 1 at ``T_0 + BP``).
    beacon_airtime_slots:
        Airtime of this network's beacons (4 TSF / 7 SSTSP).
    sample_offset_fraction:
        Where inside each period the metric sample is taken (after the
        beacon exchange settles).
    keep_values:
        Retain the full per-node clock matrix in the trace (application
        evaluations consume it; costs 8 bytes x periods x nodes).
    """

    beacon_period_us: float = 0.1 * S
    periods: int = 1000
    beacon_airtime_slots: int = 4
    sample_offset_fraction: float = 0.9
    keep_values: bool = False

    def __post_init__(self) -> None:
        if self.beacon_period_us <= 0:
            raise ValueError("beacon_period_us must be > 0")
        if self.periods < 1:
            raise ValueError("periods must be >= 1")
        if not 0.0 < self.sample_offset_fraction < 1.0:
            raise ValueError("sample_offset_fraction must be in (0, 1)")


@dataclass
class RunResult:
    """Everything a finished run exposes."""

    trace: SyncTrace
    nodes: List[Node]
    channel: BroadcastChannel
    periods: int
    successful_beacons: int = 0
    contention_windows: int = 0
    events: List[str] = field(default_factory=list)


class NetworkRunner:
    """Drives one IBSS for a configured number of beacon periods."""

    def __init__(
        self,
        nodes: Sequence[Node],
        channel: BroadcastChannel,
        phy: PhyParams,
        params: RunnerParams,
        churn: Optional[ChurnSchedule] = None,
        injector: Optional["FaultInjector"] = None,
    ) -> None:
        ids = [node.node_id for node in nodes]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate node ids")
        self.nodes = list(nodes)
        self._by_id: Dict[int, Node] = {node.node_id: node for node in nodes}
        self.channel = channel
        self.phy = phy
        self.params = params
        self.churn = churn or ChurnSchedule()
        self.recorder = TraceRecorder(keep_values=params.keep_values)
        self._churn_applier = ChurnApplier(self.churn)
        self._events: List[str] = []
        self._beacon_successes = 0
        self._windows = 0
        self._last_beacon_true = 0.0
        self._last_valid_ref = -1
        self.injector = None
        if injector is not None:
            self.attach_injector(injector)

    def attach_injector(self, injector: "FaultInjector") -> None:
        """Bind a fault injector; its hooks run every period from now on."""
        injector.bind(self)
        self.injector = injector

    def set_churn(self, schedule: ChurnSchedule) -> None:
        """Replace the churn schedule (resets the marker FIFO)."""
        self.churn = schedule
        self._churn_applier = ChurnApplier(schedule)

    @property
    def _marker_left(self) -> List[int]:
        """Reference-marker FIFO (kept on the shared applier)."""
        return self._churn_applier.marker_left

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(self) -> RunResult:
        """Simulate all periods and return the result bundle."""
        sim = Simulator()
        bp = self.params.beacon_period_us
        proto = self.nodes[0].protocol.protocol_name if self.nodes else "none"
        with work_lane(f"singlehop/{proto}"):
            for period in range(1, self.params.periods + 1):
                sim.schedule(period * bp, self._run_period, period)
            sim.run()
        return RunResult(
            trace=self.recorder.finalize(),
            nodes=self.nodes,
            channel=self.channel,
            periods=self.params.periods,
            successful_beacons=self._beacon_successes,
            contention_windows=self._windows,
            events=self._events,
        )

    def current_reference(self) -> int:
        """Node id of the station believing it is the reference (-1 if
        none / not an SSTSP network)."""
        for node in self.nodes:
            is_ref = getattr(node.protocol, "is_reference", None)
            if is_ref is not None and node.present and is_ref():
                return node.node_id
        return -1

    # ------------------------------------------------------------------
    # One period
    # ------------------------------------------------------------------

    def _run_period(self, period: int) -> None:
        with span("singlehop.period"):
            self._period_body(period)

    def _period_body(self, period: int) -> None:
        bp = self.params.beacon_period_us
        with span("singlehop.churn"):
            self._apply_churn(period)
        if self.injector is not None:
            self.injector.on_period_start(period)
            stalled = self.injector.stalled_ids(period)
            partition = self.injector.partition_groups(period)
        else:
            stalled = frozenset()
            partition = None
        # Stalled nodes are present (their clocks keep running and they
        # stay in the metric) but frozen: no tx, no rx, no hooks.
        active = [
            node
            for node in self.nodes
            if node.present and node.node_id not in stalled
        ]
        now = period * bp
        for node in active:
            node.protocol.on_period_time(period, node.hw.read(now))

        candidates = []
        for node in active:
            intent = node.protocol.begin_period(period)
            if intent is None:
                continue
            candidates.append((node.node_id, node.scheduled_true_time(intent)))

        # A partition splits carrier sensing as well as delivery: each
        # group resolves its own beacon window.
        domains = partition_domains(
            candidates, [node.node_id for node in active], partition
        )

        airtime = self.params.beacon_airtime_slots * self.phy.slot_time_us
        transmitted_ids = set()
        received_ids = set()
        winner_ids = set()
        success_starts = []
        for group_candidates, members in domains:
            if group_candidates:
                self._windows += 1
                with span("singlehop.contention"):
                    result = resolve_contention(
                        group_candidates, airtime, self.phy.cca_us
                    )
            else:
                result = ContentionResult()

            for tx in result.transmissions:
                transmitted_ids.update(tx.members)
                if not tx.success:
                    self.channel.record_collision(len(tx.members))

            success = result.first_success
            if success is None:
                continue
            winner_id = success.members[0]
            winner_ids.add(winner_id)
            success_starts.append(success.start_us)
            sender = self._by_id[winner_id]
            hw_tx = sender.hw.read(success.start_us)
            frame = sender.protocol.make_frame(hw_tx, period)
            self._beacon_successes += 1
            emit(
                "beacon_tx",
                t_us=success.start_us,
                node=winner_id,
                period=period,
                proto=sender.protocol.protocol_name,
            )
            pool = [nid for nid in members if nid != winner_id]
            with span("singlehop.broadcast"):
                delivered = self.channel.broadcast(
                    winner_id, pool, success.start_us, frame.size_bytes
                )
            arrival = success.end_us + self.phy.propagation_delay_us
            latency = (success.end_us - success.start_us) + self.phy.propagation_delay_us
            for rid in delivered:
                rnode = self._by_id[rid]
                est = (
                    frame.timestamp_us
                    + latency
                    + self.channel.sample_timestamp_error()
                )
                rx = RxContext(
                    true_time=arrival,
                    hw_time=rnode.hw.read(arrival),
                    est_timestamp=est,
                    period=period,
                )
                rnode.protocol.on_beacon(frame, rx)
                received_ids.add(rid)
                emit(
                    "beacon_rx",
                    t_us=arrival,
                    node=rid,
                    src=winner_id,
                    period=period,
                    proto=sender.protocol.protocol_name,
                )

        for node in active:
            node.protocol.end_period(
                period,
                heard_beacon=node.node_id in received_ids,
                transmitted=node.node_id in transmitted_ids,
                tx_success=node.node_id in winner_ids,
            )

        # Sample at a fixed phase relative to the beacon grid (see the
        # vector engine): emission instants drift against the nominal grid
        # at the timebase's pace error, and tying the sample phase to the
        # beacons keeps "0.9 BP after the last correction" true all run.
        if success_starts:
            self._last_beacon_true = min(success_starts)
        else:
            self._last_beacon_true += bp
        sample_time = (
            self._last_beacon_true + self.params.sample_offset_fraction * bp
        )
        values = []
        full = (
            np.full(len(self.nodes), np.nan) if self.params.keep_values else None
        )
        for index, node in enumerate(self.nodes):
            if not (
                node.present
                and node.include_in_metrics
                and node.protocol.is_synchronized()
            ):
                continue
            value = node.synchronized_time_at(sample_time)
            values.append(value)
            if full is not None:
                full[index] = value
        reference = self.current_reference()
        # Mirror SyncTrace.reference_changes(): only transitions between
        # two *valid* reference ids count (interregnums are not changes),
        # so `repro trace summary` matches the invariant evaluation.
        if reference >= 0:
            if 0 <= self._last_valid_ref != reference:
                emit(
                    "reference_change",
                    t_us=sample_time,
                    old_ref=self._last_valid_ref,
                    new_ref=reference,
                    period=period,
                )
            self._last_valid_ref = reference
        self.recorder.record(sample_time, values, reference, full_values=full)
        if self.injector is not None:
            self.injector.on_period_end(period)

    # ------------------------------------------------------------------
    # Churn
    # ------------------------------------------------------------------

    def _apply_churn(self, period: int) -> None:
        def is_present(node_id: int) -> Optional[bool]:
            node = self._by_id.get(node_id)
            return None if node is None else node.present

        t_us = period * self.params.beacon_period_us

        def leave(node_id: int) -> None:
            node = self._by_id[node_id]
            node.present = False
            node.protocol.on_leave(period)
            self._events.append(f"p{period}: node {node_id} left")
            emit("churn_leave", t_us=t_us, node=node_id, period=period)
            logger.info("churn: node %d left at period %d", node_id, period)

        def ret(node_id: int) -> None:
            node = self._by_id[node_id]
            node.present = True
            node.protocol.on_return(period)
            self._events.append(f"p{period}: node {node_id} returned")
            emit("churn_return", t_us=t_us, node=node_id, period=period)
            logger.info("churn: node %d returned at period %d", node_id, period)

        self._churn_applier.apply(
            period,
            current_reference=self.current_reference,
            is_present=is_present,
            leave=leave,
            ret=ret,
            exclude=self._attacker_squats_reference,
        )

    def _attacker_squats_reference(self, ref: int) -> bool:
        # The "reference" is an attacker squatting on the role; the churn
        # scenario removes legitimate stations only.
        node = self._by_id.get(ref)
        return node is not None and not node.include_in_metrics

    def _resolve_marker(self, node_id: int, action: str) -> Optional[int]:
        return self._churn_applier.resolve_marker(
            node_id,
            action,
            self.current_reference,
            exclude=self._attacker_squats_reference,
        )
