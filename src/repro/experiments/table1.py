"""Table 1: synchronization latency and error versus the aggressiveness m.

The paper sweeps m in 1..5 with initial clock offsets uniform in
(-112 us, 112 us) and reports:

====  =======================  =====================
 m    synchronization latency  synchronization error
====  =======================  =====================
 1    0.1 s                    12 us
 2    0.4 s                    7 us
 3    0.6 s                    6 us
 4    0.8 s                    6 us
 5    1.1 s                    6 us
====  =======================  =====================

i.e. small m converges fastest but amplifies per-beacon noise (the
adjusted clock chases each estimate), while large m filters noise at the
cost of latency; m = 2-3 is the sweet spot. Latency is measured to the
industry threshold (max difference < 25 us, sustained); error is the
stabilised maximum clock difference.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.analysis.metrics import INDUSTRY_THRESHOLD_US, sync_latency_us
from repro.core.config import SstspConfig
from repro.experiments.report import format_table
from repro.experiments.scenarios import TABLE1_INITIAL_OFFSET_US, quick_spec
from repro.fastlane import run_sstsp_vectorized
from repro.sim.units import S

#: Rows the paper reports, for side-by-side printing.
PAPER_ROWS = {1: (0.1, 12.0), 2: (0.4, 7.0), 3: (0.6, 6.0), 4: (0.8, 6.0), 5: (1.1, 6.0)}


@dataclass
class Table1Row:
    m: int
    latency_s: Optional[float]
    error_us: float


def run(
    m_values: Sequence[int] = (1, 2, 3, 4, 5),
    n: int = 100,
    duration_s: float = 60.0,
    seed: int = 1,
    replicas: int = 3,
) -> Dict[int, Table1Row]:
    """Sweep m per the Table 1 setup; latency/error averaged over replicas."""
    rows: Dict[int, Table1Row] = {}
    for m in m_values:
        latencies = []
        errors = []
        for replica in range(replicas):
            spec = quick_spec(
                n,
                seed=seed + 1000 * replica,
                duration_s=duration_s,
                initial_offset_us=TABLE1_INITIAL_OFFSET_US,
            )
            config = SstspConfig(
                beacon_period_us=spec.beacon_period_us,
                slot_time_us=spec.phy.slot_time_us,
                m=m,
                rx_latency_us=7 * spec.phy.slot_time_us
                + spec.phy.propagation_delay_us,
            )
            trace = run_sstsp_vectorized(spec, config=config).trace
            latency = sync_latency_us(trace, INDUSTRY_THRESHOLD_US)
            if latency is not None:
                latencies.append(latency / S)
            errors.append(trace.steady_state_error_us())
        rows[m] = Table1Row(
            m=m,
            latency_s=sum(latencies) / len(latencies) if latencies else None,
            error_us=sum(errors) / len(errors),
        )
    return rows


def main(argv=None) -> None:
    """CLI entry point; prints the reproduced rows/series."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="single replica")
    parser.add_argument("--nodes", type=int, default=100)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)

    rows = run(
        n=args.nodes, seed=args.seed, replicas=1 if args.quick else 3
    )
    print("=== Table 1: maximum clock difference & synchronization latency vs m ===")
    print()
    table_rows = []
    for m, row in sorted(rows.items()):
        paper_latency, paper_error = PAPER_ROWS.get(m, (None, None))
        table_rows.append(
            (
                m,
                f"{row.latency_s:.2f} s" if row.latency_s is not None else "n/a",
                f"{row.error_us:.1f} us",
                f"{paper_latency} s" if paper_latency is not None else "-",
                f"{paper_error:.0f} us" if paper_error is not None else "-",
            )
        )
    print(
        format_table(
            ["m", "latency (measured)", "error (measured)",
             "latency (paper)", "error (paper)"],
            table_rows,
        )
    )
    print()
    print("shape checks: latency increases with m; error improves from m=1 "
          "and flattens by m=3 (paper: m = 2 or 3 is the best trade-off)")


if __name__ == "__main__":
    main()
