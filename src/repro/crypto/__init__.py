"""Cryptographic substrate for SSTSP.

* :mod:`repro.crypto.primitives` - the 128-bit hash and HMAC the paper
  assumes ("suppose 128-bit hash values are used"), built on SHA-256.
* :mod:`repro.crypto.hashchain` - one-way hash chains, element verification
  against a published anchor, and the trusted anchor registry the paper's
  section 3.2 assumes exists.
* :mod:`repro.crypto.fractal` - fractal (log-storage, amortised log-time)
  chain traversal in the style of Jakobsson [6], which the paper cites for
  the storage-overhead argument of section 3.4.
* :mod:`repro.crypto.mutesla` - the uTESLA broadcast-authentication scheme
  [2]: interval schedule, sender-side beacon securing, receiver-side
  delayed authentication with buffering.
* :mod:`repro.crypto.lamport` - Lamport one-time signatures (hash-only, in
  the paper's spirit) realising section 3.2's assumed authenticated
  anchor distribution (:class:`~repro.crypto.lamport.AuthenticatedRegistry`).
"""

from repro.crypto.primitives import HASH_BYTES, constant_time_eq, hash128, hmac128
from repro.crypto.hashchain import (
    DenseHashChain,
    HashChain,
    HashChainRegistry,
    SeedOnlyHashChain,
    verify_element,
)
from repro.crypto.fractal import FractalHashChain, FractalTraversal
from repro.crypto.lamport import (
    AuthenticatedRegistry,
    LamportPublicKey,
    LamportSignature,
    LamportSigner,
)
from repro.crypto.lamport import verify as lamport_verify
from repro.crypto.mutesla import (
    AuthenticatedMessage,
    IntervalSchedule,
    MuTeslaReceiver,
    MuTeslaSender,
    SecuredPacket,
)

__all__ = [
    "HASH_BYTES",
    "hash128",
    "hmac128",
    "constant_time_eq",
    "HashChain",
    "DenseHashChain",
    "SeedOnlyHashChain",
    "FractalHashChain",
    "FractalTraversal",
    "HashChainRegistry",
    "verify_element",
    "IntervalSchedule",
    "MuTeslaSender",
    "MuTeslaReceiver",
    "SecuredPacket",
    "AuthenticatedMessage",
    "LamportSigner",
    "LamportPublicKey",
    "LamportSignature",
    "lamport_verify",
    "AuthenticatedRegistry",
]
