"""Named, independently seeded RNG streams.

Simulations of contention protocols consume randomness from many logical
sources (per-node backoff draws, packet-error coin flips, clock-drift
sampling, churn schedules). If they all share one generator, adding or
reordering a consumer silently changes every downstream draw and makes
run-to-run comparisons meaningless. :class:`RngRegistry` derives one
:class:`numpy.random.Generator` per *name* from a master seed via
``numpy.random.SeedSequence.spawn``-style key derivation, so each stream is
independent and reproducible regardless of creation order.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

import numpy as np


class RngRegistry:
    """Factory of named, reproducible :class:`numpy.random.Generator` streams.

    Parameters
    ----------
    master_seed:
        Any non-negative integer. Two registries built from the same master
        seed hand out identical streams for identical names.

    Examples
    --------
    >>> rngs = RngRegistry(7)
    >>> a = rngs.get("backoff", 3)   # stream for node 3's backoff draws
    >>> b = RngRegistry(7).get("backoff", 3)
    >>> float(a.random()) == float(b.random())
    True
    """

    def __init__(self, master_seed: int) -> None:
        if master_seed < 0:
            raise ValueError(f"master_seed must be >= 0, got {master_seed}")
        self._master_seed = int(master_seed)
        self._streams: Dict[Tuple[object, ...], np.random.Generator] = {}

    @property
    def master_seed(self) -> int:
        """The master seed this registry derives every stream from."""
        return self._master_seed

    def get(self, *name: object) -> np.random.Generator:
        """Return the stream for ``name``, creating it on first use.

        ``name`` is an arbitrary tuple of hashable components, e.g.
        ``("backoff", node_id)``. The same tuple always yields the same
        generator object (and thus a single advancing stream).
        """
        if not name:
            raise ValueError("stream name must be non-empty")
        key = tuple(name)
        gen = self._streams.get(key)
        if gen is None:
            seq = np.random.SeedSequence(
                entropy=self._master_seed,
                spawn_key=tuple(_component_to_int(c) for c in key),
            )
            gen = np.random.default_rng(seq)
            self._streams[key] = gen
        return gen

    def fork(self, salt: int) -> "RngRegistry":
        """Return a registry whose streams are independent of this one.

        Useful for running replicas of a scenario: ``registry.fork(r)`` for
        replica index ``r`` changes every stream while staying reproducible.
        """
        return RngRegistry(self._master_seed ^ (0x9E3779B9 * (salt + 1) & 0x7FFFFFFF))

    def __iter__(self) -> Iterator[Tuple[object, ...]]:
        return iter(self._streams)

    def __len__(self) -> int:
        return len(self._streams)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngRegistry(master_seed={self._master_seed}, streams={len(self)})"


def _component_to_int(component: object) -> int:
    """Map one name component to a non-negative int for SeedSequence."""
    if isinstance(component, bool):
        return int(component)
    if isinstance(component, (int, np.integer)):
        value = int(component)
        if value < 0:
            raise ValueError(f"integer name components must be >= 0, got {value}")
        return value
    if isinstance(component, str):
        # Stable 32-bit FNV-1a; Python's hash() is salted per process.
        acc = 0x811C9DC5
        for byte in component.encode("utf-8"):
            acc = ((acc ^ byte) * 0x01000193) & 0xFFFFFFFF
        return acc
    raise TypeError(f"unsupported stream-name component: {component!r}")
