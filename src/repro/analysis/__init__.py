"""Analysis: metrics, statistics, convergence bounds, overhead models.

* :mod:`repro.analysis.metrics` - the paper's headline metric (maximum
  clock difference between any two nodes, per BP), trace containers,
  synchronization-latency extraction and the no-leap audit.
* :mod:`repro.analysis.stats` - deterministic summary statistics for
  sweep roll-ups: seeded-bootstrap and Student-t confidence intervals,
  paired seed-matched comparisons with effect sizes, missing-cell
  (quarantine) tolerance.
* :mod:`repro.analysis.cli` - the ``repro analyze`` command turning
  sweep output into byte-stable summary tables (CSV + markdown).
* :mod:`repro.analysis.benchgate` - the benchmark-trajectory gate:
  ``BENCH_*.json`` serialization and the ``repro bench-gate`` compare.
* :mod:`repro.analysis.overhead` - traffic and storage overhead models of
  section 3.4 (56 vs 92-byte beacons, hash-chain storage strategies,
  receiver buffering).
* Convergence bounds (Lemmas 1 and 2) live with the adjustment math in
  :mod:`repro.core.adjustment`.
"""

from repro.analysis.metrics import (
    SyncTrace,
    TraceRecorder,
    audit_no_leaps,
    max_pairwise_difference,
    sync_latency_us,
)
from repro.analysis.overhead import (
    OverheadReport,
    beacon_overhead,
    chain_storage_report,
    traffic_overhead,
)
from repro.analysis.replication import (
    PairedComparison,
    ReplicaSummary,
    compare,
    replicate,
    summarize,
)
from repro.analysis.stats import (
    Interval,
    PairedStats,
    SummaryStats,
    bootstrap_ci_mean,
    clean_values,
    paired_stats,
    summarize_values,
    t_interval,
)

__all__ = [
    "Interval",
    "PairedStats",
    "SummaryStats",
    "bootstrap_ci_mean",
    "clean_values",
    "paired_stats",
    "summarize_values",
    "t_interval",
    "SyncTrace",
    "TraceRecorder",
    "max_pairwise_difference",
    "sync_latency_us",
    "audit_no_leaps",
    "OverheadReport",
    "beacon_overhead",
    "traffic_overhead",
    "chain_storage_report",
    "ReplicaSummary",
    "PairedComparison",
    "summarize",
    "replicate",
    "compare",
]
