"""Figure 3: TSF under attack (100 nodes, attacker active 400 s - 600 s).

The attacker transmits a beacon at every BP without delay, carrying an
erroneous time slower than its clock. TSF stations cancel their own
beacons on reception and ignore the (not-later) timestamp, so the fastest
station stops pulling the network forward and the honest clocks free-run
apart: the paper reports the error rising to ~20000 us over the 200 s
attack, with recovery afterwards.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Optional

from repro.analysis.metrics import SyncTrace
from repro.experiments.report import (
    downsample_rows,
    format_table,
    save_trace_csv,
    trace_chart,
)
from repro.experiments.scenarios import PAPER_ATTACK
from repro.sim.units import S
from repro.sweep import (
    JobSpec,
    SweepOptions,
    add_sweep_arguments,
    run_sweep,
    sweep_options_from_args,
)


@dataclass
class Fig3Result:
    trace: SyncTrace
    attack_start_s: float
    attack_end_s: float

    def phase_maxima(self):
        """Max clock difference before/during/after the attack window."""
        t = self.trace
        end = t.times_us[-1]
        return {
            "before": float(t.window(0, self.attack_start_s * S).max_diff_us.max()),
            "during": float(
                t.window(self.attack_start_s * S, self.attack_end_s * S)
                .max_diff_us.max()
            ),
            "after": float(
                t.window(self.attack_end_s * S, end + 1).max_diff_us.max()
            ),
        }


def run(
    n: int = 100, quick: bool = False, seed: int = 1,
    sweep: Optional[SweepOptions] = None,
) -> Fig3Result:
    """Reproduce Fig. 3 (through the sweep orchestrator)."""
    if quick:
        start_s, end_s = 20.0, 40.0
    else:
        start_s, end_s = PAPER_ATTACK.start_s, PAPER_ATTACK.end_s
    spec = JobSpec.make(
        "scenario_trace",
        {
            "protocol": "tsf",
            "scenario": "quick" if quick else "paper",
            "n": n,
            "seed": seed,
            "duration_s": 60.0 if quick else None,
            "attack_start_s": start_s,
            "attack_end_s": end_s,
        },
        root_seed=seed,
    )
    payload = run_sweep("fig3", [spec], sweep).values[0]
    return Fig3Result(payload["trace"], start_s, end_s)


def main(argv=None) -> None:
    """CLI entry point; prints the reproduced rows/series."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--nodes", type=int, default=100)
    parser.add_argument("--seed", type=int, default=1)
    add_sweep_arguments(parser)
    args = parser.parse_args(argv)

    result = run(
        n=args.nodes, quick=args.quick, seed=args.seed,
        sweep=sweep_options_from_args(args),
    )
    trace = result.trace
    path = save_trace_csv(trace, f"fig3_tsf_attack_n{args.nodes}")
    print(f"=== Figure 3: TSF under attack ({args.nodes} nodes) ===")
    print()
    print(trace_chart(trace, f"TSF + attacker (series: {path})"))
    print(
        format_table(
            ["time (s)", "max clock diff (us)"],
            [(f"{t:.0f}", f"{d:.1f}") for t, d in downsample_rows(trace)],
        )
    )
    print()
    maxima = result.phase_maxima()
    print(
        format_table(
            ["phase", "max clock diff (us)"],
            [(k, f"{v:.1f}") for k, v in maxima.items()],
            title="Attack window "
            f"{result.attack_start_s:.0f}-{result.attack_end_s:.0f} s "
            "(paper: rises to ~20000 us during the attack)",
        )
    )


if __name__ == "__main__":
    main()
