"""Hardware oscillators and the settable TSF timer.

The paper (section 5) draws each node's relative clock frequency uniformly
from ``[1 - 0.01%, 1 + 0.01%]``, i.e. +-100 ppm, matching the IEEE 802.11
oscillator tolerance. Within the 1000 s simulation horizon an oscillator is
modelled as exactly linear in true time (the paper makes the same
assumption, footnote 2):

``hw(t) = initial_offset + rate * t``

The 802.11 TSF timer is a 64-bit counter incremented every microsecond of
*local oscillator* time; TSF synchronization *sets* that counter forward.
:class:`TsfTimer` models this with an additive adjustment on top of the
hardware clock, and quantises reads to whole microseconds exactly like the
hardware counter does. (A real 64-bit microsecond counter wraps after
~584,000 years; wrap-around is therefore not modelled.)
"""

from __future__ import annotations

import math
import numpy as np

#: Oscillator tolerance used throughout the paper's evaluation: +-0.01%.
DEFAULT_DRIFT_PPM: float = 100.0


def sample_rates(
    n: int,
    rng: np.random.Generator,
    drift_ppm: float = DEFAULT_DRIFT_PPM,
) -> np.ndarray:
    """Draw ``n`` relative clock rates uniformly from ``1 +- drift_ppm*1e-6``.

    Returns a float64 array of multiplicative rates (1.0 == perfect clock).
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if drift_ppm < 0:
        raise ValueError(f"drift_ppm must be >= 0, got {drift_ppm}")
    span = drift_ppm * 1e-6
    return rng.uniform(1.0 - span, 1.0 + span, size=n)


class HardwareClock:
    """Free-running linear oscillator: ``hw(t) = initial_offset + rate * t``.

    Parameters
    ----------
    rate:
        Microseconds of local time per microsecond of true time. Must be
        positive; realistic values sit within a few hundred ppm of 1.0.
    initial_offset:
        Local time at true time 0, in microseconds.
    """

    __slots__ = ("rate", "initial_offset")

    def __init__(self, rate: float = 1.0, initial_offset: float = 0.0) -> None:
        if not (rate > 0.0) or math.isinf(rate):
            raise ValueError(f"rate must be finite and > 0, got {rate}")
        self.rate = float(rate)
        self.initial_offset = float(initial_offset)

    def read(self, true_time: float) -> float:
        """Local oscillator time at true time ``true_time`` (microseconds)."""
        return self.initial_offset + self.rate * true_time

    def true_time_at(self, local_time: float) -> float:
        """Invert :meth:`read`: the true time at which the oscillator shows
        ``local_time``."""
        return (local_time - self.initial_offset) / self.rate

    def skew_ppm(self) -> float:
        """Deviation of this oscillator's rate from true time, in ppm."""
        return (self.rate - 1.0) * 1e6

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"HardwareClock(rate={self.rate:.9f}, "
            f"initial_offset={self.initial_offset:.3f}us)"
        )


class TsfTimer:
    """The settable 64-bit microsecond TSF counter of an 802.11 station.

    Reads return whole microseconds (``floor``), mirroring the counter's
    1 us resolution. :meth:`set_forward` implements the TSF adoption rule:
    the timer may only ever be set to a *later* value, so the additive
    adjustment is monotonically non-decreasing.
    """

    __slots__ = ("clock", "adjustment", "adjustments_applied")

    def __init__(self, clock: HardwareClock) -> None:
        self.clock = clock
        self.adjustment = 0.0
        self.adjustments_applied = 0

    def read(self, true_time: float) -> int:
        """Timer value (whole microseconds) at true time ``true_time``."""
        return math.floor(self.raw(true_time))

    def raw(self, true_time: float) -> float:
        """Unquantised timer value at true time ``true_time``."""
        return self.clock.read(true_time) + self.adjustment

    def set_forward(self, value: float, true_time: float) -> bool:
        """Set the timer to ``value`` if that moves it forward.

        Returns True when an adjustment was applied; False when ``value`` is
        not later than the current timer (TSF ignores such timestamps).
        """
        return self.set_forward_from_hw(value, self.clock.read(true_time))

    def raw_from_hw(self, hw_time: float) -> float:
        """Unquantised timer value given the *hardware clock* reading
        ``hw_time`` (protocol drivers observe hardware time, never true
        time)."""
        return hw_time + self.adjustment

    def set_forward_from_hw(self, value: float, hw_time: float) -> bool:
        """:meth:`set_forward` variant taking the hardware clock reading."""
        current = self.raw_from_hw(hw_time)
        if value <= current:
            return False
        self.adjustment += value - current
        self.adjustments_applied += 1
        return True

    def true_time_when(self, timer_value: float) -> float:
        """True time at which the timer will read ``timer_value`` (assuming
        no further adjustments) - used to map local TBTTs to the shared
        time axis."""
        return self.clock.true_time_at(timer_value - self.adjustment)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TsfTimer(adjustment={self.adjustment:.3f}us, "
            f"applied={self.adjustments_applied})"
        )
