"""Analysis: metrics, convergence bounds, overhead models.

* :mod:`repro.analysis.metrics` - the paper's headline metric (maximum
  clock difference between any two nodes, per BP), trace containers,
  synchronization-latency extraction and the no-leap audit.
* :mod:`repro.analysis.overhead` - traffic and storage overhead models of
  section 3.4 (56 vs 92-byte beacons, hash-chain storage strategies,
  receiver buffering).
* Convergence bounds (Lemmas 1 and 2) live with the adjustment math in
  :mod:`repro.core.adjustment`.
"""

from repro.analysis.metrics import (
    SyncTrace,
    TraceRecorder,
    audit_no_leaps,
    max_pairwise_difference,
    sync_latency_us,
)
from repro.analysis.overhead import (
    OverheadReport,
    beacon_overhead,
    chain_storage_report,
    traffic_overhead,
)
from repro.analysis.replication import (
    PairedComparison,
    ReplicaSummary,
    compare,
    replicate,
    summarize,
)

__all__ = [
    "SyncTrace",
    "TraceRecorder",
    "max_pairwise_difference",
    "sync_latency_us",
    "audit_no_leaps",
    "OverheadReport",
    "beacon_overhead",
    "traffic_overhead",
    "chain_storage_report",
    "ReplicaSummary",
    "PairedComparison",
    "summarize",
    "replicate",
    "compare",
]
