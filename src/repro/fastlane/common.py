"""Shared plumbing of the vectorised engines."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.clocks.population import ClockPopulation
from repro.network.churn import ChurnSchedule, REFERENCE_MARKER
from repro.network.ibss import ScenarioSpec
from repro.sim.rng import RngRegistry


@dataclass
class VectorState:
    """Clock arrays and membership shared by both vector engines."""

    rates: np.ndarray
    offsets: np.ndarray
    present: np.ndarray  # bool mask
    rngs: RngRegistry

    @classmethod
    def from_spec(cls, spec: ScenarioSpec, extra_nodes: int = 0) -> "VectorState":
        rngs = RngRegistry(spec.seed)
        population = ClockPopulation.sample(
            spec.n + extra_nodes,
            rngs.get("clocks"),
            drift_ppm=spec.drift_ppm,
            initial_offset_us=spec.initial_offset_us,
        )
        return cls(
            rates=population.rates,
            offsets=population.offsets.copy(),
            present=np.ones(spec.n + extra_nodes, dtype=bool),
            rngs=rngs,
        )

    @property
    def n(self) -> int:
        return self.rates.shape[0]

    def hw_at(self, true_time: float, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Hardware clock of every node at one instant."""
        if out is None:
            out = np.empty_like(self.rates)
        np.multiply(self.rates, true_time, out=out)
        out += self.offsets
        return out


class ChurnDriver:
    """Applies a :class:`ChurnSchedule` to a boolean presence mask.

    ``REFERENCE_MARKER`` events are resolved through a callback supplying
    the current reference (mirroring the reference lane's behaviour).
    """

    def __init__(self, schedule: Optional[ChurnSchedule]) -> None:
        self._schedule = schedule
        self._marker_left: List[int] = []
        self.events: List[str] = []

    def apply(
        self,
        period: int,
        present: np.ndarray,
        current_reference,
        on_leave=None,
        on_return=None,
    ) -> None:
        """Apply the events due at ``period`` to the presence mask."""
        if self._schedule is None:
            return
        for event in self._schedule.events_for(period):
            for node_id in event.node_ids:
                resolved = self._resolve(node_id, event.action, current_reference)
                if resolved is None or not 0 <= resolved < present.shape[0]:
                    continue
                if event.action == "leave" and present[resolved]:
                    present[resolved] = False
                    self.events.append(f"p{period}: node {resolved} left")
                    if on_leave is not None:
                        on_leave(resolved)
                elif event.action == "return" and not present[resolved]:
                    present[resolved] = True
                    self.events.append(f"p{period}: node {resolved} returned")
                    if on_return is not None:
                        on_return(resolved)

    def _resolve(self, node_id: int, action: str, current_reference) -> Optional[int]:
        if node_id != REFERENCE_MARKER:
            return node_id
        if action == "leave":
            ref = current_reference()
            if ref is None or ref < 0:
                return None
            self._marker_left.append(ref)
            return ref
        if self._marker_left:
            return self._marker_left.pop(0)
        return None


def unique_min_slot_winner(
    slots: np.ndarray, contenders: np.ndarray
) -> Tuple[Optional[int], bool]:
    """Vectorised "unique minimum slot wins" rule.

    Parameters
    ----------
    slots:
        Slot draw per node (only entries where ``contenders`` is True are
        meaningful).
    contenders:
        Boolean mask of contending nodes.

    Returns
    -------
    (winner, collided):
        Winner index or None; whether the minimum slot was contested.

    Notes
    -----
    This rule is kept for ablation (``bench_ablation_contention``): with
    exact slot ties it under-estimates beacon successes badly at large N
    (every election collides forever), which is why the engines use
    :func:`resolve_window` - the carrier-sense cascade over skew-exact
    times - by default.
    """
    idx = np.flatnonzero(contenders)
    if idx.size == 0:
        return None, False
    contender_slots = slots[idx]
    min_slot = contender_slots.min()
    holders = idx[contender_slots == min_slot]
    if holders.size == 1:
        return int(holders[0]), False
    return None, True


def resolve_window(
    ids: np.ndarray,
    times: np.ndarray,
    airtime_us: float,
    cca_us: float,
) -> Tuple[Optional[int], Optional[float], int]:
    """Run the reference-lane contention cascade over vectorised candidates.

    Parameters
    ----------
    ids, times:
        Candidate station indices and their scheduled transmission times
        (true-time axis, so clock skew is honoured - at large N this skew
        is what eventually de-quantises colliding transmissions and lets
        an election conclude).

    Returns
    -------
    (winner, tx_start, collisions):
        Winning station (or None), the actual start time of its successful
        transmission (deferrals may shift it), and the number of collided
        transmissions in the window.
    """
    from repro.mac.contention import resolve_contention

    if ids.size == 0:
        return None, None, 0
    result = resolve_contention(
        list(zip(ids.tolist(), times.tolist())), airtime_us, cca_us
    )
    success = result.first_success
    if success is None:
        return None, None, result.collisions
    return success.members[0], success.start_us, result.collisions
