"""Parallel sweep orchestration with content-addressed result caching.

Every experiment in :mod:`repro.experiments` is an ``axes x seeds`` grid
of *independent* simulation runs. This package turns such a grid into a
list of frozen, content-addressable :class:`~repro.sweep.spec.JobSpec`\\ s
and executes them:

* :mod:`repro.sweep.grid` — declarative grid expansion (cartesian
  product, deterministic order);
* :mod:`repro.sweep.spec` — the frozen job spec, its stable ``job_key``,
  the spec hash, and the scheduling-independent per-job seed derivation
  ``seed = hash(root_seed, job_key)``;
* :mod:`repro.sweep.cache` — an on-disk content-addressed result cache
  keyed by ``hash(job_key + code-version salt)``;
* :mod:`repro.sweep.jobs` — the registry mapping job kinds to the
  module-level functions that execute them (importable by worker
  processes);
* :mod:`repro.sweep.failpolicy` — the failure policy: deterministic
  retry backoff, per-attempt timeouts, quarantine semantics and the
  reproducible failure-injection hook;
* :mod:`repro.sweep.manifest` — the resume manifest recording each
  job's completed/quarantined/pending status, keyed by spec hash;
* :mod:`repro.sweep.orchestrator` — the executor: a
  ``ProcessPoolExecutor`` fan-out for ``workers > 1`` with the plain
  serial loop as the ``workers == 1`` degenerate case, worker-crash
  recovery, clean SIGINT/SIGTERM draining, plus progress/ETA on stderr
  and a machine-readable JSONL run log.

Results are returned in *spec order* regardless of worker scheduling,
every job (and every retry attempt) re-seeds from its own spec, so the
same grid produces byte-identical outputs at any worker count and under
any retry history — ``tests/test_sweep.py`` asserts exactly that.
"""

from repro.sweep.cache import CACHE_SALT, ResultCache
from repro.sweep.failpolicy import (
    FailurePolicy,
    InjectedFailure,
    JobFailure,
    JobTimeoutError,
    SweepInterrupted,
)
from repro.sweep.grid import expand_grid
from repro.sweep.jobs import register_job, resolve_job
from repro.sweep.manifest import SweepManifest, default_manifest_path
from repro.sweep.orchestrator import (
    SweepOptions,
    SweepResult,
    add_sweep_arguments,
    run_sweep,
    sweep_options_from_args,
)
from repro.sweep.spec import JobSpec, canonical_json, derive_seed

__all__ = [
    "CACHE_SALT",
    "FailurePolicy",
    "InjectedFailure",
    "JobFailure",
    "JobSpec",
    "JobTimeoutError",
    "ResultCache",
    "SweepInterrupted",
    "SweepManifest",
    "SweepOptions",
    "SweepResult",
    "add_sweep_arguments",
    "canonical_json",
    "default_manifest_path",
    "derive_seed",
    "expand_grid",
    "register_job",
    "resolve_job",
    "run_sweep",
    "sweep_options_from_args",
]
