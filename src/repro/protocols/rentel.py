"""Rentel & Kunz controlled-clock synchronization (paper reference [1]).

The Carleton technical report proposes a scheme where *all* stations
participate equally instead of privileging the fastest: each station keeps
a **controlled clock** - an adjusted view of its real clock with a rate
factor ``s = controlled_clock / real_clock`` - and competes for beacon
transmission with probability ``p`` every ``T_DELAY`` BPs, but only if it
received no beacon within the last ``T_DELAY`` BPs. On receiving a beacon
the station updates ``s`` (rate) and ``p`` (contention eagerness) to
converge toward the sender.

The technical report's exact update laws are not reprinted in the SSTSP
paper, so this module is a documented reconstruction that preserves the
scheme's defining properties: a *slewed* (never stepped) controlled clock,
rate learning from consecutive beacon pairs, equal participation, and the
``T_DELAY``/``p`` contention throttle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.clocks.oscillator import TsfTimer
from repro.mac.beacon import BeaconFrame
from repro.phy.params import TSF_BEACON_BYTES
from repro.protocols.base import ClockKind, RxContext, SyncProtocol, TxIntent
from repro.sim.units import S


@dataclass(frozen=True)
class RentelConfig:
    """Controlled-clock scheme parameters."""

    beacon_period_us: float = 0.1 * S
    w: int = 30
    slot_time_us: float = 9.0
    #: Silence (in BPs) before a station considers contending.
    t_delay: int = 3
    #: Initial contention probability.
    p_initial: float = 0.5
    #: Floor for the contention probability.
    p_min: float = 0.05
    #: Fraction of the observed offset corrected per received beacon
    #: (slewed over the following BP, never stepped).
    offset_gain: float = 1.0
    #: Clamp on the rate factor ``s`` (a real oscillator is within a few
    #: hundred ppm of nominal; wilder implied rates indicate a bad sample).
    max_rate_deviation: float = 5e-3

    def __post_init__(self) -> None:
        if self.beacon_period_us <= 0:
            raise ValueError("beacon_period_us must be > 0")
        if self.t_delay < 1:
            raise ValueError("t_delay must be >= 1")
        if not 0 < self.p_initial <= 1 or not 0 < self.p_min <= 1:
            raise ValueError("probabilities must be in (0, 1]")
        if not 0 < self.offset_gain <= 1:
            raise ValueError("offset_gain must be in (0, 1]")


class RentelProtocol(SyncProtocol):
    """One station's controlled-clock driver.

    The controlled clock is ``cc(hw) = s * hw + off``; corrections adjust
    ``s`` and re-anchor ``off`` so ``cc`` stays continuous, then let the
    slope difference absorb the measured offset over the next BP - the
    "no uncontinuous leaps" behaviour the report advertises (and SSTSP
    later borrows).
    """

    secure_beacons = False
    protocol_name = "rentel"

    def __init__(
        self,
        node_id: int,
        timer: TsfTimer,
        config: RentelConfig,
        rng: np.random.Generator,
    ) -> None:
        self.node_id = node_id
        self.timer = timer  # unused for sync; kept for interface symmetry
        self.config = config
        self._rng = rng
        self.s = 1.0
        self.off = 0.0
        self.p = config.p_initial
        self._silent_periods = 0
        self._last_sample: Optional[tuple] = None  # (hw_time, est_timestamp)
        #: Pending offset to slew out, as an extra slope over one BP.
        self._slew_slope = 0.0
        self._slew_until_hw = -np.inf
        self.beacons_sent = 0
        self.beacons_received = 0

    def controlled_clock(self, hw_time: float) -> float:
        """The station's controlled clock at hardware time ``hw_time``."""
        base = self.s * hw_time + self.off
        if hw_time < self._slew_until_hw:
            base += self._slew_slope * (hw_time - (self._slew_until_hw - self.config.beacon_period_us))
        else:
            base += self._slew_slope * self.config.beacon_period_us
        return base

    def begin_period(self, period: int) -> Optional[TxIntent]:
        if self._silent_periods < self.config.t_delay:
            return None
        if self._rng.random() >= self.p:
            return None
        slot = int(self._rng.integers(0, self.config.w + 1))
        local = period * self.config.beacon_period_us + slot * self.config.slot_time_us
        return TxIntent(local_time=local, clock=ClockKind.ADJUSTED)

    def make_frame(self, hw_time: float, period: int) -> BeaconFrame:
        self.beacons_sent += 1
        return BeaconFrame(
            sender=self.node_id,
            timestamp_us=self.controlled_clock(hw_time),
            size_bytes=TSF_BEACON_BYTES,
        )

    def on_beacon(self, frame: BeaconFrame, rx: RxContext) -> None:
        self.beacons_received += 1
        self._silent_periods = 0
        cc_now = self.controlled_clock(rx.hw_time)
        offset = rx.est_timestamp - cc_now
        # Rate learning from a consecutive sample pair.
        if self._last_sample is not None:
            hw_prev, ts_prev = self._last_sample
            d_hw = rx.hw_time - hw_prev
            d_ts = rx.est_timestamp - ts_prev
            if d_hw > 0 and d_ts > 0:
                implied = d_ts / d_hw
                dev = self.config.max_rate_deviation
                implied = min(max(implied, 1.0 - dev), 1.0 + dev)
                # Re-anchor off so cc is continuous at the rate change.
                self.off = cc_now - implied * rx.hw_time
                self.s = implied
        self._last_sample = (rx.hw_time, rx.est_timestamp)
        # Slew the measured offset out over the next BP (no step).
        bp_hw = self.config.beacon_period_us  # ~1 ppm error: negligible
        self._finalize_slew(rx.hw_time)
        self._slew_slope = self.config.offset_gain * offset / bp_hw
        self._slew_until_hw = rx.hw_time + bp_hw
        # Yield contention eagerness to the station we just heard.
        self.p = max(self.config.p_min, self.p * 0.5)

    def _finalize_slew(self, hw_time: float) -> None:
        """Fold any completed (or partial) slew into the base offset."""
        if self._slew_slope == 0.0:
            return
        start = self._slew_until_hw - self.config.beacon_period_us
        elapsed = min(hw_time, self._slew_until_hw) - start
        if elapsed > 0:
            self.off += self._slew_slope * elapsed
        self._slew_slope = 0.0
        self._slew_until_hw = -np.inf

    def end_period(
        self, period: int, heard_beacon: bool, transmitted: bool, tx_success: bool
    ) -> None:
        if not heard_beacon:
            self._silent_periods += 1
            # Silence emboldens: drift back toward the initial eagerness.
            self.p = min(self.config.p_initial, self.p * 1.25)

    def synchronized_time(self, hw_time: float) -> float:
        return self.controlled_clock(hw_time)
