"""``repro trace`` — filter, summarize, and diff event-trace JSONL files.

Subcommands
-----------

``summary``
    Per-event counts plus protocol-level highlights: guard rejections
    per node, uTESLA auth outcomes, reference changes, fault/churn
    activity.
``filter``
    Select records by event name, node, and sim-time range; prints
    matching JSONL lines (composable with shell tools).
``diff``
    Compare two traces event-by-event (ignoring ``seq``); exit 1 when
    they differ. Useful for pinning that a refactor did not change
    protocol behaviour.
``convergence``
    Convergence-after-re-election report: for each ``reference_change``,
    the gap until the new reference's first beacon airs, checked against
    the Lemma 2 ``(l + 2)`` beacon-period bound.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.events import EVENT_CATALOG, read_events


def _load(path: str) -> List[Dict[str, Any]]:
    """All non-header records of one trace."""
    return [r for r in read_events(path) if r.get("event") != "trace_header"]


def _counts_by(records: Iterable[Dict[str, Any]], field: str) -> Dict[Any, int]:
    counts: Dict[Any, int] = {}
    for record in records:
        key = record.get(field)
        counts[key] = counts.get(key, 0) + 1
    return counts


# ----------------------------------------------------------------------
# summary
# ----------------------------------------------------------------------


def _cmd_summary(args: argparse.Namespace) -> int:
    records = _load(args.trace)
    by_event = _counts_by(records, "event")
    print(f"trace: {args.trace}")
    print(f"events: {len(records)}")
    for event in sorted(by_event):
        subsystem = EVENT_CATALOG.get(event, "?")
        print(f"  {event:<18} {by_event[event]:>8}  [{subsystem}]")

    guard = [r for r in records if r["event"] == "guard_reject"]
    if guard:
        print(f"guard rejections: {len(guard)}")
        for node, count in sorted(_counts_by(guard, "node").items()):
            print(f"  node {node}: {count}")

    auth = sum(1 for r in records if r["event"] == "mutesla_auth")
    defer = sum(1 for r in records if r["event"] == "mutesla_defer")
    reject = [r for r in records if r["event"] == "mutesla_reject"]
    if auth or defer or reject:
        print(
            "mutesla: "
            f"{auth} authenticated, {defer} deferred, {len(reject)} rejected"
        )
        for reason, count in sorted(_counts_by(reject, "reason").items()):
            print(f"  rejected[{reason}]: {count}")

    changes = [r for r in records if r["event"] == "reference_change"]
    print(f"reference changes: {len(changes)}")
    for record in changes:
        t_us = record.get("t_us")
        when = f"t_us={t_us:.3f}" if t_us is not None else "t_us=?"
        print(
            f"  {when}: node {record.get('old_ref')} -> node {record.get('new_ref')}"
        )

    faults = sum(1 for r in records if r["event"] == "fault_applied")
    leaves = sum(1 for r in records if r["event"] == "churn_leave")
    returns = sum(1 for r in records if r["event"] == "churn_return")
    if faults or leaves or returns:
        print(
            f"disturbances: {faults} faults applied, "
            f"{leaves} churn leaves, {returns} churn returns"
        )
    return 0


# ----------------------------------------------------------------------
# filter
# ----------------------------------------------------------------------


def _cmd_filter(args: argparse.Namespace) -> int:
    matched = 0
    for record in _load(args.trace):
        if args.event and record.get("event") not in args.event:
            continue
        if args.node is not None and record.get("node") != args.node:
            continue
        t_us = record.get("t_us")
        if args.after_us is not None and (t_us is None or t_us < args.after_us):
            continue
        if args.before_us is not None and (t_us is None or t_us >= args.before_us):
            continue
        print(json.dumps(record, sort_keys=True))
        matched += 1
    print(f"matched {matched} events", file=sys.stderr)
    return 0


# ----------------------------------------------------------------------
# diff
# ----------------------------------------------------------------------


def _strip_seq(record: Dict[str, Any]) -> Dict[str, Any]:
    return {k: v for k, v in record.items() if k != "seq"}


def _cmd_diff(args: argparse.Namespace) -> int:
    left = [_strip_seq(r) for r in _load(args.left)]
    right = [_strip_seq(r) for r in _load(args.right)]
    differences = 0
    for index in range(max(len(left), len(right))):
        a = left[index] if index < len(left) else None
        b = right[index] if index < len(right) else None
        if a == b:
            continue
        differences += 1
        print(f"@ event {index + 1}:")
        print(f"  - {json.dumps(a, sort_keys=True) if a is not None else '<absent>'}")
        print(f"  + {json.dumps(b, sort_keys=True) if b is not None else '<absent>'}")
        if differences >= args.limit:
            print(f"... stopping after {args.limit} differences")
            break
    if differences == 0:
        print(f"identical: {len(left)} events")
        return 0
    print(f"traces differ ({len(left)} vs {len(right)} events)")
    return 1


# ----------------------------------------------------------------------
# convergence
# ----------------------------------------------------------------------


def _convergence_windows(
    records: List[Dict[str, Any]], period_us: Optional[float]
) -> List[Tuple[Dict[str, Any], Optional[float]]]:
    """Pair each reference_change with the gap (us) until the new
    reference's first subsequent beacon_tx, or None if it never airs."""
    windows: List[Tuple[Dict[str, Any], Optional[float]]] = []
    for index, record in enumerate(records):
        if record["event"] != "reference_change":
            continue
        start = record.get("t_us")
        new_ref = record.get("new_ref")
        gap: Optional[float] = None
        for later in records[index + 1 :]:
            if later["event"] == "beacon_tx" and later.get("node") == new_ref:
                t_us = later.get("t_us")
                if start is not None and t_us is not None:
                    gap = t_us - start
                break
        windows.append((record, gap))
    return windows


def _infer_period_us(records: List[Dict[str, Any]]) -> Optional[float]:
    """Median gap between consecutive beacon_tx stamps, if observable."""
    stamps = sorted(
        r["t_us"] for r in records if r["event"] == "beacon_tx" and "t_us" in r
    )
    gaps = sorted(
        b - a for a, b in zip(stamps, stamps[1:]) if b - a > 0
    )
    if not gaps:
        return None
    return gaps[len(gaps) // 2]


def _cmd_convergence(args: argparse.Namespace) -> int:
    records = _load(args.trace)
    period_us = args.period_us if args.period_us else _infer_period_us(records)
    windows = _convergence_windows(records, period_us)
    if not windows:
        print("no reference changes in trace")
        return 0
    bound_periods = float(args.l + 2)
    if period_us is None:
        print("warning: no beacon period observable; cannot check bound",
              file=sys.stderr)
    violations = 0
    for record, gap in windows:
        t_us = record.get("t_us")
        when = f"t_us={t_us:.3f}" if t_us is not None else "t_us=?"
        head = (
            f"{when}: ref {record.get('old_ref')} -> {record.get('new_ref')}"
        )
        if gap is None:
            print(f"{head}: new reference never beaconed  [UNRESOLVED]")
            violations += 1
        elif period_us is None:
            print(f"{head}: first beacon after {gap:.3f} us")
        else:
            periods = gap / period_us
            ok = periods <= bound_periods + 1e-9
            verdict = "OK" if ok else "VIOLATES"
            print(
                f"{head}: first beacon after {gap:.3f} us "
                f"({periods:.2f} periods; (l+2)={bound_periods:.0f}) "
                f"[{verdict}]"
            )
            if not ok:
                violations += 1
    print(
        f"{len(windows)} re-election window(s), {violations} outside the "
        f"(l+2) bound" if period_us is not None else
        f"{len(windows)} re-election window(s)"
    )
    return 1 if violations else 0


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """The ``repro trace`` argument parser (summary/filter/diff/convergence)."""
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="Inspect structured event-trace JSONL files.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_summary = sub.add_parser("summary", help="per-event counts and highlights")
    p_summary.add_argument("trace", help="trace JSONL path")
    p_summary.set_defaults(func=_cmd_summary)

    p_filter = sub.add_parser("filter", help="select and print matching records")
    p_filter.add_argument("trace", help="trace JSONL path")
    p_filter.add_argument(
        "--event", action="append", default=None,
        help="keep only this event kind (repeatable)",
    )
    p_filter.add_argument("--node", type=int, default=None, help="keep only this node")
    p_filter.add_argument(
        "--after-us", type=float, default=None, help="keep t_us >= this"
    )
    p_filter.add_argument(
        "--before-us", type=float, default=None, help="keep t_us < this"
    )
    p_filter.set_defaults(func=_cmd_filter)

    p_diff = sub.add_parser("diff", help="compare two traces (exit 1 if different)")
    p_diff.add_argument("left", help="baseline trace JSONL path")
    p_diff.add_argument("right", help="candidate trace JSONL path")
    p_diff.add_argument(
        "--limit", type=int, default=20, help="max differences to print"
    )
    p_diff.set_defaults(func=_cmd_diff)

    p_conv = sub.add_parser(
        "convergence",
        help="re-election windows vs the Lemma 2 (l+2)-period bound",
    )
    p_conv.add_argument("trace", help="trace JSONL path")
    p_conv.add_argument(
        "--l", type=int, default=2, dest="l",
        help="frame-loss tolerance l in the (l+2) bound (default 2)",
    )
    p_conv.add_argument(
        "--period-us", type=float, default=None,
        help="beacon period in us (default: inferred from beacon_tx gaps)",
    )
    p_conv.set_defaults(func=_cmd_convergence)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the subcommand's exit code."""
    args = build_parser().parse_args(argv)
    result = args.func(args)
    return int(result)


if __name__ == "__main__":
    raise SystemExit(main())
