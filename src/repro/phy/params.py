"""PHY timing parameters.

The paper evaluates an OFDM system at 54 Mbps (section 5): ``aSlotTime``
is 9 us, the contention window parameter is ``w = 30``, the beacon period
is 0.1 s, and beacon airtimes are 4 slot times for TSF's 56-byte beacon and
7 slot times for SSTSP's 92-byte beacon (24-byte preamble + 32-byte body,
plus 36 bytes of hash values and interval index for SSTSP).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.sim.units import US

#: TSF beacon size per the paper: 24 bytes preamble + 32 bytes data.
TSF_BEACON_BYTES: int = 56
#: SSTSP beacon size per the paper: TSF beacon + two 128-bit hash values
#: (HMAC tag + disclosed key) + a 4-byte interval index.
SSTSP_BEACON_BYTES: int = 92
#: Beacon airtime in slot times (paper section 5).
TSF_BEACON_AIRTIME_SLOTS: int = 4
SSTSP_BEACON_AIRTIME_SLOTS: int = 7
#: Beaconless one-way dissemination (Huan et al. style): a bare piggyback
#: timestamp — 24-byte preamble + 8-byte timestamp + 1-byte hop + 1-byte
#: schedule-delay index, no authentication material.
BEACONLESS_BEACON_BYTES: int = 34
BEACONLESS_BEACON_AIRTIME_SLOTS: int = 3
#: Cooperative spatial-averaging beacon (Hu & Servetto style): TSF-sized
#: payload + the sender's hop count and local sample weight.
COOP_BEACON_BYTES: int = 60
COOP_BEACON_AIRTIME_SLOTS: int = 4


@dataclass(frozen=True)
class PhyParams:
    """Timing and loss parameters of the radio.

    Attributes
    ----------
    slot_time_us:
        ``aSlotTime``; 9 us for OFDM.
    bitrate_mbps:
        Nominal PHY rate (only used for overhead accounting).
    beacon_airtime_slots:
        Time a beacon occupies the medium, in slot times.
    propagation_delay_us:
        Nominal one-hop transmission + propagation delay ``t_p`` the
        receiver adds to a received timestamp.
    timestamp_jitter_us:
        Half-width of the uniform receive-side timestamping error. The
        paper calls the resulting bound ``epsilon`` (< 5 us "normally"); the
        maximum synchronization error of SSTSP is ``2 * epsilon``.
    packet_error_rate:
        Probability that an otherwise successful beacon is not decoded
        (paper uses 0.01% = 1e-4).
    loss_model:
        ``"per_receiver"`` - each receiver flips an independent coin (more
        physical: fading is local); ``"per_transmission"`` - one coin per
        beacon, lost for everyone (the reading consistent with the paper's
        very clean 500-node curves: with per-receiver loss at N = 500,
        *some* receiver misses nearly every beacon, and with ``l = 1``
        each miss triggers a spurious election); ``"gilbert_elliott"`` -
        per-transmission loss whose probability follows the classic
        two-state burst chain (good state uses ``packet_error_rate``, bad
        state ``ge_per_bad``), matching the bursty regimes studied for
        beaconless WSN sync (arXiv:1906.09037).
    ge_p_good_to_bad / ge_p_bad_to_good:
        Gilbert-Elliott transition probabilities, advanced once per
        transmission. Expected burst length is ``1 / ge_p_bad_to_good``
        transmissions.
    ge_per_bad:
        Loss probability while the chain is in the bad state.
    cca_us:
        Vulnerability window of carrier sensing: two transmissions whose
        starts are closer than this collide; a later one senses the medium
        busy and defers. The slotted-contention model sets this to one slot
        time.
    """

    slot_time_us: float = 9.0 * US
    bitrate_mbps: float = 54.0
    beacon_airtime_slots: int = TSF_BEACON_AIRTIME_SLOTS
    propagation_delay_us: float = 1.0 * US
    timestamp_jitter_us: float = 2.0 * US
    packet_error_rate: float = 1e-4
    loss_model: str = "per_receiver"
    cca_us: float = 9.0 * US
    ge_p_good_to_bad: float = 0.02
    ge_p_bad_to_good: float = 0.25
    ge_per_bad: float = 0.6

    def __post_init__(self) -> None:
        if self.slot_time_us <= 0:
            raise ValueError("slot_time_us must be > 0")
        if self.beacon_airtime_slots <= 0:
            raise ValueError("beacon_airtime_slots must be > 0")
        if not 0.0 <= self.packet_error_rate <= 1.0:
            raise ValueError("packet_error_rate must be in [0, 1]")
        if self.propagation_delay_us < 0 or self.timestamp_jitter_us < 0:
            raise ValueError("delays must be >= 0")
        if self.cca_us <= 0:
            raise ValueError("cca_us must be > 0")
        if self.loss_model not in (
            "per_receiver", "per_transmission", "gilbert_elliott"
        ):
            raise ValueError(
                f"unknown loss_model {self.loss_model!r}: expected "
                "'per_receiver', 'per_transmission' or 'gilbert_elliott'"
            )
        for name in ("ge_p_good_to_bad", "ge_p_bad_to_good", "ge_per_bad"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")

    @property
    def beacon_airtime_us(self) -> float:
        """Beacon airtime in microseconds."""
        return self.beacon_airtime_slots * self.slot_time_us

    def with_beacon_airtime(self, slots: int) -> "PhyParams":
        """Copy with a different beacon airtime (TSF vs SSTSP beacons)."""
        return replace(self, beacon_airtime_slots=slots)

    def airtime_us_for_bytes(self, size_bytes: int) -> float:
        """Raw serialisation time of ``size_bytes`` at the PHY bitrate.

        Used by the overhead model; the MAC uses the slot-quantised
        :attr:`beacon_airtime_us` the paper specifies instead.
        """
        bits = size_bytes * 8
        return bits / self.bitrate_mbps  # Mbit/s == bit/us


#: The paper's section 5 configuration.
OFDM_54MBPS = PhyParams()
