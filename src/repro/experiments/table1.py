"""Table 1: synchronization latency and error versus the aggressiveness m.

The paper sweeps m in 1..5 with initial clock offsets uniform in
(-112 us, 112 us) and reports:

====  =======================  =====================
 m    synchronization latency  synchronization error
====  =======================  =====================
 1    0.1 s                    12 us
 2    0.4 s                    7 us
 3    0.6 s                    6 us
 4    0.8 s                    6 us
 5    1.1 s                    6 us
====  =======================  =====================

i.e. small m converges fastest but amplifies per-beacon noise (the
adjusted clock chases each estimate), while large m filters noise at the
cost of latency; m = 2-3 is the sweet spot. Latency is measured to the
industry threshold (max difference < 25 us, sustained); error is the
stabilised maximum clock difference.

The m x replica grid runs through the sweep orchestrator
(:mod:`repro.sweep`): ``--workers N`` fans the cells across processes,
``--cache-dir``/``--no-cache`` control result caching, and the reported
rows (and the ``results/table1.csv`` bytes) are identical at any worker
count.
"""

from __future__ import annotations

import argparse
import os
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.experiments.report import ensure_results_dir, format_table
from repro.experiments.scenarios import TABLE1_INITIAL_OFFSET_US
from repro.sim.units import S
from repro.sweep import (
    JobSpec,
    SweepOptions,
    add_sweep_arguments,
    expand_grid,
    run_sweep,
    sweep_options_from_args,
)

#: Rows the paper reports, for side-by-side printing.
PAPER_ROWS = {1: (0.1, 12.0), 2: (0.4, 7.0), 3: (0.6, 6.0), 4: (0.8, 6.0), 5: (1.1, 6.0)}


@dataclass
class Table1Row:
    m: int
    latency_s: Optional[float]
    error_us: float


def cell_specs(
    m_values: Sequence[int],
    n: int,
    duration_s: float,
    seed: int,
    replicas: int,
) -> list:
    """The frozen job specs of the m x replica grid (m outer, replica
    inner — the original serial loop order)."""
    specs = []
    for point in expand_grid({"m": list(m_values), "replica": list(range(replicas))}):
        specs.append(
            JobSpec.make(
                "table1_cell",
                {
                    "m": point["m"],
                    "n": n,
                    "seed": seed + 1000 * point["replica"],
                    "duration_s": duration_s,
                    "initial_offset_us": TABLE1_INITIAL_OFFSET_US,
                },
                root_seed=seed,
            )
        )
    return specs


def run(
    m_values: Sequence[int] = (1, 2, 3, 4, 5),
    n: int = 100,
    duration_s: float = 60.0,
    seed: int = 1,
    replicas: int = 3,
    sweep: Optional[SweepOptions] = None,
) -> Dict[int, Table1Row]:
    """Sweep m per the Table 1 setup; latency/error averaged over replicas.

    Under a quarantining failure policy (``--on-error quarantine``) a
    failed cell leaves ``None`` in the sweep values; its replica is
    skipped, and an ``m`` whose cells *all* failed is omitted from the
    returned rows (the quarantine report in the sweep summary and run
    log says why). With the default raise policy nothing changes.
    """
    specs = cell_specs(m_values, n, duration_s, seed, replicas)
    cells = run_sweep("table1", specs, sweep).values
    rows: Dict[int, Table1Row] = {}
    for i, m in enumerate(m_values):
        latencies = []
        errors = []
        for replica in range(replicas):
            cell = cells[i * replicas + replica]
            if cell is None:  # quarantined cell: no measurement to fold in
                continue
            if cell["latency_us"] is not None:
                latencies.append(cell["latency_us"] / S)
            errors.append(cell["error_us"])
        if not errors:
            continue
        rows[m] = Table1Row(
            m=m,
            latency_s=sum(latencies) / len(latencies) if latencies else None,
            error_us=sum(errors) / len(errors),
        )
    return rows


def save_rows_csv(rows: Dict[int, Table1Row], name: str = "table1") -> str:
    """Write the measured rows as CSV; ``repr`` floats keep the bytes a
    pure function of the values (the parallel-determinism contract)."""
    path = os.path.join(ensure_results_dir(), f"{name}.csv")
    lines = ["m,latency_s,error_us"]
    for m, row in sorted(rows.items()):
        latency = "" if row.latency_s is None else repr(row.latency_s)
        lines.append(f"{m},{latency},{row.error_us!r}")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("\n".join(lines) + "\n")
    return path


def _parse_m_values(text: str) -> Sequence[int]:
    try:
        values = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad m list {text!r}") from None
    if not values:
        raise argparse.ArgumentTypeError("need at least one m value")
    return values


def main(argv=None) -> None:
    """CLI entry point; prints the reproduced rows/series."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="single replica")
    parser.add_argument("--nodes", type=int, default=100)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "-m", "--m-values", type=_parse_m_values, default=(1, 2, 3, 4, 5),
        dest="m_values", metavar="M1,M2,...",
        help="comma-separated m values to sweep (default 1,2,3,4,5)",
    )
    parser.add_argument(
        "--duration", type=float, default=60.0, metavar="S",
        help="scenario duration per cell in seconds",
    )
    parser.add_argument(
        "--replicas", type=int, default=None,
        help="replicas per m (default 3, or 1 with --quick)",
    )
    add_sweep_arguments(parser)
    args = parser.parse_args(argv)
    replicas = args.replicas
    if replicas is None:
        replicas = 1 if args.quick else 3

    rows = run(
        m_values=args.m_values,
        n=args.nodes,
        duration_s=args.duration,
        seed=args.seed,
        replicas=replicas,
        sweep=sweep_options_from_args(args),
    )
    csv_path = save_rows_csv(rows)
    print("=== Table 1: maximum clock difference & synchronization latency vs m ===")
    print()
    table_rows = []
    for m, row in sorted(rows.items()):
        paper_latency, paper_error = PAPER_ROWS.get(m, (None, None))
        table_rows.append(
            (
                m,
                f"{row.latency_s:.2f} s" if row.latency_s is not None else "n/a",
                f"{row.error_us:.1f} us",
                f"{paper_latency} s" if paper_latency is not None else "-",
                f"{paper_error:.0f} us" if paper_error is not None else "-",
            )
        )
    print(
        format_table(
            ["m", "latency (measured)", "error (measured)",
             "latency (paper)", "error (paper)"],
            table_rows,
        )
    )
    print()
    print(f"rows written to {csv_path}")
    print("shape checks: latency increases with m; error improves from m=1 "
          "and flattens by m=3 (paper: m = 2 or 3 is the best trade-off)")


if __name__ == "__main__":
    main()
