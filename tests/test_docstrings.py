"""Meta-test: every public module, class and function carries a docstring.

A reproduction is only adoptable if its public surface is documented;
this test walks the installed package and fails on any undocumented
public item (name not starting with ``_``), keeping the guarantee honest
as the codebase grows.
"""

import importlib
import inspect
import pkgutil

import repro


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def test_every_public_item_documented():
    missing = []
    for module in iter_modules():
        if not module.__doc__:
            missing.append(module.__name__)
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-exports are documented at their home
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not inspect.getdoc(obj):
                    missing.append(f"{module.__name__}.{name}")
                if inspect.isclass(obj):
                    for member_name, member in vars(obj).items():
                        if member_name.startswith("_"):
                            continue
                        if inspect.isfunction(member) and not inspect.getdoc(member):
                            missing.append(
                                f"{module.__name__}.{name}.{member_name}"
                            )
    assert not missing, "undocumented public items:\n" + "\n".join(missing)
