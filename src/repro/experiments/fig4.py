"""Figure 4: SSTSP under attack (500 nodes, attacker active 400 s - 600 s).

The same attacker as Fig. 3, but as a compromised *legitimate* SSTSP node
(uTESLA passes) whose erroneous timestamps are tuned to pass the guard
time check. It seizes the reference role - and still cannot
desynchronize the network: every station slews to the same (slightly
dragged) virtual clock, the maximum clock difference stays bounded near
its no-attack level, and the network recovers fully when the attack ends.
The reproduction also reports the virtual-clock drag (mean clock vs true
time), making the "virtual clock slightly different to the real clock"
effect visible.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Optional

from repro.analysis.metrics import SyncTrace
from repro.experiments.report import (
    downsample_rows,
    format_table,
    save_trace_csv,
    trace_chart,
)
from repro.experiments.scenarios import PAPER_ATTACK
from repro.sim.units import S
from repro.sweep import (
    JobSpec,
    SweepOptions,
    add_sweep_arguments,
    run_sweep,
    sweep_options_from_args,
)


@dataclass
class Fig4Result:
    trace: SyncTrace
    attack_start_s: float
    attack_end_s: float

    def phase_maxima(self):
        """Max clock difference before/during/after the attack window."""
        t = self.trace
        end = t.times_us[-1]
        return {
            "before": float(t.window(0, self.attack_start_s * S).max_diff_us.max()),
            "during": float(
                t.window(self.attack_start_s * S, self.attack_end_s * S)
                .max_diff_us.max()
            ),
            "after": float(
                t.window(self.attack_end_s * S, end + 1).max_diff_us.max()
            ),
        }

    def drag_us(self) -> float:
        """How far the attacker dragged the shared virtual clock."""
        return float(self.trace.mean_vs_true_us[-1] - self.trace.mean_vs_true_us[0])


def run(
    n: int = 500, m: int = 4, quick: bool = False, seed: int = 1,
    sweep: Optional[SweepOptions] = None,
) -> Fig4Result:
    """Reproduce Fig. 4 (through the sweep orchestrator)."""
    if quick:
        start_s, end_s = 20.0, 40.0
    else:
        start_s, end_s = PAPER_ATTACK.start_s, PAPER_ATTACK.end_s
    spec = JobSpec.make(
        "scenario_trace",
        {
            "protocol": "sstsp",
            "scenario": "quick" if quick else "paper",
            "n": n,
            "m": m,
            "seed": seed,
            "duration_s": 60.0 if quick else None,
            "attack_start_s": start_s,
            "attack_end_s": end_s,
            "attack_shave_us": 40.0,
        },
        root_seed=seed,
    )
    payload = run_sweep("fig4", [spec], sweep).values[0]
    return Fig4Result(payload["trace"], start_s, end_s)


def main(argv=None) -> None:
    """CLI entry point; prints the reproduced rows/series."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--nodes", type=int, default=500)
    parser.add_argument("-m", type=int, default=4, dest="m")
    parser.add_argument("--seed", type=int, default=1)
    add_sweep_arguments(parser)
    args = parser.parse_args(argv)

    result = run(
        n=args.nodes, m=args.m, quick=args.quick, seed=args.seed,
        sweep=sweep_options_from_args(args),
    )
    trace = result.trace
    path = save_trace_csv(trace, f"fig4_sstsp_attack_n{args.nodes}")
    print(f"=== Figure 4: SSTSP under attack ({args.nodes} nodes, m={args.m}) ===")
    print()
    print(trace_chart(trace, f"SSTSP + insider attacker (series: {path})"))
    print(
        format_table(
            ["time (s)", "max clock diff (us)"],
            [(f"{t:.0f}", f"{d:.1f}") for t, d in downsample_rows(trace)],
        )
    )
    print()
    maxima = result.phase_maxima()
    print(
        format_table(
            ["phase", "max clock diff (us)"],
            [(k, f"{v:.1f}") for k, v in maxima.items()],
            title="Attack window "
            f"{result.attack_start_s:.0f}-{result.attack_end_s:.0f} s "
            "(paper: the attacker cannot desynchronize the network)",
        )
    )
    print()
    print(f"virtual-clock drag accumulated by the attacker: {result.drag_us():.0f} us "
          "(the 'virtual clock slightly different to the real clock' of section 4)")


if __name__ == "__main__":
    main()
