"""Shared plumbing of the vectorised engines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.clocks.population import ClockPopulation
from repro.network.churn import ChurnApplier, ChurnSchedule
from repro.network.ibss import ScenarioSpec
from repro.sim.rng import RngRegistry


@dataclass
class VectorState:
    """Clock arrays and membership shared by both vector engines."""

    rates: np.ndarray
    offsets: np.ndarray
    present: np.ndarray  # bool mask
    rngs: RngRegistry
    _population: Optional[ClockPopulation] = field(
        default=None, repr=False, compare=False
    )

    @classmethod
    def from_spec(cls, spec: ScenarioSpec, extra_nodes: int = 0) -> "VectorState":
        rngs = RngRegistry(spec.seed)
        population = ClockPopulation.sample(
            spec.n + extra_nodes,
            rngs.get("clocks"),
            drift_ppm=spec.drift_ppm,
            initial_offset_us=spec.initial_offset_us,
        )
        return cls(
            rates=population.rates,
            offsets=population.offsets.copy(),
            present=np.ones(spec.n + extra_nodes, dtype=bool),
            rngs=rngs,
        )

    @property
    def n(self) -> int:
        return self.rates.shape[0]

    @property
    def population(self) -> ClockPopulation:
        """The shared vectorised clock view over this state's arrays.

        A :class:`ClockPopulation` holds array *references*, so in-place
        offset/rate mutations stay visible; the view is rebuilt only when
        an engine rebinds the arrays wholesale.
        """
        pop = self._population
        if pop is None or pop.rates is not self.rates or pop.offsets is not self.offsets:
            pop = ClockPopulation(self.rates, self.offsets)
            self._population = pop
        return pop

    def hw_at(self, true_time: float, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Hardware clock of every node at one instant."""
        return self.population.read_all(true_time, out=out)


class ChurnDriver:
    """Applies a :class:`ChurnSchedule` to a boolean presence mask.

    A thin vector-lane adapter over the shared :class:`ChurnApplier`
    (same marker FIFO and double-booking rules as the reference lane);
    out-of-range node ids are dropped.
    """

    def __init__(self, schedule: Optional[ChurnSchedule]) -> None:
        self._applier = ChurnApplier(schedule)
        self.events: List[str] = []

    @property
    def _marker_left(self) -> List[int]:
        return self._applier.marker_left

    def apply(
        self,
        period: int,
        present: np.ndarray,
        current_reference,
        on_leave=None,
        on_return=None,
    ) -> None:
        """Apply the events due at ``period`` to the presence mask."""

        def is_present(node_id: int) -> Optional[bool]:
            if not 0 <= node_id < present.shape[0]:
                return None
            return bool(present[node_id])

        def leave(node_id: int) -> None:
            present[node_id] = False
            self.events.append(f"p{period}: node {node_id} left")
            if on_leave is not None:
                on_leave(node_id)

        def ret(node_id: int) -> None:
            present[node_id] = True
            self.events.append(f"p{period}: node {node_id} returned")
            if on_return is not None:
                on_return(node_id)

        self._applier.apply(
            period,
            current_reference=current_reference,
            is_present=is_present,
            leave=leave,
            ret=ret,
        )


def unique_min_slot_winner(
    slots: np.ndarray, contenders: np.ndarray
) -> Tuple[Optional[int], bool]:
    """Vectorised "unique minimum slot wins" rule.

    Parameters
    ----------
    slots:
        Slot draw per node (only entries where ``contenders`` is True are
        meaningful).
    contenders:
        Boolean mask of contending nodes.

    Returns
    -------
    (winner, collided):
        Winner index or None; whether the minimum slot was contested.

    Notes
    -----
    This rule is kept for ablation (``bench_ablation_contention``): with
    exact slot ties it under-estimates beacon successes badly at large N
    (every election collides forever), which is why the engines use
    :func:`resolve_window` - the carrier-sense cascade over skew-exact
    times - by default.
    """
    idx = np.flatnonzero(contenders)
    if idx.size == 0:
        return None, False
    contender_slots = slots[idx]
    min_slot = contender_slots.min()
    holders = idx[contender_slots == min_slot]
    if holders.size == 1:
        return int(holders[0]), False
    return None, True


def resolve_window(
    ids: np.ndarray,
    times: np.ndarray,
    airtime_us: float,
    cca_us: float,
) -> Tuple[Optional[int], Optional[float], int]:
    """Run the reference-lane contention cascade over vectorised candidates.

    Parameters
    ----------
    ids, times:
        Candidate station indices and their scheduled transmission times
        (true-time axis, so clock skew is honoured - at large N this skew
        is what eventually de-quantises colliding transmissions and lets
        an election conclude).

    Returns
    -------
    (winner, tx_start, collisions):
        Winning station (or None), the actual start time of its successful
        transmission (deferrals may shift it), and the number of collided
        transmissions in the window.
    """
    from repro.mac.contention import resolve_contention

    if ids.size == 0:
        return None, None, 0
    result = resolve_contention(
        list(zip(ids.tolist(), times.tolist())), airtime_us, cca_us
    )
    success = result.first_success
    if success is None:
        return None, None, result.collisions
    return success.members[0], success.start_us, result.collisions
