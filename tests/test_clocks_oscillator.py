"""Unit tests for hardware clocks and the TSF timer."""

import numpy as np
import pytest

from repro.clocks.oscillator import (
    DEFAULT_DRIFT_PPM,
    HardwareClock,
    TsfTimer,
    sample_rates,
)
from repro.sim.units import S


def test_read_is_linear():
    clock = HardwareClock(rate=1.0001, initial_offset=50.0)
    assert clock.read(0.0) == 50.0
    assert clock.read(1000.0) == pytest.approx(50.0 + 1000.0 * 1.0001)


def test_true_time_at_inverts_read():
    clock = HardwareClock(rate=0.99995, initial_offset=-20.0)
    for t in [0.0, 123.456, 1e9]:
        assert clock.true_time_at(clock.read(t)) == pytest.approx(t, abs=1e-6)


def test_skew_ppm():
    assert HardwareClock(rate=1.0001).skew_ppm() == pytest.approx(100.0)
    assert HardwareClock(rate=0.9999).skew_ppm() == pytest.approx(-100.0)


def test_invalid_rates_rejected():
    for rate in [0.0, -1.0, float("inf")]:
        with pytest.raises(ValueError):
            HardwareClock(rate=rate)


def test_sample_rates_within_tolerance():
    rng = np.random.default_rng(0)
    rates = sample_rates(10_000, rng)
    span = DEFAULT_DRIFT_PPM * 1e-6
    assert rates.min() >= 1.0 - span
    assert rates.max() <= 1.0 + span
    # uniform over the span: mean near 1 with good accuracy
    assert abs(rates.mean() - 1.0) < span / 10


def test_sample_rates_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        sample_rates(-1, rng)
    with pytest.raises(ValueError):
        sample_rates(5, rng, drift_ppm=-1)


class TestTsfTimer:
    def test_reads_floor_microseconds(self):
        timer = TsfTimer(HardwareClock(rate=1.0, initial_offset=0.7))
        assert timer.read(10.0) == 10
        assert timer.raw(10.0) == pytest.approx(10.7)

    def test_set_forward_applies_only_later_values(self):
        timer = TsfTimer(HardwareClock())
        assert timer.set_forward(150.0, true_time=100.0)
        assert timer.raw(100.0) == pytest.approx(150.0)
        # an earlier value is ignored (TSF never steps back)
        assert not timer.set_forward(120.0, true_time=100.0)
        assert timer.raw(100.0) == pytest.approx(150.0)
        assert timer.adjustments_applied == 1

    def test_adjustment_monotonically_nondecreasing(self):
        timer = TsfTimer(HardwareClock(rate=1.0001))
        previous = timer.adjustment
        rng = np.random.default_rng(3)
        for t in np.sort(rng.uniform(0, 1e6, 50)):
            timer.set_forward(timer.raw(t) + rng.uniform(-5, 5), t)
            assert timer.adjustment >= previous
            previous = timer.adjustment

    def test_raw_from_hw_consistent_with_raw(self):
        clock = HardwareClock(rate=1.00005, initial_offset=12.0)
        timer = TsfTimer(clock)
        timer.set_forward(1_000.0, true_time=500.0)
        t = 1234.5
        assert timer.raw_from_hw(clock.read(t)) == pytest.approx(timer.raw(t))

    def test_true_time_when_inverts(self):
        clock = HardwareClock(rate=0.9999, initial_offset=-3.0)
        timer = TsfTimer(clock)
        timer.set_forward(10_000.0, true_time=5_000.0)
        target = 123_456.0
        t = timer.true_time_when(target)
        assert timer.raw(t) == pytest.approx(target, abs=1e-6)

    def test_one_second_drift_magnitude(self):
        # +-100 ppm over one second is +-100 us: the scale all the paper's
        # error curves are built from.
        fast = TsfTimer(HardwareClock(rate=1.0001))
        slow = TsfTimer(HardwareClock(rate=0.9999))
        assert fast.raw(1.0 * S) - slow.raw(1.0 * S) == pytest.approx(200.0, rel=1e-9)
