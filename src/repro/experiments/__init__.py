"""Paper experiment reproductions.

One module per table/figure of the evaluation section (section 5), plus
the section 3.4 overhead accounting and the Lemma 1/2 validation:

===========================  ===================================================
``repro.experiments.fig1``   TSF max clock difference, 100 & 300 nodes
``repro.experiments.fig2``   SSTSP max clock difference, 500 nodes, m = 4
``repro.experiments.table1`` m sweep: synchronization latency & error
``repro.experiments.fig3``   TSF under the channel attacker (100 nodes)
``repro.experiments.fig4``   SSTSP under the insider attacker (500 nodes)
``repro.experiments.overhead`` beacon/storage overhead (section 3.4)
``repro.experiments.lemmas`` measured vs analytic convergence bounds
===========================  ===================================================

Each module exposes ``run(quick=False)`` returning structured results and
``main()`` printing the same rows/series the paper reports (plus CSV
output). ``python -m repro.experiments.<name>`` or the installed
``sstsp-experiment`` command runs them; ``--quick`` shrinks the scenario
for smoke runs.
"""
