"""Event queue and simulator core.

A deliberately small discrete-event kernel: events are ``(time, callback)``
pairs kept in a binary heap; ties on time break FIFO by insertion sequence
so runs are deterministic. Events can be cancelled through the
:class:`Event` handle they were scheduled with (lazy deletion: cancelled
entries are skipped when popped).
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, List, Optional

from repro.obs.counters import count


class SimulationError(RuntimeError):
    """Raised for invalid simulator operations (e.g. scheduling in the past)."""


class Event:
    """Handle to a scheduled callback.

    Instances are created by :meth:`Simulator.schedule`; user code keeps them
    only to :meth:`cancel` the event before it fires.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running. Idempotent; safe after firing."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"Event(t={self.time:.3f}, {name}, {state})"


class Simulator:
    """Discrete-event simulator with microsecond float time.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, fired.append, "a")
    >>> _ = sim.schedule(2.0, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self._running = False
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (cancelled events excluded)."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._heap)

    def schedule(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``.

        Scheduling at exactly :attr:`now` is allowed (the event runs before
        time advances); scheduling in the past raises
        :class:`SimulationError`.
        """
        if not math.isfinite(time):
            # inf would be accepted by the past-check below but wedge the
            # run(until=...) bookkeeping (now can never advance past it).
            raise SimulationError(f"cannot schedule at non-finite time {time}")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time {self._now}"
            )
        event = Event(float(time), next(self._seq), callback, args)
        heapq.heappush(self._heap, event)
        count("engine.heap_push")
        return event

    def schedule_in(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` after a relative ``delay >= 0``."""
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        return self.schedule(self._now + delay, callback, *args)

    def run(self, until: Optional[float] = None) -> None:
        """Run events in order until the heap empties or time exceeds ``until``.

        If ``until`` is given, events at exactly ``until`` still run and
        :attr:`now` is left at ``until`` afterwards (so repeated
        ``run(until=...)`` calls advance time monotonically even across gaps
        with no events).
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            while self._heap:
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    count("engine.heap_pop")
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                count("engine.heap_pop")
                self._now = event.time
                event.callback(*event.args)
                self._processed += 1
                count("engine.dispatch")
        finally:
            self._running = False
        if until is not None and until > self._now:
            self._now = until

    def step(self) -> bool:
        """Run the single next pending event. Returns False if none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            count("engine.heap_pop")
            if event.cancelled:
                continue
            self._now = event.time
            event.callback(*event.args)
            self._processed += 1
            count("engine.dispatch")
            return True
        return False

    def peek(self) -> Optional[float]:
        """Time of the next pending (non-cancelled) event, or None."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Simulator(now={self._now:.3f}us, pending={self.pending}, "
            f"processed={self._processed})"
        )
