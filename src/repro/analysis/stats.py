"""Deterministic summary statistics for sweep roll-ups.

``repro analyze`` (``repro.analysis.cli``) quotes every headline number
with a spread and a confidence interval; this module is the numeric core
it leans on. Three constraints shape the API:

* **determinism** — the bootstrap resamples from an explicitly seeded
  ``np.random.default_rng`` (:data:`BOOTSTRAP_SEED` by default), so the
  same values always yield the same interval, byte for byte, at any
  worker count and on any machine;
* **missing-cell tolerance** — quarantined sweep jobs (PR 6) leave
  ``None`` gaps in value lists and NaN gaps in trace matrices; every
  entry point drops them (and reports how many were dropped) instead of
  raising or propagating NaN;
* **well-defined degenerate cases** — ``n == 1`` and zero-variance
  samples return defined values (infinite t half-width, collapsed
  bootstrap interval) rather than NaN, so downstream tables never carry
  a NaN cell.

The t quantile table lives in :mod:`repro.analysis.replication`
(``t975``); intervals here are two-sided 95%.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.replication import t975

#: Fixed seed of the percentile bootstrap. A constant — not an option
#: threaded from the CLI — because two analyses of the same sweep must
#: agree to the byte regardless of who runs them.
BOOTSTRAP_SEED: int = 20060815

#: Default resample count; 2000 keeps the 2.5/97.5 percentiles stable to
#: well under the noise of the replica counts we feed in (3-30).
BOOTSTRAP_RESAMPLES: int = 2000


def clean_values(values: Iterable[Optional[float]]) -> Tuple[List[float], int]:
    """Split ``values`` into (finite floats, dropped count).

    ``None`` entries (quarantined sweep cells) and non-finite floats
    (NaN gaps from absent nodes, infinities from degenerate metrics) are
    dropped and counted; everything else is coerced to ``float``.
    """
    kept: List[float] = []
    dropped = 0
    for value in values:
        if value is None:
            dropped += 1
            continue
        number = float(value)
        if not math.isfinite(number):
            dropped += 1
            continue
        kept.append(number)
    return kept, dropped


@dataclass(frozen=True)
class Interval:
    """A closed confidence interval ``[low, high]``."""

    low: float
    high: float

    @property
    def half_width(self) -> float:
        """Half the interval width (inf for an unbounded interval)."""
        if math.isinf(self.low) or math.isinf(self.high):
            return math.inf
        return (self.high - self.low) / 2.0

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        return self.low <= value <= self.high


def t_interval(values: Sequence[float]) -> Interval:
    """Two-sided 95% Student-t interval for the mean of ``values``.

    Degenerate cases are defined, not NaN: one value yields the honest
    ``(-inf, inf)`` (a single replica bounds nothing), zero variance
    collapses to ``(mean, mean)``.
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("t_interval needs at least one value")
    mean = float(arr.mean())
    if arr.size == 1:
        return Interval(-math.inf, math.inf)
    std = float(arr.std(ddof=1))
    if std == 0.0:
        return Interval(mean, mean)
    half = t975(int(arr.size) - 1) * std / math.sqrt(arr.size)
    return Interval(mean - half, mean + half)


def bootstrap_ci_mean(
    values: Sequence[float],
    resamples: int = BOOTSTRAP_RESAMPLES,
    seed: int = BOOTSTRAP_SEED,
) -> Interval:
    """Seeded percentile-bootstrap 95% interval for the mean.

    Resampling indices come from ``np.random.default_rng(seed)``, so the
    interval is a pure function of ``(values, resamples, seed)``. With
    one value (or zero spread) the interval collapses to that value.
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("bootstrap_ci_mean needs at least one value")
    if resamples < 1:
        raise ValueError("resamples must be >= 1")
    if arr.size == 1 or float(arr.std()) == 0.0:
        mean = float(arr.mean())
        return Interval(mean, mean)
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, arr.size, size=(resamples, arr.size))
    means = arr[indices].mean(axis=1)
    low, high = np.quantile(means, [0.025, 0.975])
    return Interval(float(low), float(high))


@dataclass(frozen=True)
class SummaryStats:
    """One metric's roll-up over replicas (missing cells dropped)."""

    n: int
    missing: int
    mean: float
    median: float
    std: float
    min: float
    max: float
    t_ci: Interval
    bootstrap_ci: Interval


def summarize_values(
    values: Iterable[Optional[float]],
    resamples: int = BOOTSTRAP_RESAMPLES,
    seed: int = BOOTSTRAP_SEED,
) -> SummaryStats:
    """Summarize ``values`` (None/NaN gaps tolerated and counted).

    Raises ``ValueError`` only when *nothing* survives cleaning — a
    fully-quarantined row has no statistics to report and callers are
    expected to skip it (mirroring ``table1.run``).
    """
    kept, dropped = clean_values(values)
    if not kept:
        raise ValueError("summarize_values: no finite values to summarize")
    arr = np.asarray(kept, dtype=np.float64)
    return SummaryStats(
        n=int(arr.size),
        missing=dropped,
        mean=float(arr.mean()),
        median=float(np.median(arr)),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        min=float(arr.min()),
        max=float(arr.max()),
        t_ci=t_interval(kept),
        bootstrap_ci=bootstrap_ci_mean(kept, resamples=resamples, seed=seed),
    )


@dataclass(frozen=True)
class PairedStats:
    """Seed-matched A-vs-B comparison with an effect size.

    ``diff`` summarizes the per-pair ``a - b`` values; ``effect_size``
    is Cohen's d_z (mean difference over the difference spread), the
    standard paired-design effect size. Zero-spread differences give a
    signed infinite d_z (or 0.0 for identical samples) — defined, never
    NaN.
    """

    n: int
    missing: int
    mean_a: float
    mean_b: float
    diff: SummaryStats
    effect_size: float

    @property
    def a_smaller_significant(self) -> bool:
        """True when A < B with the paired 95% t interval excluding 0."""
        return self.diff.t_ci.high < 0.0

    @property
    def b_smaller_significant(self) -> bool:
        """True when B < A with the paired 95% t interval excluding 0."""
        return self.diff.t_ci.low > 0.0


def paired_stats(
    a: Sequence[Optional[float]],
    b: Sequence[Optional[float]],
    resamples: int = BOOTSTRAP_RESAMPLES,
    seed: int = BOOTSTRAP_SEED,
) -> PairedStats:
    """Paired comparison of two equal-length, seed-aligned value lists.

    Pairs with a missing side (``None``/NaN — e.g. one arm's cell was
    quarantined) are dropped *as pairs*, preserving the seed matching of
    the survivors.
    """
    if len(a) != len(b):
        raise ValueError(
            f"paired_stats needs equal-length samples, got {len(a)} vs {len(b)}"
        )
    pairs: List[Tuple[float, float]] = []
    dropped = 0
    for va, vb in zip(a, b):
        kept_a, miss_a = clean_values([va])
        kept_b, miss_b = clean_values([vb])
        if miss_a or miss_b:
            dropped += 1
            continue
        pairs.append((kept_a[0], kept_b[0]))
    if not pairs:
        raise ValueError("paired_stats: no complete pairs to compare")
    values_a = [pa for pa, _ in pairs]
    values_b = [pb for _, pb in pairs]
    diffs = [pa - pb for pa, pb in pairs]
    diff = summarize_values(diffs, resamples=resamples, seed=seed)
    if diff.std == 0.0:
        effect = 0.0 if diff.mean == 0.0 else math.copysign(math.inf, diff.mean)
    else:
        effect = diff.mean / diff.std
    return PairedStats(
        n=len(pairs),
        missing=dropped,
        mean_a=float(np.mean(values_a)),
        mean_b=float(np.mean(values_b)),
        diff=diff,
        effect_size=effect,
    )
