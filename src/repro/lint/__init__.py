"""reprolint: determinism & unit-safety static analysis for the kernel.

Every guarantee this reproduction makes — the Lemma-1/Lemma-2 error
bounds, byte-identical sweep CSVs at any worker count, bit-parity
between the OO, vectorized and multi-hop lanes — rests on the simulation
kernel being deterministic and unit-consistent. Ordinary tests only
catch a determinism regression when it happens to flip an asserted
value; unseeded randomness, a wall-clock read, or an unordered ``set``
iteration in a result-affecting path usually corrupts results *silently*.

This package is an AST-based static analysis suite targeting exactly
those failure modes. It is pure stdlib (no third-party dependencies) so
it can run anywhere the interpreter runs, including minimal CI jobs:

``python -m repro.lint [paths]``
    Lint files or directories (default: ``src/repro``); exit 1 on
    findings, 0 when clean.

Rules carry stable codes (``D001``–``D006``, see
:data:`repro.lint.rules.RULES`), findings can be suppressed per line
with ``# reprolint: disable=Dxxx`` pragmas, and a JSON baseline file can
grandfather existing findings while gating new ones
(:mod:`repro.lint.diagnostics`). ``docs/static-analysis.md`` documents
each rule and the suppression policy.
"""

from __future__ import annotations

from repro.lint.diagnostics import (
    Baseline,
    Diagnostic,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.engine import lint_file, lint_paths, package_relative
from repro.lint.rules import RULES, FileContext, LintConfig, Rule

__all__ = [
    "Baseline",
    "Diagnostic",
    "FileContext",
    "LintConfig",
    "RULES",
    "Rule",
    "apply_baseline",
    "lint_file",
    "lint_paths",
    "load_baseline",
    "package_relative",
    "write_baseline",
]
