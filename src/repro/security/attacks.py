"""Attacker models (paper sections 4 and 5).

Attackers are protocol drivers: a malicious station runs different
software but lives in the same network, clocks, MAC and channel as
everyone else, so every attack flows through exactly the code paths a
real deployment would expose.

* :class:`TsfChannelAttacker` - the section 5 attacker against TSF:
  transmits a beacon at every BP *without delay* (with a small lead, so it
  deterministically beats the backoff window) carrying an erroneous time
  slower than its clock. TSF stations cancel their own beacons upon
  receiving it, so the fast stations are silenced and the network
  free-runs apart.
* :class:`SstspInsiderAttacker` - the same attacker against SSTSP, as a
  *compromised legitimate node* (it owns a registered hash chain, so
  uTESLA passes): it seizes the reference role and advertises timestamps
  shaved by a per-BP amount "carefully configured to pass the guard time
  check". The network follows the shaved virtual clock but stays
  internally synchronized - the paper's point.
* :class:`ExternalForger` - crafts secure-looking beacons without any
  registered chain; every one is rejected by the uTESLA pipeline.
* :class:`ReplayAttacker` - stores overheard secure beacons and replays
  them ``delay_periods`` later; rejected by the interval safety check.
  Combined with channel jam windows (:func:`schedule_pulse_delay_jam`)
  this realises the pulse-delay attack of [8].
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

import numpy as np

from repro.clocks.adjusted import AdjustedClock
from repro.core.backend import CryptoBackend
from repro.core.config import SstspConfig
from repro.core.sstsp import SstspProtocol, SstspState
from repro.mac.beacon import BeaconFrame, SecureBeaconFrame
from repro.phy.channel import BroadcastChannel
from repro.protocols.base import ClockKind, RxContext, TxIntent
from repro.protocols.tsf import TsfConfig, TsfProtocol
from repro.sim.units import S


@dataclass(frozen=True)
class AttackWindow:
    """Half-open period range ``[start_period, end_period)`` the attack is
    active in."""

    start_period: int
    end_period: int

    def __post_init__(self) -> None:
        if self.end_period <= self.start_period:
            raise ValueError("attack window must have end > start")

    def active(self, period: int) -> bool:
        """Whether the attack runs during ``period``."""
        return self.start_period <= period < self.end_period

    @classmethod
    def from_seconds(
        cls, start_s: float, end_s: float, beacon_period_us: float = 0.1 * S
    ) -> "AttackWindow":
        """Window from true-time seconds (the paper attacks 400 s - 600 s)."""
        return cls(
            start_period=int(round(start_s * S / beacon_period_us)),
            end_period=int(round(end_s * S / beacon_period_us)),
        )


class TsfChannelAttacker(TsfProtocol):
    """Section 5 attacker against TSF.

    Outside the window it behaves as an honest TSF station. Inside, it
    transmits at every TBTT with a ``lead_slots`` head start (the paper's
    "without delay"; the lead makes the win deterministic against
    slot-0 draws) and advertises ``timer - error_offset_us``. Receivers
    ignore the value (it is not later than their clocks) but cancel their
    own beacons - which is the damage: the fastest station can no longer
    pull the network forward, so the honest clocks free-run apart for the
    whole attack.

    To *keep* winning (the paper: "the attacker always wins the
    contentions"), the attacker paces its TBTTs ``pace_boost_us_per_period``
    faster than its oscillator - a compromised station can trivially run
    its timer fast. The default boost (30 us/BP = 300 ppm) outruns any
    legitimate +-100 ppm oscillator, so no honest station's window ever
    opens before the attacker transmits.
    """

    protocol_name = "tsf_channel_attacker"

    def __init__(
        self,
        node_id: int,
        timer,
        config: TsfConfig,
        rng: np.random.Generator,
        window: AttackWindow,
        lead_slots: float = 2.0,
        error_offset_us: float = 2_000.0,
        pace_boost_us_per_period: float = 30.0,
    ) -> None:
        super().__init__(node_id, timer, config, rng)
        self.window = window
        self.lead_us = lead_slots * config.slot_time_us
        self.error_offset_us = float(error_offset_us)
        self.pace_boost_us_per_period = float(pace_boost_us_per_period)
        self.attack_beacons = 0

    def _boost_total(self, period: int) -> float:
        if period < self.window.start_period:
            return 0.0
        last = min(period, self.window.end_period - 1)
        return (last - self.window.start_period) * self.pace_boost_us_per_period

    def begin_period(self, period: int) -> Optional[TxIntent]:
        if not self.window.active(period):
            return super().begin_period(period)
        local = (
            period * self.config.beacon_period_us
            - self._boost_total(period)
            - self.lead_us
        )
        return TxIntent(local_time=local, clock=ClockKind.TSF)

    def make_frame(self, hw_time: float, period: int) -> BeaconFrame:
        if not self.window.active(period):
            return super().make_frame(hw_time, period)
        self.attack_beacons += 1
        timestamp = math.floor(self.timer.raw_from_hw(hw_time)) - self.error_offset_us
        return BeaconFrame(sender=self.node_id, timestamp_us=timestamp)

    def on_beacon(self, frame: BeaconFrame, rx: RxContext) -> None:
        if self.window.active(rx.period):
            return  # the attacker does not synchronize while attacking
        super().on_beacon(frame, rx)

    def synchronized_time(self, hw_time: float) -> float:
        # The attacker's public clock is whatever it advertises.
        base = super().synchronized_time(hw_time)
        return base - self.error_offset_us if self._advertising(hw_time) else base

    def _advertising(self, hw_time: float) -> bool:
        period = int(self.timer.raw_from_hw(hw_time) // self.config.beacon_period_us)
        return self.window.active(period)


class SstspInsiderAttacker(SstspProtocol):
    """Compromised legitimate SSTSP node (internal attacker, sections 4-5).

    During the window it claims the reference role outright (transmitting
    with a ``lead_slots`` head start silences the honest reference via the
    cancel rule), and each BP advertises its claimed clock *shaved* by a
    further ``shave_per_period_us`` - tuned by the operator to stay inside
    the receivers' guard time. uTESLA passes (the chain is genuine); the
    guard time is the only line of defence, and it bounds the per-beacon
    damage exactly as section 4 argues.

    When the window closes the attacker simply *rejoins* the network as a
    listener (coarse re-acquisition): if the attack held, the network now
    lives on the dragged virtual timeline and the attacker lands there; if
    an honest station managed to retake the channel, the attacker lands on
    the honest timeline instead of polluting elections with a stale clock.
    """

    protocol_name = "sstsp_insider"

    def __init__(
        self,
        node_id: int,
        config: SstspConfig,
        backend: CryptoBackend,
        rng: np.random.Generator,
        window: AttackWindow,
        shave_per_period_us: float = 40.0,
        lead_slots: float = 5.0,
        founding: bool = True,
        initial_offset_us: float = 0.0,
    ) -> None:
        super().__init__(
            node_id, config, backend, rng,
            founding=founding, initial_offset_us=initial_offset_us,
        )
        self.window = window
        self.shave_per_period_us = float(shave_per_period_us)
        self.lead_us = lead_slots * config.slot_time_us
        self.attack_beacons = 0
        self._rejoined = False

    def _shave_total(self, period: int) -> float:
        """Accumulated shave at ``period``.

        Starts at zero on the first attack beacon - the takeover beacon
        matches the honest timeline (and beats the honest reference on the
        air thanks to the lead), then each subsequent beacon shaves a
        further ``shave_per_period_us``.
        """
        if period < self.window.start_period:
            return 0.0
        last = min(period, self.window.end_period - 1)
        return (last - self.window.start_period) * self.shave_per_period_us

    def begin_period(self, period: int) -> Optional[TxIntent]:
        if not self.window.active(period):
            if period >= self.window.end_period:
                self._rejoin_once(period)
            return super().begin_period(period)
        self.state = SstspState.REFERENCE
        self.current_ref = self.node_id
        nominal = self._nominal_time(period)
        return TxIntent(local_time=nominal - self.lead_us, clock=ClockKind.ADJUSTED)

    def make_frame(self, hw_time: float, period: int) -> SecureBeaconFrame:
        if not self.window.active(period):
            return super().make_frame(hw_time, period)
        self.attack_beacons += 1
        claimed = self.clock.read_current(hw_time) - self._shave_total(period)
        return self.backend.make_frame(self.node_id, period, claimed)

    def on_beacon(self, frame, rx: RxContext) -> None:
        if self.window.active(rx.period):
            return  # ignore everyone while attacking
        super().on_beacon(frame, rx)

    def synchronized_time(self, hw_time: float) -> float:
        base = self.clock.read_current(hw_time)
        if self._rejoined:
            return base
        # Publicly the attacker's clock is the claimed (shaved) one.
        period = int(
            (base - self.config.t0_us) // self.config.beacon_period_us
        )
        return base - self._shave_total(period)

    def _rejoin_once(self, period: int) -> None:
        """At window close: re-acquire the network like a returning node."""
        if self._rejoined:
            return
        self._rejoined = True
        self.on_return(period)


class ExternalForger(SstspProtocol):
    """External attacker: no registered chain, forged beacon material.

    Every frame it emits fails the uTESLA pipeline (unknown sender or bad
    key), so it can suppress the channel while active but never influence
    any clock - the property the tests pin down.
    """

    protocol_name = "sstsp_forger"

    FORGED_ID_BASE = 1_000_000

    def __init__(
        self,
        node_id: int,
        config: SstspConfig,
        backend: CryptoBackend,
        rng: np.random.Generator,
        window: AttackWindow,
        impersonate: Optional[int] = None,
        lead_slots: float = 2.0,
        forged_offset_us: float = 50_000.0,
    ) -> None:
        # Note: deliberately NOT registered with the backend.
        super().__init__(node_id, config, backend, rng, founding=True)
        self.window = window
        self.impersonate = impersonate
        self.lead_us = lead_slots * config.slot_time_us
        self.forged_offset_us = float(forged_offset_us)
        self.forged_frames = 0

    def begin_period(self, period: int) -> Optional[TxIntent]:
        if not self.window.active(period):
            return None  # passive outside the window
        nominal = self._nominal_time(period)
        return TxIntent(local_time=nominal - self.lead_us, clock=ClockKind.ADJUSTED)

    def make_frame(self, hw_time: float, period: int) -> SecureBeaconFrame:
        self.forged_frames += 1
        claimed_sender = (
            self.impersonate
            if self.impersonate is not None
            else self.FORGED_ID_BASE + self.node_id
        )
        return SecureBeaconFrame(
            sender=claimed_sender,
            timestamp_us=self.clock.read_current(hw_time) + self.forged_offset_us,
            interval=period,
            mac_tag=b"forged-tag------",
            disclosed_key=b"forged-key------",
        )

    def on_beacon(self, frame, rx: RxContext) -> None:
        # An external attacker cannot forge beacons, but it can *listen*:
        # it tracks network time passively so its injections land before
        # the legitimate reference's TBTT. Being an attacker, it steps its
        # own clock freely (no-leap guarantees protect victims, not it).
        offset = rx.est_timestamp - self.clock.read_current(rx.hw_time)
        self.clock = AdjustedClock(self.clock.k, self.clock.b + offset)

    def end_period(self, period, heard_beacon, transmitted, tx_success) -> None:
        return


class ReplayAttacker(SstspProtocol):
    """Replays overheard secure beacons ``delay_periods`` later.

    The uTESLA interval safety check rejects the stale interval index; the
    guard time independently rejects the stale timestamp. With
    :func:`schedule_pulse_delay_jam` suppressing the original delivery
    first, this is the pulse-delay attack of [8].
    """

    protocol_name = "sstsp_replay"

    def __init__(
        self,
        node_id: int,
        config: SstspConfig,
        backend: CryptoBackend,
        rng: np.random.Generator,
        window: AttackWindow,
        delay_periods: int = 3,
        lead_slots: float = 2.0,
    ) -> None:
        super().__init__(node_id, config, backend, rng, founding=True)
        self.window = window
        self.delay_periods = int(delay_periods)
        self.lead_us = lead_slots * config.slot_time_us
        self._captured: Deque[SecureBeaconFrame] = deque(maxlen=delay_periods + 2)
        self.replayed_frames = 0

    def on_beacon(self, frame, rx: RxContext) -> None:
        if isinstance(frame, SecureBeaconFrame):
            self._captured.append(frame)
        if not self.window.active(rx.period):
            super().on_beacon(frame, rx)

    def begin_period(self, period: int) -> Optional[TxIntent]:
        if not self.window.active(period) or not self._has_stale_frame(period):
            return None if self.window.active(period) else super().begin_period(period)
        nominal = self._nominal_time(period)
        return TxIntent(local_time=nominal - self.lead_us, clock=ClockKind.ADJUSTED)

    def make_frame(self, hw_time: float, period: int) -> SecureBeaconFrame:
        frame = self._stale_frame(period)
        if frame is None:  # nothing captured: fall back to honest frame
            return super().make_frame(hw_time, period)
        self.replayed_frames += 1
        return frame

    def _stale_frame(self, period: int) -> Optional[SecureBeaconFrame]:
        target = period - self.delay_periods
        for frame in self._captured:
            if frame.interval == target:
                return frame
        return None

    def _has_stale_frame(self, period: int) -> bool:
        return self._stale_frame(period) is not None


def schedule_pulse_delay_jam(
    channel: BroadcastChannel,
    window: AttackWindow,
    beacon_period_us: float = 0.1 * S,
    guard_band_us: float = 5_000.0,
) -> None:
    """Jam the legitimate beacon deliveries inside the attack window.

    Adds one jam window per period around each expected beacon emission,
    so the victim misses the genuine beacon and only ever sees the delayed
    replay - the setup of the pulse-delay attack.
    """
    for period in range(window.start_period, window.end_period):
        center = period * beacon_period_us
        channel.add_jam_window(center - guard_band_us, center + guard_band_us)
