"""Unit tests for hash primitives and chains."""

import pytest

from repro.crypto.hashchain import (
    DenseHashChain,
    HashChainRegistry,
    SeedOnlyHashChain,
    verify_element,
)
from repro.crypto.primitives import (
    HASH_BYTES,
    constant_time_eq,
    hash128,
    hash128_iter,
    hmac128,
)

SEED = b"\x11" * 16


class TestPrimitives:
    def test_hash_width(self):
        assert len(hash128(b"x")) == HASH_BYTES == 16

    def test_hash_deterministic_and_distinct(self):
        assert hash128(b"a") == hash128(b"a")
        assert hash128(b"a") != hash128(b"b")

    def test_hash_iter(self):
        assert hash128_iter(b"s", 0) == b"s"
        assert hash128_iter(SEED, 3) == hash128(hash128(hash128(SEED)))
        with pytest.raises(ValueError):
            hash128_iter(b"s", -1)

    def test_hmac(self):
        tag = hmac128(b"key", b"data")
        assert len(tag) == HASH_BYTES
        assert tag == hmac128(b"key", b"data")
        assert tag != hmac128(b"key2", b"data")
        assert tag != hmac128(b"key", b"data2")

    def test_constant_time_eq(self):
        assert constant_time_eq(b"ab", b"ab")
        assert not constant_time_eq(b"ab", b"ac")


class TestChains:
    def test_dense_and_seed_only_agree(self):
        dense = DenseHashChain(SEED, 100)
        lazy = SeedOnlyHashChain(SEED, 100)
        for j in [0, 1, 50, 99, 100]:
            assert dense.element(j) == lazy.element(j)

    def test_chain_property(self):
        chain = DenseHashChain(SEED, 10)
        for j in range(10):
            assert hash128(chain.element(j)) == chain.element(j + 1)

    def test_anchor_is_last_element(self):
        chain = DenseHashChain(SEED, 20)
        assert chain.anchor == chain.element(20)

    def test_interval_key_assignment(self):
        # key of interval j is h^{n-j}; disclosure is h^{n-j+1} = key(j-1)
        chain = DenseHashChain(SEED, 16)
        assert chain.key_for_interval(1) == chain.element(15)
        assert chain.disclosed_key_for_interval(1) == chain.element(16)
        assert chain.disclosed_key_for_interval(5) == chain.key_for_interval(4)

    def test_interval_bounds(self):
        chain = DenseHashChain(SEED, 8)
        with pytest.raises(ValueError):
            chain.key_for_interval(0)
        with pytest.raises(ValueError):
            chain.key_for_interval(9)

    def test_element_bounds(self):
        chain = DenseHashChain(SEED, 8)
        with pytest.raises(ValueError):
            chain.element(-1)
        with pytest.raises(ValueError):
            chain.element(9)

    def test_storage_accounting(self):
        assert DenseHashChain(SEED, 64).storage_elements() == 65
        assert SeedOnlyHashChain(SEED, 64).storage_elements() == 1

    def test_seed_only_counts_hash_ops(self):
        chain = SeedOnlyHashChain(SEED, 64)
        chain.element(10)
        chain.element(5)
        assert chain.hash_operations == 15

    def test_arbitrary_seed_size_normalised(self):
        chain = DenseHashChain(b"a-long-seed-that-is-not-16-bytes!", 4)
        assert len(chain.element(0)) == HASH_BYTES

    def test_validation(self):
        with pytest.raises(ValueError):
            DenseHashChain(SEED, 0)
        with pytest.raises(ValueError):
            DenseHashChain(b"", 4)


class TestVerifyElement:
    def test_valid_element_verifies(self):
        chain = DenseHashChain(SEED, 32)
        ok, cost = verify_element(chain.element(10), 10, chain.anchor, 32)
        assert ok and cost == 22

    def test_wrong_element_rejected(self):
        chain = DenseHashChain(SEED, 32)
        ok, _ = verify_element(b"\x00" * 16, 10, chain.anchor, 32)
        assert not ok

    def test_wrong_claimed_index_rejected(self):
        chain = DenseHashChain(SEED, 32)
        ok, _ = verify_element(chain.element(10), 11, chain.anchor, 32)
        assert not ok

    def test_out_of_range_index_rejected(self):
        chain = DenseHashChain(SEED, 32)
        assert verify_element(chain.element(1), -1, chain.anchor, 32)[0] is False
        assert verify_element(chain.element(1), 33, chain.anchor, 32)[0] is False

    def test_cache_reduces_cost(self):
        chain = DenseHashChain(SEED, 512)
        cached = (500, chain.element(500))
        ok, cost = verify_element(chain.element(499), 499, chain.anchor, 512, cache=cached)
        assert ok and cost == 1

    def test_cache_exact_hit(self):
        chain = DenseHashChain(SEED, 32)
        cached = (10, chain.element(10))
        ok, cost = verify_element(chain.element(10), 10, chain.anchor, 32, cache=cached)
        assert ok and cost == 0

    def test_stale_cache_falls_back_to_anchor(self):
        chain = DenseHashChain(SEED, 32)
        cached = (5, chain.element(5))  # below the claimed index: unusable
        ok, cost = verify_element(chain.element(10), 10, chain.anchor, 32, cache=cached)
        assert ok and cost == 22


class TestRegistry:
    def test_publish_and_lookup(self):
        registry = HashChainRegistry()
        registry.publish(3, b"a" * 16, 100)
        assert registry.lookup(3) == (b"a" * 16, 100)
        assert 3 in registry
        assert registry.lookup(4) is None
        assert len(registry) == 1

    def test_republish_same_ok(self):
        registry = HashChainRegistry()
        registry.publish(3, b"a" * 16, 100)
        registry.publish(3, b"a" * 16, 100)

    def test_republish_different_rejected(self):
        registry = HashChainRegistry()
        registry.publish(3, b"a" * 16, 100)
        with pytest.raises(ValueError):
            registry.publish(3, b"b" * 16, 100)
