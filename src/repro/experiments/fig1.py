"""Figure 1: maximum clock difference of TSF, 100 and 300 nodes.

The paper's point: TSF does not scale - the fastest station is starved of
beacon transmissions and collisions multiply with N, so the maximum clock
difference grows with network size and spikes far above the 25 us
industry expectation. The reproduction runs the exact section 5 scenario
(churn included) on the vectorised TSF engine and reports the series plus
summary statistics per network size.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.analysis.metrics import INDUSTRY_THRESHOLD_US, SyncTrace
from repro.experiments.report import (
    downsample_rows,
    format_table,
    save_trace_csv,
    trace_chart,
)
from repro.sweep import (
    JobSpec,
    SweepOptions,
    add_sweep_arguments,
    run_sweep,
    sweep_options_from_args,
)


@dataclass
class Fig1Result:
    """Traces per network size."""

    traces: Dict[int, SyncTrace]

    def summary_rows(self):
        """Yield (N, steady, peak, time-above-threshold) summary rows."""
        for n, trace in sorted(self.traces.items()):
            above = float(
                (trace.max_diff_us > INDUSTRY_THRESHOLD_US).mean() * 100.0
            )
            yield (
                n,
                f"{trace.steady_state_error_us():.1f}",
                f"{trace.peak_error_us():.1f}",
                f"{above:.0f}%",
            )


def run(
    n_values: Sequence[int] = (100, 300),
    quick: bool = False,
    seed: int = 1,
    lane: str = "vec",
    sweep: Optional[SweepOptions] = None,
) -> Fig1Result:
    """Reproduce Fig. 1 for the given network sizes.

    ``lane`` selects the engine: ``"vec"`` (default, fast) or ``"oo"``
    (the object-oriented reference implementation - slower, use with
    ``quick=True`` at these sizes). The per-N runs execute through the
    sweep orchestrator (``sweep`` controls workers/caching).
    """
    specs = [
        JobSpec.make(
            "scenario_trace",
            {
                "protocol": "tsf",
                "lane": lane,
                "scenario": "quick" if quick else "paper",
                "n": n,
                "seed": seed,
            },
            root_seed=seed,
        )
        for n in n_values
    ]
    payloads = run_sweep("fig1", specs, sweep).values
    return Fig1Result(
        {n: payload["trace"] for n, payload in zip(n_values, payloads)}
    )


def main(argv=None) -> None:
    """CLI entry point; prints the reproduced rows/series."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="60 s smoke run")
    parser.add_argument("--nodes", type=int, nargs="+", default=[100, 300])
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--lane", choices=("vec", "oo"), default="vec",
                        help="engine: vectorised (fast) or reference OO lane")
    add_sweep_arguments(parser)
    args = parser.parse_args(argv)

    result = run(
        tuple(args.nodes), quick=args.quick, seed=args.seed, lane=args.lane,
        sweep=sweep_options_from_args(args),
    )
    print("=== Figure 1: TSF maximum clock difference ===")
    for n, trace in sorted(result.traces.items()):
        path = save_trace_csv(trace, f"fig1_tsf_n{n}")
        print()
        print(trace_chart(trace, f"TSF, {n} nodes (series: {path})"))
        print(
            format_table(
                ["time (s)", "max clock diff (us)"],
                [(f"{t:.0f}", f"{d:.1f}") for t, d in downsample_rows(trace)],
            )
        )
    print()
    print(
        format_table(
            ["N", "steady-state (us)", "peak (us)", "time above 25us"],
            result.summary_rows(),
            title="Summary (paper: error grows with N, far above 25 us)",
        )
    )


if __name__ == "__main__":
    main()
