"""Table 1 bench: synchronization latency & error versus m.

Shape under test: latency grows monotonically with m while the error
improves from m = 1 and flattens by m = 3 (the paper's "m = 2 or 3
achieves the best tradeoff").
"""

from __future__ import annotations

from conftest import paper_rows

from repro.experiments import table1


def _run_table1(sweep):
    return table1.run(
        m_values=(1, 2, 3, 4, 5), n=60, duration_s=30.0, seed=1, replicas=1,
        sweep=sweep,
    )


def test_table1_m_sweep(benchmark, sweep_options):
    rows = benchmark.pedantic(
        _run_table1, args=(sweep_options,), rounds=1, iterations=1
    )
    latencies = [rows[m].latency_s for m in (1, 2, 3, 4, 5)]
    errors = [rows[m].error_us for m in (1, 2, 3, 4, 5)]
    # every m synchronizes from the +-112 us initial offsets
    assert all(lat is not None for lat in latencies)
    # latency increases with m (allow float noise on the sustained check)
    assert latencies == sorted(latencies)
    # error improves from m=1 and flattens: m=1 is the worst, m>=3 within 2x best
    assert errors[0] == max(errors)
    best = min(errors)
    assert all(e < 2 * best for e in errors[2:])
    paper_rows(
        benchmark,
        "table1: latency & error vs m",
        [
            f"m={m}: latency={rows[m].latency_s:.2f}s error={rows[m].error_us:.1f}us "
            f"(paper: {table1.PAPER_ROWS[m][0]}s / {table1.PAPER_ROWS[m][1]:.0f}us)"
            for m in (1, 2, 3, 4, 5)
        ],
    )
