"""Synchronization protocols.

All protocols - the TSF baseline, the related-work schemes the paper
surveys (ATSP, TATSP [4], SATSF [10], Rentel-Kunz [1]) and SSTSP itself
(:mod:`repro.core`) - implement the per-node driver interface of
:mod:`repro.protocols.base` and run unchanged inside the
:mod:`repro.network` harness.
"""

from repro.protocols.base import (
    ClockKind,
    RxContext,
    SyncProtocol,
    TxIntent,
)
from repro.protocols.tsf import TsfConfig, TsfProtocol
from repro.protocols.atsp import AtspConfig, AtspProtocol
from repro.protocols.tatsp import TatspConfig, TatspProtocol
from repro.protocols.satsf import SatsfConfig, SatsfProtocol
from repro.protocols.rentel import RentelConfig, RentelProtocol

__all__ = [
    "ClockKind",
    "SyncProtocol",
    "TxIntent",
    "RxContext",
    "TsfConfig",
    "TsfProtocol",
    "AtspConfig",
    "AtspProtocol",
    "TatspConfig",
    "TatspProtocol",
    "SatsfConfig",
    "SatsfProtocol",
    "RentelConfig",
    "RentelProtocol",
]
