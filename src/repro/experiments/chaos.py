"""Chaos soak: randomized fault plans with recovery invariants.

The paper's claim is not just low steady-state error but *survival under
adversity*: Lemma 2 bounds the error growth across a reference change,
and section 5 exercises churn and attack windows. The hand-written
scenarios cover a handful of schedules; this harness generates N
randomized :class:`~repro.faults.spec.FaultPlan`\\ s from a seed, runs
each against a recovery-hardened SSTSP network
(``SstspConfig.hardened()``), and asserts four invariants per run:

1. **bounded error** — after the fault-free recovery tail the maximum
   clock difference obeys a Lemma-2-style loss-aware bound
   (``2 * rho * (x + 2) * BP`` for ``x`` tolerated consecutive lost
   beacons: under burst loss every station free-runs and the pairwise
   spread grows at the oscillator-tolerance rate until the next beacon
   lands), *and* the tail median is back under the industry threshold
   (Lemma 1's geometric contraction means any bounded perturbation must
   re-converge within the tail);
2. **reference re-election** — after every injected crash of the station
   holding the reference role, some legitimate station holds the role
   again within a bounded number of periods (Lemma 2's regime requires a
   reference to exist);
3. **no unhandled exceptions** — the run completes;
4. **monotonicity** — trace sample times strictly increase and every
   honest node's adjusted clock is monotone over the whole run (the
   paper's no-leap guarantee holds *through* the faults), and every
   present node has re-synchronized by the end.

Everything is derived deterministically from ``--seed``: rerunning with
the same seed reproduces identical per-plan outcomes.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.metrics import INDUSTRY_THRESHOLD_US
from repro.core.config import SstspConfig
from repro.experiments.report import format_table
from repro.experiments.scenarios import PAPER_PHY
from repro.faults import FaultInjector, FaultPlan, random_plan
from repro.network.ibss import ScenarioSpec, build_sstsp_network
from repro.network.runner import NetworkRunner
from repro.sim.units import S
from repro.sweep import (
    JobSpec,
    SweepOptions,
    add_sweep_arguments,
    run_sweep,
    sweep_options_from_args,
)


#: Consecutive lost beacons the tail error bound absorbs: the chaos
#: channel keeps its burst-loss regime through the recovery tail, so the
#: bound must cover the spread a loss burst opens up before the next
#: delivered beacon collapses it again.
LOSS_TOLERANCE_BEACONS = 4


def lemma2_loss_bound(
    drift_ppm: float = 100.0,
    beacon_period_us: float = 0.1 * S,
    lost_beacons: int = LOSS_TOLERANCE_BEACONS,
) -> float:
    """Lemma 2's loss-aware error bound, in microseconds.

    After ``x`` consecutive lost beacons every station has free-run for
    ``x + 2`` beacon periods since its last correction took effect (the
    ``+2`` covers the correction-to-coincidence slewing horizon), during
    which the pairwise spread grows at both stations' oscillator
    tolerance: ``(rho_1 + rho_2) * (x + 2) * BP``. With the paper's
    +-100 ppm tolerance and 0.1 s BP this is 120 us for ``x = 4`` —
    still far inside the 500 us fine guard, so recovery is guaranteed.
    """
    return 2.0 * drift_ppm * 1e-6 * (lost_beacons + 2) * beacon_period_us


@dataclass(frozen=True)
class ChaosLimits:
    """Invariant bounds one soak run is checked against.

    Attributes
    ----------
    tail_periods:
        Fault-free periods at the end of every plan (no fault may affect
        them; recovery happens here).
    eval_periods:
        Final stretch the error bound is evaluated over (shorter than the
        tail so recovery transients - e.g. a re-coarsing node after a
        large clock jump - have settled).
    tail_bound_us:
        Maximum allowed clock difference over the evaluation stretch
        (default: :func:`lemma2_loss_bound` — loss bursts in the tail
        open a transient spread the next delivered beacon collapses).
    converged_bound_us:
        Maximum allowed *median* clock difference over the evaluation
        stretch — the steady-state the network must have contracted back
        to (burst-robust: a short loss spike cannot move the median of a
        50-sample window).
    reelect_within:
        Periods within which a legitimate reference must hold the role
        again after an injected reference crash.
    """

    tail_periods: int = 100
    eval_periods: int = 50
    tail_bound_us: float = lemma2_loss_bound()
    converged_bound_us: float = INDUSTRY_THRESHOLD_US
    reelect_within: int = 40

    def __post_init__(self) -> None:
        if not 1 <= self.eval_periods <= self.tail_periods:
            raise ValueError("need 1 <= eval_periods <= tail_periods")
        if self.converged_bound_us > self.tail_bound_us:
            raise ValueError("converged_bound_us must be <= tail_bound_us")
        if self.converged_bound_us <= 0 or self.reelect_within < 1:
            raise ValueError("bounds must be positive")


@dataclass
class PlanOutcome:
    """Result of one plan's soak run (all fields deterministic in seed)."""

    index: int
    scenario_seed: int
    plan: FaultPlan
    failures: List[str] = field(default_factory=list)
    tail_max_us: float = float("nan")
    tail_median_us: float = float("nan")
    reelect_delays: Tuple[int, ...] = ()
    reference_crashes: int = 0
    events: int = 0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Whether every invariant held."""
        return not self.failures and self.error is None


def build_chaos_runner(
    plan: FaultPlan,
    n: int,
    periods: int,
    seed: int,
    gilbert_elliott: bool = False,
) -> NetworkRunner:
    """A hardened SSTSP network with ``plan`` attached.

    ``gilbert_elliott`` switches the channel to the burst-loss model so
    soaks also exercise temporally correlated loss, not just injected
    bursts.
    """
    phy = PAPER_PHY
    if gilbert_elliott:
        phy = replace(phy, loss_model="gilbert_elliott", packet_error_rate=1e-3)
    bp = 0.1 * S
    spec = ScenarioSpec(
        n=n,
        seed=seed,
        duration_s=periods * bp / S,
        beacon_period_us=bp,
        phy=phy,
    )
    runner = build_sstsp_network(spec, config=SstspConfig.hardened())
    runner.attach_injector(FaultInjector(plan))
    return runner


def _check_invariants(
    outcome: PlanOutcome,
    runner: NetworkRunner,
    trace,
    limits: ChaosLimits,
) -> None:
    """Populate ``outcome.failures`` from a finished run."""
    injector = runner.injector
    # 1. bounded error over the final evaluation stretch: the max obeys
    # the loss-aware Lemma 2 bound, the median the steady-state one.
    tail = trace.max_diff_us[-limits.eval_periods:]
    if not tail.size:
        outcome.failures.append("no tail samples to evaluate")
    else:
        outcome.tail_max_us = float(tail.max())
        outcome.tail_median_us = float(np.median(tail))
        if outcome.tail_max_us > limits.tail_bound_us:
            outcome.failures.append(
                f"tail error {outcome.tail_max_us:.1f}us > "
                f"{limits.tail_bound_us:.1f}us"
            )
        if outcome.tail_median_us > limits.converged_bound_us:
            outcome.failures.append(
                f"tail median {outcome.tail_median_us:.1f}us > "
                f"{limits.converged_bound_us:.1f}us (not re-converged)"
            )
    # 2. reference re-election after every injected reference crash.
    # Sample index p-1 corresponds to period p.
    delays = []
    refs = trace.reference_ids
    outcome.reference_crashes = len(injector.reference_crashes)
    for crash_period, crashed in injector.reference_crashes:
        delay = None
        for d in range(1, limits.reelect_within + 1):
            idx = crash_period - 1 + d
            if idx >= len(refs):
                break
            if refs[idx] >= 0 and refs[idx] != crashed:
                delay = d
                break
        if delay is None:
            outcome.failures.append(
                f"no reference within {limits.reelect_within} periods of "
                f"the crash at p{crash_period}"
            )
        else:
            delays.append(delay)
    outcome.reelect_delays = tuple(delays)
    # 4a. trace sample times strictly increase
    if len(trace) > 1 and not np.all(np.diff(trace.times_us) > 0):
        outcome.failures.append("trace times not strictly increasing")
    # 4b. per-node adjusted clocks never leap or run backward
    horizon_true = runner.params.periods * runner.params.beacon_period_us
    for node in runner.nodes:
        clock = getattr(node.protocol, "clock", None)
        if clock is None:
            continue
        if not clock.is_monotonic(0.0, node.hw.read(horizon_true)):
            outcome.failures.append(f"node {node.node_id} clock not monotone")
    # 4c. every present node re-synchronized by the end
    for node in runner.nodes:
        if node.present and not node.protocol.is_synchronized():
            outcome.failures.append(f"node {node.node_id} never re-synchronized")


def run_plan(
    index: int,
    master_seed: int,
    n: int = 12,
    periods: int = 300,
    limits: Optional[ChaosLimits] = None,
) -> PlanOutcome:
    """Generate plan ``index`` from ``master_seed``, run it, check invariants."""
    limits = limits or ChaosLimits()
    rng = np.random.default_rng([master_seed, index])
    scenario_seed = master_seed * 10_007 + index
    plan = random_plan(
        rng,
        periods=periods,
        node_ids=list(range(n)),
        first_period=40,
        last_period=periods - limits.tail_periods,
        name=f"chaos-{master_seed}-{index}",
        seed=master_seed,
    )
    outcome = PlanOutcome(index=index, scenario_seed=scenario_seed, plan=plan)
    runner = build_chaos_runner(
        plan, n=n, periods=periods, seed=scenario_seed,
        gilbert_elliott=index % 2 == 1,
    )
    try:
        result = runner.run()
    except Exception as exc:  # invariant 3: no unhandled exceptions
        outcome.error = f"{type(exc).__name__}: {exc}"
        outcome.failures.append(f"unhandled exception: {outcome.error}")
        return outcome
    outcome.events = len(result.events)
    _check_invariants(outcome, runner, result.trace, limits)
    return outcome


def job_chaos_plan(job: "JobSpec") -> PlanOutcome:
    """Sweep job: one randomized plan soak (pure function of the spec)."""
    p = job.params_dict()
    limits = ChaosLimits(
        tail_periods=p["tail_periods"],
        eval_periods=p["eval_periods"],
        tail_bound_us=p["tail_bound_us"],
        converged_bound_us=p["converged_bound_us"],
        reelect_within=p["reelect_within"],
    )
    return run_plan(
        p["index"], p["master_seed"], n=p["n"], periods=p["periods"],
        limits=limits,
    )


def run_chaos(
    plans: int,
    seed: int,
    n: int = 12,
    periods: int = 300,
    limits: Optional[ChaosLimits] = None,
    sweep: Optional["SweepOptions"] = None,
) -> List[PlanOutcome]:
    """Run ``plans`` independent randomized soaks derived from ``seed``.

    Plans are independent jobs, so the soak parallelises through the
    sweep orchestrator (``sweep`` controls workers/caching) with
    per-plan outcomes identical to the serial run.
    """
    limits = limits or ChaosLimits()
    specs = [
        JobSpec.make(
            "chaos_plan",
            {
                "index": i,
                "master_seed": seed,
                "n": n,
                "periods": periods,
                "tail_periods": limits.tail_periods,
                "eval_periods": limits.eval_periods,
                "tail_bound_us": limits.tail_bound_us,
                "converged_bound_us": limits.converged_bound_us,
                "reelect_within": limits.reelect_within,
            },
            root_seed=seed,
        )
        for i in range(plans)
    ]
    return run_sweep("chaos", specs, sweep).values


def outcome_fingerprint(outcome: PlanOutcome) -> Dict:
    """The reproducibility-relevant projection of one outcome (equal for
    equal seeds)."""
    return {
        "index": outcome.index,
        "plan": outcome.plan.to_dict(),
        "failures": list(outcome.failures),
        "tail_max_us": round(outcome.tail_max_us, 6),
        "tail_median_us": round(outcome.tail_median_us, 6),
        "reelect_delays": list(outcome.reelect_delays),
        "events": outcome.events,
        "error": outcome.error,
    }


def main(argv=None) -> None:
    """CLI entry point: run the soak and print the per-plan table."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--plans", type=int, default=10, help="number of plans")
    parser.add_argument("--seed", type=int, default=7, help="master seed")
    parser.add_argument("--nodes", type=int, default=12, help="stations per run")
    parser.add_argument(
        "--periods", type=int, default=300, help="beacon periods per run"
    )
    parser.add_argument(
        "--bound-us",
        type=float,
        default=lemma2_loss_bound(),
        help="tail max-error bound (us; Lemma 2 loss-aware default)",
    )
    parser.add_argument(
        "--converged-us",
        type=float,
        default=INDUSTRY_THRESHOLD_US,
        help="tail median-error bound (us; steady-state convergence)",
    )
    parser.add_argument(
        "--reelect-within",
        type=int,
        default=40,
        help="re-election bound after a reference crash (periods)",
    )
    add_sweep_arguments(parser)
    args = parser.parse_args(argv)
    limits = ChaosLimits(
        tail_bound_us=args.bound_us,
        converged_bound_us=args.converged_us,
        reelect_within=args.reelect_within,
    )

    outcomes = run_chaos(
        args.plans, args.seed, n=args.nodes, periods=args.periods, limits=limits,
        sweep=sweep_options_from_args(args),
    )
    rows = []
    for o in outcomes:
        delays = ",".join(str(d) for d in o.reelect_delays) or "-"
        rows.append(
            (
                o.index,
                len(o.plan),
                "+".join(sorted(set(o.plan.kinds()))),
                f"{o.tail_max_us:.1f}",
                f"{o.tail_median_us:.1f}",
                delays,
                "ok" if o.ok else "; ".join(o.failures),
            )
        )
    print(
        format_table(
            [
                "plan", "faults", "kinds", "tail max (us)",
                "tail med (us)", "re-elect (BPs)", "verdict",
            ],
            rows,
            title=(
                f"chaos soak: {args.plans} plans, seed {args.seed}, "
                f"N={args.nodes}, {args.periods} BPs each "
                f"(max bound {limits.tail_bound_us:.0f}us, median bound "
                f"{limits.converged_bound_us:.0f}us, re-election within "
                f"{limits.reelect_within} BPs)"
            ),
        )
    )
    failed = [o for o in outcomes if not o.ok]
    print(
        f"\n{len(outcomes) - len(failed)}/{len(outcomes)} plans green; "
        f"{sum(o.reference_crashes for o in outcomes)} reference crashes "
        "injected"
    )
    if failed:
        print("\nviolated invariants:")
        for o in failed:
            for failure in o.failures:
                print(f"  plan {o.index}: {failure}")
        raise SystemExit(1)


if __name__ == "__main__":
    main()
