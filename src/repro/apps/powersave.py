"""IBSS power saving on top of synchronized clocks.

In 802.11 IBSS power-save mode every station wakes at what *its* clock
says is the start of each beacon period and stays awake for the ATIM
window; frames are announced inside the window, and a station that missed
the announcement (because its window did not overlap the sender's enough)
sleeps through its traffic. Synchronization error therefore converts
directly into (a) missed announcements and (b) the window size - i.e.
energy - needed to make announcements safe.

Given a per-node clock trace, this module computes, per beacon period:
the worst pairwise wake-time misalignment, the announcement-failure rate
for a configured window, and the *minimum safe window* - the window that
would have kept every pair's overlap above the announcement airtime. The
energy story is the ratio of awake time to the beacon period.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.metrics import SyncTrace
from repro.sim.units import S


@dataclass(frozen=True)
class PowerSaveConfig:
    """ATIM power-save parameters.

    Attributes
    ----------
    atim_window_us:
        Wake window following each (local) beacon-period start; 802.11
        deployments commonly use 4-20 ms at BP = 0.1 s.
    announcement_airtime_us:
        Time needed inside the *common* awake overlap to deliver one ATIM
        announcement and its ack.
    beacon_period_us:
        BP, for the energy (awake fraction) accounting.
    """

    atim_window_us: float = 4_000.0
    announcement_airtime_us: float = 100.0
    beacon_period_us: float = 0.1 * S

    def __post_init__(self) -> None:
        if self.atim_window_us <= 0:
            raise ValueError("atim_window_us must be > 0")
        if not 0 < self.announcement_airtime_us < self.atim_window_us:
            raise ValueError(
                "announcement_airtime_us must be in (0, atim_window_us)"
            )
        if self.beacon_period_us <= self.atim_window_us:
            raise ValueError("beacon_period_us must exceed the ATIM window")


@dataclass(frozen=True)
class PowerSaveReport:
    """Power-save evaluation over one run."""

    #: Fraction of (period, worst-pair) announcements that would fail with
    #: the configured window.
    failure_rate: float
    #: Median and maximum pairwise wake misalignment (us).
    median_misalignment_us: float
    max_misalignment_us: float
    #: Smallest ATIM window keeping every observed pair's overlap above the
    #: announcement airtime.
    min_safe_window_us: float
    #: Awake fraction with the configured window and with the minimal one.
    duty_cycle: float
    min_safe_duty_cycle: float

    def energy_savings_vs(self, other: "PowerSaveReport") -> float:
        """How much less awake time this run needs than ``other`` (both at
        their minimum safe windows); 0.5 means half the awake time."""
        if other.min_safe_duty_cycle == 0:
            return 0.0
        return 1.0 - self.min_safe_duty_cycle / other.min_safe_duty_cycle


def evaluate_power_save(
    trace: SyncTrace, config: Optional[PowerSaveConfig] = None
) -> PowerSaveReport:
    """Evaluate IBSS power saving over a per-node clock trace.

    A station's wake instant is when *its* clock reads the period start,
    so the pairwise wake misalignment equals the pairwise clock
    difference; the worst pair per period bounds every announcement.
    Requires a trace recorded with ``keep_values=True``.
    """
    config = config if config is not None else PowerSaveConfig()
    values = _require_values(trace)
    # worst pairwise clock difference per period == wake misalignment
    misalignment = np.nanmax(values, axis=1) - np.nanmin(values, axis=1)
    misalignment = misalignment[np.isfinite(misalignment)]
    if misalignment.size == 0:
        raise ValueError("trace holds no synchronized samples")
    window, need = config.atim_window_us, config.announcement_airtime_us
    overlap = window - misalignment
    failures = float((overlap < need).mean())
    min_safe_window = float(misalignment.max() + need)
    return PowerSaveReport(
        failure_rate=failures,
        median_misalignment_us=float(np.median(misalignment)),
        max_misalignment_us=float(misalignment.max()),
        min_safe_window_us=min_safe_window,
        duty_cycle=window / config.beacon_period_us,
        min_safe_duty_cycle=min_safe_window / config.beacon_period_us,
    )


def _require_values(trace: SyncTrace) -> np.ndarray:
    if trace.values_us is None:
        raise ValueError(
            "this evaluation needs the per-node clock matrix: run with "
            "keep_values=True"
        )
    return trace.values_us
