"""The canonical section 5 scenario parameters.

"We run the simulation for 1000s for OFDM system with bitrate of 54Mbps:
w = 30, BP = 0.1s, l = 1, the number of nodes N = 100 - 500 and the
beacon length is 4 slot time in TSF and 7 slot time in SSTSP. We also set
the packet error rate to be 0.01%. We let 5% of the stations leave at BP
k * 200s (k > 1). They return after 50s. In order to simulate the impact
of changing the reference node, we let the reference node leave at 300s,
500s and 800s." Clock drift is uniform in +-0.01%; Table 1 adds initial
clock offsets in (-112us, 112us); the attack scenarios run the attacker
from 400s to 600s.
"""

from __future__ import annotations

from typing import Optional

from repro.network.ibss import AttackerSpec, ScenarioSpec
from repro.phy.params import PhyParams

#: Full paper horizon.
PAPER_DURATION_S: float = 1000.0
#: Attack window of the Fig. 3 / Fig. 4 scenarios.
PAPER_ATTACK = AttackerSpec(start_s=400.0, end_s=600.0)
#: Initial clock offset of the Table 1 scenario.
TABLE1_INITIAL_OFFSET_US: float = 112.0

#: The paper's PHY: OFDM 54 Mbps, PER 1e-4. The loss model is
#: per-transmission (one coin per beacon): with per-receiver independent
#: loss at N = 500 some station misses nearly every beacon, and with the
#: paper's l = 1 each miss triggers a spurious election - incompatible
#: with the clean curves of Figs. 2 and 4, so the authors' simulator
#: evidently lost whole transmissions (see PhyParams.loss_model).
PAPER_PHY = PhyParams(packet_error_rate=1e-4, loss_model="per_transmission")


def paper_spec(
    n: int,
    seed: int = 1,
    duration_s: float = PAPER_DURATION_S,
    churn: Optional[str] = "paper",
    attacker: Optional[AttackerSpec] = None,
    initial_offset_us: float = 0.0,
) -> ScenarioSpec:
    """A section 5 scenario with the paper's fixed parameters."""
    return ScenarioSpec(
        n=n,
        seed=seed,
        duration_s=duration_s,
        drift_ppm=100.0,
        initial_offset_us=initial_offset_us,
        phy=PAPER_PHY,
        churn=churn,
        attacker=attacker,
    )


def quick_spec(
    n: int,
    seed: int = 1,
    duration_s: float = 60.0,
    attacker: Optional[AttackerSpec] = None,
    initial_offset_us: float = 0.0,
) -> ScenarioSpec:
    """A shrunk scenario preserving the shape (for --quick and benches)."""
    return ScenarioSpec(
        n=n,
        seed=seed,
        duration_s=duration_s,
        drift_ppm=100.0,
        initial_offset_us=initial_offset_us,
        phy=PAPER_PHY,
        churn=None,
        attacker=attacker,
    )
