"""Hash and MAC primitives.

The paper assumes 128-bit hash values (section 3.4's 92-byte beacon
arithmetic). We instantiate the one-way function as SHA-256 truncated to
128 bits and the MAC as HMAC-SHA-256 truncated likewise. Truncation keeps
the simulated frame sizes exactly as the paper accounts them while
retaining a real, non-invertible primitive - the point of the reproduction
is that every accept/reject decision flows through genuine cryptography.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac

#: Bytes per hash value / MAC tag / chain element (128 bits, per the paper).
HASH_BYTES: int = 16


def hash128(data: bytes) -> bytes:
    """One-way function ``h``: SHA-256 truncated to 128 bits."""
    return hashlib.sha256(data).digest()[:HASH_BYTES]


def hash128_iter(data: bytes, times: int) -> bytes:
    """Apply :func:`hash128` ``times`` times (``times = 0`` returns input)."""
    if times < 0:
        raise ValueError(f"times must be >= 0, got {times}")
    digest = hashlib.sha256
    value = data
    for _ in range(times):
        value = digest(value).digest()[:HASH_BYTES]
    return value


def hmac128(key: bytes, data: bytes) -> bytes:
    """HMAC-SHA-256 truncated to 128 bits."""
    return _hmac.new(key, data, hashlib.sha256).digest()[:HASH_BYTES]


def constant_time_eq(a: bytes, b: bytes) -> bool:
    """Timing-safe equality for tags and chain elements."""
    return _hmac.compare_digest(a, b)
