"""Time units.

All simulation times are floats expressed in **microseconds** of true
(simulated-wall-clock) time. The constants below make literals such as
``0.1 * S`` self-describing; conversion helpers are provided for display.

With a 1000 s horizon the largest time value is 1e9 us. IEEE-754 float64
resolves ~1e-7 us at that magnitude, far below the 1 us quantisation the
IEEE 802.11 TSF timer itself applies, so floats are a safe representation
(see DESIGN.md section 3).
"""

from __future__ import annotations

#: One microsecond (the base unit).
US: float = 1.0
#: One millisecond in microseconds.
MS: float = 1_000.0
#: One second in microseconds.
S: float = 1_000_000.0


def us_to_s(t_us: float) -> float:
    """Convert microseconds to seconds."""
    return t_us / S


def s_to_us(t_s: float) -> float:
    """Convert seconds to microseconds."""
    return t_s * S
