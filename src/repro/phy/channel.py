"""Single-hop broadcast channel with per-receiver loss and jamming.

Collisions are resolved *before* delivery by the MAC contention cascade
(:mod:`repro.mac.contention`); the channel's job is the per-receiver fate
of an un-collided transmission: a packet-error draw per receiver or per
transmission (including the Gilbert-Elliott burst-loss chain), suppression
during jamming windows, and bookkeeping for the traffic-overhead model.

Fault injection (:mod:`repro.faults`) can additionally force a temporary
per-transmission loss probability (:meth:`BroadcastChannel.set_per_override`)
to model loss bursts independent of the configured loss model.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.phy.params import PhyParams


@dataclass
class ChannelStats:
    """Running counters over the life of a channel."""

    transmissions: int = 0
    collisions: int = 0
    deliveries: int = 0
    per_drops: int = 0
    jammed_drops: int = 0
    bytes_on_air: int = 0

    def delivery_ratio(self) -> float:
        """Delivered / attempted receiver-deliveries (1.0 when nothing sent)."""
        attempted = self.deliveries + self.per_drops + self.jammed_drops
        return self.deliveries / attempted if attempted else 1.0


class BroadcastChannel:
    """Fully connected wireless broadcast domain (an IBSS).

    Parameters
    ----------
    phy:
        Timing/loss parameters.
    rng:
        Stream for the per-receiver packet-error draws (and the
        Gilbert-Elliott state transitions when that loss model is on).
    """

    def __init__(self, phy: PhyParams, rng: np.random.Generator) -> None:
        self.phy = phy
        self._rng = rng
        self.stats = ChannelStats()
        # Jam windows sorted by start; _jam_max_end[i] is the prefix
        # maximum of end times over windows[0..i], so a membership query
        # is one bisect instead of a scan over all windows (chaos plans
        # add many windows per run).
        self._jam_windows: List[Tuple[float, float]] = []
        self._jam_starts: List[float] = []
        self._jam_max_end: List[float] = []
        self._per_override: Optional[float] = None
        self._ge_bad = False

    def add_jam_window(self, start_us: float, end_us: float) -> None:
        """Suppress all receptions whose transmission starts in
        ``[start_us, end_us)`` (true time). Used by pulse-delay attacks
        and injected jam faults."""
        if end_us <= start_us:
            raise ValueError("jam window must have end > start")
        window = (float(start_us), float(end_us))
        idx = bisect.bisect_right(self._jam_starts, window[0])
        self._jam_windows.insert(idx, window)
        self._jam_starts.insert(idx, window[0])
        # Rebuild the prefix maximum from the insertion point on.
        del self._jam_max_end[idx:]
        running = self._jam_max_end[-1] if self._jam_max_end else -np.inf
        for _, end in self._jam_windows[idx:]:
            running = max(running, end)
            self._jam_max_end.append(running)

    def is_jammed(self, true_time: float) -> bool:
        """Whether a transmission starting at ``true_time`` is jammed."""
        idx = bisect.bisect_right(self._jam_starts, true_time) - 1
        return idx >= 0 and true_time < self._jam_max_end[idx]

    def set_per_override(self, per: Optional[float]) -> None:
        """Force a per-transmission loss probability (None restores the
        configured loss model). Fault injection uses this for loss bursts."""
        if per is not None and not 0.0 <= per <= 1.0:
            raise ValueError("per override must be in [0, 1] or None")
        self._per_override = per

    def record_collision(self, parties: int) -> None:
        """Account a collision of ``parties`` simultaneous transmitters."""
        self.stats.collisions += 1
        self.stats.transmissions += parties

    def _gilbert_elliott_per(self) -> float:
        """Advance the two-state loss chain once and return the loss
        probability for this transmission."""
        phy = self.phy
        if self._ge_bad:
            if self._rng.random() < phy.ge_p_bad_to_good:
                self._ge_bad = False
        else:
            if self._rng.random() < phy.ge_p_good_to_bad:
                self._ge_bad = True
        return phy.ge_per_bad if self._ge_bad else phy.packet_error_rate

    def broadcast(
        self,
        sender: int,
        receivers: Sequence[int],
        true_time: float,
        size_bytes: int,
    ) -> List[int]:
        """Deliver one un-collided transmission; return receivers that decode it.

        With ``loss_model="per_receiver"`` each receiver independently
        loses the frame with probability ``phy.packet_error_rate``; with
        ``"per_transmission"`` one coin decides for everyone; with
        ``"gilbert_elliott"`` the per-transmission coin's bias follows the
        two-state burst chain. If ``true_time`` falls in a jam window,
        nobody receives.
        """
        self.stats.transmissions += 1
        self.stats.bytes_on_air += size_bytes
        receivers = [r for r in receivers if r != sender]
        if not receivers:
            return []
        if self.is_jammed(true_time):
            self.stats.jammed_drops += len(receivers)
            return []
        if self._per_override is not None:
            per = self._per_override
            whole_frame = True
        elif self.phy.loss_model == "gilbert_elliott":
            per = self._gilbert_elliott_per()
            whole_frame = True
        else:
            per = self.phy.packet_error_rate
            whole_frame = self.phy.loss_model == "per_transmission"
        if per <= 0.0:
            self.stats.deliveries += len(receivers)
            return list(receivers)
        if whole_frame:
            if self._rng.random() < per:
                self.stats.per_drops += len(receivers)
                return []
            self.stats.deliveries += len(receivers)
            return list(receivers)
        lost = self._rng.random(len(receivers)) < per
        delivered = [r for r, drop in zip(receivers, lost) if not drop]
        self.stats.per_drops += len(receivers) - len(delivered)
        self.stats.deliveries += len(delivered)
        return delivered

    def sample_timestamp_error(self) -> float:
        """Receive-side timestamping error for one reception.

        Uniform in ``+- timestamp_jitter_us``; this is the source of the
        paper's ``epsilon`` bound on ``|ts_ref - t_ref|``.
        """
        j = self.phy.timestamp_jitter_us
        if j == 0.0:
            return 0.0
        return float(self._rng.uniform(-j, j))

    def sample_timestamp_errors(self, n: int) -> np.ndarray:
        """Vectorised version of :meth:`sample_timestamp_error`."""
        j = self.phy.timestamp_jitter_us
        if j == 0.0:
            return np.zeros(n)
        return self._rng.uniform(-j, j, size=n)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BroadcastChannel(stats={self.stats})"


def merge_stats(stats: Iterable[ChannelStats]) -> ChannelStats:
    """Aggregate several channels' counters (multi-replica experiments)."""
    total = ChannelStats()
    for s in stats:
        total.transmissions += s.transmissions
        total.collisions += s.collisions
        total.deliveries += s.deliveries
        total.per_drops += s.per_drops
        total.jammed_drops += s.jammed_drops
        total.bytes_on_air += s.bytes_on_air
    return total
