"""SSTSP configuration.

Defaults reproduce the paper's section 5 simulation setup; every knob the
paper discusses (``m``, ``l``, guard times, the hash-chain start ``T_0``)
is explicit here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.phy.params import SSTSP_BEACON_AIRTIME_SLOTS
from repro.sim.units import S


@dataclass(frozen=True)
class SstspConfig:
    """All SSTSP protocol parameters.

    Attributes
    ----------
    beacon_period_us:
        ``BP``; the paper uses 0.1 s.
    w:
        Beacon generation window parameter (``w + 1`` slots); used only
        during reference elections.
    slot_time_us:
        ``aSlotTime``.
    l:
        A node contends to become reference after ``l`` consecutive BPs
        without hearing a beacon (paper section 3.3; section 5 uses 1).
        Larger ``l`` tolerates beacon loss; smaller reacts faster.
    m:
        Aggressiveness of the clock slewing: the adjusted clock aims to
        coincide with the reference at the expected beacon ``j + m``
        (Table 1 sweeps 1..5; 2-3 is the paper's best trade-off, the
        analysis shows ``m = l + 3`` is optimal across reference changes).
    t0_us:
        ``T_0``: start time of the hash-chain interval schedule, published
        network-wide.
    guard_fine_us:
        Guard time ``delta`` of the fine-grained phase: beacons whose
        timestamp differs more than this from the local adjusted clock are
        rejected (replay / delay / forged-internal defence). Sizing rule
        (the paper defers to [7]/[8]): it must exceed the worst *legitimate*
        clock difference a node can see - the maximum initial pairwise
        offset at formation (2 x 112 us in the Table 1 scenario) plus the
        drift accumulated before the first fine adjustment - or unlucky
        nodes go permanently deaf during bootstrap. 500 us is still only
        0.5% of a beacon period.
    guard_coarse_us:
        The looser threshold of the coarse phase's offset filter.
    coarse_min_samples:
        Offset samples a joiner collects before averaging.
    coarse_max_periods:
        BPs after which a joiner averages whatever it has (if at least one
        survivor) rather than scanning forever.
    coarse_use_gesd:
        Run the GESD multi-outlier test after the threshold filter in the
        coarse phase.
    rx_latency_us:
        Known constant reception latency a receiver adds to a beacon
        timestamp (beacon airtime + propagation delay ``t_p``); part of
        the ``ts_ref`` estimate.
    k_clamp:
        Maximum allowed ``|k - 1|`` of the adjusted-clock slope. A solution
        outside this range indicates corrupt samples and is skipped. Note
        the clamp must stay well above the oscillator tolerance (1e-4):
        legitimate slewing transiently needs slopes around
        ``offset / (m * BP)`` to close an offset gap, so a tight clamp
        would freeze re-convergence after a reference change.
    max_sample_age_periods:
        An authenticated sample pair older than this (relative to the
        current interval) is considered stale and not used for adjustment.
    max_pair_gap_periods:
        Maximum interval gap between the two samples of a rate-estimation
        pair.
    reference_pace_clamp:
        When a node assumes the reference role its adjusted clock stops
        chasing anyone - it *is* the timebase - so a transient slewing
        slope must not be frozen in: the slope is clamped to
        ``1 +- reference_pace_clamp`` (continuously) on its first beacon.
        A converged clock's slope is within ~2e-4 of 1 (own oscillator
        tolerance + learned network pace), so 3e-4 never disturbs a
        healthy node but stops a node elected mid-slew from dragging the
        whole network at its transient rate.
    recovery_rejection_threshold:
        Optional extension implementing the paper's proposed future-work
        recovery ("restarting the synchronization procedure", section
        3.4): after this many *consecutive* guard-rejected beacons a node
        concludes its clock has diverged beyond repair (e.g. after a
        jamming-grade channel-suppression attack) and re-enters the coarse
        phase. ``None`` (the default) reproduces the paper faithfully:
        erroneous beacons are simply discarded.
    coarse_min_survivors:
        Recovery hardening (opt-in): minimum offsets that must survive
        the coarse phase's outlier filter for the batch to be usable;
        fewer survivors drop the batch and re-scan instead of averaging a
        possibly-biased remnant. The default 1 is the paper's behaviour
        (any survivor is averaged).
    coarse_silence_watchdog_periods:
        Recovery hardening (opt-in): a coarse-phase node that has scanned
        this many *consecutive* beacon-less periods concludes the network
        is silent (every reference candidate crashed or is unreachable)
        and enters the election instead of scanning forever. Without it a
        network whose members are all in the coarse phase is deadlocked:
        coarse nodes never transmit, so nobody ever hears anything.
        ``None`` (the default) reproduces the paper, which never reaches
        total silence.
    free_run_clamp_after:
        Recovery hardening (opt-in): after this many consecutive silent
        periods a node clamps its adjusted-clock slope to a
        hardware-plausible free-run pace (``1 +- reference_pace_clamp``,
        continuously - no leap), so an interrupted mid-slew transient is
        not extrapolated for the whole outage. ``None`` (default) keeps
        the paper's behaviour: the last learned segment free-runs as-is.
    election_backoff_cap:
        Recovery hardening: on consecutive *failed* election rounds (the
        node contended, nobody won, nothing was heard) the contention
        window doubles up to ``w * election_backoff_cap`` slots, reducing
        repeat-collision livelock when many stations contend after a mass
        failure; the cap bounds the added election latency. The default 1
        keeps the paper's fixed ``w``-slot window.
    """

    beacon_period_us: float = 0.1 * S
    w: int = 30
    slot_time_us: float = 9.0
    l: int = 1
    m: int = 2
    t0_us: float = 0.0
    guard_fine_us: float = 500.0
    guard_coarse_us: float = 2_500.0
    coarse_min_samples: int = 3
    coarse_max_periods: int = 10
    coarse_use_gesd: bool = False
    rx_latency_us: float = SSTSP_BEACON_AIRTIME_SLOTS * 9.0 + 1.0
    k_clamp: float = 5e-3
    max_sample_age_periods: int = 3
    max_pair_gap_periods: int = 5
    reference_pace_clamp: float = 3e-4
    recovery_rejection_threshold: "int | None" = None
    coarse_min_survivors: int = 1
    coarse_silence_watchdog_periods: "int | None" = None
    free_run_clamp_after: "int | None" = None
    election_backoff_cap: int = 1

    def __post_init__(self) -> None:
        if self.beacon_period_us <= 0:
            raise ValueError("beacon_period_us must be > 0")
        if self.w < 0:
            raise ValueError("w must be >= 0")
        if self.slot_time_us <= 0:
            raise ValueError("slot_time_us must be > 0")
        if self.l < 1:
            raise ValueError("l must be >= 1")
        if self.m < 1:
            raise ValueError("m must be >= 1")
        if self.guard_fine_us <= 0 or self.guard_coarse_us <= 0:
            raise ValueError("guard times must be > 0")
        if self.guard_fine_us > self.guard_coarse_us:
            raise ValueError(
                "the fine-phase guard must be tighter than the coarse one "
                "(paper section 3.3)"
            )
        if self.coarse_min_samples < 1:
            raise ValueError("coarse_min_samples must be >= 1")
        if not 0 < self.k_clamp < 1:
            raise ValueError("k_clamp must be in (0, 1)")
        if (
            self.recovery_rejection_threshold is not None
            and self.recovery_rejection_threshold < 1
        ):
            raise ValueError("recovery_rejection_threshold must be >= 1 or None")
        if not 0 < self.reference_pace_clamp <= self.k_clamp:
            raise ValueError(
                "reference_pace_clamp must be in (0, k_clamp]"
            )
        if self.coarse_min_survivors < 1:
            raise ValueError("coarse_min_survivors must be >= 1")
        if (
            self.coarse_silence_watchdog_periods is not None
            and self.coarse_silence_watchdog_periods < 1
        ):
            raise ValueError(
                "coarse_silence_watchdog_periods must be >= 1 or None"
            )
        if self.free_run_clamp_after is not None and self.free_run_clamp_after < 1:
            raise ValueError("free_run_clamp_after must be >= 1 or None")
        if self.election_backoff_cap < 1:
            raise ValueError("election_backoff_cap must be >= 1")

    @classmethod
    def hardened(cls, **overrides) -> "SstspConfig":
        """A configuration with every recovery-hardening knob enabled.

        The paper-faithful defaults discard erroneous beacons and rely on
        the operator to notice a wedged node; this profile turns on the
        liveness watchdogs and bounded backoff the chaos soak harness
        exercises: guard-rejection recovery, coarse-silence election,
        free-run pace clamping, coarse-survivor retry and capped election
        backoff. Keyword ``overrides`` replace any default or hardened
        value.
        """
        values = dict(
            recovery_rejection_threshold=8,
            coarse_silence_watchdog_periods=25,
            free_run_clamp_after=3,
            coarse_min_survivors=2,
            election_backoff_cap=4,
        )
        values.update(overrides)
        return cls(**values)

    @property
    def optimal_m(self) -> int:
        """``m = l + 3``: the value Lemma 2 identifies as optimal for
        reference changes."""
        return self.l + 3
