"""Lemmas 1 and 2: measured convergence versus the analytic bounds.

Lemma 1 predicts per-BP geometric contraction of the synchronization
error with ratio ``(m-1)*BP / (m*BP - d)`` (m > 1); Lemma 2 predicts the
error amplification across a reference change, ``D+/D- = (m-l-3)/m``,
optimal (zero) at ``m = l + 3``. This experiment measures both on live
networks and prints them next to the formulas' values.
"""

from __future__ import annotations

import argparse
from typing import Dict

import numpy as np

from repro.core.adjustment import (
    optimal_m,
    predicted_error_ratio,
    reference_change_ratio,
)
from repro.core.config import SstspConfig
from repro.experiments.report import format_table
from repro.experiments.scenarios import TABLE1_INITIAL_OFFSET_US, quick_spec
from repro.fastlane import run_sstsp_vectorized
from repro.network.churn import REFERENCE_MARKER, ChurnEvent
from repro.network.ibss import build_network
from repro.sim.units import S


def measure_contraction(m: int, n: int = 30, seed: int = 3) -> float:
    """Fit the observed per-BP error contraction during initial convergence.

    Measured in the regime Lemma 1 models: a clean reference (the
    estimate-noise floor turned off), so the geometric decay is visible
    instead of being swamped by the jitter floor after a few BPs.
    """
    from dataclasses import replace

    spec = quick_spec(
        n, seed=seed, duration_s=20.0, initial_offset_us=TABLE1_INITIAL_OFFSET_US
    )
    spec = replace(
        spec,
        phy=replace(spec.phy, timestamp_jitter_us=0.0, packet_error_rate=0.0),
    )
    config = SstspConfig(m=m)
    trace = run_sstsp_vectorized(spec, config=config).trace
    # initial decay: fit log(error) over the convergent stretch, stopping
    # at the (numerical) floor
    series = trace.max_diff_us[3:60]
    series = series[series > 0.05]
    if series.size < 4:
        return 0.0
    logs = np.log(series)
    slope = np.polyfit(np.arange(logs.size), logs, 1)[0]
    return float(np.exp(slope))


def measure_reference_change(m: int, l: int = 1, n: int = 15, seed: int = 4) -> Dict:
    """Max error around a forced reference change, reference lane."""
    spec = quick_spec(n, seed=seed, duration_s=25.0)
    config = SstspConfig(m=m, l=l)
    runner = build_network("sstsp", spec, sstsp_config=config)
    runner.churn.add(ChurnEvent(120, "leave", (REFERENCE_MARKER,)))
    trace = runner.run().trace
    before = float(trace.window(10.0 * S, 12.0 * S).max_diff_us.max())
    transition = float(trace.window(12.0 * S, 14.0 * S).max_diff_us.max())
    settled = float(trace.window(20.0 * S, 25.0 * S).max_diff_us.max())
    return {"before": before, "transition": transition, "settled": settled}


def main(argv=None) -> None:
    """CLI entry point; prints the reproduced rows/series."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="fewer m values")
    args = parser.parse_args(argv)
    m_values = (2, 4) if args.quick else (1, 2, 3, 4, 5)

    print("=== Lemma 1: per-BP error contraction ===")
    rows = []
    for m in m_values:
        predicted = predicted_error_ratio(m, 100_000.0, d_us=100.0)
        measured = measure_contraction(m)
        rows.append((m, f"{predicted:.3f}", f"{measured:.3f}"))
    print(format_table(["m", "predicted ratio (<1)", "measured ratio"], rows))
    print()

    print("=== Lemma 2: error across a reference change ===")
    rows = []
    for m in m_values:
        ratio = reference_change_ratio(m, l=1)
        measured = measure_reference_change(m)
        rows.append(
            (
                m,
                f"{ratio:+.2f}",
                f"{measured['before']:.1f}",
                f"{measured['transition']:.1f}",
                f"{measured['settled']:.1f}",
            )
        )
    print(
        format_table(
            ["m", "(m-l-3)/m", "before (us)", "transition (us)", "settled (us)"],
            rows,
            title=f"l = 1; optimal m per Lemma 2: {optimal_m(1)}",
        )
    )


if __name__ == "__main__":
    main()
