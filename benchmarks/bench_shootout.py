"""Extension bench: the multi-hop protocol shootout.

Runs the shootout grid (every registered MultiHopProtocol x a reduced
scenario pair) through the sweep orchestrator — the same lane as
``python -m repro shootout`` — and checks the head-to-head contract:
every scheme synchronizes the chain, the beaconless duty cycle is the
cheapest on air, cooperative flooding is the most expensive, and the
paper's SSTSP carries the largest (authenticated) frames.
"""

from __future__ import annotations

from dataclasses import replace

from conftest import measure_work, paper_rows

from repro.experiments import shootout

#: Reduced-but-shape-preserving grid: the worst-case chain and a lattice.
SCENARIOS = (
    {"name": "chain8", "topology": "chain", "n": 8,
     "duration_s": 15.0, "seed": 3},
    {"name": "grid4x4", "topology": "grid", "rows": 4, "cols": 4,
     "duration_s": 15.0, "seed": 3},
)


def _run_suite(sweep):
    return shootout.run(scenarios=SCENARIOS, sweep=sweep)


def test_shootout_suite(benchmark, sweep_options):
    rows = benchmark.pedantic(
        _run_suite, args=(sweep_options,), rounds=1, iterations=1
    )
    # Counters live in the process that runs the kernels, so the work
    # measurement pins workers=1; the tally is identical at any worker
    # count anyway (the any-worker-count determinism contract).
    measure_work(benchmark, _run_suite, replace(sweep_options, workers=1))

    by_cell = {(r["protocol"], r["scenario"]): r for r in rows}
    assert len(by_cell) == 6  # 3 protocols x 2 scenarios

    # every scheme synchronizes the whole chain to its deepest hop
    for protocol in ("sstsp", "beaconless", "coop"):
        cell = by_cell[(protocol, "chain8")]
        assert cell["max_hop"] == 7
        assert cell["final_present"] == 8
        assert cell["steady_state_error_us"] < 1_000.0  # inside 1% of a BP

    # overhead ordering: duty-cycled beaconless cheapest on air,
    # every-period cooperative flooding the most beacons
    for scenario in ("chain8", "grid4x4"):
        sstsp = by_cell[("sstsp", scenario)]
        beaconless = by_cell[("beaconless", scenario)]
        coop = by_cell[("coop", scenario)]
        assert beaconless["bytes_on_air"] < sstsp["bytes_on_air"]
        assert coop["beacons_sent"] > sstsp["beacons_sent"]

    # frame economics come from the protocols, not a shared constant
    assert by_cell[("sstsp", "chain8")]["beacon_bytes"] == 92
    assert by_cell[("beaconless", "chain8")]["beacon_bytes"] < 92
    assert by_cell[("coop", "chain8")]["beacon_bytes"] < 92

    paper_rows(
        benchmark,
        "shootout: steady error / bytes on air (chain8)",
        [
            f"{p}: {by_cell[(p, 'chain8')]['steady_state_error_us']:.1f}us, "
            f"{by_cell[(p, 'chain8')]['bytes_on_air']} B"
            for p in ("sstsp", "beaconless", "coop")
        ],
    )
