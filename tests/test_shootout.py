"""The standing multi-hop shootout: grid construction, the convergence
metric, CSV rendering, the analyze roll-up, and parallel determinism."""

import numpy as np
import pytest

from repro.analysis.cli import (
    shootout_summaries,
    shootout_summary_csv_text,
    shootout_summary_md_text,
)
from repro.experiments.shootout import (
    CONVERGENCE_THRESHOLD_US,
    convergence_time_s,
    rows_to_csv,
    run,
    shootout_specs,
)
from repro.sweep import SweepOptions

MINI_SCENARIOS = (
    {"name": "mini", "topology": "chain", "n": 5, "duration_s": 4.0, "seed": 3},
)


class TestConvergenceMetric:
    def test_empty_trace_never_converges(self):
        assert convergence_time_s(np.array([]), np.array([])) is None

    def test_unsettled_tail_never_converges(self):
        times = np.array([0.0, 1e6, 2e6])
        diffs = np.array([10.0, 10.0, 900.0])
        assert convergence_time_s(times, diffs) is None

    def test_converged_from_start(self):
        times = np.array([0.0, 1e6])
        diffs = np.array([1.0, 2.0])
        assert convergence_time_s(times, diffs) == 0.0

    def test_earliest_stable_sample(self):
        times = np.array([0.0, 1e6, 2e6, 3e6])
        diffs = np.array([500.0, 40.0, 60.0, 3.0])
        # sample 2 still violates the bound, so the stable tail starts at 3
        assert convergence_time_s(times, diffs) == 3.0

    def test_nan_breaks_the_tail(self):
        times = np.array([0.0, 1e6, 2e6])
        diffs = np.array([1.0, np.nan, 2.0])
        assert convergence_time_s(times, diffs) == 2.0

    def test_threshold_is_the_documented_constant(self):
        times = np.array([0.0])
        assert convergence_time_s(
            times, np.array([CONVERGENCE_THRESHOLD_US])
        ) == 0.0
        assert convergence_time_s(
            times, np.array([CONVERGENCE_THRESHOLD_US + 1.0])
        ) is None


class TestSpecGrid:
    def test_grid_is_protocol_major(self):
        specs = shootout_specs(MINI_SCENARIOS, replicas=2)
        assert len(specs) == 3 * 1 * 2  # protocols x scenarios x replicas
        params = [s.params_dict() for s in specs]
        assert [p["protocol"] for p in params] == [
            "sstsp", "sstsp", "beaconless", "beaconless", "coop", "coop",
        ]
        assert [p["replica"] for p in params] == [0, 1, 0, 1, 0, 1]

    def test_replicas_get_distinct_seeds(self):
        specs = shootout_specs(MINI_SCENARIOS, replicas=3)
        seeds = {s.params_dict()["seed"] for s in specs[:3]}
        assert len(seeds) == 3

    def test_quick_trims_duration(self):
        scenario = ({"name": "x", "topology": "chain", "n": 4,
                     "duration_s": 30.0, "seed": 1},)
        spec = shootout_specs(scenario, quick=True)[0]
        assert spec.params_dict()["duration_s"] == 8.0

    def test_protocol_subset(self):
        specs = shootout_specs(MINI_SCENARIOS, protocols=["coop"])
        assert [s.params_dict()["protocol"] for s in specs] == ["coop"]

    def test_replicas_validated(self):
        with pytest.raises(ValueError, match="replicas"):
            shootout_specs(MINI_SCENARIOS, replicas=0)


class TestCsvRendering:
    def test_none_renders_empty_and_floats_repr(self):
        row = {
            "protocol": "sstsp", "scenario": "mini", "replica": 0,
            "seed": 3, "nodes": 5, "max_hop": 4, "final_present": 5,
            "root_changes": 0, "beacons_sent": 10, "collisions": 1,
            "beacon_bytes": 92, "bytes_on_air": 920,
            "airtime_on_air_us": 630.0, "convergence_time_s": None,
            "steady_state_error_us": 0.1, "peak_error_us": 2.5,
            "hop1_error_us": None, "deepest_hop_error_us": 1.25,
        }
        text = rows_to_csv([row])
        header, line = text.strip().split("\n")
        assert header.startswith("protocol,scenario,replica,seed,nodes")
        assert ",630.0,," in line  # airtime then the empty convergence cell
        assert line.endswith(",0.1,2.5,,1.25")

    def test_bytes_stable(self):
        row = {key: 1.5 if "us" in key or key.endswith("_s") else "x"
               for key in (
                   "protocol", "scenario", "replica", "seed", "nodes",
                   "max_hop", "final_present", "root_changes",
                   "beacons_sent", "collisions", "beacon_bytes",
                   "bytes_on_air", "airtime_on_air_us",
                   "convergence_time_s", "steady_state_error_us",
                   "peak_error_us", "hop1_error_us",
                   "deepest_hop_error_us",
               )}
        assert rows_to_csv([row]) == rows_to_csv([dict(row)])


def _payload(protocol, scenario, steady, convergence, beacons=10, nbytes=100):
    return {
        "protocol": protocol, "scenario": scenario,
        "steady_state_error_us": steady, "convergence_time_s": convergence,
        "beacons_sent": beacons, "bytes_on_air": nbytes,
    }


class TestAnalyzeRollup:
    def test_groups_in_first_seen_order_with_cis(self):
        payloads = [
            _payload("sstsp", "mini", 10.0, 1.0),
            _payload("sstsp", "mini", 12.0, 2.0),
            _payload("coop", "mini", 5.0, None),
        ]
        rows = shootout_summaries(payloads)
        assert [(r[0], r[1]) for r in rows] == [("sstsp", "mini"), ("coop", "mini")]
        sstsp = rows[0]
        assert sstsp[2] == 2 and sstsp[3] == 0 and sstsp[4] == 0
        assert sstsp[5].mean == 11.0  # steady
        assert sstsp[6].n == 2  # convergence
        coop = rows[1]
        assert coop[4] == 1  # never converged
        assert coop[6] is None  # no convergence stats at all

    def test_quarantined_cells_attribute_via_keys(self):
        keys = [("sstsp", "mini"), ("sstsp", "mini")]
        payloads = [_payload("sstsp", "mini", 10.0, 1.0), None]
        rows = shootout_summaries(payloads, keys)
        assert rows[0][2] == 2  # cells
        assert rows[0][3] == 1  # quarantined

    def test_summary_texts_are_stable_bytes(self):
        payloads = [
            _payload("sstsp", "mini", 10.0, 1.0),
            _payload("sstsp", "mini", 12.0, 2.0),
        ]
        rows = shootout_summaries(payloads)
        csv_a = shootout_summary_csv_text(rows)
        csv_b = shootout_summary_csv_text(shootout_summaries(payloads))
        assert csv_a == csv_b
        assert csv_a.startswith("protocol,scenario,cells,quarantined,unconverged,")
        md = shootout_summary_md_text(rows, replicas=2, failures=[])
        assert "| sstsp | mini |" in md
        assert "No quarantined jobs." in md


class TestParallelDeterminism:
    def test_workers_do_not_change_the_rows(self, tmp_path):
        serial = run(
            MINI_SCENARIOS, seed=1,
            sweep=SweepOptions(workers=1, cache_dir=str(tmp_path / "c1")),
        )
        parallel = run(
            MINI_SCENARIOS, seed=1,
            sweep=SweepOptions(workers=2, cache_dir=str(tmp_path / "c2")),
        )
        assert rows_to_csv(serial) == rows_to_csv(parallel)
        assert [r["protocol"] for r in serial] == ["sstsp", "beaconless", "coop"]
