"""Unit tests for the related-work baselines: ATSP, TATSP, SATSF, Rentel."""

import numpy as np
import pytest

from repro.clocks.oscillator import HardwareClock, TsfTimer
from repro.protocols.atsp import AtspConfig, AtspProtocol
from repro.protocols.base import ClockKind, RxContext
from repro.protocols.rentel import RentelConfig, RentelProtocol
from repro.protocols.satsf import SatsfConfig, SatsfProtocol
from repro.protocols.tatsp import TatspConfig, TatspProtocol


def beaten_rx(proto, hw=1_000.0, ahead=500.0):
    """An RxContext carrying a timestamp ahead of the node's clock."""
    est = proto.synchronized_time(hw) + ahead
    return RxContext(true_time=hw, hw_time=hw, est_timestamp=est, period=1)


def make(cls, config, seed=0):
    timer = TsfTimer(HardwareClock())
    return cls(1, timer, config, np.random.default_rng(seed))


class TestAtsp:
    def test_starts_eager(self):
        proto = make(AtspProtocol, AtspConfig())
        assert proto.interval == 1

    def test_beaten_node_backs_off(self):
        config = AtspConfig(i_max=30)
        proto = make(AtspProtocol, config)
        proto.on_beacon(None, beaten_rx(proto))
        proto.end_period(1, True, False, False)
        assert proto.interval == 30

    def test_unbeaten_node_promotes(self):
        config = AtspConfig(i_max=10, promote_after=5)
        proto = make(AtspProtocol, config)
        proto.on_beacon(None, beaten_rx(proto))
        proto.end_period(1, True, False, False)
        assert proto.interval == 10
        for m in range(2, 8):
            proto.end_period(m, False, False, False)
        assert proto.interval == 1

    def test_contention_frequency_matches_interval(self):
        config = AtspConfig(i_max=10, promote_after=1_000)
        proto = make(AtspProtocol, config)
        proto.on_beacon(None, beaten_rx(proto))
        proto.end_period(1, True, False, False)
        attempts = sum(
            proto.begin_period(m) is not None for m in range(2, 102)
        )
        assert attempts <= 12  # ~1 in 10 periods

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AtspConfig(i_max=0)
        with pytest.raises(ValueError):
            AtspConfig(promote_after=0)


class TestTatsp:
    def test_starts_tier1(self):
        proto = make(TatspProtocol, TatspConfig())
        assert proto.tier == 1
        assert proto.current_interval() == 1

    def test_occasionally_beaten_moves_to_tier2(self):
        config = TatspConfig(window=10, tier3_beats=5)
        proto = make(TatspProtocol, config)
        proto.on_beacon(None, beaten_rx(proto))
        proto.end_period(1, True, False, False)
        assert proto.tier == 2
        assert proto.current_interval() == config.tier2_interval

    def test_frequently_beaten_moves_to_tier3(self):
        config = TatspConfig(window=10, tier3_beats=3)
        proto = make(TatspProtocol, config)
        for m in range(1, 7):
            proto.on_beacon(None, beaten_rx(proto))
            proto.end_period(m, True, False, False)
        assert proto.tier == 3
        assert proto.current_interval() == config.tier3_interval

    def test_unbeaten_full_window_returns_to_tier1(self):
        config = TatspConfig(window=5, tier3_beats=2)
        proto = make(TatspProtocol, config)
        proto.on_beacon(None, beaten_rx(proto))
        proto.end_period(1, True, False, False)
        assert proto.tier == 2
        for m in range(2, 8):
            proto.end_period(m, False, False, False)
        assert proto.tier == 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TatspConfig(tier2_interval=20, tier3_interval=10)
        with pytest.raises(ValueError):
            TatspConfig(window=0)


class TestSatsf:
    def test_beaten_doubles_fft(self):
        proto = make(SatsfProtocol, SatsfConfig(fft_max=64))
        assert proto.fft == 1
        proto.on_beacon(None, beaten_rx(proto))
        proto.end_period(1, True, False, False)
        assert proto.fft == 2
        proto.on_beacon(None, beaten_rx(proto))
        proto.end_period(2, True, False, False)
        assert proto.fft == 4

    def test_fft_capped(self):
        proto = make(SatsfProtocol, SatsfConfig(fft_max=8))
        for m in range(1, 12):
            proto.on_beacon(None, beaten_rx(proto))
            proto.end_period(m, True, False, False)
        assert proto.fft == 8

    def test_unbeaten_halves_fft(self):
        proto = make(SatsfProtocol, SatsfConfig(fft_max=64))
        for m in range(1, 4):
            proto.on_beacon(None, beaten_rx(proto))
            proto.end_period(m, True, False, False)
        fft_before = proto.fft
        for m in range(4, 4 + fft_before):
            proto.end_period(m, False, False, False)
        assert proto.fft == fft_before // 2

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SatsfConfig(fft_max=0)


class TestRentel:
    def test_controlled_clock_slews_not_steps(self):
        proto = make(RentelProtocol, RentelConfig())
        hw = 1_000_000.0
        before = proto.controlled_clock(hw)
        proto.on_beacon(None, RxContext(hw, hw, before + 200.0, 1))
        # immediately after the beacon the clock has NOT jumped
        just_after = proto.controlled_clock(hw + 1.0)
        assert abs(just_after - (before + 1.0)) < 1.0
        # ...but one BP later the offset has been absorbed
        later = proto.controlled_clock(hw + proto.config.beacon_period_us)
        expected = before + proto.config.beacon_period_us + 200.0
        assert later == pytest.approx(expected, abs=25.0)

    def test_controlled_clock_monotone(self):
        proto = make(RentelProtocol, RentelConfig())
        rng = np.random.default_rng(2)
        previous = -np.inf
        hw = 0.0
        for _ in range(50):
            hw += 10_000.0
            if rng.random() < 0.3:
                est = proto.controlled_clock(hw) + rng.uniform(-300, 300)
                proto.on_beacon(None, RxContext(hw, hw, est, 1))
            value = proto.controlled_clock(hw)
            assert value >= previous
            previous = value

    def test_contends_only_after_silence(self):
        proto = make(RentelProtocol, RentelConfig(t_delay=3, p_initial=1.0))
        assert proto.begin_period(1) is None
        for m in range(1, 4):
            proto.end_period(m, False, False, False)
        intent = proto.begin_period(4)
        assert intent is not None
        assert intent.clock is ClockKind.ADJUSTED

    def test_hearing_beacons_suppresses_contention(self):
        proto = make(RentelProtocol, RentelConfig(t_delay=2, p_initial=1.0))
        for m in range(1, 10):
            hw = m * 100_000.0
            proto.on_beacon(None, RxContext(hw, hw, proto.controlled_clock(hw), m))
            proto.end_period(m, True, False, False)
            assert proto.begin_period(m + 1) is None

    def test_p_decays_on_beacons_and_recovers_in_silence(self):
        proto = make(RentelProtocol, RentelConfig(p_initial=0.8, p_min=0.1))
        hw = 100_000.0
        proto.on_beacon(None, RxContext(hw, hw, proto.controlled_clock(hw), 1))
        assert proto.p == pytest.approx(0.4)
        for m in range(2, 12):
            proto.end_period(m, False, False, False)
        assert proto.p == pytest.approx(0.8)

    def test_rate_learning_from_pairs(self):
        proto = make(RentelProtocol, RentelConfig())
        # reference runs 100 ppm fast relative to this node's hardware clock
        for m in range(1, 8):
            hw = m * 100_000.0
            est = m * 100_000.0 * 1.0001
            proto.on_beacon(None, RxContext(hw, hw, est, m))
        assert proto.s == pytest.approx(1.0001, abs=2e-5)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RentelConfig(t_delay=0)
        with pytest.raises(ValueError):
            RentelConfig(p_initial=0.0)
        with pytest.raises(ValueError):
            RentelConfig(offset_gain=0.0)
