"""Fractal hash-chain traversal (Jakobsson-style, paper reference [6]).

A uTESLA sender discloses chain elements in order ``v_{n-1}, v_{n-2}, ...``
(decreasing distance from the seed). Storing the whole chain costs O(n)
memory; recomputing each element from the seed costs O(j) hashes. The
fractal traversal of Jakobsson [6] - which the paper cites for its
section 3.4 storage argument ("a one-way hash chain with n elements only
requires log2(n) storage and log2(n) computation to access an element") -
achieves O(log n) resident elements with O(log n) *amortised* hashes per
disclosed element.

This module implements the recursive-halving form of that trade-off: a
stack of segments ``(lo, hi, v_lo)`` covering the not-yet-emitted positions.
Emitting position ``hi - 1`` of the top segment repeatedly splits it at its
midpoint (computing ``v_mid`` from ``v_lo``) until the top segment is a
singleton. The stack never holds more than ``ceil(log2 n) + 1`` values and
the total hash work over a full traversal is ``O(n log n)`` - i.e.
``O(log n)`` amortised per element, matching the bound the paper quotes.
Both costs are exposed as counters so the overhead benchmark can measure
rather than assume them.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.crypto.hashchain import HashChain
from repro.crypto.primitives import HASH_BYTES, hash128


class FractalTraversal:
    """Emit ``(position, value)`` pairs in decreasing position order.

    Parameters
    ----------
    seed:
        Chain seed ``v_0``.
    length:
        ``n``; the traversal emits positions ``n - 1`` down to ``0``.
        The anchor ``v_n`` is available as :attr:`anchor`.
    hash_func:
        One-way function (injectable for tests).

    Examples
    --------
    >>> t = FractalTraversal(b"\\x01" * 16, 8)
    >>> [pos for pos, _ in (t.next() for _ in range(8))]
    [7, 6, 5, 4, 3, 2, 1, 0]
    """

    def __init__(
        self,
        seed: bytes,
        length: int,
        hash_func: Callable[[bytes], bytes] = hash128,
    ) -> None:
        if length < 1:
            raise ValueError(f"length must be >= 1, got {length}")
        self._h = hash_func
        base = bytes(seed) if len(seed) == HASH_BYTES else hash_func(seed)
        self._length = length
        self.hash_operations = 0
        self.max_resident = 1
        # Segments (lo, hi, v_lo): positions [lo, hi) not yet emitted,
        # ordered on the stack by increasing position range (top = highest).
        self._stack: List[Tuple[int, int, bytes]] = [(0, length, base)]
        self._anchor = self._advance(base, length)

    @property
    def anchor(self) -> bytes:
        """``v_n = h^n(seed)`` (computed once at construction)."""
        return self._anchor

    @property
    def remaining(self) -> int:
        """Number of elements not yet emitted."""
        return sum(hi - lo for lo, hi, _ in self._stack)

    def storage_elements(self) -> int:
        """Chain elements currently resident (the O(log n) bound)."""
        return len(self._stack)

    def next(self) -> Tuple[int, bytes]:
        """Emit the next ``(position, value)``; positions descend from
        ``length - 1`` to 0. Raises StopIteration when exhausted."""
        if not self._stack:
            raise StopIteration("traversal exhausted")
        # Split the top segment until it is a singleton.
        while True:
            lo, hi, v_lo = self._stack[-1]
            if hi - lo == 1:
                break
            mid = (lo + hi + 1) // 2
            v_mid = self._advance(v_lo, mid - lo)
            self._stack.append((mid, hi, v_mid))
            self._stack[-2] = (lo, mid, v_lo)
            self.max_resident = max(self.max_resident, len(self._stack))
        lo, _, value = self._stack.pop()
        return lo, value

    def __iter__(self) -> "FractalTraversal":
        return self

    def __next__(self) -> Tuple[int, bytes]:
        return self.next()

    def _advance(self, value: bytes, steps: int) -> bytes:
        for _ in range(steps):
            value = self._h(value)
        self.hash_operations += steps
        return value


class FractalHashChain(HashChain):
    """:class:`HashChain` adapter over :class:`FractalTraversal`.

    uTESLA consumes keys in exactly the traversal's emission order (the
    disclosed key of interval ``j`` is element ``n - j + 1``, so intervals
    ``1, 2, ...`` consume positions ``n, n - 1, ...``). This adapter serves
    that in-order access at O(log n) storage, while random access to an
    already-emitted or far-future element falls back to recomputation from
    the seed (counted, so benchmarks expose the penalty).
    """

    #: Emitted elements kept around to serve the uTESLA access pattern,
    #: which revisits each position once (as the next interval's disclosed
    #: key) right after first using it.
    RECENT_WINDOW: int = 4

    def __init__(self, seed: bytes, length: int) -> None:
        super().__init__(seed, length)
        self._traversal = FractalTraversal(seed, length)
        self._base = bytes(seed) if len(seed) == HASH_BYTES else hash128(seed)
        self._recent: dict = {length: self._traversal.anchor}
        self.fallback_hash_operations = 0

    def element(self, j: int) -> bytes:
        if not 0 <= j <= self._length:
            raise ValueError(f"element index must be in [0, {self._length}], got {j}")
        if j == self._length:
            return self._recent[self._length]  # anchor, kept forever
        cached = self._recent.get(j)
        if cached is not None:
            return cached
        # In-order service: walk the traversal forward (descending positions)
        # until it reaches j, retaining a small window of emissions.
        next_pos = self._next_position()
        if next_pos is not None and j <= next_pos:
            pos, value = self._traversal.next()
            self._remember(pos, value)
            while pos != j:
                pos, value = self._traversal.next()
                self._remember(pos, value)
            return value
        # Out-of-order fallback: recompute from the seed.
        value = self._base
        for _ in range(j):
            value = hash128(value)
        self.fallback_hash_operations += j
        return value

    def _remember(self, pos: int, value: bytes) -> None:
        self._recent[pos] = value
        if len(self._recent) > self.RECENT_WINDOW + 1:  # +1 for the anchor
            evict = max(p for p in self._recent if p != self._length)
            del self._recent[evict]

    def storage_elements(self) -> int:
        return self._traversal.storage_elements() + len(self._recent)

    @property
    def hash_operations(self) -> int:
        """Total one-way-function applications spent so far."""
        return self._traversal.hash_operations + self.fallback_hash_operations

    def _next_position(self) -> Optional[int]:
        stack = self._traversal._stack
        if not stack:
            return None
        return stack[-1][1] - 1
