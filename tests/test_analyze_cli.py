"""Golden-fixture and determinism tests for ``repro analyze``.

The CLI's contract is byte-stability: the same sweep analyzed at any
worker count, or resumed after an injected failure, must emit identical
bytes. These tests pin that by comparing every emitted file against
committed goldens under ``tests/data/``.

Regenerating the goldens (only after an intentional format change)::

    SSTSP_RESULTS_DIR=/tmp/regen PYTHONPATH=src python -m repro analyze \
        table1 --nodes 12 --duration 5 -m 1,2 --replicas 2 --seed 3 \
        --no-cache
    cp /tmp/regen/analysis/table1_summary.csv \
        tests/data/analyze_table1/golden_summary.csv   # etc.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis import cli
from repro.sweep.failpolicy import INJECT_ENV_VAR

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")
GOLDEN_TABLE1 = os.path.join(DATA_DIR, "analyze_table1")
GOLDEN_LOG = os.path.join(DATA_DIR, "analyze_log")

#: The grid the table1 goldens were generated from (small enough for CI,
#: large enough that both m rows have live statistics).
TABLE1_ARGS = [
    "table1", "--nodes", "12", "--duration", "5", "-m", "1,2",
    "--replicas", "2", "--seed", "3",
]

#: Matches exactly one job_key of the grid above (m=1, replica seed
#: 1003); a count far above --retries forces quarantine.
INJECT_ONE_CELL = '"m":1,"n":12,"seed":1003:9'


def read_bytes(path: str) -> bytes:
    with open(path, "rb") as fh:
        return fh.read()


def run_table1(tmp_path, monkeypatch, subdir: str, extra):
    """Run ``repro analyze table1`` into an isolated results dir."""
    results = tmp_path / subdir
    monkeypatch.setenv("SSTSP_RESULTS_DIR", str(results))
    assert cli.main(TABLE1_ARGS + list(extra)) == 0
    return results / "analysis"


def assert_outputs_match(out_dir, golden_dir: str) -> None:
    pairs = [
        ("table1_summary.csv", "golden_summary.csv"),
        ("table1_summary.md", "golden_summary.md"),
        ("table1_failures.csv", "golden_failures.csv"),
    ]
    for produced, golden in pairs:
        assert read_bytes(str(out_dir / produced)) == read_bytes(
            os.path.join(golden_dir, golden)
        ), f"{produced} diverged from {golden}"


class TestTable1Golden:
    def test_matches_committed_golden(self, tmp_path, monkeypatch):
        out = run_table1(tmp_path, monkeypatch, "serial", ["--no-cache"])
        assert_outputs_match(out, GOLDEN_TABLE1)

    def test_workers_do_not_change_the_bytes(self, tmp_path, monkeypatch):
        # The golden was produced serially; a 4-worker run must emit the
        # same bytes (worker-count independence, transitively 1 == 4).
        out = run_table1(
            tmp_path, monkeypatch, "parallel", ["--no-cache", "--workers", "4"]
        )
        assert_outputs_match(out, GOLDEN_TABLE1)


class TestResumeDeterminism:
    def test_resume_after_quarantine_matches_clean_run(
        self, tmp_path, monkeypatch
    ):
        cache = tmp_path / "cache"
        common = ["--cache-dir", str(cache), "--workers", "2"]

        # Pass 1: one injected cell exhausts its retries and is
        # quarantined; the summary must keep the row and record the gap.
        monkeypatch.setenv(INJECT_ENV_VAR, INJECT_ONE_CELL)
        broken = run_table1(
            tmp_path, monkeypatch, "broken",
            common + ["--on-error", "quarantine", "--retries", "1"],
        )
        failures = read_bytes(str(broken / "table1_failures.csv"))
        assert failures.count(b"\n") == 2  # header + one quarantined job
        assert b"table1_cell" in failures
        summary = read_bytes(str(broken / "table1_summary.csv")).decode()
        m1_row = summary.splitlines()[1]
        assert m1_row.startswith("1,2,1,")  # m=1: 2 cells, 1 quarantined
        assert b"## Failure digest" in read_bytes(
            str(broken / "table1_summary.md")
        )

        # Pass 2: resume without injection. The cache serves the three
        # completed cells; only the quarantined one executes. The tables
        # must be byte-identical to the committed clean-run goldens.
        monkeypatch.delenv(INJECT_ENV_VAR)
        resumed = run_table1(
            tmp_path, monkeypatch, "resumed", common + ["--resume"]
        )
        assert_outputs_match(resumed, GOLDEN_TABLE1)


class TestLogGolden:
    def test_log_rollup_matches_golden(self, tmp_path, monkeypatch):
        results = tmp_path / "results"
        monkeypatch.setenv("SSTSP_RESULTS_DIR", str(results))
        log = os.path.join(GOLDEN_LOG, "demo_sweep.jsonl")
        assert cli.main(["log", log]) == 0
        out = results / "analysis"
        for produced, golden in [
            ("demo_sweep_log_summary.csv", "golden_log_summary.csv"),
            ("demo_sweep_log_summary.md", "golden_log_summary.md"),
            ("demo_sweep_log_metrics.csv", "golden_log_metrics.csv"),
        ]:
            assert read_bytes(str(out / produced)) == read_bytes(
                os.path.join(GOLDEN_LOG, golden)
            ), f"{produced} diverged from {golden}"

    def test_name_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("SSTSP_RESULTS_DIR", str(tmp_path / "r"))
        log = os.path.join(GOLDEN_LOG, "demo_sweep.jsonl")
        assert cli.main(["log", log, "--name", "renamed"]) == 0
        assert (tmp_path / "r" / "analysis" / "renamed_log_summary.csv").exists()


class TestHelpers:
    def test_markdown_table_escapes_pipes(self):
        table = cli.markdown_table(["k"], [["events.guard_reject|node=2"]])
        assert "events.guard_reject\\|node=2" in table
        # The escaped cell still occupies exactly one column.
        assert table.splitlines()[2].count(" | ") == 0

    def test_fmt_handles_none_and_inf(self):
        assert cli._fmt(None) == "n/a"
        assert cli._fmt(float("inf")) == "inf"
        assert cli._fmt(float("-inf")) == "-inf"
        assert cli._fmt(0.123456) == "0.1235"

    def test_cli_requires_subcommand(self):
        with pytest.raises(SystemExit):
            cli.main([])


class TestBenchTrend:
    """``repro analyze bench``: the BENCH_*.json trajectory roll-up."""

    @staticmethod
    def _write_bench(root, label, medians, work=None):
        from repro.analysis.benchgate import bench_record, write_bench_json

        records = [
            bench_record(
                fullname=name, median_s=median, mean_s=median,
                stddev_s=0.0, min_s=median, rounds=1, iterations=1,
                work=work,
            )
            for name, median in medians.items()
        ]
        write_bench_json(
            os.path.join(root, f"BENCH_{label}.json"), label, records
        )

    def test_trend_table_orders_labels_numerically(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv("SSTSP_RESULTS_DIR", str(tmp_path / "r"))
        root = str(tmp_path / "repo")
        os.makedirs(root)
        # label 10 sorts after 9 numerically even though "10" < "9"
        self._write_bench(root, "9", {"bench::a": 0.010})
        self._write_bench(
            root, "10", {"bench::a": 0.012, "bench::b": 0.002},
            work={"fastlane/sstsp/mac.slot_draws": 2500},
        )
        assert cli.main(["bench", "--root", root]) == 0
        out = capsys.readouterr().out
        assert "| benchmark | 9 | 10 |" in out
        md_path = tmp_path / "r" / "analysis" / "bench_trend.md"
        csv_path = tmp_path / "r" / "analysis" / "bench_trend.csv"
        first_md = read_bytes(str(md_path))
        first_csv = read_bytes(str(csv_path))
        assert b"2500" in first_md  # the work total column
        assert b"bench::b | - |" in first_md  # absent in the older label
        # byte-stable on re-run
        assert cli.main(["bench", "--root", root]) == 0
        assert read_bytes(str(md_path)) == first_md
        assert read_bytes(str(csv_path)) == first_csv

    def test_explicit_files_and_empty_root(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv("SSTSP_RESULTS_DIR", str(tmp_path / "r"))
        empty = str(tmp_path / "empty")
        os.makedirs(empty)
        assert cli.main(["bench", "--root", empty]) == 1
        root = str(tmp_path / "repo")
        os.makedirs(root)
        self._write_bench(root, "7", {"bench::a": 0.010})
        path = os.path.join(root, "BENCH_7.json")
        assert cli.main(["bench", path, "--name", "named"]) == 0
        assert (tmp_path / "r" / "analysis" / "named_trend.md").exists()
