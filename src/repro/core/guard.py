"""The guard-time check.

SSTSP's second defence line (after uTESLA): a received timestamp whose
difference from the local clock exceeds a threshold ``delta`` is rejected.
Because two correct clocks cannot drift apart unboundedly within one
beacon period, a violation signals a replayed, delayed, or (internally)
forged beacon. The coarse phase uses a loose threshold, the fine phase a
tight one (paper section 3.3; parameter discussion in [7], [8]).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.obs.events import emit, observe_value


@dataclass
class GuardStats:
    """Accept/reject counters of one node's guard."""

    accepted: int = 0
    rejected: int = 0

    @property
    def total(self) -> int:
        return self.accepted + self.rejected


@dataclass
class GuardPolicy:
    """Guard-time acceptance test.

    Attributes
    ----------
    threshold_us:
        ``delta``: maximum tolerated ``|timestamp - local clock|``.
    node_id:
        Owning station, stamped onto emitted ``guard_reject`` events
        (None for anonymous / test policies).
    """

    threshold_us: float
    stats: GuardStats = field(default_factory=GuardStats)
    node_id: Optional[int] = None

    def __post_init__(self) -> None:
        if self.threshold_us <= 0:
            raise ValueError("guard threshold must be > 0")

    def check(self, est_timestamp: float, local_time: float) -> bool:
        """True when the beacon passes; counters updated either way."""
        diff = abs(est_timestamp - local_time)
        ok = diff <= self.threshold_us
        if ok:
            self.stats.accepted += 1
        else:
            self.stats.rejected += 1
            emit(
                "guard_reject",
                t_us=local_time,
                node=self.node_id,
                diff_us=diff,
                threshold_us=self.threshold_us,
            )
            observe_value("guard.reject_excess_us", diff - self.threshold_us,
                          node=self.node_id)
        return ok

    def margin(self, est_timestamp: float, local_time: float) -> float:
        """Slack before rejection (negative when it would be rejected)."""
        return self.threshold_us - abs(est_timestamp - local_time)
