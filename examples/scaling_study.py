#!/usr/bin/env python
"""Scaling study: synchronization error versus network size.

Sweeps the network from 25 to 500 stations for both TSF and SSTSP using
the vectorised engines (this is what they exist for) and prints the
error-vs-N table behind the paper's scalability argument: TSF degrades
with N while SSTSP is flat - its steady state has exactly one transmitter
per beacon period no matter how large the network is.

Run:  python examples/scaling_study.py
"""

import time

from repro.experiments.scenarios import quick_spec
from repro.fastlane import run_sstsp_vectorized, run_tsf_vectorized

SIZES = (25, 50, 100, 200, 500)


def main() -> None:
    print(f"{'N':>5} | {'TSF steady':>11} {'TSF peak':>9} {'collisions':>10} | "
          f"{'SSTSP steady':>12} {'SSTSP peak':>10} | {'runtime':>8}")
    print("-" * 84)
    for n in SIZES:
        started = time.perf_counter()
        spec = quick_spec(n, seed=5, duration_s=60.0)
        tsf = run_tsf_vectorized(spec)
        sstsp = run_sstsp_vectorized(spec)
        elapsed = time.perf_counter() - started
        print(
            f"{n:>5} | {tsf.trace.steady_state_error_us():>9.1f}us "
            f"{tsf.trace.peak_error_us():>7.1f}us {tsf.collisions:>10} | "
            f"{sstsp.trace.steady_state_error_us():>10.2f}us "
            f"{sstsp.trace.peak_error_us():>8.1f}us | {elapsed:>6.2f}s"
        )
    print("\nreading: TSF's error and collision count climb with N "
          "(fastest-node starvation + beacon collisions, Fig. 1); SSTSP's "
          "steady state stays at the jitter floor at every size (Fig. 2). "
          "SSTSP's 'peak' is the bootstrap election transient.")


if __name__ == "__main__":
    main()
