"""Outlier rejection for collected clock offsets.

Implements the two attack-resilient aggregation mechanisms of Song, Zhu &
Cao, *Attack-Resilient Time Synchronization for Wireless Sensor Networks*
(MASS 2005) - the paper's reference [7] - which SSTSP's coarse phase uses
to discard malicious time offsets before averaging:

* :func:`threshold_filter` - keep offsets within a threshold of the sample
  median (the median, unlike the mean, is itself robust to a minority of
  arbitrarily biased values).
* :func:`gesd_outliers` - the generalized extreme studentized deviate test,
  which detects up to ``max_outliers`` outliers in approximately normal
  data without knowing their number in advance.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np


def threshold_filter(
    offsets: Sequence[float],
    threshold: float,
) -> np.ndarray:
    """Return a boolean inlier mask: ``|offset - median| <= threshold``.

    A loose threshold suits the coarse phase (the goal is only loose
    synchronization); the fine phase uses the tighter per-beacon guard-time
    check instead.
    """
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    values = np.asarray(offsets, dtype=np.float64)
    if values.size == 0:
        return np.zeros(0, dtype=bool)
    median = float(np.median(values))
    return np.abs(values - median) <= threshold


def _gesd_critical_value(n: int, i: int, alpha: float) -> float:
    """Critical value ``lambda_i`` of the GESD test at step ``i`` (1-based)."""
    # Percentile of the t distribution with n - i - 1 degrees of freedom.
    df = n - i - 1
    p = 1.0 - alpha / (2.0 * (n - i + 1))
    t = _t_ppf(p, df)
    return (n - i) * t / math.sqrt((df + t * t) * (n - i + 1))


def _t_ppf(p: float, df: int) -> float:
    """Student-t quantile. Uses scipy when available, else the Cornish-
    Fisher-style expansion of the normal quantile (accurate to ~1e-3 for
    df >= 3, ample for an outlier cut-off)."""
    try:
        from scipy.stats import t as _t

        return float(_t.ppf(p, df))
    except ImportError:  # pragma: no cover - scipy is installed in CI
        z = _norm_ppf(p)
        g1 = (z**3 + z) / 4.0
        g2 = (5 * z**5 + 16 * z**3 + 3 * z) / 96.0
        return z + g1 / df + g2 / df**2


def _norm_ppf(p: float) -> float:
    """Acklam's rational approximation of the standard normal quantile."""
    if not 0.0 < p < 1.0:
        raise ValueError("p must be in (0, 1)")
    a = [-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00]
    b = [-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01]
    c = [-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00]
    d = [7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00]
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        )
    if p > 1 - p_low:
        return -_norm_ppf(1 - p)
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
        ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1
    )


def gesd_outliers(
    values: Sequence[float],
    max_outliers: int,
    alpha: float = 0.05,
) -> List[int]:
    """Indices of outliers per the generalized ESD test (Rosner 1983).

    Iteratively removes the sample furthest from the mean and compares the
    studentized deviate ``R_i`` against the critical value ``lambda_i``;
    the outlier count is the largest ``i`` with ``R_i > lambda_i``.
    """
    data = np.asarray(values, dtype=np.float64)
    n = data.size
    if max_outliers < 0:
        raise ValueError("max_outliers must be >= 0")
    max_outliers = min(max_outliers, max(0, n - 2))
    if max_outliers == 0 or n < 3:
        return []
    remaining = list(range(n))
    removed: List[Tuple[int, float]] = []
    for i in range(1, max_outliers + 1):
        subset = data[remaining]
        mean = subset.mean()
        std = subset.std(ddof=1)
        if std == 0.0:
            break
        deviates = np.abs(subset - mean) / std
        worst_local = int(np.argmax(deviates))
        r_i = float(deviates[worst_local])
        lam_i = _gesd_critical_value(n, i, alpha)
        removed.append((remaining.pop(worst_local), r_i - lam_i))
        if len(remaining) < 2:
            break
    # Largest i whose deviate exceeded its critical value marks the cut.
    outlier_count = 0
    for i, (_, margin) in enumerate(removed, start=1):
        if margin > 0:
            outlier_count = i
    return sorted(index for index, _ in removed[:outlier_count])


def robust_offset_average(
    offsets: Sequence[float],
    threshold: float,
    use_gesd: bool = False,
    alpha: float = 0.05,
) -> Tuple[float, int]:
    """Coarse-phase aggregation: filter outliers, average the survivors.

    Returns ``(average_offset, inliers_used)``. With no survivors (all
    offsets rejected) the offset is 0.0 and ``inliers_used`` is 0 - the
    caller should keep scanning rather than adjust.
    """
    values = np.asarray(offsets, dtype=np.float64)
    if values.size == 0:
        return 0.0, 0
    mask = threshold_filter(values, threshold)
    survivors = values[mask]
    if use_gesd and survivors.size >= 3:
        bad = gesd_outliers(survivors, max_outliers=survivors.size // 2, alpha=alpha)
        keep = np.ones(survivors.size, dtype=bool)
        keep[bad] = False
        survivors = survivors[keep]
    if survivors.size == 0:
        return 0.0, 0
    return float(survivors.mean()), int(survivors.size)
