"""Declarative parameter-grid expansion.

A grid is a mapping from axis name to either a list of values (swept) or
a single scalar (held fixed). :func:`expand_grid` expands the cartesian
product in a deterministic order — axes in mapping-insertion order, each
axis's values in the given order, the *last* axis varying fastest — so a
grid expands to the same job list on every machine and every run.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, List, Mapping, Optional

from repro.sweep.spec import JobSpec


def expand_grid(axes: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """Expand ``axes`` into the list of parameter points it describes.

    List/tuple values are swept; scalars ride along unchanged on every
    point. ``expand_grid({"m": [1, 2], "n": 30})`` yields
    ``[{"m": 1, "n": 30}, {"m": 2, "n": 30}]``.
    """
    names: List[str] = []
    pools: List[Iterable[Any]] = []
    fixed: Dict[str, Any] = {}
    for name, values in axes.items():
        if isinstance(values, (list, tuple)):
            if len(values) == 0:
                raise ValueError(f"axis {name!r} has no values")
            names.append(name)
            pools.append(list(values))
        else:
            fixed[name] = values
    points = []
    for combo in itertools.product(*pools):
        point = dict(fixed)
        point.update(zip(names, combo))
        points.append(point)
    return points


def grid_specs(
    kind: str,
    axes: Mapping[str, Any],
    root_seed: int = 0,
    derive_missing_seed: Optional[str] = None,
) -> List[JobSpec]:
    """Expand ``axes`` and freeze every point into a :class:`JobSpec`.

    With ``derive_missing_seed`` set to a parameter name, any point that
    does not already pin that parameter gets the spec's scheduling-
    independent derived seed filled in (the two-step build keeps the
    derivation a function of the seedless spec, so the filled-in value
    never feeds back into its own derivation).
    """
    specs = []
    for point in expand_grid(axes):
        spec = JobSpec.make(kind, point, root_seed=root_seed)
        if derive_missing_seed is not None and derive_missing_seed not in point:
            point = dict(point)
            point[derive_missing_seed] = spec.derived_seed()
            spec = JobSpec.make(kind, point, root_seed=root_seed)
        specs.append(spec)
    return specs
