"""Per-node protocol driver interface.

The network harness (:mod:`repro.network.runner`) runs beacon periods as
rounds. Each round it asks every awake node's protocol driver whether and
when it wants to transmit (:meth:`SyncProtocol.begin_period`), resolves
the contention cascade on the true-time axis, asks the successful
transmitter for its beacon (:meth:`SyncProtocol.make_frame`), delivers it
through the lossy channel, and feeds each receiver
(:meth:`SyncProtocol.on_beacon`). End-of-round bookkeeping goes through
:meth:`SyncProtocol.end_period`.

Scheduling times are expressed on the node's own clock - the TSF timer for
TSF-family protocols, the adjusted clock for SSTSP - declared by
:class:`TxIntent.clock`; the harness converts them to true time through
the node's clock chain, so clock skew shifts real transmission instants
exactly as it would on hardware.

Attackers implement this same interface (see
:mod:`repro.security.attacks`): a malicious station is just a node running
different software.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.mac.beacon import BeaconFrame, SecureBeaconFrame


class ClockKind(enum.Enum):
    """Which local clock a :class:`TxIntent` time refers to."""

    TSF = "tsf"
    ADJUSTED = "adjusted"
    HARDWARE = "hardware"


@dataclass(frozen=True)
class TxIntent:
    """A protocol's wish to transmit a beacon this period.

    Attributes
    ----------
    local_time:
        Scheduled transmission start on the clock named by :attr:`clock`
        (already including any random backoff the protocol drew).
    clock:
        Clock the time refers to.
    """

    local_time: float
    clock: ClockKind = ClockKind.TSF


@dataclass(frozen=True)
class RxContext:
    """What a receiver knows about one received beacon.

    Attributes
    ----------
    true_time:
        Reception instant in true time (harness bookkeeping only; protocols
        must not read it - nodes cannot observe true time).
    hw_time:
        The receiving node's hardware clock at the reception instant.
    est_timestamp:
        The receiver's estimate of the sender's clock *now*: beacon
        timestamp + nominal propagation delay + receive-side timestamping
        error. The paper's ``ts_ref`` with ``|ts_ref - t_ref| < epsilon``.
    period:
        Beacon-period index of the round the beacon was sent in.
    """

    true_time: float
    hw_time: float
    est_timestamp: float
    period: int


class SyncProtocol(ABC):
    """Driver for one node's synchronization behaviour.

    Subclasses hold all per-node protocol state; the harness owns clocks,
    channel and randomness and interacts only through this interface.
    """

    #: True when the protocol transmits SSTSP secure beacons (sized and
    #: air-timed differently from plain TSF beacons).
    secure_beacons: bool = False

    #: Short protocol identifier carried in trace events (``beacon_tx``
    #: ``proto`` field), so a mixed-protocol trace attributes every frame.
    protocol_name: str = "sync"

    def on_period_time(self, period: int, hw_time: float) -> None:
        """Period-start observation of this node's own hardware clock.

        The harness calls this before :meth:`begin_period` so drivers
        that need a hardware timestamp outside of beacon receptions (for
        example SSTSP's free-run slew hardening, which re-anchors the
        adjusted clock while *no* beacons arrive) have a current one.
        Default: no-op."""

    @abstractmethod
    def begin_period(self, period: int) -> Optional[TxIntent]:
        """Called at the start of beacon period ``period``; return a
        transmission intent or None to stay silent."""

    @abstractmethod
    def make_frame(
        self, hw_time: float, period: int
    ) -> Union["BeaconFrame", "SecureBeaconFrame"]:
        """Build the beacon frame for a transmission the MAC let through.

        ``hw_time`` is the node's hardware clock at the actual transmission
        start. Returns a :class:`~repro.mac.beacon.BeaconFrame` or
        :class:`~repro.mac.beacon.SecureBeaconFrame`.
        """

    @abstractmethod
    def on_beacon(
        self, frame: Union["BeaconFrame", "SecureBeaconFrame"], rx: RxContext
    ) -> None:
        """Process one received beacon."""

    def end_period(
        self,
        period: int,
        heard_beacon: bool,
        transmitted: bool,
        tx_success: bool,
    ) -> None:
        """End-of-round hook: whether this node heard any beacon this
        period, whether it transmitted, and whether its transmission was
        the period's successful beacon. Default: no-op."""

    @abstractmethod
    def synchronized_time(self, hw_time: float) -> float:
        """The clock value this protocol synchronizes, at hardware time
        ``hw_time`` - the quantity the paper's "maximum clock difference"
        metric compares across nodes."""

    def is_synchronized(self) -> bool:
        """Whether this node is a synchronized member of the network.

        Nodes still acquiring (SSTSP's coarse phase) are not part of the
        synchronized set the "maximum clock difference" metric compares -
        the paper's joining rule keeps them out of the protocol too.
        Default: True (TSF-family nodes are always members)."""
        return True

    def on_leave(self, period: int) -> None:
        """Node left the network (churn). Default: no-op."""

    def on_return(self, period: int) -> None:
        """Node returned to the network (churn). Default: no-op."""
