"""Unit tests for metrics, traces and the overhead models."""

import numpy as np
import pytest

from repro.analysis.metrics import (
    INDUSTRY_THRESHOLD_US,
    SyncTrace,
    TraceRecorder,
    audit_no_leaps,
    max_pairwise_difference,
    sync_latency_us,
)
from repro.analysis.overhead import (
    beacon_overhead,
    chain_storage_report,
    fractal_storage_bound,
    receiver_buffer_bytes,
    traffic_overhead,
    traffic_overhead_ratio,
)
from repro.clocks.adjusted import AdjustedClock
from repro.phy.params import OFDM_54MBPS
from repro.sim.units import S


def make_trace(max_diffs, bp_us=100_000.0):
    recorder = TraceRecorder()
    for i, d in enumerate(max_diffs):
        recorder.record((i + 1) * bp_us, [0.0, d], reference_id=3)
    return recorder.finalize()


class TestMetrics:
    def test_max_pairwise(self):
        assert max_pairwise_difference([5.0, 1.0, 3.0]) == 4.0
        assert max_pairwise_difference([7.0]) == 0.0
        assert max_pairwise_difference([]) == 0.0

    def test_recorder_round_trip(self):
        recorder = TraceRecorder()
        recorder.record(100.0, [10.0, 30.0, 20.0], reference_id=2)
        trace = recorder.finalize()
        assert trace.max_diff_us[0] == 20.0
        assert trace.present_counts[0] == 3
        assert trace.reference_ids[0] == 2
        assert trace.mean_vs_true_us[0] == pytest.approx(20.0 - 100.0)

    def test_trace_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SyncTrace(
                np.zeros(3), np.zeros(2), np.zeros(3), np.zeros(3, int), np.zeros(3, int)
            )

    def test_window(self):
        trace = make_trace([1, 2, 3, 4, 5])
        sub = trace.window(150_000.0, 350_000.0)
        assert list(sub.max_diff_us) == [2, 3]

    def test_window_rejects_inverted_interval(self):
        trace = make_trace([1, 2, 3])
        with pytest.raises(ValueError, match="end_us > start_us"):
            trace.window(300_000.0, 100_000.0)
        with pytest.raises(ValueError, match="end_us > start_us"):
            trace.window(100_000.0, 100_000.0)

    def test_window_valid_but_sparse_interval_is_empty_not_error(self):
        trace = make_trace([1, 2, 3])
        sub = trace.window(900_000.0, 950_000.0)
        assert len(sub) == 0

    def test_steady_state_skips_transient(self):
        trace = make_trace([100.0] * 25 + [5.0] * 75)
        assert trace.steady_state_error_us() == 5.0

    def test_steady_state_short_trace_keeps_a_sample(self):
        # skip_fraction on a 1-sample trace must not round to an empty
        # tail (used to yield a numpy empty-slice warning and NaN)
        trace = make_trace([7.0])
        with np.errstate(all="raise"):
            assert trace.steady_state_error_us(skip_fraction=0.9) == 7.0

    def test_steady_state_validation(self):
        trace = make_trace([1.0, 2.0])
        with pytest.raises(ValueError, match="skip_fraction"):
            trace.steady_state_error_us(skip_fraction=1.0)
        with pytest.raises(ValueError, match="skip_fraction"):
            trace.steady_state_error_us(skip_fraction=-0.1)
        with pytest.raises(ValueError, match="empty trace"):
            make_trace([]).steady_state_error_us()

    def test_peak(self):
        assert make_trace([1, 9, 2]).peak_error_us() == 9.0

    def test_reference_changes(self):
        recorder = TraceRecorder()
        for i, ref in enumerate([1, 1, -1, 2, 2, 1]):
            recorder.record(float(i + 1), [0.0, 0.0], reference_id=ref)
        assert recorder.finalize().reference_changes() == 2

    def test_save_csv(self, tmp_path):
        trace = make_trace([1.0, 2.0])
        path = tmp_path / "trace.csv"
        trace.save_csv(str(path))
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("time_s,max_diff_us")
        assert len(lines) == 3

    def test_to_rows(self):
        rows = list(make_trace([4.0]).to_rows())
        assert rows == [(0.1, 4.0)]


class TestQuarantineGaps:
    """Summary helpers must tolerate None/NaN holes, not raise.

    A quarantined sweep cell (PR 6) leaves ``None`` in value lists and
    NaN samples in assembled traces; analysis over the surviving cells
    has to keep working.
    """

    @staticmethod
    def gap_trace(max_diffs):
        # Build the trace directly: the recorder derives max_diff via
        # max_pairwise_difference, which (correctly) maps a gapped
        # sample to 0.0 rather than propagating the NaN.
        n = len(max_diffs)
        return SyncTrace(
            np.arange(1, n + 1, dtype=np.float64) * 100_000.0,
            np.asarray(max_diffs, dtype=np.float64),
            np.zeros(n),
            np.full(n, 2, dtype=int),
            np.full(n, 3, dtype=int),
        )

    def test_max_pairwise_ignores_none_and_nan(self):
        assert max_pairwise_difference([5.0, None, 1.0, float("nan")]) == 4.0
        assert max_pairwise_difference([None, float("nan")]) == 0.0
        assert max_pairwise_difference([3.0, None]) == 0.0

    def test_steady_state_skips_nan_gaps(self):
        trace = self.gap_trace([100.0] * 25 + [5.0, float("nan")] * 38)
        with np.errstate(all="raise"):
            assert trace.steady_state_error_us() == 5.0

    def test_steady_state_all_gaps_raises_not_nan(self):
        trace = self.gap_trace([float("nan")] * 4)
        with pytest.raises(ValueError, match="NaN gap"):
            trace.steady_state_error_us()

    def test_peak_ignores_nan_gaps(self):
        assert self.gap_trace([1.0, float("nan"), 9.0]).peak_error_us() == 9.0
        assert np.isnan(self.gap_trace([float("nan")] * 3).peak_error_us())


class TestSyncLatency:
    def test_basic(self):
        trace = make_trace([50, 40, 30, 20, 10, 5, 5, 5, 5, 5])
        latency = sync_latency_us(trace, sustain_samples=3)
        # first below-threshold sample is index 3 (20 us) -> t = 0.4 s
        assert latency == pytest.approx(0.4 * S)

    def test_requires_sustained(self):
        trace = make_trace([10, 90, 10, 90, 10, 10, 10])
        latency = sync_latency_us(trace, sustain_samples=3)
        assert latency == pytest.approx(0.5 * S)

    def test_never_synchronized(self):
        trace = make_trace([100.0] * 10)
        assert sync_latency_us(trace) is None

    def test_start_offset(self):
        trace = make_trace([5.0] * 10)
        latency = sync_latency_us(trace, sustain_samples=1, start_us=0.35 * S)
        assert latency == pytest.approx(0.05 * S)

    def test_validation(self):
        with pytest.raises(ValueError):
            sync_latency_us(make_trace([1.0]), sustain_samples=0)

    def test_threshold_constant(self):
        assert INDUSTRY_THRESHOLD_US == 25.0


class TestNoLeapAudit:
    def test_clean_clock_passes(self):
        clock = AdjustedClock()
        clock.slew_to(0.0, 1.0001, 100.0)
        clock.slew_to(0.0, 0.9999, 200.0)
        assert audit_no_leaps(clock, 0.0, 1_000.0)


class TestOverheadModels:
    def test_beacon_overhead_matches_paper(self):
        tsf = beacon_overhead(secure=False, phy=OFDM_54MBPS)
        sstsp = beacon_overhead(secure=True, phy=OFDM_54MBPS)
        assert (tsf.beacon_bytes, sstsp.beacon_bytes) == (56, 92)
        assert tsf.beacons_per_second == sstsp.beacons_per_second == 10.0
        assert sstsp.airtime_us_per_beacon / tsf.airtime_us_per_beacon == 7 / 4

    def test_traffic_ratio(self):
        assert traffic_overhead_ratio() == pytest.approx(92 / 56)
        t = traffic_overhead(10.0)
        assert t["beacons"] == 100
        assert t["sstsp_bytes"] == 9_200

    def test_buffer_in_paper_band(self):
        # two buffered secure beacons with bookkeeping: the paper's
        # "300-500 bytes" estimate covers 2-4 buffered beacons
        assert 150 <= receiver_buffer_bytes(2) <= 500
        with pytest.raises(ValueError):
            receiver_buffer_bytes(-1)

    def test_chain_storage_report(self):
        rows = chain_storage_report(128, samples=32)
        by_name = {r.strategy: r for r in rows}
        assert by_name["dense"].resident_elements == 129
        assert by_name["seed-only"].hash_ops_for_traversal > 0
        assert by_name["fractal"].resident_elements <= fractal_storage_bound(128) + 7
        with pytest.raises(ValueError):
            chain_storage_report(16, samples=64)

    def test_fractal_bound(self):
        assert fractal_storage_bound(1024) == 10
