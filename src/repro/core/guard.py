"""The guard-time check.

SSTSP's second defence line (after uTESLA): a received timestamp whose
difference from the local clock exceeds a threshold ``delta`` is rejected.
Because two correct clocks cannot drift apart unboundedly within one
beacon period, a violation signals a replayed, delayed, or (internally)
forged beacon. The coarse phase uses a loose threshold, the fine phase a
tight one (paper section 3.3; parameter discussion in [7], [8]).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class GuardStats:
    """Accept/reject counters of one node's guard."""

    accepted: int = 0
    rejected: int = 0

    @property
    def total(self) -> int:
        return self.accepted + self.rejected


@dataclass
class GuardPolicy:
    """Guard-time acceptance test.

    Attributes
    ----------
    threshold_us:
        ``delta``: maximum tolerated ``|timestamp - local clock|``.
    """

    threshold_us: float
    stats: GuardStats = field(default_factory=GuardStats)

    def __post_init__(self) -> None:
        if self.threshold_us <= 0:
            raise ValueError("guard threshold must be > 0")

    def check(self, est_timestamp: float, local_time: float) -> bool:
        """True when the beacon passes; counters updated either way."""
        ok = abs(est_timestamp - local_time) <= self.threshold_us
        if ok:
            self.stats.accepted += 1
        else:
            self.stats.rejected += 1
        return ok

    def margin(self, est_timestamp: float, local_time: float) -> float:
        """Slack before rejection (negative when it would be rejected)."""
        return self.threshold_us - abs(est_timestamp - local_time)
