"""reprolint v2: the project-wide T/E/R rule families.

Mirrors ``tests/test_lint.py``'s structure — per rule at least one
positive case, one negative case, and one pragma-suppression case — plus
the project-model unit tests, the synthetic cross-timebase-bug fixture
the ISSUE requires, and the acceptance-criteria injections: a
cross-timebase addition, an unknown ``emit()`` event name, and an
unseeded RNG at the protocol seam must each be caught.

The repo-tree-clean gate itself lives in ``tests/test_lint.py``
(``test_repo_tree_is_clean``) and now covers these families too, since
the engine's default ruleset includes them.
"""

from __future__ import annotations

import ast
import json
import textwrap
from pathlib import Path

from repro.lint import (
    ALL_RULES,
    FLOW_RULES,
    RULES,
    ProjectModel,
    build_module_info,
    lint_file,
    lint_paths,
    render_json,
)
from repro.lint.cli import main as lint_main
from repro.lint.flowrules import load_event_schemas
from repro.lint.project import module_name
from repro.lint.timebase import unit_of_expr, unit_of_identifier

#: Just the project-wide families — most cases below use these so the
#: D-series (tested in test_lint.py) cannot muddy the assertion.
FLOW = FLOW_RULES


def put(tmp_path: Path, rel: str, source: str) -> Path:
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def codes(diags) -> list:
    return [d.code for d in diags]


# ---------------------------------------------------------------------------
# Unit inference and the project model
# ---------------------------------------------------------------------------


class TestTimebaseInference:
    def test_suffix_units(self):
        assert unit_of_identifier("offset_us") == "us"
        assert unit_of_identifier("period_ms") == "ms"
        assert unit_of_identifier("horizon_s") == "s"
        assert unit_of_identifier("stamp_tu") == "tu"
        assert unit_of_identifier("offset") is None
        # A bare suffix is not a unit-carrying name.
        assert unit_of_identifier("_us") is None

    def test_conversion_calls_and_transparency(self):
        tree = ast.parse("abs(us_to_s(x)) + float(chain.hw_at(y))")
        expr = tree.body[0].value
        assert unit_of_expr(expr.left) == "s"
        assert unit_of_expr(expr.right) == "us"

    def test_mult_erases_domain(self):
        expr = ast.parse("duration_s * 1e6").body[0].value
        assert unit_of_expr(expr) is None

    def test_annotated_env_overrides_suffix(self):
        expr = ast.parse("delay").body[0].value
        assert unit_of_expr(expr, {"delay": "us"}) == "us"


class TestProjectModel:
    def test_module_name(self):
        assert module_name("mac/contention.py") == "repro.mac.contention"
        assert module_name("obs/__init__.py") == "repro.obs"
        assert module_name("__init__.py") == "repro"

    def test_symbol_table_and_resolution(self):
        tree = ast.parse(
            textwrap.dedent(
                """
                class Chain:
                    def __init__(self, start_us):
                        pass
                    def hw_at(self, true_us):
                        pass

                def convert(value_us, scale):
                    pass
                """
            )
        )
        info = build_module_info("clocks/chain.py", tree)
        project = ProjectModel([info])
        sig = project.resolve_function("repro.clocks.chain.convert")
        assert sig is not None and sig.params[0].unit == "us"
        ctor = project.resolve_function("repro.clocks.chain.Chain")
        assert ctor is not None and [p.name for p in ctor.params] == ["start_us"]
        method = project.resolve_function("repro.clocks.chain.Chain.hw_at")
        assert method is not None and method.params[0].name == "true_us"

    def test_reexport_resolution_through_init(self):
        events = build_module_info(
            "obs/events.py", ast.parse("def emit(event, t_us=None):\n    pass\n")
        )
        init = build_module_info(
            "obs/__init__.py", ast.parse("from repro.obs.events import emit\n")
        )
        project = ProjectModel([events, init])
        sig = project.resolve_function("repro.obs.emit")
        assert sig is not None and sig.qualname == "emit"

    def test_import_graph_edges(self):
        info = build_module_info(
            "core/engine.py",
            ast.parse(
                "import repro.sim.units\nfrom repro.clocks import chain\nimport os\n"
            ),
        )
        assert info.imports == ("repro.sim.units", "repro.clocks")


# ---------------------------------------------------------------------------
# T-series: timebase flow
# ---------------------------------------------------------------------------


class TestT101CrossTimebaseArithmetic:
    def test_fires_on_mixed_addition(self, tmp_path):
        f = put(
            tmp_path,
            "repro/core/mod.py",
            """
            def f(t_us, timeout_s):
                return t_us + timeout_s
            """,
        )
        assert codes(lint_file(f, rules=FLOW)) == ["T101"]

    def test_fires_on_augmented_assignment(self, tmp_path):
        f = put(
            tmp_path,
            "repro/core/mod.py",
            """
            def f(t_us, step_ms):
                t_us -= step_ms
                return t_us
            """,
        )
        assert codes(lint_file(f, rules=FLOW)) == ["T101"]

    def test_same_domain_and_unknown_are_clean(self, tmp_path):
        f = put(
            tmp_path,
            "repro/core/mod.py",
            """
            def f(t_us, dt_us, count):
                return t_us + dt_us + count
            """,
        )
        assert codes(lint_file(f, rules=FLOW)) == []

    def test_rescale_through_multiplication_is_clean(self, tmp_path):
        f = put(
            tmp_path,
            "repro/core/mod.py",
            """
            def f(t_us, duration_s):
                return t_us + duration_s * 1e6
            """,
        )
        assert codes(lint_file(f, rules=FLOW)) == []

    def test_conversion_call_is_clean(self, tmp_path):
        f = put(
            tmp_path,
            "repro/core/mod.py",
            """
            from repro.sim.units import s_to_us

            def f(t_us, duration_s):
                return t_us + s_to_us(duration_s)
            """,
        )
        assert codes(lint_file(f, rules=FLOW)) == []

    def test_pragma_suppresses(self, tmp_path):
        f = put(
            tmp_path,
            "repro/core/mod.py",
            """
            def f(t_us, timeout_s):
                return t_us + timeout_s  # reprolint: disable=T101 -- fixture
            """,
        )
        assert codes(lint_file(f, rules=FLOW)) == []

    def test_nested_conflict_reports_once(self, tmp_path):
        f = put(
            tmp_path,
            "repro/core/mod.py",
            """
            def f(a_us, b_s, c_us):
                return (a_us + b_s) + c_us
            """,
        )
        assert codes(lint_file(f, rules=FLOW)) == ["T101"]


class TestT102CrossTimebaseComparison:
    def test_fires_on_mixed_comparison(self, tmp_path):
        f = put(
            tmp_path,
            "repro/core/mod.py",
            """
            def f(delay_us, timeout_s):
                return delay_us > timeout_s
            """,
        )
        assert codes(lint_file(f, rules=FLOW)) == ["T102"]

    def test_annotated_parameter_supplies_unit(self, tmp_path):
        f = put(
            tmp_path,
            "repro/core/mod.py",
            """
            from typing import Annotated

            def f(delay: Annotated[float, "us"], timeout_s: float):
                return delay < timeout_s
            """,
        )
        assert codes(lint_file(f, rules=FLOW)) == ["T102"]

    def test_same_domain_is_clean(self, tmp_path):
        f = put(
            tmp_path,
            "repro/core/mod.py",
            """
            def f(delay_us, guard_us):
                return delay_us >= guard_us
            """,
        )
        assert codes(lint_file(f, rules=FLOW)) == []

    def test_pragma_suppresses(self, tmp_path):
        f = put(
            tmp_path,
            "repro/core/mod.py",
            """
            def f(delay_us, timeout_s):
                # reprolint: disable-next=T102
                return delay_us > timeout_s
            """,
        )
        assert codes(lint_file(f, rules=FLOW)) == []


class TestT103CallArgumentUnits:
    def test_cross_module_positional_mismatch(self, tmp_path):
        put(
            tmp_path,
            "repro/clocks/conv.py",
            """
            def schedule(at_us):
                return at_us
            """,
        )
        caller = put(
            tmp_path,
            "repro/core/mod.py",
            """
            from repro.clocks.conv import schedule

            def f(now_s):
                return schedule(now_s)
            """,
        )
        findings = lint_paths([tmp_path / "repro"], rules=FLOW)
        assert codes(findings) == ["T103"]
        assert findings[0].path == caller.as_posix()

    def test_keyword_suffix_mismatch_without_resolution(self, tmp_path):
        f = put(
            tmp_path,
            "repro/core/mod.py",
            """
            def f(helper, now_s):
                helper.fire(at_us=now_s)
            """,
        )
        assert codes(lint_file(f, rules=FLOW)) == ["T103"]

    def test_converter_param_units(self, tmp_path):
        f = put(
            tmp_path,
            "repro/core/mod.py",
            """
            from repro.sim.units import us_to_s

            def f(period_s):
                return us_to_s(period_s)
            """,
        )
        assert codes(lint_file(f, rules=FLOW)) == ["T103"]

    def test_matching_units_are_clean(self, tmp_path):
        put(
            tmp_path,
            "repro/clocks/conv.py",
            """
            def schedule(at_us):
                return at_us
            """,
        )
        put(
            tmp_path,
            "repro/core/mod.py",
            """
            from repro.clocks.conv import schedule

            def f(now_us, count):
                return schedule(now_us) + count
            """,
        )
        assert codes(lint_paths([tmp_path / "repro"], rules=FLOW)) == []

    def test_pragma_suppresses(self, tmp_path):
        f = put(
            tmp_path,
            "repro/core/mod.py",
            """
            from repro.sim.units import us_to_s

            def f(period_s):
                return us_to_s(period_s)  # reprolint: disable=T103 -- fixture
            """,
        )
        assert codes(lint_file(f, rules=FLOW)) == []


class TestSyntheticCrossTimebaseFixture:
    """The ISSUE's synthetic fixture: a module mixing µs and TU values
    without conversion must light up the T-series across statement,
    branch and call-boundary forms at once."""

    def test_fixture_is_fully_flagged(self, tmp_path):
        put(
            tmp_path,
            "repro/clocks/sync.py",
            """
            def apply_offset(base_us, delta_us):
                return base_us + delta_us
            """,
        )
        bug = put(
            tmp_path,
            "repro/core/bug.py",
            """
            from repro.clocks.sync import apply_offset

            TU_US = 1024.0

            def ingest(stamp_tu, local_us, guard_us):
                skew = stamp_tu - local_us
                if stamp_tu > guard_us:
                    return apply_offset(local_us, stamp_tu)
                corrected_us = stamp_tu * TU_US
                return apply_offset(local_us, corrected_us)
            """,
        )
        findings = lint_paths([tmp_path / "repro"], rules=FLOW)
        assert codes(findings) == ["T101", "T102", "T103"]
        assert all(d.path == bug.as_posix() for d in findings)


# ---------------------------------------------------------------------------
# E-series: trace contract
# ---------------------------------------------------------------------------


class TestE201UnknownEvent:
    def test_unknown_event_fires(self, tmp_path):
        f = put(
            tmp_path,
            "repro/core/mod.py",
            """
            from repro.obs.events import emit

            def f(t_us):
                emit("beacon_lost", t_us=t_us, node=1)
            """,
        )
        assert codes(lint_file(f, rules=FLOW)) == ["E201"]

    def test_non_literal_event_fires(self, tmp_path):
        f = put(
            tmp_path,
            "repro/core/mod.py",
            """
            from repro.obs.events import emit

            def f(name, t_us):
                emit(name, t_us=t_us, node=1)
            """,
        )
        assert codes(lint_file(f, rules=FLOW)) == ["E201"]

    def test_known_event_is_clean(self, tmp_path):
        f = put(
            tmp_path,
            "repro/core/mod.py",
            """
            from repro.obs.events import emit

            def f(t_us, diff_us, threshold_us):
                emit(
                    "guard_reject",
                    t_us=t_us,
                    node=1,
                    diff_us=diff_us,
                    threshold_us=threshold_us,
                )
            """,
        )
        assert codes(lint_file(f, rules=FLOW)) == []

    def test_other_emit_functions_are_ignored(self, tmp_path):
        f = put(
            tmp_path,
            "repro/core/mod.py",
            """
            def f(bus, t_us):
                bus.emit("not_an_event", t_us)
            """,
        )
        assert codes(lint_file(f, rules=FLOW)) == []

    def test_pragma_suppresses(self, tmp_path):
        f = put(
            tmp_path,
            "repro/core/mod.py",
            """
            from repro.obs.events import emit

            def f(t_us):
                emit("beacon_lost", t_us=t_us, node=1)  # reprolint: disable=E201 -- fixture
            """,
        )
        assert codes(lint_file(f, rules=FLOW)) == []


class TestE202MissingFields:
    def test_missing_payload_field_fires(self, tmp_path):
        f = put(
            tmp_path,
            "repro/core/mod.py",
            """
            from repro.obs.events import emit

            def f(t_us, diff_us):
                emit("guard_reject", t_us=t_us, node=1, diff_us=diff_us)
            """,
        )
        assert codes(lint_file(f, rules=FLOW)) == ["E202"]

    def test_missing_required_envelope_fires(self, tmp_path):
        f = put(
            tmp_path,
            "repro/core/mod.py",
            """
            from repro.obs.events import emit

            def f(diff_us, threshold_us):
                emit("guard_reject", node=1, diff_us=diff_us, threshold_us=threshold_us)
            """,
        )
        assert codes(lint_file(f, rules=FLOW)) == ["E202"]

    def test_star_kwargs_forwarding_is_skipped(self, tmp_path):
        f = put(
            tmp_path,
            "repro/core/mod.py",
            """
            from repro.obs.events import emit

            def f(t_us, **payload):
                emit("guard_reject", t_us=t_us, node=1, **payload)
            """,
        )
        assert codes(lint_file(f, rules=FLOW)) == []

    def test_optional_field_not_required(self, tmp_path):
        f = put(
            tmp_path,
            "repro/core/mod.py",
            """
            from repro.obs.events import emit

            def f(t_us, n):
                emit("contention_win", t_us=t_us, node=1, contenders=n)
            """,
        )
        assert codes(lint_file(f, rules=FLOW)) == []

    def test_pragma_suppresses(self, tmp_path):
        f = put(
            tmp_path,
            "repro/core/mod.py",
            """
            from repro.obs.events import emit

            def f(t_us, diff_us):
                # reprolint: disable-next=E202
                emit("guard_reject", t_us=t_us, node=1, diff_us=diff_us)
            """,
        )
        assert codes(lint_file(f, rules=FLOW)) == []


class TestE203UndeclaredFields:
    def test_extra_payload_field_fires(self, tmp_path):
        f = put(
            tmp_path,
            "repro/core/mod.py",
            """
            from repro.obs.events import emit

            def f(t_us, diff_us, threshold_us):
                emit(
                    "guard_reject",
                    t_us=t_us,
                    node=1,
                    diff_us=diff_us,
                    threshold_us=threshold_us,
                    verdict="reject",
                )
            """,
        )
        assert codes(lint_file(f, rules=FLOW)) == ["E203"]

    def test_forbidden_envelope_field_fires(self, tmp_path):
        f = put(
            tmp_path,
            "repro/core/mod.py",
            """
            from repro.obs.events import emit

            def f(t_us, samples, survivors, offset_us):
                emit(
                    "coarse_done",
                    t_us=t_us,
                    node=1,
                    samples=samples,
                    survivors=survivors,
                    offset_us=offset_us,
                )
            """,
        )
        assert codes(lint_file(f, rules=FLOW)) == ["E203"]

    def test_declared_optional_is_clean(self, tmp_path):
        f = put(
            tmp_path,
            "repro/core/mod.py",
            """
            from repro.obs.events import emit

            def f(t_us, n, c):
                emit("contention_win", t_us=t_us, node=1, contenders=n, collisions=c)
            """,
        )
        assert codes(lint_file(f, rules=FLOW)) == []

    def test_pragma_suppresses(self, tmp_path):
        f = put(
            tmp_path,
            "repro/core/mod.py",
            """
            from repro.obs.events import emit

            def f(t_us, diff_us, threshold_us):
                # reprolint: disable-next=E203
                emit("guard_reject", t_us=t_us, node=1, diff_us=diff_us, threshold_us=threshold_us, why="x")
            """,
        )
        assert codes(lint_file(f, rules=FLOW)) == []


class TestE204PayloadUnits:
    def test_non_us_suffixed_key_fires(self, tmp_path):
        f = put(
            tmp_path,
            "repro/core/mod.py",
            """
            from repro.obs.events import emit

            def f(t_us, diff_ms, threshold_us):
                emit("guard_reject", t_us=t_us, node=1, diff_ms=diff_ms, threshold_us=threshold_us)
            """,
        )
        assert codes(lint_file(f, rules=FLOW)) == ["E202", "E203", "E204"]

    def test_value_unit_contradicting_us_key_fires(self, tmp_path):
        f = put(
            tmp_path,
            "repro/core/mod.py",
            """
            from repro.obs.events import emit

            def f(local_s, diff_us, threshold_us):
                emit("guard_reject", t_us=local_s, node=1, diff_us=diff_us, threshold_us=threshold_us)
            """,
        )
        assert codes(lint_file(f, rules=FLOW)) == ["E204"]

    def test_us_values_are_clean(self, tmp_path):
        f = put(
            tmp_path,
            "repro/core/mod.py",
            """
            from repro.obs.events import emit

            def f(now_us, diff_us, threshold_us):
                emit("guard_reject", t_us=now_us, node=1, diff_us=diff_us, threshold_us=threshold_us)
            """,
        )
        assert codes(lint_file(f, rules=FLOW)) == []

    def test_pragma_suppresses(self, tmp_path):
        f = put(
            tmp_path,
            "repro/core/mod.py",
            """
            from repro.obs.events import emit

            def f(local_s, diff_us, threshold_us):
                # reprolint: disable-next=E204
                emit("guard_reject", t_us=local_s, node=1, diff_us=diff_us, threshold_us=threshold_us)
            """,
        )
        assert codes(lint_file(f, rules=FLOW)) == []


class TestSchemaSharing:
    """The E-series must consume the same inventory the runtime uses."""

    def test_linter_schema_is_runtime_schema(self):
        from repro.obs import EVENT_SCHEMAS
        from repro.obs.events import EVENT_CATALOG

        lint_view = load_event_schemas()
        assert lint_view is not None
        assert set(lint_view) == set(EVENT_SCHEMAS) == set(EVENT_CATALOG)
        for name, spec in EVENT_SCHEMAS.items():
            assert lint_view[name].required == spec.required
            assert lint_view[name].optional == spec.optional
            assert lint_view[name].t_us == spec.t_us
            assert lint_view[name].node == spec.node


# ---------------------------------------------------------------------------
# R-series: RNG streams
# ---------------------------------------------------------------------------


class TestR301StrayConstruction:
    def test_unseeded_fires_anywhere(self, tmp_path):
        f = put(
            tmp_path,
            "repro/analysis/mod.py",
            """
            import numpy as np

            def f():
                return np.random.default_rng()
            """,
        )
        assert codes(lint_file(f, rules=FLOW)) == ["R301"]

    def test_seeded_in_kernel_package_fires(self, tmp_path):
        f = put(
            tmp_path,
            "repro/network/mod.py",
            """
            import numpy as np

            def f(seed):
                return np.random.default_rng(seed)
            """,
        )
        assert codes(lint_file(f, rules=FLOW)) == ["R301"]

    def test_seeded_in_orchestration_is_clean(self, tmp_path):
        f = put(
            tmp_path,
            "repro/experiments/mod.py",
            """
            import numpy as np

            def f(seed):
                return np.random.default_rng(seed)
            """,
        )
        assert codes(lint_file(f, rules=FLOW)) == []

    def test_rng_factory_module_is_allowlisted(self, tmp_path):
        f = put(
            tmp_path,
            "repro/sim/rng.py",
            """
            import numpy as np

            def stream(seed):
                return np.random.default_rng(seed)
            """,
        )
        assert codes(lint_file(f, rules=FLOW)) == []

    def test_pragma_suppresses(self, tmp_path):
        f = put(
            tmp_path,
            "repro/network/mod.py",
            """
            import numpy as np

            def f(seed):
                return np.random.default_rng(seed)  # reprolint: disable=R301 -- fixture
            """,
        )
        assert codes(lint_file(f, rules=FLOW)) == []


class TestR302SeamCrossing:
    def test_rng_parameter_fires(self, tmp_path):
        f = put(
            tmp_path,
            "repro/protocols/multihop_custom.py",
            """
            class P:
                def __init__(self, node_id, rng):
                    self.node_id = node_id
            """,
        )
        assert codes(lint_file(f, rules=FLOW)) == ["R302"]

    def test_rng_attribute_store_fires(self, tmp_path):
        f = put(
            tmp_path,
            "repro/protocols/multihop_custom.py",
            """
            class P:
                def seed(self, registry):
                    self._rng = registry.stream("p")
            """,
        )
        assert codes(lint_file(f, rules=FLOW)) == ["R302"]

    def test_seam_base_module_is_exempt(self, tmp_path):
        f = put(
            tmp_path,
            "repro/protocols/multihop_base.py",
            """
            class Ctx:
                def __init__(self, slot_rng):
                    self.slot_rng = slot_rng
            """,
        )
        assert codes(lint_file(f, rules=FLOW)) == []

    def test_single_hop_protocols_not_in_scope(self, tmp_path):
        f = put(
            tmp_path,
            "repro/protocols/tsf.py",
            """
            class Tsf:
                def __init__(self, rng):
                    self.rng = rng
            """,
        )
        assert codes(lint_file(f, rules=FLOW)) == []

    def test_pragma_suppresses(self, tmp_path):
        f = put(
            tmp_path,
            "repro/protocols/multihop_custom.py",
            """
            class P:
                def __init__(self, node_id, rng):  # reprolint: disable=R302 -- fixture
                    self.node_id = node_id
            """,
        )
        assert codes(lint_file(f, rules=FLOW)) == []


class TestR303DrawInUnorderedIteration:
    def test_draw_in_set_loop_fires(self, tmp_path):
        f = put(
            tmp_path,
            "repro/network/mod.py",
            """
            def f(rng, members):
                out = {}
                for node in set(members):
                    out[node] = rng.normal()
                return out
            """,
        )
        assert codes(lint_file(f, rules=FLOW)) == ["R303"]

    def test_draw_in_dict_keys_comprehension_fires(self, tmp_path):
        f = put(
            tmp_path,
            "repro/network/mod.py",
            """
            def f(slot_rng, table):
                return [slot_rng.uniform() for k in table.keys()]
            """,
        )
        assert codes(lint_file(f, rules=FLOW)) == ["R303"]

    def test_sorted_iteration_is_clean(self, tmp_path):
        f = put(
            tmp_path,
            "repro/network/mod.py",
            """
            def f(rng, members):
                out = {}
                for node in sorted(set(members)):
                    out[node] = rng.normal()
                return out
            """,
        )
        assert codes(lint_file(f, rules=FLOW)) == []

    def test_non_rng_receiver_is_clean(self, tmp_path):
        f = put(
            tmp_path,
            "repro/network/mod.py",
            """
            def f(sampler, members):
                return [sampler.normal() for m in set(members)]
            """,
        )
        assert codes(lint_file(f, rules=FLOW)) == []

    def test_pragma_suppresses(self, tmp_path):
        f = put(
            tmp_path,
            "repro/network/mod.py",
            """
            def f(rng, members):
                out = {}
                for node in set(members):
                    out[node] = rng.normal()  # reprolint: disable=R303 -- fixture
                return out
            """,
        )
        assert codes(lint_file(f, rules=FLOW)) == []


# ---------------------------------------------------------------------------
# Acceptance-criteria injections (tentpole exit criteria)
# ---------------------------------------------------------------------------


class TestAcceptanceInjections:
    """Each deliberately injected bug class must be caught by the full
    default ruleset, exactly as the CI gate would see it."""

    def test_injected_cross_timebase_addition(self, tmp_path):
        put(
            tmp_path,
            "repro/clocks/mod.py",
            """
            def advance(now_us, horizon_s):
                return now_us + horizon_s
            """,
        )
        findings = lint_paths([tmp_path / "repro"])
        assert "T101" in codes(findings)

    def test_injected_unknown_emit_event(self, tmp_path):
        put(
            tmp_path,
            "repro/core/mod.py",
            """
            from repro.obs.events import emit

            def f(t_us):
                emit("beacon_dropped", t_us=t_us, node=3)
            """,
        )
        findings = lint_paths([tmp_path / "repro"])
        assert "E201" in codes(findings)

    def test_injected_unseeded_rng_at_seam(self, tmp_path):
        put(
            tmp_path,
            "repro/protocols/multihop_custom.py",
            """
            import numpy as np

            class P:
                def __init__(self, node_id):
                    self._rng = np.random.default_rng()
            """,
        )
        findings = lint_paths([tmp_path / "repro"])
        assert {"R301", "R302"} <= set(codes(findings))


# ---------------------------------------------------------------------------
# CLI: --format json
# ---------------------------------------------------------------------------


class TestJsonFormat:
    def test_json_report_is_byte_stable_and_sorted(self, tmp_path, capsys):
        put(
            tmp_path,
            "repro/core/b.py",
            """
            def f(t_us, timeout_s):
                return t_us + timeout_s
            """,
        )
        put(
            tmp_path,
            "repro/core/a.py",
            """
            def g(delay_us, timeout_s):
                return delay_us > timeout_s
            """,
        )
        target = str(tmp_path / "repro")
        assert lint_main([target, "--format", "json"]) == 1
        first = capsys.readouterr().out
        assert lint_main([target, "--format", "json"]) == 1
        second = capsys.readouterr().out
        assert first == second  # byte-identical across runs
        doc = json.loads(first)
        assert doc["version"] == 1
        assert doc["finding_count"] == 2
        paths = [f["path"] for f in doc["findings"]]
        assert paths == sorted(paths)
        assert {f["code"] for f in doc["findings"]} == {"T101", "T102"}

    def test_json_clean_tree(self, tmp_path, capsys):
        put(tmp_path, "repro/core/ok.py", "X = 1\n")
        assert lint_main([str(tmp_path / "repro"), "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["findings"] == [] and doc["finding_count"] == 0

    def test_text_remains_default(self, tmp_path, capsys):
        put(
            tmp_path,
            "repro/core/b.py",
            """
            def f(t_us, timeout_s):
                return t_us + timeout_s
            """,
        )
        assert lint_main([str(tmp_path / "repro")]) == 1
        out = capsys.readouterr().out
        assert "T101" in out and not out.lstrip().startswith("{")

    def test_render_json_trailing_newline(self):
        assert render_json([], 0).endswith("\n")

    def test_list_rules_covers_all_families(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.code in out
        assert len(ALL_RULES) == len(RULES) + len(FLOW_RULES)
