"""Lamport one-time signatures over the 128-bit hash.

The paper assumes (section 3.2) that every station can distribute an
*authenticated* hash-chain anchor - via public-key signatures, symmetric
pre-distribution [11], or non-cryptographic channels [12]. This module
supplies a concrete mechanism in the spirit of the paper's hash-only
philosophy: Lamport's one-time signature scheme, built from the same
one-way function as the chains themselves. A station publishes one
Lamport public key out of band (e.g. at network registration), then uses
its single signature to authenticate its chain anchor - one signature is
exactly what anchor publication needs.

Scheme (for an ``n``-bit message digest): the secret key is ``2n`` random
values; the public key is their hashes; the signature reveals, per digest
bit, the secret for that bit's value. Security reduces to the one-way
function's preimage resistance; the key must never sign twice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.crypto.primitives import HASH_BYTES, constant_time_eq, hash128

#: Bits signed per signature (the digest width of :func:`hash128`).
DIGEST_BITS: int = HASH_BYTES * 8


@dataclass(frozen=True)
class LamportPublicKey:
    """Hashes of every secret value: ``pairs[bit][value in {0, 1}]``."""

    pairs: Tuple[Tuple[bytes, bytes], ...]

    def __post_init__(self) -> None:
        if len(self.pairs) != DIGEST_BITS:
            raise ValueError(f"public key must cover {DIGEST_BITS} bits")

    def fingerprint(self) -> bytes:
        """A single hash committing to the whole public key."""
        return hash128(b"".join(a + b for a, b in self.pairs))


@dataclass(frozen=True)
class LamportSignature:
    """One revealed secret per digest bit."""

    reveals: Tuple[bytes, ...]

    def __post_init__(self) -> None:
        if len(self.reveals) != DIGEST_BITS:
            raise ValueError(f"signature must reveal {DIGEST_BITS} values")


class LamportSigner:
    """Holder of one Lamport key pair; signs exactly once.

    Parameters
    ----------
    rng:
        Entropy source for the secret key.
    """

    def __init__(self, rng: np.random.Generator) -> None:
        self._secrets: List[Tuple[bytes, bytes]] = [
            (
                bytes(rng.integers(0, 256, HASH_BYTES, dtype=np.uint8)),
                bytes(rng.integers(0, 256, HASH_BYTES, dtype=np.uint8)),
            )
            for _ in range(DIGEST_BITS)
        ]
        self.public_key = LamportPublicKey(
            tuple((hash128(s0), hash128(s1)) for s0, s1 in self._secrets)
        )
        self._used = False

    def sign(self, message: bytes) -> LamportSignature:
        """Sign ``message``; a second call raises (one-time property)."""
        if self._used:
            raise RuntimeError(
                "Lamport keys are one-time: signing twice leaks both halves"
            )
        self._used = True
        digest = hash128(message)
        reveals = tuple(
            self._secrets[bit][_bit_of(digest, bit)] for bit in range(DIGEST_BITS)
        )
        return LamportSignature(reveals)


def verify(
    public_key: LamportPublicKey, message: bytes, signature: LamportSignature
) -> bool:
    """Check that ``signature`` signs ``message`` under ``public_key``."""
    digest = hash128(message)
    ok = True
    for bit in range(DIGEST_BITS):
        expected = public_key.pairs[bit][_bit_of(digest, bit)]
        ok &= constant_time_eq(hash128(signature.reveals[bit]), expected)
    return ok


def _bit_of(digest: bytes, bit: int) -> int:
    return (digest[bit // 8] >> (bit % 8)) & 1


class AuthenticatedRegistry:
    """Anchor registry requiring a valid Lamport signature to publish.

    The deployment pre-distributes each station's Lamport *public key*
    (or its fingerprint) by whatever out-of-band trust exists - this is
    the one trusted step the paper also assumes. Chain anchors are then
    publishable over the open channel: the registry verifies the one-time
    signature before accepting.
    """

    def __init__(self) -> None:
        self._public_keys: dict = {}
        self._anchors: Dict[int, Tuple[bytes, int]] = {}

    def enroll(self, node_id: int, public_key: LamportPublicKey) -> None:
        """Pre-distribute a station's Lamport public key (trusted step)."""
        existing = self._public_keys.get(node_id)
        if existing is not None and existing != public_key:
            raise ValueError(f"node {node_id} already enrolled a different key")
        self._public_keys[node_id] = public_key

    def publish(
        self,
        node_id: int,
        anchor: bytes,
        length: int,
        signature: LamportSignature,
    ) -> None:
        """Accept a signed anchor publication over the open channel."""
        public_key = self._public_keys.get(node_id)
        if public_key is None:
            raise PermissionError(f"node {node_id} is not enrolled")
        if not verify(public_key, _anchor_message(node_id, anchor, length), signature):
            raise PermissionError(f"bad anchor signature from node {node_id}")
        existing = self._anchors.get(node_id)
        if existing is not None and existing != (anchor, length):
            raise ValueError(f"node {node_id} attempted to swap its anchor")
        self._anchors[node_id] = (bytes(anchor), int(length))

    def lookup(self, node_id: int) -> Optional[Tuple[bytes, int]]:
        """``(anchor, length)`` or None."""
        return self._anchors.get(node_id)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._anchors


def _anchor_message(node_id: int, anchor: bytes, length: int) -> bytes:
    """Canonical byte encoding of an anchor publication."""
    return b"ANCHOR|%d|%d|" % (node_id, length) + anchor
