"""Frozen job specs: the unit of work of a sweep.

A :class:`JobSpec` is pure data — a job *kind* (a key into the registry
of :mod:`repro.sweep.jobs`) plus a flat parameter mapping — so it can be
pickled into worker processes, hashed into a cache key, and logged. Two
specs built from the same kind and parameters are equal however the
parameters were ordered, which is what makes the cache content-addressed
rather than invocation-addressed.

Seeds follow the scheduling-independence rule: a job that wants a derived
seed gets ``derive_seed(root_seed, job_key)``, a pure function of the
spec itself — never of worker identity, completion order, or wall-clock.
"""

from __future__ import annotations

# Content-addressed cache keys and seed derivation, not a security
# boundary: truncation/digest policy here is owned by the sweep cache
# (salted with version+schema), not by repro.crypto.primitives.
import hashlib  # reprolint: disable=D006 -- cache keys / seed derivation, not crypto
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

#: Parameter values a spec may carry: JSON-representable scalars, or a
#: flat list/tuple of them (normalised to a tuple). Keeping the space
#: this small is what keeps ``job_key`` trivially canonical.
_SCALARS = (str, int, float, bool, type(None))


def _normalize_value(value: Any) -> Any:
    """Validate and freeze one parameter value."""
    if isinstance(value, bool) or value is None or isinstance(value, (str, int, float)):
        return value
    if isinstance(value, (list, tuple)):
        items = tuple(value)
        for item in items:
            if not isinstance(item, _SCALARS):
                raise TypeError(
                    f"sweep params may hold scalars or flat lists of scalars, "
                    f"got nested {type(item).__name__!r}"
                )
        return items
    raise TypeError(
        f"unsupported sweep param type {type(value).__name__!r} "
        "(use str/int/float/bool/None or a flat list of them)"
    )


def canonical_json(obj: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, tuples as lists."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), default=list)


def derive_seed(root_seed: int, job_key: str) -> int:
    """The per-job seed: a pure function of ``(root_seed, job_key)``.

    Independent of worker scheduling by construction — two sweeps over the
    same grid derive the same seeds whatever the worker count or the order
    jobs happen to finish in. The digest is folded to 63 bits so it fits
    every consumer (``np.random.default_rng``, ``RngRegistry``).
    """
    digest = hashlib.sha256(
        f"{root_seed}\x1f{job_key}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def derive_backoff_fraction(spec_hash: str, attempt: int) -> float:
    """A jitter fraction in ``[0, 1)``, pure in ``(spec_hash, attempt)``.

    The retry backoff schedule (:mod:`repro.sweep.failpolicy`) scales its
    exponential delays by this value so concurrent retries de-correlate
    — without drawing from any RNG or reading a clock, which would break
    the rule that nothing in a sweep's behaviour depends on host state.
    """
    digest = hashlib.sha256(
        f"{spec_hash}\x1f{attempt}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


@dataclass(frozen=True)
class JobSpec:
    """One frozen, hashable unit of sweep work.

    Attributes
    ----------
    kind:
        Registry key naming the function that executes this job
        (:func:`repro.sweep.jobs.resolve_job`).
    params:
        Normalised ``(key, value)`` tuple, sorted by key. Build specs via
        :meth:`make` rather than spelling this out.
    root_seed:
        Sweep-level seed the job may derive its own seed from
        (:meth:`derived_seed`); part of the identity (and so of the cache
        key) because it changes the job's output.
    """

    kind: str
    params: Tuple[Tuple[str, Any], ...] = field(default_factory=tuple)
    root_seed: int = 0

    @classmethod
    def make(
        cls,
        kind: str,
        params: Optional[Mapping[str, Any]] = None,
        root_seed: int = 0,
        **extra: Any,
    ) -> "JobSpec":
        """Build a spec from a plain mapping (plus keyword overrides)."""
        merged: Dict[str, Any] = dict(params or {})
        merged.update(extra)
        frozen = tuple(
            (key, _normalize_value(merged[key])) for key in sorted(merged)
        )
        return cls(kind=kind, params=frozen, root_seed=root_seed)

    def params_dict(self) -> Dict[str, Any]:
        """The parameters as a plain dict (tuples back to lists)."""
        return {
            key: list(value) if isinstance(value, tuple) else value
            for key, value in self.params
        }

    @property
    def job_key(self) -> str:
        """Stable, human-greppable identity string of this job."""
        payload = canonical_json(
            {"kind": self.kind, "params": dict(self.params), "root_seed": self.root_seed}
        )
        return f"{self.kind}:{payload}"

    def spec_hash(self, salt: str = "") -> str:
        """SHA-256 of the job key (plus a cache-invalidation ``salt``)."""
        return hashlib.sha256(
            f"{salt}\x1f{self.job_key}".encode("utf-8")
        ).hexdigest()

    def derived_seed(self) -> int:
        """This job's scheduling-independent seed (see :func:`derive_seed`)."""
        return derive_seed(self.root_seed, self.job_key)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready projection (run logs, debugging)."""
        return {
            "kind": self.kind,
            "params": self.params_dict(),
            "root_seed": self.root_seed,
            "hash": self.spec_hash()[:16],
        }
