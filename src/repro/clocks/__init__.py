"""Clock substrate.

IEEE 802.11 nodes carry a free-running hardware oscillator (modelled by
:class:`~repro.clocks.oscillator.HardwareClock`) whose rate deviates from
true time by up to +-0.01% (the tolerance the standard allows and the paper
simulates). TSF manipulates a settable 64-bit microsecond counter driven by
that oscillator (:class:`~repro.clocks.oscillator.TsfTimer`); SSTSP instead
leaves the hardware clock untouched and maintains a piecewise-linear
*adjusted clock* ``c(t) = k * t + b``
(:class:`~repro.clocks.adjusted.AdjustedClock`).

:class:`~repro.clocks.population.ClockPopulation` holds the rates/offsets of
a whole network as numpy arrays for vectorised reads (used by metrics and
the fast lane).
"""

from repro.clocks.oscillator import (
    DEFAULT_DRIFT_PPM,
    HardwareClock,
    TsfTimer,
    sample_rates,
)
from repro.clocks.adjusted import AdjustedClock, ClockSegment, MonotonicityError
from repro.clocks.chain import ClockChain, invert_affine_fixed_point
from repro.clocks.population import ClockPopulation

__all__ = [
    "DEFAULT_DRIFT_PPM",
    "HardwareClock",
    "TsfTimer",
    "sample_rates",
    "AdjustedClock",
    "ClockSegment",
    "MonotonicityError",
    "ClockChain",
    "invert_affine_fixed_point",
    "ClockPopulation",
]
