"""The machine-readable trace-event schema: one spec per event kind.

This module is the *single source of truth* for what a trace record may
contain. Three consumers read it:

* :mod:`repro.obs.events` derives :data:`~repro.obs.events.EVENT_CATALOG`
  (event name -> owning subsystem) from it, so the runtime bus and this
  schema can never disagree on the event inventory;
* :func:`repro.obs.events.read_events` validates records against it when
  asked (``validate=True``), rejecting unknown events, missing required
  payload keys and undeclared extras;
* the reprolint **E-series** rules (``docs/static-analysis.md``) check
  every ``emit()`` call site in the tree against it *statically*, so a
  drifting call site fails CI before it ever produces a malformed trace.

The module is deliberately **pure stdlib with no intra-package imports**:
the linter loads it by file location (without executing ``repro.obs``'s
``__init__``), so it must import cleanly on a bare interpreter.

Field-presence vocabulary (:class:`EventSpec`): the envelope keys
``t_us`` and ``node`` are per-event ``"required"`` / ``"optional"`` /
``"absent"`` — e.g. ``coarse_done`` declares ``t_us`` absent because the
coarse layer sees offsets, not a clock, while ``fault_applied`` declares
it optional (an unbound injector has no runner to take time from).
Payload fields are either required or optional by name. All time-valued
payload fields are **microseconds** (suffix ``_us``) — the trace schema
has a single unit domain, which is exactly what the lint E204 rule
enforces at call sites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

#: Schema version of the JSONL record format; re-exported (and compared
#: against trace headers) by :mod:`repro.obs.events`. Lives here so the
#: version and the event inventory travel together.
TRACE_SCHEMA_VERSION: int = 1

#: Envelope keys every record carries regardless of event kind.
ENVELOPE_KEYS: Tuple[str, ...] = ("event", "seq")

#: Allowed presence states for the ``t_us`` / ``node`` envelope fields.
_PRESENCE = ("required", "optional", "absent")


@dataclass(frozen=True)
class EventSpec:
    """Schema of one trace-event kind.

    Attributes
    ----------
    subsystem:
        Dotted owner, e.g. ``"core.guard"`` — the catalog value.
    timebase:
        Which clock stamps ``t_us``: ``"true"`` (simulated wall clock),
        ``"local"`` (the acting station's adjusted clock) or ``"none"``
        (the event carries no clock reading). Documentation plus the
        anchor for the lint unit checks: every time-valued field of
        every event is microseconds.
    t_us / node:
        Presence of the envelope fields: ``"required"``, ``"optional"``
        or ``"absent"``.
    required:
        Payload keys every record of this kind must carry.
    optional:
        Payload keys a record of this kind may carry.
    """

    subsystem: str
    timebase: str
    t_us: str = "required"
    node: str = "required"
    required: Tuple[str, ...] = ()
    optional: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.timebase not in ("true", "local", "none"):
            raise ValueError(f"bad timebase {self.timebase!r}")
        if self.t_us not in _PRESENCE or self.node not in _PRESENCE:
            raise ValueError("t_us/node must be required|optional|absent")
        if self.timebase == "none" and self.t_us != "absent":
            raise ValueError("timebase 'none' requires t_us='absent'")

    def allowed_keys(self) -> Tuple[str, ...]:
        """Every key a record of this kind may legally carry."""
        keys = list(ENVELOPE_KEYS) + list(self.required) + list(self.optional)
        if self.t_us != "absent":
            keys.append("t_us")
        if self.node != "absent":
            keys.append("node")
        return tuple(keys)


#: The event schema catalog, insertion-ordered to match the docs table.
#: Adding an event or an *optional* field is backward compatible; a
#: renamed/removed field or event, or a changed timebase, is breaking
#: and bumps :data:`TRACE_SCHEMA_VERSION`.
EVENT_SCHEMAS: Dict[str, EventSpec] = {
    "beacon_tx": EventSpec(
        subsystem="network",
        timebase="true",
        required=("period", "proto"),
        optional=("hop",),
    ),
    "beacon_rx": EventSpec(
        subsystem="network",
        timebase="true",
        required=("src", "period", "proto"),
        optional=("hop",),
    ),
    "contention_win": EventSpec(
        subsystem="mac.contention",
        timebase="true",
        required=("contenders",),
        optional=("collisions",),
    ),
    "guard_reject": EventSpec(
        subsystem="core.guard",
        timebase="local",
        required=("diff_us", "threshold_us"),
    ),
    "mutesla_defer": EventSpec(
        subsystem="crypto.mutesla",
        timebase="local",
        required=("sender", "interval"),
    ),
    "mutesla_auth": EventSpec(
        subsystem="crypto.mutesla",
        timebase="local",
        required=("sender", "interval"),
    ),
    "mutesla_reject": EventSpec(
        subsystem="crypto.mutesla",
        timebase="local",
        required=("sender", "interval", "reason"),
    ),
    "reference_change": EventSpec(
        subsystem="network",
        timebase="true",
        node="absent",
        required=("old_ref", "new_ref", "period"),
    ),
    "coarse_done": EventSpec(
        subsystem="core.coarse",
        timebase="none",
        t_us="absent",
        required=("samples", "survivors", "offset_us"),
    ),
    "coarse_retry": EventSpec(
        subsystem="core.coarse",
        timebase="none",
        t_us="absent",
        required=("samples", "survivors"),
    ),
    "fault_applied": EventSpec(
        subsystem="faults",
        timebase="true",
        t_us="optional",
        node="absent",
        required=("period", "detail"),
    ),
    "churn_leave": EventSpec(
        subsystem="network.churn",
        timebase="true",
        required=("period",),
    ),
    "churn_return": EventSpec(
        subsystem="network.churn",
        timebase="true",
        required=("period",),
    ),
}


def validate_record(record: Mapping[str, Any]) -> Optional[str]:
    """Check one trace record against the schema; None when it conforms.

    Returns a human-readable problem description otherwise. The
    ``trace_header`` pseudo-record is always accepted (its version gate
    lives in :func:`repro.obs.events.read_events`). This is the *strict*
    reading used by ``read_events(validate=True)`` and the trace CLI —
    forward-compatible consumers that must tolerate newer producers
    should keep validation off and skip unknown events instead.
    """
    event = record.get("event")
    if not isinstance(event, str):
        return "record has no string 'event' key"
    if event == "trace_header":
        return None
    spec = EVENT_SCHEMAS.get(event)
    if spec is None:
        return f"unknown event {event!r}"
    if "seq" not in record:
        return f"{event}: missing 'seq'"
    if spec.t_us == "required" and "t_us" not in record:
        return f"{event}: missing required 't_us'"
    if spec.t_us == "absent" and "t_us" in record:
        return f"{event}: carries 't_us' but the schema declares none"
    if spec.node == "required" and "node" not in record:
        return f"{event}: missing required 'node'"
    if spec.node == "absent" and "node" in record:
        return f"{event}: carries 'node' but the schema declares none"
    missing = [key for key in spec.required if key not in record]
    if missing:
        return f"{event}: missing required field(s) {', '.join(missing)}"
    allowed = set(spec.allowed_keys())
    extras = sorted(key for key in record if key not in allowed)
    if extras:
        return f"{event}: undeclared field(s) {', '.join(extras)}"
    return None


# Internal consistency: payload field names never collide with the
# envelope, and every time-valued field is microsecond-suffixed (the
# single-unit-domain property E204 leans on).
for _name, _spec in EVENT_SCHEMAS.items():
    _fields = _spec.required + _spec.optional
    assert not set(_fields) & {"event", "seq", "t_us", "node"}, _name
    assert all(
        not f.endswith(("_s", "_ms", "_tu")) for f in _fields
    ), f"{_name}: non-microsecond time field"
del _name, _spec, _fields
