"""Content-addressed on-disk result cache.

Entries are keyed by ``JobSpec.spec_hash(salt)`` where the salt carries
the package version plus a cache schema number: bumping either (a code
change that alters simulation results, or a change to what jobs return)
silently invalidates every stale entry — old files are simply never
addressed again. Values are arbitrary picklable job results (numpy-backed
traces included); writes go through a temp file + ``os.replace`` so a
crashed or concurrent writer can never leave a truncated entry behind.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

from repro._version import __version__
from repro.sweep.spec import JobSpec

#: Bump when the *shape* of cached job results changes (fields added to a
#: result payload, units changed, ...) without a package version bump.
CACHE_SCHEMA_VERSION = 1

#: The invalidation salt mixed into every cache key.
CACHE_SALT = f"repro-{__version__}-schema{CACHE_SCHEMA_VERSION}"

#: Default cache location of the experiment CLIs (overridable with
#: ``--cache-dir`` / ``SSTSP_SWEEP_CACHE``).
DEFAULT_CACHE_DIR = os.path.join("results", "sweep-cache")


@dataclass
class CacheStats:
    """Hit/miss counters over the life of one cache handle."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt: int = 0


@dataclass
class ResultCache:
    """Pickle-backed content-addressed cache rooted at ``root``."""

    root: str
    salt: str = CACHE_SALT
    stats: CacheStats = field(default_factory=CacheStats)

    def path_for(self, spec: JobSpec) -> str:
        """Entry path: two-level fan-out keeps directories small."""
        digest = spec.spec_hash(self.salt)
        return os.path.join(self.root, digest[:2], f"{digest}.pkl")

    def get(self, spec: JobSpec) -> Tuple[bool, Optional[Any]]:
        """``(hit, value)`` for ``spec``; unreadable entries count as misses.

        A file that exists but cannot be unpickled — truncated by a
        crashed host, bit-rotted, or written by an incompatible pickle —
        is *deleted* and reported as a miss, so the orchestrator simply
        re-executes the job and overwrites the entry; a corrupt cache
        can degrade a sweep's speed but never its outcome.
        """
        path = self.path_for(spec)
        try:
            fh = open(path, "rb")
        except OSError:
            self.stats.misses += 1
            return False, None
        try:
            with fh:
                value = pickle.load(fh)
        except Exception:
            # Any unpickling failure means the entry is unusable; drop
            # it so the slot is rebuilt from a fresh execution.
            self.stats.corrupt += 1
            self.stats.misses += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return False, None
        self.stats.hits += 1
        return True, value

    def put(self, spec: JobSpec, value: Any) -> str:
        """Store ``value`` for ``spec`` atomically; returns the entry path."""
        path = self.path_for(spec)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".tmp-", suffix=".pkl"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.writes += 1
        return path
