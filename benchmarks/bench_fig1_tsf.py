"""Fig. 1 bench: TSF max clock difference vs network size.

Reduced scale (60 s instead of 1000 s); the shape under test is the
paper's scalability claim: the error grows with N and sits far above the
25 us industry threshold, driven by fastest-node starvation and beacon
collisions.
"""

from __future__ import annotations

from conftest import paper_rows

from repro.analysis.metrics import INDUSTRY_THRESHOLD_US
from repro.experiments.scenarios import quick_spec
from repro.fastlane import run_tsf_vectorized


def _run_fig1():
    results = {}
    for n in (100, 300):
        results[n] = run_tsf_vectorized(quick_spec(n, seed=1, duration_s=60.0))
    return results


def test_fig1_tsf_scalability(benchmark):
    results = benchmark.pedantic(_run_fig1, rounds=1, iterations=1)
    err = {n: r.trace.steady_state_error_us() for n, r in results.items()}
    peak = {n: r.trace.peak_error_us() for n, r in results.items()}
    above = {
        n: float((r.trace.max_diff_us > INDUSTRY_THRESHOLD_US).mean())
        for n, r in results.items()
    }
    # paper shape: error grows with N, far above the 25 us expectation
    assert err[300] > err[100]
    assert results[300].collisions > results[100].collisions
    assert above[100] > 0.5 and above[300] > 0.5
    paper_rows(
        benchmark,
        "fig1: TSF max clock difference",
        [
            f"N={n}: steady={err[n]:.1f}us peak={peak[n]:.1f}us "
            f"above-25us={above[n] * 100:.0f}% "
            f"(paper: grows with N, 100s-1000s of us at 1000 s horizon)"
            for n in sorted(results)
        ],
    )
