"""Differential parity: event-driven Simulator lane vs vectorised lane.

The OO lane (:mod:`repro.network`, driven by the discrete-event
``Simulator``) is the readable reference; ``repro.fastlane.sstsp_vec`` is
the production engine every experiment sweeps with. The two lanes consume
their RNG streams differently, so traces are not bit-equal — but on the
same scenario they must tell the same story: the stabilised (tail) sync
error agrees within a tight tolerance and the number of observed
reference changes matches exactly. Three shared scenarios pin this down:
a plain IBSS, one bootstrapping from Table 1's ±112 us initial offsets,
and one with the paper churn pattern whose reference departs at 300 s
(both lanes must re-elect exactly once).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.analysis.metrics import TraceRecorder
from repro.fastlane import run_sstsp_vectorized
from repro.multihop.runner import MultiHopSpec, degenerate_scenario, run_multihop
from repro.multihop.topology import Topology
from repro.network.churn import REFERENCE_MARKER, ChurnEvent, ChurnSchedule
from repro.network.ibss import ScenarioSpec, build_network, build_sstsp_network
from repro.obs import observe_run, tracing_enabled

#: The shared scenarios: (id, spec, relative tail tolerance).
SCENARIOS = [
    (
        "plain-n30",
        ScenarioSpec(n=30, seed=3, duration_s=30.0),
        0.10,
    ),
    (
        "offsets-n40",
        ScenarioSpec(n=40, seed=2, duration_s=30.0, initial_offset_us=112.0),
        0.10,
    ),
    (
        "churn-ref-departure-n16",
        ScenarioSpec(n=16, seed=5, duration_s=320.0, churn="paper"),
        0.15,
    ),
]


def _run_both(spec: ScenarioSpec):
    oo = build_network("sstsp", spec).run()
    vec = run_sstsp_vectorized(spec)
    return oo, vec


@pytest.mark.parametrize(
    "spec,rel_tol",
    [s[1:] for s in SCENARIOS],
    ids=[s[0] for s in SCENARIOS],
)
class TestDifferentialParity:
    def test_tail_error_agrees(self, spec, rel_tol):
        oo, vec = _run_both(spec)
        oo_tail = oo.trace.steady_state_error_us()
        vec_tail = vec.trace.steady_state_error_us()
        assert vec_tail == pytest.approx(oo_tail, rel=rel_tol)
        # both lanes land inside the paper's accuracy claim
        assert oo_tail < 10.0 and vec_tail < 10.0

    def test_reference_change_count_matches(self, spec, rel_tol):
        oo, vec = _run_both(spec)
        assert (
            oo.trace.reference_changes() == vec.trace.reference_changes()
        ), "lanes disagree on how many reference hand-offs happened"


def test_churn_scenario_actually_reelects():
    """Guard the third scenario's purpose: its reference really departs,
    so a parity pass there covers the re-election path, not just steady
    state."""
    spec = SCENARIOS[2][1]
    vec = run_sstsp_vectorized(spec)
    assert vec.trace.reference_changes() >= 1
    assert any("left" in event for event in vec.events)


def _trace_arrays(trace):
    arrays = [
        trace.times_us,
        trace.max_diff_us,
        trace.mean_vs_true_us,
        trace.present_counts,
        trace.reference_ids,
    ]
    if trace.values_us is not None:
        arrays.append(trace.values_us)
    return arrays


def _assert_bit_identical(a, b):
    for left, right in zip(_trace_arrays(a), _trace_arrays(b)):
        assert np.array_equal(left, right, equal_nan=True)


class TestTracingParity:
    """The event bus must be a strict no-op for results: ``emit`` draws
    no randomness, reads no clock and mutates no simulation state, so a
    traced run is *bit-identical* to an untraced one — not merely close.
    This is the property that lets every lane stay instrumented."""

    SPEC = ScenarioSpec(n=10, seed=4, duration_s=10.0)

    def test_oo_lane_bit_identical_with_tracing(self, tmp_path):
        plain = build_network("sstsp", self.SPEC).run()
        assert not tracing_enabled()
        with observe_run(str(tmp_path / "oo.jsonl")) as obs:
            traced = build_network("sstsp", self.SPEC).run()
        assert not tracing_enabled()
        _assert_bit_identical(plain.trace, traced.trace)
        assert plain.successful_beacons == traced.successful_beacons
        assert obs.event_count > 0, "instrumented run produced no events"

    def test_vec_lane_bit_identical_with_tracing(self):
        plain = run_sstsp_vectorized(self.SPEC)
        with observe_run() as obs:
            traced = run_sstsp_vectorized(self.SPEC)
        _assert_bit_identical(plain.trace, traced.trace)
        assert obs.event_count > 0

    def test_multihop_lane_bit_identical_with_tracing(self):
        spec = MultiHopSpec(
            topology=Topology.chain(6), seed=3, duration_s=8.0
        )
        plain = run_multihop(spec)
        with observe_run() as obs:
            traced = run_multihop(spec)
        _assert_bit_identical(plain.trace, traced.trace)
        assert plain.per_hop_error_us == traced.per_hop_error_us
        assert plain.beacons_sent == traced.beacons_sent
        assert obs.event_count > 0

    def test_traced_rerun_is_trace_stable(self, tmp_path):
        """Two traced runs of the same seed produce byte-identical
        JSONL — the per-run guarantee behind the golden fixture."""
        paths = [str(tmp_path / f"run{i}.jsonl") for i in (1, 2)]
        for path in paths:
            with observe_run(path):
                build_network("sstsp", self.SPEC).run()
        with open(paths[0], "rb") as a, open(paths[1], "rb") as b:
            assert a.read() == b.read()


def _run_reference_lane(spec: MultiHopSpec):
    """The single-hop lane built exactly as the multi-hop delegation does."""
    scenario, config = degenerate_scenario(spec)
    runner = build_sstsp_network(scenario, config=config)
    runner.params = replace(runner.params, keep_values=True)
    runner.recorder = TraceRecorder(keep_values=True)
    if spec.churn is not None and len(spec.churn):
        runner.set_churn(spec.churn)
    return runner.run()


class TestMultiHopDegenerateParity:
    """A complete-graph multi-hop spec must reproduce the single-hop
    lane's decisions *exactly*: same reference elections, same per-period
    adjustment trace. The multi-hop runner delegates through
    :func:`degenerate_scenario`, so any drift between the lanes (RNG
    stream names, protocol constants, churn plumbing) breaks bit-parity
    here."""

    def test_complete_graph_matches_reference_lane(self):
        spec = MultiHopSpec(
            topology=Topology.full_mesh(14), seed=3, duration_s=20.0
        )
        mh = run_multihop(spec)
        ref = _run_reference_lane(spec)
        # Election decisions: identical winner per period.
        assert np.array_equal(
            mh.trace.reference_ids, ref.trace.reference_ids
        ), "lanes disagree on reference election"
        # Adjustment decisions: the per-period max-offset trace is the
        # same runner under the hood, so it must match to the float.
        assert np.allclose(
            mh.trace.max_diff_us, ref.trace.max_diff_us, rtol=0.0, atol=1e-9
        )
        assert mh.root_changes == ref.trace.reference_changes()
        assert mh.beacons_sent == ref.successful_beacons
        # All stations sit at hop 1 from the elected root.
        assert mh.max_hop() == 1
        assert mh.trace.steady_state_error_us() < 10.0

    def test_complete_graph_with_churn_matches_reference_lane(self):
        churn = ChurnSchedule(
            (
                ChurnEvent(60, "leave", (REFERENCE_MARKER,)),
                ChurnEvent(120, "return", (REFERENCE_MARKER,)),
            )
        )
        spec = MultiHopSpec(
            topology=Topology.full_mesh(10),
            seed=5,
            duration_s=30.0,
            churn=churn,
        )
        mh = run_multihop(spec)
        ref = _run_reference_lane(spec)
        assert np.array_equal(mh.trace.reference_ids, ref.trace.reference_ids)
        assert np.allclose(
            mh.trace.max_diff_us, ref.trace.max_diff_us, rtol=0.0, atol=1e-9
        )
        # The marker departure really forces a re-election in both lanes.
        assert mh.root_changes == ref.trace.reference_changes() >= 1
        assert mh.root == int(
            ref.trace.reference_ids[ref.trace.reference_ids >= 0][-1]
        )
