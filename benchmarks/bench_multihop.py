"""Extension bench: multi-hop SSTSP (the paper's future work).

Measures the error-vs-hop-distance profile on a chain and checks the
extension's qualitative contract: hop-1 at single-hop accuracy, smooth
(amplifying) growth with depth, all stations synchronized well inside a
beacon period.
"""

from __future__ import annotations

import numpy as np

from conftest import paper_rows

from repro.multihop import MultiHopRunner, MultiHopSpec, Topology


def _run_chain():
    spec = MultiHopSpec(topology=Topology.chain(15), seed=3, duration_s=30.0, m=8)
    return MultiHopRunner(spec).run()


def test_multihop_chain_profile(benchmark):
    result = benchmark.pedantic(_run_chain, rounds=1, iterations=1)
    errors = result.per_hop_error_us
    assert set(errors) == set(range(1, 15))
    assert errors[1] < 10.0                      # single-hop accuracy
    assert errors[14] > errors[1]                # amplification with depth
    assert max(errors.values()) < 10_000.0       # inside 10% of a BP
    paper_rows(
        benchmark,
        "multihop: error vs hop distance (chain of 15)",
        [f"hop {h}: {errors[h]:.1f}us" for h in sorted(errors)],
    )


def test_multihop_unit_disk(benchmark):
    def run_disk():
        topology = Topology.unit_disk(
            40, np.random.default_rng(5), area_m=1_000.0, radius_m=300.0
        )
        spec = MultiHopSpec(topology=topology, seed=3, duration_s=30.0)
        return MultiHopRunner(spec).run()

    result = benchmark.pedantic(run_disk, rounds=1, iterations=1)
    # whole deployment synchronized (the odd straggler may be re-acquiring)
    assert result.trace.present_counts[-1] >= 38
    assert result.per_hop_error_us[1] < 10.0
    paper_rows(
        benchmark,
        "multihop: unit-disk 40 stations",
        [
            f"hop {h}: {v:.1f}us"
            for h, v in sorted(result.per_hop_error_us.items())
        ],
    )
