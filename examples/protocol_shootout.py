#!/usr/bin/env python
"""Protocol shootout: every synchronization scheme in the library, head to
head on the same network.

Runs TSF, ATSP, TATSP, SATSF, the Rentel-Kunz controlled-clock scheme and
SSTSP on identical clock populations and channel conditions, then ranks
them by steady-state accuracy and reports beacon-traffic statistics - the
related-work comparison of the paper's section 2 as a runnable table.

A second table takes the comparison multi-hop: every registered
MultiHopProtocol (SSTSP relaying, Huan-style beaconless dissemination,
Hu-Servetto-style cooperative averaging) on the same 4x4 grid topology -
the standing shootout of ``python -m repro shootout``, in miniature.

Run:  python examples/protocol_shootout.py [n_nodes] [duration_s]
"""

import sys

from repro.multihop import MultiHopSpec, Topology
from repro.multihop.runner import run_multihop
from repro.network.ibss import ScenarioSpec, build_network
from repro.protocols.multihop_base import (
    available_multihop_protocols,
    resolve_multihop_protocol,
)

PROTOCOLS = ("tsf", "atsp", "tatsp", "satsf", "rentel", "sstsp")


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    duration = float(sys.argv[2]) if len(sys.argv) > 2 else 40.0
    spec = ScenarioSpec(n=n, seed=11, duration_s=duration)

    print(f"shootout: {n} stations, {duration:.0f} s, +-100 ppm oscillators, "
          "identical seeds\n")
    rows = []
    for name in PROTOCOLS:
        result = build_network(name, spec).run()
        trace = result.trace
        stats = result.channel.stats
        rows.append(
            (
                name,
                trace.steady_state_error_us(),
                trace.peak_error_us(),
                result.successful_beacons,
                stats.collisions,
                stats.bytes_on_air,
            )
        )

    rows.sort(key=lambda r: r[1])
    header = (f"{'protocol':<8} {'steady (us)':>12} {'peak (us)':>10} "
              f"{'beacons':>8} {'collisions':>10} {'bytes on air':>13}")
    print(header)
    print("-" * len(header))
    for name, steady, peak, beacons, collisions, bytes_on_air in rows:
        print(f"{name:<8} {steady:>12.2f} {peak:>10.1f} {beacons:>8} "
              f"{collisions:>10} {bytes_on_air:>13}")

    best = rows[0][0]
    tsf_steady = next(r[1] for r in rows if r[0] == "tsf")
    best_steady = rows[0][1]
    print(f"\nwinner: {best} "
          f"({tsf_steady / best_steady:.0f}x tighter than plain TSF)")
    print("note: ATSP/TATSP/SATSF narrow TSF's gap by prioritising fast "
          "stations; SSTSP removes the contention from the steady state "
          "entirely (the paper's design argument, section 3.1)")

    print("\nmulti-hop shootout: 4x4 grid, same seeds, every registered "
          "MultiHopProtocol\n")
    mh_rows = []
    for name in available_multihop_protocols():
        spec_mh = MultiHopSpec(
            topology=Topology.grid(4, 4), seed=11,
            duration_s=min(duration, 20.0), protocol=name,
        )
        result = run_multihop(spec_mh)
        per_hop = result.per_hop_error_us
        deepest = per_hop[max(per_hop)] if per_hop else float("nan")
        mh_rows.append(
            (
                name,
                result.trace.steady_state_error_us(),
                deepest,
                result.beacons_sent,
                result.beacons_sent
                * resolve_multihop_protocol(name).beacon_bytes,
            )
        )
    mh_rows.sort(key=lambda r: r[1])
    header = (f"{'protocol':<10} {'steady (us)':>12} {'deepest hop (us)':>17} "
              f"{'beacons':>8} {'bytes on air':>13}")
    print(header)
    print("-" * len(header))
    for name, steady, deepest, beacons, bytes_on_air in mh_rows:
        print(f"{name:<10} {steady:>12.2f} {deepest:>17.2f} {beacons:>8} "
              f"{bytes_on_air:>13}")
    print("\nnote: the full scenario suite with seed replicas and CIs is "
          "`python -m repro shootout` / `python -m repro analyze shootout`")


if __name__ == "__main__":
    main()
