"""Unit tests for the TSF protocol driver."""

import numpy as np
import pytest

from repro.clocks.oscillator import HardwareClock, TsfTimer
from repro.protocols.base import ClockKind, RxContext
from repro.protocols.tsf import TsfConfig, TsfProtocol
from repro.sim.units import S


def make_protocol(seed=0, **config_kw):
    config = TsfConfig(**config_kw)
    timer = TsfTimer(HardwareClock())
    proto = TsfProtocol(1, timer, config, np.random.default_rng(seed))
    return proto, timer, config


class TestTsfConfig:
    def test_defaults_match_paper(self):
        config = TsfConfig()
        assert config.beacon_period_us == 0.1 * S
        assert config.w == 30
        assert config.slot_time_us == 9.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TsfConfig(beacon_period_us=0)
        with pytest.raises(ValueError):
            TsfConfig(w=-1)
        with pytest.raises(ValueError):
            TsfConfig(slot_time_us=0)


class TestTsfProtocol:
    def test_always_contends_with_slot_delay(self):
        proto, _, config = make_protocol()
        intents = [proto.begin_period(m) for m in range(1, 200)]
        assert all(i is not None for i in intents)
        for m, intent in enumerate(intents, start=1):
            assert intent.clock is ClockKind.TSF
            delay = intent.local_time - m * config.beacon_period_us
            assert 0 <= delay <= config.w * config.slot_time_us
            assert delay % config.slot_time_us == pytest.approx(0.0)

    def test_slot_draws_cover_window(self):
        proto, _, config = make_protocol()
        delays = {
            proto.begin_period(m).local_time - m * config.beacon_period_us
            for m in range(1, 2000)
        }
        assert len(delays) == config.w + 1

    def test_frame_timestamp_is_floor_of_timer(self):
        proto, timer, _ = make_protocol()
        timer.set_forward_from_hw(1_000.7, hw_time=500.0)
        frame = proto.make_frame(hw_time=500.0, period=1)
        assert frame.timestamp_us == 1_000.0
        assert frame.sender == 1
        assert frame.size_bytes == 56
        assert proto.beacons_sent == 1

    def test_adopts_later_timestamp(self):
        proto, timer, _ = make_protocol()
        rx = RxContext(true_time=100.0, hw_time=100.0, est_timestamp=500.0, period=1)
        proto.on_beacon(None, rx)
        assert proto.adoptions == 1
        assert timer.raw_from_hw(100.0) == pytest.approx(500.0)

    def test_ignores_earlier_timestamp(self):
        proto, timer, _ = make_protocol()
        rx = RxContext(true_time=100.0, hw_time=100.0, est_timestamp=50.0, period=1)
        proto.on_beacon(None, rx)
        assert proto.adoptions == 0
        assert timer.raw_from_hw(100.0) == pytest.approx(100.0)

    def test_synchronized_time_is_timer(self):
        proto, timer, _ = make_protocol()
        timer.set_forward_from_hw(700.0, hw_time=300.0)
        assert proto.synchronized_time(300.0) == pytest.approx(700.0)

    def test_never_steps_backward(self):
        # the TSF guarantee: whatever beacons arrive, time never decreases
        proto, timer, _ = make_protocol()
        rng = np.random.default_rng(5)
        previous = -1.0
        for hw in np.arange(0.0, 10_000.0, 100.0):
            est = float(rng.uniform(-5_000, 5_000)) + hw
            proto.on_beacon(None, RxContext(hw, hw, est, 1))
            now = proto.synchronized_time(hw)
            assert now >= previous
            previous = now
