"""Section 5's side claim: the improved TSF variants fall to the same attack.

"Other protocols improving TSF are also vulnerable to the attack because
they depend on the fast nodes to spread the timing information." The
bench runs the channel attacker against TSF, ATSP and SATSF and checks
that all of them desynchronize while SSTSP (same seed, same window) does
not.
"""

from __future__ import annotations

from conftest import paper_rows

from repro.experiments.scenarios import quick_spec
from repro.fastlane import run_sstsp_vectorized
from repro.network.ibss import AttackerSpec, build_network
from repro.sim.units import S


def _attack_spec():
    return quick_spec(
        30, seed=5, duration_s=40.0,
        attacker=AttackerSpec(start_s=10.0, end_s=30.0),
    )


def _phases(trace):
    return (
        float(trace.window(5 * S, 10 * S).max_diff_us.max()),
        float(trace.window(12 * S, 30 * S).max_diff_us.max()),
    )


def test_improved_tsf_variants_also_fall(benchmark):
    def run_all():
        results = {}
        for name in ("tsf", "atsp", "satsf", "tatsp"):
            results[name] = _phases(
                build_network(name, _attack_spec()).run().trace
            )
        results["sstsp"] = _phases(run_sstsp_vectorized(_attack_spec()).trace)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for name in ("tsf", "atsp", "satsf", "tatsp"):
        before, during = results[name]
        assert during > 4 * before, f"{name} should desynchronize"
        assert during > 500.0
    before, during = results["sstsp"]
    assert during < 100.0  # the whole point
    paper_rows(
        benchmark,
        "attack vs every protocol (before -> during, us)",
        [
            f"{name}: {before:.0f} -> {during:.0f}"
            for name, (before, during) in results.items()
        ],
    )
