"""Unit-domain inference for the timebase-flow (T-series) rules.

SSTSP mixes three time representations on purpose — TU-granular TSF
timestamps, microsecond offsets and clock readings, second-valued
scenario knobs — and its error bounds only hold when values cross
between them through the declared conversions (``sim.units``,
``ClockChain``), never by raw arithmetic. This module infers a *unit
domain* for an expression so the T-series rules can flag raw crossings:

* identifier suffixes: ``*_us`` -> ``us``, ``*_ms`` -> ``ms``,
  ``*_s`` -> ``s``, ``*_tu`` -> ``tu`` (the repo-wide naming convention
  the existing D004 rule already leans on);
* explicit annotations: ``Annotated[float, "us"]`` on a parameter;
* conversion calls: ``us_to_s(...)`` is seconds, ``s_to_us(...)`` is
  microseconds, and the :class:`~repro.clocks.chain.ClockChain` /
  :func:`~repro.clocks.chain.invert_affine_fixed_point` surface always
  returns microseconds.

Inference is deliberately conservative — multiplication and division
erase the domain (``duration_s * 1e6`` is a legitimate manual rescale,
and dimensional analysis is out of scope), so only expressions whose
unit is *known on both sides* can ever be flagged. A variable that
merely *holds* a time value under a unitless name is invisible, exactly
like D003's variable-holding-a-set blind spot; see
``docs/static-analysis.md`` for the full limitation list.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Tuple

#: Recognised unit domains, by identifier suffix.
UNIT_SUFFIXES: Tuple[Tuple[str, str], ...] = (
    ("_us", "us"),
    ("_ms", "ms"),
    ("_tu", "tu"),
    ("_s", "s"),
)

#: The explicit-annotation spellings accepted inside ``Annotated[...]``.
KNOWN_UNITS = frozenset({"us", "ms", "s", "tu"})

#: Call leaves with a known return domain: the ``sim.units`` converters
#: plus the ClockChain / fixed-point-inversion surface (every clock in
#: the simulator reads in microseconds).
CALL_RETURN_UNITS: Dict[str, str] = {
    "us_to_s": "s",
    "s_to_us": "us",
    "hw_at": "us",
    "adjusted_at": "us",
    "true_at_hw": "us",
    "true_at_adjusted": "us",
    "true_time_at": "us",
    "read_current": "us",
    "synchronized_time": "us",
    "synchronized_time_at": "us",
    "scheduled_true_time": "us",
    "sample_timestamp_error": "us",
    "invert_affine_fixed_point": "us",
}

#: Call leaves with known per-parameter units, checkable even when the
#: callee's module is outside the linted path set (``sim.units`` is the
#: canonical conversion seam).
CALL_PARAM_UNITS: Dict[str, Tuple[Optional[str], ...]] = {
    "us_to_s": ("us",),
    "s_to_us": ("s",),
}

#: Numeric built-ins that pass their argument's domain through.
_TRANSPARENT_CALLS = frozenset({"float", "abs", "round", "min", "max"})


def unit_of_identifier(name: str) -> Optional[str]:
    """The unit domain a bare identifier's suffix declares, if any."""
    for suffix, unit in UNIT_SUFFIXES:
        if name.endswith(suffix) and name != suffix:
            return unit
    return None


def unit_of_annotation(annotation: Optional[ast.expr]) -> Optional[str]:
    """The unit an ``Annotated[<type>, "<unit>"]`` annotation declares."""
    if not isinstance(annotation, ast.Subscript):
        return None
    base = annotation.value
    leaf = base.id if isinstance(base, ast.Name) else getattr(base, "attr", None)
    if leaf != "Annotated":
        return None
    inner = annotation.slice
    elements = inner.elts if isinstance(inner, ast.Tuple) else [inner]
    for element in elements:
        if isinstance(element, ast.Constant) and element.value in KNOWN_UNITS:
            return str(element.value)
    return None


def annotated_param_units(
    func: ast.AST,
) -> Dict[str, str]:
    """Parameter name -> unit for one function's explicit annotations."""
    units: Dict[str, str] = {}
    args = getattr(func, "args", None)
    if args is None:
        return units
    for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
        unit = unit_of_annotation(arg.annotation)
        if unit is not None:
            units[arg.arg] = unit
    return units


def call_leaf(node: ast.Call) -> Optional[str]:
    """The rightmost name of a call's callee (``chain.hw_at`` -> ``hw_at``)."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def unit_of_expr(
    node: ast.expr, env: Optional[Dict[str, str]] = None
) -> Optional[str]:
    """Infer the unit domain of an expression; None when unknown.

    ``env`` maps in-scope names to explicitly annotated units (see
    :func:`annotated_param_units`); identifier suffixes apply either
    way. An Add/Sub whose operands *conflict* infers to None — the
    T101 rule reports the conflict at that node, and refusing to pick
    a side keeps enclosing expressions from double-reporting.
    """
    if isinstance(node, ast.Name):
        if env and node.id in env:
            return env[node.id]
        return unit_of_identifier(node.id)
    if isinstance(node, ast.Attribute):
        return unit_of_identifier(node.attr)
    if isinstance(node, ast.Call):
        leaf = call_leaf(node)
        if leaf is None:
            return None
        if leaf in CALL_RETURN_UNITS:
            return CALL_RETURN_UNITS[leaf]
        if leaf in _TRANSPARENT_CALLS:
            units = {unit_of_expr(a, env) for a in node.args}
            units.discard(None)
            return units.pop() if len(units) == 1 else None
        return unit_of_identifier(leaf)
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
        left = unit_of_expr(node.left, env)
        right = unit_of_expr(node.right, env)
        if left is not None and right is not None:
            return left if left == right else None
        return left if left is not None else right
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.UAdd, ast.USub)):
        return unit_of_expr(node.operand, env)
    if isinstance(node, ast.IfExp):
        body = unit_of_expr(node.body, env)
        orelse = unit_of_expr(node.orelse, env)
        return body if body == orelse else None
    return None


def iter_scoped_nodes(
    tree: ast.AST,
) -> Iterator[Tuple[Dict[str, str], ast.AST]]:
    """Yield every node with the annotated-unit environment of its scope.

    Environments nest lexically: a nested function sees its enclosing
    function's annotated parameters unless it shadows them.
    """

    def visit(
        node: ast.AST, env: Dict[str, str]
    ) -> Iterator[Tuple[Dict[str, str], ast.AST]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                child_env = dict(env)
                child_env.update(annotated_param_units(child))
                yield child_env, child
                yield from visit(child, child_env)
            else:
                yield env, child
                yield from visit(child, env)

    yield from visit(tree, {})
