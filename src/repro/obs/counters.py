"""Deterministic work counters: machine-independent cost accounting.

Wall-clock profiles answer "where did the seconds go" but move with
machine load, turbo states and shared CI runners — the PR 7 bench gate
needs a 2-3x noise band just to survive them. *Work* counters answer the
complementary question — "how many heap operations / PER draws /
hash-chain steps did this run perform" — and, because every counted
quantity is a pure function of the spec and seed, a seeded run counts to
**byte-identical totals on every machine and at every worker count**.
That exactness is what lets the bench gate check work drift with zero
tolerance (:mod:`repro.analysis.benchgate`) while wall time keeps its
noise band.

The design mirrors the event bus (:mod:`repro.obs.events`): kernel code
calls :func:`count`, which costs one module-global load and a ``None``
check when counting is off — no clock reads, no randomness, no state
mutation — so a counted run is bit-identical to an uncounted one (pinned
by ``tests/test_obs_counters.py`` in the ``TestTracingParity`` style).

Counters are keyed ``<lane>/<name>`` where the *lane* is pushed by the
enclosing engine (``singlehop/sstsp``, ``multihop/coop``,
``fastlane/tsf``) via :func:`work_lane`, and the *name* identifies the
instrumented site (``engine.heap_push``, ``phy.per_draw``,
``crypto.hash_op`` …). Lanes nest; the innermost lane owns the work, so
the degenerate complete-graph delegation (multi-hop → single-hop lane)
attributes its counts to the engine that actually ran.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional, Tuple


class WorkCounters:
    """One run's deterministic work tally.

    Plain integer counters keyed by ``<lane>/<name>`` (or bare ``name``
    outside any lane). Not thread-safe — one sink per run, like the
    event bus.
    """

    __slots__ = ("_counts", "_lanes")

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}
        self._lanes: List[str] = []

    # -- recording -----------------------------------------------------

    def add(self, name: str, by: int = 1) -> None:
        """Add ``by`` to counter ``name`` under the current lane."""
        if self._lanes:
            key = f"{self._lanes[-1]}/{name}"
        else:
            key = name
        self._counts[key] = self._counts.get(key, 0) + by

    def push_lane(self, lane: str) -> None:
        """Enter ``lane``; subsequent counts are attributed to it."""
        self._lanes.append(lane)

    def pop_lane(self) -> None:
        """Leave the innermost lane."""
        self._lanes.pop()

    # -- reading -------------------------------------------------------

    def snapshot(self) -> Dict[str, int]:
        """All counters, key-sorted (byte-stable when serialized)."""
        return {key: self._counts[key] for key in sorted(self._counts)}

    def total(self, name: str) -> int:
        """Sum of ``name`` across all lanes."""
        total = 0
        for key in sorted(self._counts):
            if key == name or key.endswith(f"/{name}"):
                total += self._counts[key]
        return total


#: The installed sink; None disables counting (the strict-no-op state).
_COUNTERS: Optional[WorkCounters] = None


def count(name: str, by: int = 1) -> None:
    """Count ``by`` units of work at site ``name`` (no-op when off).

    The disabled cost is one module-global load and a ``None`` check —
    the same contract as :func:`repro.obs.events.emit` — so hot kernel
    paths stay permanently instrumented.
    """
    sink = _COUNTERS
    if sink is not None:
        sink.add(name, by)


def counting_enabled() -> bool:
    """Whether a sink is installed (hot loops may check once)."""
    return _COUNTERS is not None


def current_counters() -> Optional[WorkCounters]:
    """The installed sink, or None."""
    return _COUNTERS


class count_work:
    """Context manager installing a :class:`WorkCounters` sink.

    ::

        with count_work() as work:
            runner.run()
        work.snapshot()  # {"singlehop/sstsp/engine.heap_push": 1234, ...}

    The previous sink (normally None) is restored on exit, exceptions
    included.
    """

    def __init__(self) -> None:
        self.counters = WorkCounters()
        self._previous: Optional[WorkCounters] = None

    def __enter__(self) -> WorkCounters:
        global _COUNTERS
        self._previous = _COUNTERS
        _COUNTERS = self.counters
        return self.counters

    def __exit__(self, *exc_info: object) -> None:
        global _COUNTERS
        _COUNTERS = self._previous


class work_lane:
    """Context manager attributing enclosed work to ``lane``.

    A strict no-op when counting is off. The sink is captured on entry
    so an exit always pops the lane it pushed, even if the sink changes
    mid-scope.
    """

    __slots__ = ("_lane", "_sink")

    def __init__(self, lane: str) -> None:
        self._lane = lane
        self._sink: Optional[WorkCounters] = None

    def __enter__(self) -> "work_lane":
        self._sink = _COUNTERS
        if self._sink is not None:
            self._sink.push_lane(self._lane)
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._sink is not None:
            self._sink.pop_lane()
            self._sink = None


# ---------------------------------------------------------------------------
# Snapshot utilities (merging, diffing, serialization)
# ---------------------------------------------------------------------------

#: Counter-key prefix under which work counters land in a
#: :meth:`repro.obs.registry.MetricsRegistry.snapshot`-shaped payload.
WORK_METRIC_PREFIX = "work."


def merge_counts(total: Dict[str, int], part: Mapping[str, int]) -> Dict[str, int]:
    """Fold ``part`` into ``total`` in place (counters add); returns it."""
    for key in sorted(part):
        total[key] = total.get(key, 0) + part[key]
    return total


def counts_to_metrics(counts: Mapping[str, int]) -> Dict[str, int]:
    """Work counters as registry-style counter keys (``work.<key>``).

    The sweep orchestrator folds these into each job's metrics snapshot
    so :func:`repro.obs.registry.merge_snapshots` rolls work up into the
    ``sweep_end`` aggregate alongside the event counters.
    """
    return {
        f"{WORK_METRIC_PREFIX}{key}": counts[key] for key in sorted(counts)
    }


def diff_counts(
    a: Mapping[str, int], b: Mapping[str, int]
) -> List[Tuple[str, int, int]]:
    """Sorted ``(key, a_value, b_value)`` rows where the tallies differ.

    Absent keys compare as 0, so a counter that only exists on one side
    still shows up as drift.
    """
    rows: List[Tuple[str, int, int]] = []
    for key in sorted(set(a) | set(b)):
        left = a.get(key, 0)
        right = b.get(key, 0)
        if left != right:
            rows.append((key, left, right))
    return rows


def format_report(counts: Mapping[str, int], title: str = "work counters") -> str:
    """Byte-stable human-readable report: sorted ``key  value`` lines."""
    lines = [f"# {title}"]
    if not counts:
        lines.append("(no work counted)")
        return "\n".join(lines) + "\n"
    width = max(len(key) for key in counts)
    for key in sorted(counts):
        lines.append(f"{key.ljust(width)}  {counts[key]}")
    return "\n".join(lines) + "\n"


def write_counts_json(path: str, counts: Mapping[str, int]) -> str:
    """Write a sorted, indented counters JSON (byte-stable); returns path."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(dict(counts), fh, sort_keys=True, indent=1)
        fh.write("\n")
    return path


def load_counts_json(path: str) -> Dict[str, int]:
    """Read a counters JSON written by :func:`write_counts_json`."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict):
        raise ValueError(f"counters json is not an object: {path}")
    return {key: int(payload[key]) for key in sorted(payload)}
