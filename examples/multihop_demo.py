#!/usr/bin/env python
"""Multi-hop SSTSP: the paper's future work, running.

Synchronizes three multi-hop topologies - a 20-station chain (worst-case
diameter), a 6x6 grid, and a random unit-disk deployment - around one
root reference, then reports the experiment single-hop SSTSP cannot
express: synchronization error as a function of hop distance. Finishes
with a root failover: the root leaves mid-run and an orphaned hop-1
station takes over.

Run:  python examples/multihop_demo.py
"""

import numpy as np

from repro.multihop import MultiHopRunner, MultiHopSpec, Topology
from repro.sim.units import S


def report(name, result):
    print(f"\n{name}: root={result.root}, "
          f"{result.beacons_sent} beacons, "
          f"{result.collisions_at_receivers} receiver-collisions")
    print(f"  {'hop':>4} | {'median |c_i - c_root|':>22}")
    for hop, error in sorted(result.per_hop_error_us.items()):
        bar = "#" * min(60, max(1, int(np.log10(max(error, 1.0)) * 12)))
        print(f"  {hop:>4} | {error:>18.1f} us  {bar}")


def main() -> None:
    print("multi-hop SSTSP (paper section 6: 'our further work includes "
          "extending SSTSP to multi-hop ad hoc networks')")

    chain = MultiHopSpec(
        topology=Topology.chain(20), seed=3, duration_s=40.0, m=8
    )
    report("chain of 20 (diameter 19)", MultiHopRunner(chain).run())

    grid = MultiHopSpec(topology=Topology.grid(6, 6), seed=3, duration_s=40.0)
    report("6x6 grid", MultiHopRunner(grid).run())

    disk = MultiHopSpec(
        topology=Topology.unit_disk(
            40, np.random.default_rng(5), area_m=1_000.0, radius_m=300.0
        ),
        seed=3,
        duration_s=40.0,
    )
    report("unit-disk, 40 stations", MultiHopRunner(disk).run())

    print("\nreading: hop-1 neighbours match single-hop SSTSP accuracy "
          "(~2 us); each extra hop multiplies the error (a follower "
          "tracking a follower amplifies estimate noise) - the structural "
          "reason multi-hop synchronization is its own research problem.")

    # root failover
    spec = MultiHopSpec(topology=Topology.grid(4, 4), seed=9, duration_s=40.0)
    runner = MultiHopRunner(spec)
    runner.leave_at[200] = [spec.root]  # root leaves at t = 20 s
    result = runner.run()
    trace = result.trace
    before = float(trace.window(15 * S, 20 * S).max_diff_us.max())
    after = float(np.median(trace.window(30 * S, 40 * S).max_diff_us))
    print(f"\nroot failover (4x4 grid): root {spec.root} left at 20 s; "
          f"station {result.root} took over "
          f"({result.root_changes} change)")
    print(f"  network max difference: {before:.1f} us before the departure, "
          f"{after:.1f} us (median) after")
    print("  note: failover restores network-wide synchronization to within "
          "a few percent of a beacon period; re-attaining microsecond "
          "accuracy across re-hung subtrees is an open refinement "
          "(the paper left even single-hop recovery to future work)")
    assert result.root != spec.root
    assert after < 0.05 * spec.beacon_period_us


if __name__ == "__main__":
    main()
