"""Unit tests for nodes, churn schedules and the network runner."""

import numpy as np
import pytest

from repro.clocks.oscillator import HardwareClock
from repro.network.churn import REFERENCE_MARKER, ChurnEvent, ChurnSchedule
from repro.network.ibss import AttackerSpec, ScenarioSpec, build_network
from repro.network.node import Node
from repro.protocols.base import ClockKind, TxIntent
from repro.protocols.tsf import TsfConfig, TsfProtocol


class TestNode:
    def test_tsf_intent_inversion(self):
        node = Node(1, HardwareClock(rate=1.0001, initial_offset=25.0))
        node.protocol = TsfProtocol(1, node.timer, TsfConfig(), np.random.default_rng(0))
        node.timer.set_forward(1_000.0, true_time=500.0)
        intent = TxIntent(local_time=50_000.0, clock=ClockKind.TSF)
        t = node.scheduled_true_time(intent)
        assert node.timer.raw(t) == pytest.approx(50_000.0, abs=1e-6)

    def test_hardware_intent_inversion(self):
        node = Node(1, HardwareClock(rate=0.9999, initial_offset=-10.0))
        intent = TxIntent(local_time=77_777.0, clock=ClockKind.HARDWARE)
        t = node.scheduled_true_time(intent)
        assert node.hw.read(t) == pytest.approx(77_777.0, abs=1e-6)

    def test_adjusted_intent_inversion_fixed_point(self):
        from repro.core.backend import ModeledCryptoBackend
        from repro.core.config import SstspConfig
        from repro.core.sstsp import SstspProtocol
        from repro.crypto.mutesla import IntervalSchedule

        config = SstspConfig()
        backend = ModeledCryptoBackend(
            IntervalSchedule(0.0, config.beacon_period_us, 64)
        )
        backend.register_node(1)
        node = Node(1, HardwareClock(rate=1.00008, initial_offset=40.0))
        node.protocol = SstspProtocol(1, config, backend, np.random.default_rng(0))
        # give the adjusted clock a non-trivial segment
        node.protocol.clock.slew_to(0.0, 1.0004, at_local_time=1_000.0)
        intent = TxIntent(local_time=300_000.0, clock=ClockKind.ADJUSTED)
        t = node.scheduled_true_time(intent)
        assert node.protocol.synchronized_time(node.hw.read(t)) == pytest.approx(
            300_000.0, abs=1e-3
        )

    def test_duplicate_ids_rejected(self):
        from repro.network.runner import NetworkRunner, RunnerParams
        from repro.phy.channel import BroadcastChannel
        from repro.phy.params import PhyParams

        nodes = [Node(1, HardwareClock()), Node(1, HardwareClock())]
        channel = BroadcastChannel(PhyParams(), np.random.default_rng(0))
        with pytest.raises(ValueError):
            NetworkRunner(nodes, channel, PhyParams(), RunnerParams(periods=1))


class TestChurnSchedule:
    def test_paper_default_shape(self, rng):
        schedule = ChurnSchedule.paper_default(
            node_ids=list(range(100)), total_periods=10_000, rng=rng
        )
        periods = schedule.periods()
        # group leaves at 200/400/600/800 s -> periods 2000/4000/6000/8000
        for expected in (2000, 4000, 6000, 8000):
            assert expected in periods
        # reference leaves at 300/500/800 s
        for expected in (3000, 5000, 8000):
            assert expected in periods
        # returns 50 s after each leave
        assert 2500 in periods and 3500 in periods

    def test_group_size_is_five_percent(self, rng):
        schedule = ChurnSchedule.paper_default(
            node_ids=list(range(100)), total_periods=3_000, rng=rng
        )
        leaves = [e for e in schedule.events_for(2000) if e.action == "leave"]
        assert len(leaves) == 1
        assert len(leaves[0].node_ids) == 5

    def test_short_horizon_has_no_events(self, rng):
        schedule = ChurnSchedule.paper_default(
            node_ids=list(range(10)), total_periods=100, rng=rng
        )
        assert len(schedule) == 0

    def test_invalid_action_rejected(self):
        with pytest.raises(ValueError):
            ChurnEvent(1, "explode", (1,))

    def test_long_absence_never_double_books_a_station(self, rng):
        # away_s > leave_every_s: stations from group k are still away when
        # group k+1 is sampled and must not be drawn again (a second leave
        # would be a no-op and its paired return would fire while the first
        # absence is still active, silently shortening it).
        schedule = ChurnSchedule.paper_default(
            node_ids=list(range(40)),
            total_periods=20_000,
            rng=rng,
            leave_every_s=200.0,
            away_s=450.0,
        )
        away_until = {}
        for period in schedule.periods():
            for event in schedule.events_for(period):
                if event.action != "leave" or REFERENCE_MARKER in event.node_ids:
                    continue
                for node in event.node_ids:
                    assert away_until.get(node, 0) <= period, (
                        f"node {node} re-sampled at p{period} while away"
                    )
                    away_until[node] = period + 4500  # 450 s in periods

    def test_overlap_guard_preserves_rng_stream_when_disjoint(self):
        # With away_s < leave_every_s nobody is still away at the next
        # sampling, so the eligibility filter must not change the draws:
        # the schedule must match a plain unfiltered choice() sequence.
        node_ids = list(range(100))
        schedule = ChurnSchedule.paper_default(
            node_ids=node_ids,
            total_periods=10_000,
            rng=np.random.default_rng(7),
        )
        reference = np.random.default_rng(7)
        for k in (1, 2, 3, 4):
            period = k * 2000
            expected = tuple(
                int(i)
                for i in reference.choice(
                    np.asarray(node_ids), size=5, replace=False
                )
            )
            leaves = [
                e for e in schedule.events_for(period) if e.action == "leave"
            ]
            assert leaves and leaves[0].node_ids == expected


class TestRunner:
    def test_tsf_run_produces_full_trace(self):
        spec = ScenarioSpec(n=10, seed=1, duration_s=5.0)
        result = build_network("tsf", spec).run()
        assert len(result.trace) == spec.periods
        assert result.successful_beacons > 0
        assert result.trace.present_counts.max() == 10

    def test_sstsp_run_elects_single_reference(self):
        spec = ScenarioSpec(n=10, seed=1, duration_s=5.0)
        runner = build_network("sstsp", spec)
        result = runner.run()
        refs = [n for n in result.nodes if n.protocol.is_reference()]
        assert len(refs) == 1
        assert result.trace.reference_ids[-1] == refs[0].node_id

    def test_reference_marker_resolution(self):
        spec = ScenarioSpec(n=10, seed=2, duration_s=8.0)
        runner = build_network("sstsp", spec)
        runner.churn.add(ChurnEvent(30, "leave", (REFERENCE_MARKER,)))
        runner.churn.add(ChurnEvent(50, "return", (REFERENCE_MARKER,)))
        result = runner.run()
        assert any("left" in e for e in result.events)
        assert any("returned" in e for e in result.events)
        # a replacement reference exists at the end
        assert result.trace.reference_ids[-1] >= 0

    def test_leave_reduces_present_count(self):
        spec = ScenarioSpec(n=10, seed=3, duration_s=4.0)
        runner = build_network("sstsp", spec)
        runner.churn.add(ChurnEvent(10, "leave", (0, 1)))
        result = runner.run()
        assert result.trace.present_counts.min() == 8

    def test_reference_marker_with_no_reference_is_noop(self):
        spec = ScenarioSpec(n=5, seed=3, duration_s=1.0)
        runner = build_network("tsf", spec)  # TSF has no reference concept
        runner.churn.add(ChurnEvent(3, "leave", (REFERENCE_MARKER,)))
        result = runner.run()
        assert result.trace.present_counts.min() == 5

    def test_marker_leave_skips_attacker_held_reference(self):
        # When an attacker squats on the reference role, a marker leave
        # must not remove it (churn models legitimate stations only) and
        # must not enqueue a pairing for the later marker return.
        from repro.core.sstsp import SstspState

        spec = ScenarioSpec(
            n=5, seed=3, duration_s=1.0,
            attacker=AttackerSpec(start_s=0.2, end_s=0.5),
        )
        runner = build_network("sstsp", spec)
        attacker = runner.nodes[-1]
        assert not attacker.include_in_metrics
        attacker.protocol.state = SstspState.REFERENCE
        assert runner.current_reference() == attacker.node_id
        assert runner._resolve_marker(REFERENCE_MARKER, "leave") is None
        assert runner._marker_left == []
        # the unpaired marker return is likewise a no-op
        assert runner._resolve_marker(REFERENCE_MARKER, "return") is None

    def test_marker_return_without_prior_leave_is_noop(self):
        spec = ScenarioSpec(n=5, seed=3, duration_s=1.0)
        runner = build_network("sstsp", spec)
        assert runner._resolve_marker(REFERENCE_MARKER, "return") is None

    def test_overlapping_marker_departures_pair_fifo(self):
        # Two reference departures before any return: the first return
        # must bring back the *first* departed reference, the second the
        # second (FIFO pairing keeps each station's absence contiguous).
        from repro.core.sstsp import SstspState

        spec = ScenarioSpec(n=5, seed=3, duration_s=1.0)
        runner = build_network("sstsp", spec)

        def crown(node_id):
            for node in runner.nodes:
                node.protocol.state = (
                    SstspState.REFERENCE
                    if node.node_id == node_id
                    else SstspState.SYNCED
                )

        crown(2)
        assert runner._resolve_marker(REFERENCE_MARKER, "leave") == 2
        crown(4)
        assert runner._resolve_marker(REFERENCE_MARKER, "leave") == 4
        assert runner._resolve_marker(REFERENCE_MARKER, "return") == 2
        assert runner._resolve_marker(REFERENCE_MARKER, "return") == 4
        assert runner._resolve_marker(REFERENCE_MARKER, "return") is None

    def test_deterministic_given_seed(self):
        spec = ScenarioSpec(n=8, seed=11, duration_s=3.0)
        a = build_network("sstsp", spec).run()
        b = build_network("sstsp", spec).run()
        assert np.array_equal(a.trace.max_diff_us, b.trace.max_diff_us)

    def test_different_seeds_differ(self):
        a = build_network("tsf", ScenarioSpec(n=8, seed=1, duration_s=3.0)).run()
        b = build_network("tsf", ScenarioSpec(n=8, seed=2, duration_s=3.0)).run()
        assert not np.array_equal(a.trace.max_diff_us, b.trace.max_diff_us)


class TestBuilders:
    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            build_network("ntp", ScenarioSpec(n=5, duration_s=1.0))

    def test_unknown_crypto_rejected(self):
        with pytest.raises(ValueError):
            build_network(
                "sstsp", ScenarioSpec(n=5, duration_s=1.0), crypto="quantum"
            )

    def test_attacker_adds_extra_node(self):
        spec = ScenarioSpec(
            n=5, duration_s=1.0, attacker=AttackerSpec(start_s=0.2, end_s=0.5)
        )
        runner = build_network("sstsp", spec)
        assert len(runner.nodes) == 6

    def test_all_baseline_protocols_run(self):
        for name in ("tsf", "atsp", "tatsp", "satsf", "rentel"):
            spec = ScenarioSpec(n=6, seed=4, duration_s=2.0)
            result = build_network(name, spec).run()
            assert len(result.trace) == spec.periods

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ScenarioSpec(n=1)
        with pytest.raises(ValueError):
            ScenarioSpec(duration_s=0)
