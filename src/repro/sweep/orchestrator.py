"""The sweep executor: cache check → fan-out → ordered results.

``run_sweep`` takes a list of frozen :class:`~repro.sweep.spec.JobSpec`\\ s
and returns their results *in spec order*, however the work was
scheduled. ``workers == 1`` is the degenerate case — a plain serial loop
in the calling process, no pool, no pickling round-trip — so serial and
parallel execution share every code path that can affect a result, and
outputs stay byte-identical across worker counts (every job re-seeds from
its own spec; nothing reads global RNG state).

Execution is fault tolerant (see :mod:`repro.sweep.failpolicy` and
``docs/simulation.md``, "Sweep resilience"): a
:class:`~repro.sweep.failpolicy.FailurePolicy` on :class:`SweepOptions`
governs retries with deterministic backoff, per-attempt timeouts
(enforced inside the worker via ``SIGALRM``), and whether a job that
exhausts its attempts aborts the sweep or is *quarantined* as a
structured :class:`~repro.sweep.failpolicy.JobFailure`. A worker process
that dies mid-job (``BrokenProcessPool``) is survived by rebuilding the
pool and requeueing the in-flight jobs; SIGINT/SIGTERM drain cleanly and
flush a resume manifest (:mod:`repro.sweep.manifest`). None of it
touches determinism — a retried job returns the same bytes as a
first-try success.

Progress and per-job timing stream to stderr; the same records go to a
machine-readable JSONL run log when a path is configured (the experiment
CLIs default one under ``results/sweep_logs/``).
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (
    Any,
    Deque,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    TextIO,
    Tuple,
)

from repro.obs.counters import count_work, counts_to_metrics
from repro.obs.events import observe_run
from repro.obs.profile import NULL_PROFILER, Profiler
from repro.obs.registry import MetricsRegistry, merge_snapshots
from repro.sweep.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.sweep.failpolicy import (
    FailurePolicy,
    InjectedFailure,
    JobFailure,
    JobTimeoutError,
    ON_ERROR_MODES,
    SweepInterrupted,
)
from repro.sweep.jobs import execute_job
from repro.sweep.manifest import SweepManifest, default_manifest_path
from repro.sweep.spec import JobSpec


@dataclass(frozen=True)
class SweepOptions:
    """How a sweep executes (not *what* it computes — that is the specs).

    Attributes
    ----------
    workers:
        Process count; 1 runs the jobs serially in-process.
    cache_dir:
        Result-cache root, or None to disable caching (the library
        default: plain ``run()`` calls stay side-effect free unless a
        caller opts in).
    log_path:
        JSONL run-log destination, or None for no log file.
    progress:
        Stream per-job progress/ETA lines to stderr.
    trace_dir:
        Directory receiving one event-trace JSONL per *executed* job
        (``<kind>-<hash>.jsonl``), or None for no tracing. Tracing is
        pure observation — results and cache keys are identical with it
        on or off — so cache *hits* produce no trace (the job never
        ran); use ``--no-cache`` or a fresh cache to trace everything.
    profile:
        Attribute sweep wall time to phases (cache / engine / log) with
        wall-clock section timers; totals go to the run log and, with
        ``progress``, to stderr.
    policy:
        The :class:`~repro.sweep.failpolicy.FailurePolicy` governing
        retries, per-attempt timeouts, quarantine and failure injection.
        The default (``on_error="raise"``) aborts on the first failure.
    resume:
        Resume a previously interrupted sweep: append to the existing
        run log instead of rotating it, and execute only the jobs the
        manifest + cache do not already cover (practically: everything
        the cache cannot serve). Requires a cache directory.
    manifest_path:
        Where the resume manifest is flushed, or None to default to
        ``results/sweep_logs/<name>.manifest.json`` for progress/resume
        runs (library runs without either write no manifest).
    """

    workers: int = 1
    cache_dir: Optional[str] = None
    log_path: Optional[str] = None
    progress: bool = False
    trace_dir: Optional[str] = None
    profile: bool = False
    policy: FailurePolicy = FailurePolicy()
    resume: bool = False
    manifest_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.resume and self.cache_dir is None:
            raise ValueError(
                "resume requires a result cache (the manifest records "
                "which jobs completed; their values live in the cache)"
            )


@dataclass
class SweepStats:
    """Aggregate accounting of one ``run_sweep`` call."""

    jobs: int = 0
    cache_hits: int = 0
    executed: int = 0
    retries: int = 0
    timeouts: int = 0
    quarantined: int = 0
    worker_crashes: int = 0
    wall_s: float = 0.0
    job_wall_s: List[float] = field(default_factory=list)
    log_path: Optional[str] = None
    manifest_path: Optional[str] = None


@dataclass
class SweepResult:
    """Ordered results plus accounting.

    Under ``on_error="quarantine"`` a failed job leaves ``None`` at its
    index in :attr:`values` and a structured
    :class:`~repro.sweep.failpolicy.JobFailure` in :attr:`failures`;
    callers opting into quarantine own checking it.
    """

    specs: List[JobSpec]
    values: List[Any]
    stats: SweepStats
    failures: List[JobFailure] = field(default_factory=list)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.values)


def add_sweep_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the shared sweep-execution flags (workers, cache, resilience)."""
    group = parser.add_argument_group("sweep execution")
    group.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes for the scenario sweep (1 = serial; "
        "results are byte-identical at any worker count)",
    )
    group.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result-cache directory (default: $SSTSP_SWEEP_CACHE or "
        f"{DEFAULT_CACHE_DIR!r})",
    )
    group.add_argument(
        "--no-cache", action="store_true",
        help="disable the result cache for this run",
    )
    group.add_argument(
        "--sweep-log", default=None, metavar="PATH",
        help="JSONL run-log path (default: results/sweep_logs/<name>.jsonl)",
    )
    group.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="write one event-trace JSONL per executed job into DIR "
        "(cache hits never ran, so they produce no trace)",
    )
    group.add_argument(
        "--profile", action="store_true",
        help="attribute sweep wall time to phases (cache/engine/log)",
    )
    group.add_argument(
        "--on-error", choices=ON_ERROR_MODES, default="raise",
        help="failed-job handling: 'raise' aborts the sweep (default), "
        "'retry' retries then aborts, 'quarantine' retries then records "
        "the failure and keeps going",
    )
    group.add_argument(
        "--retries", type=int, default=2, metavar="K",
        help="extra attempts per failing job under --on-error "
        "retry/quarantine (deterministic backoff; default 2)",
    )
    group.add_argument(
        "--job-timeout", type=float, default=None, metavar="S",
        help="per-attempt wall-time budget in seconds, enforced inside "
        "the worker; a timed-out attempt follows the --on-error path",
    )
    group.add_argument(
        "--resume", action="store_true",
        help="resume an interrupted sweep: append to its run log and "
        "execute only what the manifest + cache do not already cover",
    )


def sweep_options_from_args(args: argparse.Namespace) -> SweepOptions:
    """Build :class:`SweepOptions` from parsed CLI arguments.

    CLI runs cache by default (reruns of paper experiments are the hot
    use case); ``--no-cache`` opts out.
    """
    if args.no_cache:
        cache_dir = None
    else:
        cache_dir = (
            args.cache_dir
            or os.environ.get("SSTSP_SWEEP_CACHE")
            or DEFAULT_CACHE_DIR
        )
    resume = bool(getattr(args, "resume", False))
    if resume and cache_dir is None:
        raise ValueError("--resume requires the result cache (drop --no-cache)")
    policy = FailurePolicy(
        on_error=getattr(args, "on_error", "raise"),
        max_retries=getattr(args, "retries", 2),
        timeout_s=getattr(args, "job_timeout", None),
    )
    return SweepOptions(
        workers=args.workers,
        cache_dir=cache_dir,
        log_path=args.sweep_log,
        progress=True,
        trace_dir=getattr(args, "trace_dir", None),
        profile=getattr(args, "profile", False),
        policy=policy,
        resume=resume,
    )


def _default_log_path(name: str) -> str:
    root = os.environ.get("SSTSP_RESULTS_DIR", "results")
    return os.path.join(root, "sweep_logs", f"{name}.jsonl")


class _RunLog:
    """Line-per-event JSONL writer (no-op when path is None).

    A context manager: ``run_sweep`` holds the whole execution inside a
    ``with`` block, so the log flushes and closes even when a worker
    raises — no leaked half-written JSONL on failures.

    A fresh run never clobbers a previous run's log for the same sweep
    name: an existing file is rotated aside to ``<path>.<n>`` (smallest
    free ``n``) first. A resumed run (``append=True``) appends instead,
    so one logical sweep keeps one log across interruptions.
    """

    def __init__(self, path: Optional[str], append: bool = False) -> None:
        self.path = path
        self._fh: Optional[TextIO] = None
        if path is not None:
            os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
            if not append and os.path.exists(path):
                suffix = 1
                while os.path.exists(f"{path}.{suffix}"):
                    suffix += 1
                os.replace(path, f"{path}.{suffix}")
            self._fh = open(path, "a" if append else "w", encoding="utf-8")

    def write(self, record: Dict[str, Any]) -> None:
        if self._fh is not None:
            self._fh.write(json.dumps(record, sort_keys=True) + "\n")
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "_RunLog":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class _Alarm:
    """Per-attempt wall-time budget via ``SIGALRM`` (no-op when unusable).

    Armed inside the process actually running the job — a pool worker's
    main thread, or the calling process for serial sweeps — so a hung
    job interrupts *itself* with :class:`JobTimeoutError` and the normal
    failure path applies. Silently inert when ``SIGALRM`` is unavailable
    (non-POSIX) or we are not on the main thread.
    """

    def __init__(self, timeout_s: Optional[float]) -> None:
        self._timeout_s = timeout_s
        self._armed = False
        self._previous: Any = None

    def _fire(self, signum: int, frame: Any) -> None:
        raise JobTimeoutError(
            f"job attempt exceeded its {self._timeout_s}s budget"
        )

    def __enter__(self) -> "_Alarm":
        if (
            self._timeout_s is not None
            and hasattr(signal, "SIGALRM")
            and threading.current_thread() is threading.main_thread()
        ):
            self._previous = signal.signal(signal.SIGALRM, self._fire)
            signal.setitimer(signal.ITIMER_REAL, self._timeout_s)
            self._armed = True
        return self

    def __exit__(self, *exc_info: Any) -> None:
        if self._armed:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, self._previous)
            self._armed = False


class _InterruptGuard:
    """Turn SIGINT/SIGTERM into a drain request instead of a hard stop.

    Installed around the execution phase (main thread only — elsewhere
    it is inert and the default handlers keep applying). The first
    signal sets :attr:`triggered`; the orchestrator finishes in-flight
    jobs, flushes the manifest, and raises
    :class:`~repro.sweep.failpolicy.SweepInterrupted`. A second SIGINT
    falls back to an immediate ``KeyboardInterrupt`` escape hatch.
    """

    def __init__(self) -> None:
        self.triggered: Optional[int] = None
        self._previous: Dict[int, Any] = {}

    def _fire(self, signum: int, frame: Any) -> None:
        if self.triggered is not None and signum == signal.SIGINT:
            raise KeyboardInterrupt
        self.triggered = signum

    def __enter__(self) -> "_InterruptGuard":
        if threading.current_thread() is threading.main_thread():
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    self._previous[signum] = signal.signal(signum, self._fire)
                except (ValueError, OSError):  # pragma: no cover - platform
                    pass
        return self

    def __exit__(self, *exc_info: Any) -> None:
        for signum in sorted(self._previous):
            signal.signal(signum, self._previous[signum])
        self._previous.clear()


def _job_trace_path(trace_dir: str, spec: JobSpec) -> str:
    """Deterministic per-job trace filename inside ``trace_dir``."""
    return os.path.join(trace_dir, f"{spec.kind}-{spec.spec_hash()[:16]}.jsonl")


def _execute_observed(
    spec: JobSpec, trace_dir: str, attempt: int, inject: Optional[str]
) -> Tuple[Any, Dict[str, Any]]:
    """Run one job with the tracing bus on; module-level so the pool can
    pickle it. Returns ``(value, obs_payload)`` where the payload carries
    the trace path and the job's metrics snapshot back to the parent. A
    retried attempt reopens the same trace path, so the surviving trace
    is always the successful attempt's — byte-identical to a first-try
    success."""
    path = _job_trace_path(trace_dir, spec)
    with observe_run(path, keep_events=False) as observer:
        with count_work() as work:
            value = execute_job(spec, attempt=attempt, inject=inject)
    metrics = observer.registry.snapshot()
    # Work counters ride in the metrics snapshot under ``work.``-prefixed
    # counter keys, so merge_snapshots rolls them into the sweep_end
    # aggregate alongside the event counters with no schema change.
    metrics["counters"].update(counts_to_metrics(work.snapshot()))
    payload = {
        "trace_path": path,
        "events": observer.event_count,
        "metrics": metrics,
    }
    return value, payload


def _attempt_job(
    spec: JobSpec,
    attempt: int,
    policy: FailurePolicy,
    trace_dir: Optional[str],
) -> Tuple[Any, Optional[Dict[str, Any]], float]:
    """One job attempt, run wherever the work lands (worker or parent).

    Returns ``(value, obs_payload_or_None, wall_s)`` — the wall time is
    measured here, around the job itself, so parallel sweeps report real
    per-job timings rather than batch averages. The policy's timeout is
    armed around the attempt and its injection pattern is consulted
    before the job runs.
    """
    t0 = time.perf_counter()
    with _Alarm(policy.timeout_s):
        if trace_dir is None:
            value = execute_job(spec, attempt=attempt, inject=policy.inject)
            payload: Optional[Dict[str, Any]] = None
        else:
            value, payload = _execute_observed(
                spec, trace_dir, attempt, policy.inject
            )
    return value, payload, time.perf_counter() - t0


def _failure_reason(exc: BaseException) -> str:
    """Classify one attempt's exception for logs/metrics/manifest."""
    if isinstance(exc, JobTimeoutError):
        return "timeout"
    if isinstance(exc, InjectedFailure):
        return "injected"
    if isinstance(exc, BrokenProcessPool):
        return "worker_crash"
    return "error"


def _progress_line(
    name: str, done: int, total: int, hits: int,
    elapsed: float, miss_walls: List[float], remaining: int, workers: int,
) -> str:
    if miss_walls and remaining:
        eta = sum(miss_walls) / len(miss_walls) * remaining / workers
        eta_txt = f" eta {eta:.1f}s"
    else:
        eta_txt = ""
    return (
        f"[sweep {name}] {done}/{total} jobs ({hits} cached) "
        f"elapsed {elapsed:.1f}s{eta_txt}"
    )


def run_sweep(
    name: str,
    specs: Sequence[JobSpec],
    options: Optional[SweepOptions] = None,
) -> SweepResult:
    """Execute ``specs``, returning results in spec order.

    Cached results are fetched first (in the calling process); the
    remaining jobs run serially (``workers == 1``) or on a
    ``ProcessPoolExecutor``. Fresh results are written back to the cache
    as they land. Failures follow ``options.policy``: under the default
    ``on_error="raise"`` a failing job raises — with the job key
    attached — after the pool is drained; ``retry`` re-attempts with
    deterministic backoff; ``quarantine`` records the failure and keeps
    the sweep going. SIGINT/SIGTERM drain cleanly, flush the resume
    manifest, and raise :class:`SweepInterrupted`.
    """
    options = options or SweepOptions()
    policy = options.policy
    specs = list(specs)
    stats = SweepStats(jobs=len(specs))
    cache = ResultCache(options.cache_dir) if options.cache_dir else None
    trace_dir = options.trace_dir
    if trace_dir is not None:
        os.makedirs(trace_dir, exist_ok=True)
    profiler = Profiler() if options.profile else NULL_PROFILER
    log_path = options.log_path
    if log_path is None and options.progress and specs:
        log_path = _default_log_path(name)
    manifest_path = options.manifest_path
    if manifest_path is None and (options.progress or options.resume) and specs:
        manifest_path = default_manifest_path(name)
    err = sys.stderr
    start = time.perf_counter()
    values: List[Any] = [None] * len(specs)
    pending: List[int] = []
    done = 0
    miss_walls: List[float] = []
    metrics_total: Dict[str, Any] = {}
    registry = MetricsRegistry()
    failures: List[JobFailure] = []
    manifest = (
        SweepManifest.fresh(name, specs, cache.salt if cache else "")
        if manifest_path is not None
        else None
    )
    resumed_from: Optional[Dict[str, int]] = None
    if options.resume and manifest_path is not None and os.path.exists(manifest_path):
        resumed_from = SweepManifest.load(manifest_path).counts()

    with _RunLog(
        log_path if specs else None, append=options.resume
    ) as log, _InterruptGuard() as guard:
        stats.log_path = log.path
        stats.manifest_path = manifest_path
        log.write({
            "event": "sweep_start",
            "sweep": name,
            "jobs": len(specs),
            "workers": options.workers,
            "cache_dir": options.cache_dir,
            "cache_salt": cache.salt if cache else None,
            "trace_dir": trace_dir,
            "on_error": policy.on_error,
            "resume": options.resume,
            "resumed_from": resumed_from,
            "time": time.time(),
        })

        def log_job(index: int, source: str, wall_s: float) -> None:
            spec = specs[index]
            with profiler.section("log"):
                log.write({
                    "event": "job",
                    "sweep": name,
                    "seq": index,
                    "kind": spec.kind,
                    "hash": spec.spec_hash()[:16],
                    "params": spec.params_dict(),
                    "cache": source,
                    "wall_s": round(wall_s, 6),
                })

        def log_job_obs(index: int, payload: Dict[str, Any]) -> None:
            """Per-job observability record + roll-up into the sweep
            aggregate (counters/histograms add, gauges last-write)."""
            merge_snapshots(metrics_total, payload["metrics"])
            spec = specs[index]
            with profiler.section("log"):
                log.write({
                    "event": "job_obs",
                    "sweep": name,
                    "seq": index,
                    "kind": spec.kind,
                    "hash": spec.spec_hash()[:16],
                    "trace_path": payload["trace_path"],
                    "events": payload["events"],
                    "metrics": payload["metrics"],
                })

        # Phase 1: satisfy what we can from the cache.
        for index, spec in enumerate(specs):
            if cache is not None:
                t0 = time.perf_counter()
                with profiler.section("cache"):
                    hit, value = cache.get(spec)
                if hit:
                    values[index] = value
                    stats.cache_hits += 1
                    done += 1
                    if manifest is not None:
                        manifest.mark(spec, "completed")
                    log_job(index, "hit", time.perf_counter() - t0)
                    continue
            pending.append(index)

        if options.progress and stats.cache_hits:
            print(
                _progress_line(
                    name, done, len(specs), stats.cache_hits,
                    time.perf_counter() - start, miss_walls,
                    len(pending), options.workers,
                ),
                file=err,
            )

        def finish(index: int, value: Any, wall_s: float, attempts: int) -> None:
            nonlocal done
            values[index] = value
            stats.executed += 1
            stats.job_wall_s.append(wall_s)
            miss_walls.append(wall_s)
            done += 1
            if cache is not None:
                with profiler.section("cache"):
                    cache.put(specs[index], value)
            if manifest is not None:
                manifest.mark(specs[index], "completed", attempts=attempts)
            log_job(index, "miss", wall_s)
            if options.progress:
                print(
                    _progress_line(
                        name, done, len(specs), stats.cache_hits,
                        time.perf_counter() - start, miss_walls,
                        len(specs) - done, options.workers,
                    ),
                    file=err,
                )

        def quarantine(
            index: int, reason: str, attempts: int, message: str
        ) -> None:
            nonlocal done
            spec = specs[index]
            failure = JobFailure(
                seq=index,
                kind=spec.kind,
                hash=spec.spec_hash()[:16],
                job_key=spec.job_key,
                reason=reason,
                attempts=attempts,
                message=message,
            )
            failures.append(failure)
            stats.quarantined += 1
            registry.inc("sweep.job_quarantined")
            done += 1
            if manifest is not None:
                manifest.mark(spec, "quarantined", attempts=attempts, reason=reason)
            with profiler.section("log"):
                record = {"event": "job_quarantined", "sweep": name}
                record.update(failure.to_dict())
                log.write(record)
            if options.progress:
                print(
                    f"[sweep {name}] QUARANTINED job {index} "
                    f"({spec.kind}-{spec.spec_hash()[:16]}): {reason} "
                    f"after {attempts} attempt(s): {message}",
                    file=err,
                )

        def on_failure(
            index: int, attempt: int, exc: BaseException
        ) -> str:
            """Decide one failed attempt's fate: ``'retry'`` or
            ``'quarantined'`` — or raise, aborting the sweep."""
            spec = specs[index]
            reason = _failure_reason(exc)
            if reason == "timeout":
                stats.timeouts += 1
                registry.inc("sweep.job_timeout")
            if attempt < policy.attempts:
                stats.retries += 1
                registry.inc("sweep.job_retry")
                backoff_s = policy.backoff_s(spec, attempt + 1)
                with profiler.section("log"):
                    log.write({
                        "event": "job_retry",
                        "sweep": name,
                        "seq": index,
                        "kind": spec.kind,
                        "hash": spec.spec_hash()[:16],
                        "attempt": attempt,
                        "reason": reason,
                        "error": str(exc),
                        "backoff_s": round(backoff_s, 6),
                    })
                if backoff_s > 0:
                    time.sleep(backoff_s)
                return "retry"
            if policy.on_error == "quarantine":
                quarantine(index, reason, attempt, str(exc))
                return "quarantined"
            raise RuntimeError(
                f"sweep job failed: {spec.job_key}"
            ) from exc

        # Phase 2: execute the misses.
        try:
            if options.workers == 1 or len(pending) <= 1:
                _run_serial(
                    specs, pending, policy, trace_dir, profiler, guard,
                    finish, on_failure, log_job_obs,
                )
            else:
                crashes = _run_parallel(
                    specs, pending, options, policy, trace_dir, profiler,
                    guard, finish, on_failure, log_job_obs, log, name,
                    registry,
                )
                stats.worker_crashes = crashes
        finally:
            stats.wall_s = time.perf_counter() - start
            if len(registry):
                merge_snapshots(metrics_total, registry.snapshot())
            if guard.triggered is not None:
                log.write({
                    "event": "sweep_interrupted",
                    "sweep": name,
                    "signal": int(guard.triggered),
                    "completed": done,
                    "jobs": len(specs),
                    "manifest": manifest_path,
                })
            end_record: Dict[str, Any] = {
                "event": "sweep_end",
                "sweep": name,
                "jobs": len(specs),
                "cache_hits": stats.cache_hits,
                "executed": stats.executed,
                "retries": stats.retries,
                "quarantined": stats.quarantined,
                "wall_s": round(stats.wall_s, 6),
                "time": time.time(),
            }
            if trace_dir is not None or metrics_total:
                end_record["metrics"] = metrics_total
            if profiler.enabled:
                end_record["profile"] = profiler.totals()
            log.write(end_record)
            if manifest is not None and manifest_path is not None:
                manifest.save(manifest_path)

    if guard.triggered is not None:
        if options.progress:
            print(
                f"[sweep {name}] interrupted (signal {int(guard.triggered)}) "
                f"after {done}/{len(specs)} jobs"
                + (f"; manifest: {manifest_path}" if manifest_path else ""),
                file=err,
            )
        raise SweepInterrupted(name, done, len(specs), manifest_path)
    if options.progress:
        quarantined_txt = (
            f", {stats.quarantined} quarantined" if stats.quarantined else ""
        )
        print(
            f"[sweep {name}] done: {len(specs)} jobs "
            f"({stats.cache_hits} cached, {stats.executed} executed"
            f"{quarantined_txt}) in {stats.wall_s:.2f}s"
            + (f" (log: {stats.log_path})" if stats.log_path else ""),
            file=err,
        )
        if failures:
            for failure in failures:
                print(
                    f"[sweep {name}]   quarantined: {failure.kind}-"
                    f"{failure.hash} ({failure.reason}, "
                    f"{failure.attempts} attempts)",
                    file=err,
                )
        if profiler.enabled:
            print(
                f"[sweep {name}] profile: "
                f"{profiler.format_summary(stats.wall_s)}",
                file=err,
            )
    return SweepResult(specs=specs, values=values, stats=stats, failures=failures)


def _run_serial(
    specs: List[JobSpec],
    pending: List[int],
    policy: FailurePolicy,
    trace_dir: Optional[str],
    profiler: Any,
    guard: _InterruptGuard,
    finish: Any,
    on_failure: Any,
    log_job_obs: Any,
) -> None:
    """The serial execution loop: one attempt cycle per pending job."""
    for index in pending:
        if guard.triggered is not None:
            return
        attempt = 0
        while True:
            attempt += 1
            try:
                with profiler.section("engine"):
                    value, payload, wall_s = _attempt_job(
                        specs[index], attempt, policy, trace_dir
                    )
            except Exception as exc:
                if on_failure(index, attempt, exc) == "retry":
                    continue
                break  # quarantined
            if payload is not None:
                log_job_obs(index, payload)
            finish(index, value, wall_s, attempt)
            break


def _run_parallel(
    specs: List[JobSpec],
    pending: List[int],
    options: SweepOptions,
    policy: FailurePolicy,
    trace_dir: Optional[str],
    profiler: Any,
    guard: _InterruptGuard,
    finish: Any,
    on_failure: Any,
    log_job_obs: Any,
    log: _RunLog,
    name: str,
    registry: MetricsRegistry,
) -> int:
    """The pool execution loop: bounded submission window, retries,
    worker-crash recovery. Returns the number of pool crashes survived.

    The window (one in-flight job per worker) is what makes crash blame
    tractable: when the pool breaks, only the currently in-flight jobs
    are suspects, so an ``os._exit`` job is pinned down within
    ``policy.attempts`` crashes instead of smearing attempts across the
    whole queue.
    """
    queue: Deque[int] = deque(pending)
    next_attempt: Dict[int, int] = {index: 1 for index in pending}
    outstanding: Dict[Future, Tuple[int, int]] = {}
    crashes = 0
    pool = ProcessPoolExecutor(max_workers=options.workers)

    def handle_crash(exc: BaseException) -> None:
        """Rebuild the pool; requeue or give up on the in-flight jobs."""
        nonlocal pool, crashes
        crashes += 1
        registry.inc("sweep.worker_crash")
        victims = sorted(outstanding.values())
        outstanding.clear()
        log.write({
            "event": "worker_crash",
            "sweep": name,
            "victims": [specs[i].spec_hash()[:16] for i, _ in victims],
        })
        pool.shutdown(wait=False, cancel_futures=True)
        pool = ProcessPoolExecutor(max_workers=options.workers)
        for index, attempt in victims:
            crash_exc = BrokenProcessPool(
                f"worker process died running {specs[index].job_key} "
                "(or a job sharing its pool)"
            )
            crash_exc.__cause__ = exc
            if on_failure(index, attempt, crash_exc) == "retry":
                next_attempt[index] = attempt + 1
                queue.append(index)

    try:
        while queue or outstanding:
            if guard.triggered is not None:
                break
            try:
                while queue and len(outstanding) < options.workers:
                    index = queue.popleft()
                    attempt = next_attempt[index]
                    future = pool.submit(
                        _attempt_job, specs[index], attempt, policy, trace_dir
                    )
                    outstanding[future] = (index, attempt)
                with profiler.section("engine"):
                    finished, _ = wait(
                        list(outstanding), timeout=0.2,
                        return_when=FIRST_COMPLETED,
                    )
                for future in finished:
                    index, attempt = outstanding.pop(future)
                    try:
                        value, payload, wall_s = future.result()
                    except BrokenProcessPool:
                        outstanding[future] = (index, attempt)
                        raise
                    except Exception as exc:
                        if on_failure(index, attempt, exc) == "retry":
                            next_attempt[index] = attempt + 1
                            queue.append(index)
                        continue
                    if payload is not None:
                        log_job_obs(index, payload)
                    finish(index, value, wall_s, attempt)
            except BrokenProcessPool as exc:
                handle_crash(exc)
        if guard.triggered is not None and outstanding:
            # Drain: let in-flight jobs finish and bank their results
            # (they are paid for); anything queued stays pending.
            finished, _ = wait(list(outstanding))
            for future in finished:
                index, attempt = outstanding.pop(future)
                try:
                    value, payload, wall_s = future.result()
                except BaseException:
                    continue  # stays pending in the manifest
                if payload is not None:
                    log_job_obs(index, payload)
                finish(index, value, wall_s, attempt)
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
    return crashes
