"""Observability layer: event tracing, metrics, and profiling.

Three concerns, three modules:

* :mod:`repro.obs.events` — the structured event-tracing bus the kernel
  emits protocol events onto (strict no-op when disabled);
* :mod:`repro.obs.registry` — counters / gauges / histogram summaries,
  per-run with per-sweep roll-up;
* :mod:`repro.obs.profile` — opt-in wall-clock section timers and
  hierarchical spans (chrome-trace export), the one module allowed to
  read the host clock;
* :mod:`repro.obs.counters` — deterministic work counters: no clock, no
  randomness, byte-identical tallies on every machine (the bench gate's
  zero-tolerance work metrics).

See ``docs/observability.md`` for the event catalog and usage.
"""

from repro.obs.counters import (
    WorkCounters,
    count,
    count_work,
    counting_enabled,
    counts_to_metrics,
    current_counters,
    diff_counts,
    merge_counts,
    work_lane,
)
from repro.obs.events import (
    EVENT_CATALOG,
    TRACE_SCHEMA_VERSION,
    RunObserver,
    current_observer,
    emit,
    observe_run,
    observe_value,
    read_events,
    tracing_enabled,
)
from repro.obs.events_schema import EVENT_SCHEMAS, EventSpec, validate_record
from repro.obs.profile import (
    NULL_PROFILER,
    NullProfiler,
    Profiler,
    SpanProfiler,
    profile_spans,
    span,
    span_profiling_enabled,
)
from repro.obs.registry import HistogramSummary, MetricsRegistry, merge_snapshots

__all__ = [
    "EVENT_CATALOG",
    "EVENT_SCHEMAS",
    "EventSpec",
    "TRACE_SCHEMA_VERSION",
    "validate_record",
    "RunObserver",
    "current_observer",
    "emit",
    "observe_run",
    "observe_value",
    "read_events",
    "tracing_enabled",
    "HistogramSummary",
    "MetricsRegistry",
    "merge_snapshots",
    "NULL_PROFILER",
    "NullProfiler",
    "Profiler",
    "SpanProfiler",
    "profile_spans",
    "span",
    "span_profiling_enabled",
    "WorkCounters",
    "count",
    "count_work",
    "counting_enabled",
    "counts_to_metrics",
    "current_counters",
    "diff_counts",
    "merge_counts",
    "work_lane",
]
