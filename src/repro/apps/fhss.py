"""Frequency-hopping alignment on top of synchronized clocks.

In the FHSS PHY (the paper's second motivation: synchronization "support[s]
the medium access control protocol in the Frequency Hoping Spread Spectrum
version of the physical layer"), every station derives the current hop
channel from the shared time: channel = pattern[floor(t / dwell) % len].
Two stations whose clocks differ by ``d`` sit on *different* channels for
``d`` out of every ``dwell`` microseconds around each hop boundary - lost
airtime, and lost frames for transmissions straddling the boundary.

This module computes the aligned-airtime fraction and the frame-loss rate
implied by a per-node clock trace, plus the channel-agreement probability
at random instants (what a sniffer would measure).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.metrics import SyncTrace


@dataclass(frozen=True)
class FhssConfig:
    """Hop schedule parameters.

    Attributes
    ----------
    dwell_time_us:
        Time per hop channel. 802.11 FHSS used 390 time units of 1 ms or
        similar; tens of milliseconds is typical.
    channels:
        Pattern length (79 channels for 802.11 FHSS in the US).
    frame_airtime_us:
        Airtime of a representative frame; frames straddling a hop
        boundary on either side are lost when the pair is misaligned.
    """

    dwell_time_us: float = 10_000.0
    channels: int = 79
    frame_airtime_us: float = 500.0

    def __post_init__(self) -> None:
        if self.dwell_time_us <= 0:
            raise ValueError("dwell_time_us must be > 0")
        if self.channels < 2:
            raise ValueError("channels must be >= 2")
        if not 0 < self.frame_airtime_us < self.dwell_time_us:
            raise ValueError("frame_airtime_us must be in (0, dwell_time_us)")


@dataclass(frozen=True)
class FhssReport:
    """FHSS alignment evaluation over one run."""

    #: Mean fraction of time the worst pair sits on the same channel.
    aligned_fraction_worst_pair: float
    #: Mean over random pairs.
    aligned_fraction_mean_pair: float
    #: Fraction of frames lost to hop-boundary misalignment (worst pair).
    frame_loss_worst_pair: float
    #: Median worst-pair clock difference relative to the dwell time.
    misalignment_over_dwell: float


def evaluate_fhss(
    trace: SyncTrace, config: Optional[FhssConfig] = None
) -> FhssReport:
    """Evaluate hop alignment from a per-node clock trace.

    A pair with clock difference ``d < dwell`` disagrees on the channel
    for ``d`` out of every ``dwell`` microseconds (the window around each
    hop boundary where one station hopped and the other has not);
    ``d >= dwell`` means never reliably aligned. Frames within
    ``frame_airtime`` of a boundary are additionally lost.
    """
    config = config if config is not None else FhssConfig()
    if trace.values_us is None:
        raise ValueError(
            "this evaluation needs the per-node clock matrix: run with "
            "keep_values=True"
        )
    values = trace.values_us
    dwell = config.dwell_time_us
    worst = np.nanmax(values, axis=1) - np.nanmin(values, axis=1)
    worst = worst[np.isfinite(worst)]
    if worst.size == 0:
        raise ValueError("trace holds no synchronized samples")
    # mean-pair misalignment: expected |difference| of two uniform picks is
    # spread/3 for a roughly uniform cloud; measure it directly instead
    spread_mean = _mean_pairwise(values)
    worst_aligned = np.clip(1.0 - worst / dwell, 0.0, 1.0)
    mean_aligned = np.clip(1.0 - spread_mean / dwell, 0.0, 1.0)
    # frames are lost while the pair disagrees and additionally when the
    # frame straddles a boundary: per dwell, (d + airtime) / dwell of
    # transmission starts fail against the worst pair
    loss = np.clip((worst + config.frame_airtime_us) / dwell, 0.0, 1.0)
    return FhssReport(
        aligned_fraction_worst_pair=float(worst_aligned.mean()),
        aligned_fraction_mean_pair=float(np.mean(mean_aligned)),
        frame_loss_worst_pair=float(loss.mean()),
        misalignment_over_dwell=float(np.median(worst) / dwell),
    )


def hop_channel(time_us: float, config: FhssConfig, seed: int = 1) -> int:
    """The channel a station on ``time_us`` believes is current.

    A deterministic pseudo-random pattern over ``channels`` (every station
    derives the same pattern from the published seed).
    """
    slot = int(time_us // config.dwell_time_us)
    # splitmix-style integer hash for a pattern without numpy state
    z = (slot + seed * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return int((z ^ (z >> 31)) % config.channels)


def _mean_pairwise(values: np.ndarray) -> np.ndarray:
    """Mean absolute pairwise clock difference per sample row."""
    out = np.empty(values.shape[0])
    for i, row in enumerate(values):
        row = row[np.isfinite(row)]
        if row.size < 2:
            out[i] = np.nan
            continue
        row = np.sort(row)
        n = row.size
        # mean |x_i - x_j| over pairs via the sorted prefix-sum identity
        ranks = np.arange(1, n + 1)
        out[i] = 2.0 * np.sum((2 * ranks - n - 1) * row) / (n * (n - 1))
    return out[np.isfinite(out)]
