"""Unit tests for the guard-time policy and the coarse synchronizer."""

import pytest

from repro.core.coarse import CoarseSynchronizer
from repro.core.config import SstspConfig
from repro.core.guard import GuardPolicy


class TestGuard:
    def test_accepts_within_threshold(self):
        guard = GuardPolicy(threshold_us=250.0)
        assert guard.check(1_000.0, 1_200.0)
        assert guard.check(1_000.0, 800.0)
        assert guard.stats.accepted == 2

    def test_rejects_beyond_threshold(self):
        guard = GuardPolicy(threshold_us=250.0)
        assert not guard.check(1_000.0, 1_300.0)
        assert guard.stats.rejected == 1
        assert guard.stats.total == 1

    def test_boundary_inclusive(self):
        guard = GuardPolicy(threshold_us=250.0)
        assert guard.check(0.0, 250.0)

    def test_margin(self):
        guard = GuardPolicy(threshold_us=100.0)
        assert guard.margin(0.0, 40.0) == pytest.approx(60.0)
        assert guard.margin(0.0, 140.0) == pytest.approx(-40.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            GuardPolicy(threshold_us=0.0)


class TestCoarse:
    def make(self, **kw):
        return CoarseSynchronizer(SstspConfig(**kw))

    def test_averages_clean_offsets(self):
        coarse = self.make(coarse_min_samples=3)
        for offset in [100.0, 110.0, 90.0]:
            coarse.add_sample(offset)
        assert coarse.try_finish() == pytest.approx(100.0)

    def test_waits_for_enough_samples(self):
        coarse = self.make(coarse_min_samples=3)
        coarse.add_sample(100.0)
        coarse.tick_period()
        assert coarse.try_finish() is None

    def test_filters_malicious_offsets(self):
        coarse = self.make(coarse_min_samples=4, guard_coarse_us=500.0)
        for offset in [100.0, 110.0, 90.0, 99_000.0]:
            coarse.add_sample(offset)
        assert coarse.try_finish() == pytest.approx(100.0)
        assert coarse.samples_rejected == 1

    def test_timeout_with_partial_samples(self):
        coarse = self.make(coarse_min_samples=5, coarse_max_periods=3)
        coarse.add_sample(42.0)
        for _ in range(3):
            coarse.tick_period()
        assert coarse.try_finish() == pytest.approx(42.0)

    def test_timeout_without_samples_keeps_scanning(self):
        coarse = self.make(coarse_min_samples=5, coarse_max_periods=3)
        for _ in range(5):
            coarse.tick_period()
        assert coarse.try_finish() is None

    def test_gesd_option(self):
        coarse = self.make(
            coarse_min_samples=12, coarse_use_gesd=True, guard_coarse_us=5_000.0
        )
        for offset in [10.0, 11.0, 9.0, 10.5, 9.5, 10.2, 9.8, 10.1, 9.9, 10.0, 10.3]:
            coarse.add_sample(offset)
        coarse.add_sample(2_000.0)  # inside the loose threshold, caught by GESD
        result = coarse.try_finish()
        assert result == pytest.approx(10.03, abs=0.5)

    def test_counters(self):
        coarse = self.make(coarse_min_samples=2)
        coarse.add_sample(1.0)
        coarse.tick_period()
        assert coarse.samples_collected == 1
        assert coarse.periods_scanned == 1
