"""Unit tests for the fractal hash-chain traversal."""

import math

import pytest

from repro.crypto.fractal import FractalHashChain, FractalTraversal
from repro.crypto.hashchain import DenseHashChain

SEED = b"\x22" * 16


class TestFractalTraversal:
    @pytest.mark.parametrize("n", [1, 2, 3, 7, 8, 64, 100, 1024])
    def test_emits_descending_and_matches_dense(self, n):
        dense = DenseHashChain(SEED, n)
        trav = FractalTraversal(SEED, n)
        assert trav.anchor == dense.anchor
        expected = n - 1
        for pos, value in trav:
            assert pos == expected
            assert value == dense.element(pos)
            expected -= 1
        assert expected == -1

    def test_exhaustion_raises(self):
        trav = FractalTraversal(SEED, 2)
        trav.next()
        trav.next()
        with pytest.raises(StopIteration):
            trav.next()

    @pytest.mark.parametrize("n", [16, 256, 1024, 4096])
    def test_storage_logarithmic(self, n):
        trav = FractalTraversal(SEED, n)
        bound = math.ceil(math.log2(n)) + 2
        for _ in range(n):
            trav.next()
            assert trav.storage_elements() <= bound
        assert trav.max_resident <= bound

    @pytest.mark.parametrize("n", [64, 1024])
    def test_amortised_log_work(self, n):
        trav = FractalTraversal(SEED, n)
        for _ in range(n):
            trav.next()
        # total work <= ~ n * (log2(n)/2 + 2), counting the anchor pass
        assert trav.hash_operations <= n * (math.log2(n) / 2 + 2) + n

    def test_remaining(self):
        trav = FractalTraversal(SEED, 8)
        assert trav.remaining == 8
        trav.next()
        assert trav.remaining == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            FractalTraversal(SEED, 0)


class TestFractalHashChain:
    def test_matches_dense(self):
        dense = DenseHashChain(SEED, 64)
        fractal = FractalHashChain(SEED, 64)
        assert fractal.anchor == dense.anchor
        # uTESLA access pattern: key(j) then disclosed(j) per interval
        for j in range(1, 64):
            assert fractal.key_for_interval(j) == dense.key_for_interval(j)
            assert (
                fractal.disclosed_key_for_interval(j)
                == dense.disclosed_key_for_interval(j)
            )

    def test_utesla_pattern_needs_no_fallback(self):
        fractal = FractalHashChain(SEED, 128)
        for j in range(1, 128):
            fractal.key_for_interval(j)
            fractal.disclosed_key_for_interval(j)
        assert fractal.fallback_hash_operations == 0

    def test_out_of_order_access_falls_back(self):
        dense = DenseHashChain(SEED, 64)
        fractal = FractalHashChain(SEED, 64)
        fractal.key_for_interval(10)  # traversal now below position 54
        assert fractal.element(60) == dense.element(60)  # re-derived from seed
        assert fractal.fallback_hash_operations == 60

    def test_storage_small(self):
        fractal = FractalHashChain(SEED, 1024)
        for j in range(1, 200):
            fractal.key_for_interval(j)
            fractal.disclosed_key_for_interval(j)
        # traversal pebbles + recent window + anchor
        assert fractal.storage_elements() <= math.ceil(math.log2(1024)) + 2 + 5

    def test_element_bounds(self):
        fractal = FractalHashChain(SEED, 8)
        with pytest.raises(ValueError):
            fractal.element(9)
