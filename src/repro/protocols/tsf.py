"""IEEE 802.11 ad-hoc-mode TSF (the baseline the paper attacks and beats).

Per ANSI/IEEE Std 802.11-1999, clause 11.1.2.2 (and section 2 of the
paper): every station competes to send a beacon each beacon period. At its
TBTT it draws a random delay uniform in ``[0, w] x aSlotTime``, transmits
when the delay expires unless it received a beacon first, and - on
receiving a beacon - sets its TSF timer to the beacon timestamp *if the
timestamp is later* than its own timer.

The two scalability pathologies the paper reproduces follow directly:

* *fastest-node asynchronization* - the fastest clock only synchronizes
  others when it wins the contention (probability ~1/N), so it drifts
  ahead between wins;
* *beacon collision* - the more stations contend, the more windows end in
  collisions with no beacon at all.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.clocks.oscillator import TsfTimer
from repro.mac.beacon import BeaconFrame
from repro.phy.params import TSF_BEACON_BYTES
from repro.protocols.base import ClockKind, RxContext, SyncProtocol, TxIntent
from repro.sim.units import S


@dataclass(frozen=True)
class TsfConfig:
    """TSF parameters (paper section 5 values as defaults)."""

    beacon_period_us: float = 0.1 * S
    w: int = 30
    slot_time_us: float = 9.0

    def __post_init__(self) -> None:
        if self.beacon_period_us <= 0:
            raise ValueError("beacon_period_us must be > 0")
        if self.w < 0:
            raise ValueError("w must be >= 0")
        if self.slot_time_us <= 0:
            raise ValueError("slot_time_us must be > 0")


class TsfProtocol(SyncProtocol):
    """One station's TSF driver.

    Parameters
    ----------
    node_id:
        Station identity (stamped into beacons).
    timer:
        The station's settable TSF timer.
    config:
        Protocol parameters.
    rng:
        Stream for this station's backoff draws.
    """

    secure_beacons = False
    protocol_name = "tsf"

    def __init__(
        self,
        node_id: int,
        timer: TsfTimer,
        config: TsfConfig,
        rng: np.random.Generator,
    ) -> None:
        self.node_id = node_id
        self.timer = timer
        self.config = config
        self._rng = rng
        self.beacons_sent = 0
        self.beacons_received = 0
        self.adoptions = 0

    def begin_period(self, period: int) -> Optional[TxIntent]:
        slot = int(self._rng.integers(0, self.config.w + 1))
        local = period * self.config.beacon_period_us + slot * self.config.slot_time_us
        return TxIntent(local_time=local, clock=ClockKind.TSF)

    def make_frame(self, hw_time: float, period: int) -> BeaconFrame:
        # The hardware stamps the timer value (whole microseconds - the
        # counter's resolution) into the frame below the MAC.
        timestamp = math.floor(self.timer.raw_from_hw(hw_time))
        self.beacons_sent += 1
        return BeaconFrame(
            sender=self.node_id,
            timestamp_us=float(timestamp),
            size_bytes=TSF_BEACON_BYTES,
        )

    def on_beacon(self, frame: BeaconFrame, rx: RxContext) -> None:
        self.beacons_received += 1
        # Adopt the received time only if it is later than the local timer.
        if self.timer.set_forward_from_hw(rx.est_timestamp, rx.hw_time):
            self.adoptions += 1

    def synchronized_time(self, hw_time: float) -> float:
        return self.timer.raw_from_hw(hw_time)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TsfProtocol(node={self.node_id}, sent={self.beacons_sent})"
