"""Unit tests for beacon-window contention resolution."""

import numpy as np
import pytest

from repro.mac.contention import (
    draw_slots,
    resolve_contention,
    resolve_slotted,
)

AIR = 36.0  # 4 slots
CCA = 9.0


def test_single_candidate_succeeds():
    result = resolve_contention([(7, 100.0)], AIR, CCA)
    assert result.winner == 7
    assert result.first_success.start_us == 100.0
    assert result.cancelled == []


def test_no_candidates():
    result = resolve_contention([], AIR, CCA)
    assert result.winner is None
    assert result.transmissions == []


def test_later_candidate_cancels_after_success():
    result = resolve_contention([(1, 0.0), (2, 50.0)], AIR, CCA)
    assert result.winner == 1
    assert result.cancelled == [2]


def test_same_slot_collides():
    result = resolve_contention([(1, 0.0), (2, 4.0)], AIR, CCA)
    assert result.winner is None
    assert result.collisions == 1
    assert result.transmissions[0].members == (1, 2)


def test_deferral_then_cancel_on_success():
    # 2 expires during 1's successful transmission, beyond the CCA window:
    # it defers to the end of the busy period, then cancels (beacon heard).
    result = resolve_contention([(1, 0.0), (2, 20.0)], AIR, CCA)
    assert result.winner == 1
    assert result.cancelled == [2]


def test_deferral_then_transmit_after_collision():
    # 1 and 2 collide; 3 deferred during the collision transmits at its end
    # (no beacon was received) and succeeds.
    result = resolve_contention([(1, 0.0), (2, 5.0), (3, 20.0)], AIR, CCA)
    assert result.collisions == 1
    assert result.winner == 3
    assert result.first_success.start_us == pytest.approx(36.0)


def test_two_deferred_nodes_collide_on_restart():
    result = resolve_contention([(1, 0.0), (2, 5.0), (3, 20.0), (4, 25.0)], AIR, CCA)
    # 3 and 4 both restart at t=36 and collide again
    assert result.winner is None
    assert result.collisions == 2


def test_idle_gap_second_success_not_possible_after_first():
    # A candidate far beyond the first success still cancels.
    result = resolve_contention([(1, 0.0), (2, 500.0)], AIR, CCA)
    assert result.winner == 1
    assert result.cancelled == [2]


def test_transmission_after_collision_far_gap():
    # Collision at 0; candidate at 100 (idle again) succeeds.
    result = resolve_contention([(1, 0.0), (2, 3.0), (3, 100.0)], AIR, CCA)
    assert result.winner == 3


def test_exact_tie_collides():
    result = resolve_contention([(1, 10.0), (2, 10.0)], AIR, CCA)
    assert result.winner is None
    assert result.transmissions[0].members == (1, 2)


def test_duplicate_station_rejected():
    with pytest.raises(ValueError):
        resolve_contention([(1, 0.0), (1, 5.0)], AIR, CCA)


def test_parameter_validation():
    with pytest.raises(ValueError):
        resolve_contention([(1, 0.0)], 0.0, CCA)
    with pytest.raises(ValueError):
        resolve_contention([(1, 0.0)], AIR, -1.0)


def test_degenerates_to_unique_minimum_rule_with_perfect_clocks():
    # Slot positions 9 us apart: earliest unique slot always wins.
    rng = np.random.default_rng(7)
    for _ in range(200):
        slots = draw_slots(list(range(10)), w=30, rng=rng)
        candidates = [(s, slot * 9.0) for s, slot in slots.items()]
        cascade_winner = resolve_contention(candidates, AIR, CCA).winner
        slotted_winner, collided = resolve_slotted(slots)
        if not collided:
            assert cascade_winner == slotted_winner
        else:
            # the cascade may still recover a later success; if it reports
            # a winner it must not hold the contested minimum slot
            if cascade_winner is not None:
                assert slots[cascade_winner] > min(slots.values())


class TestDrawSlots:
    def test_uniform_range(self, rng):
        slots = draw_slots(list(range(10_000)), w=30, rng=rng)
        values = np.array(list(slots.values()))
        assert values.min() >= 0
        assert values.max() <= 30
        # roughly uniform: each slot ~ 10000/31 = 322
        counts = np.bincount(values, minlength=31)
        assert counts.min() > 200

    def test_empty(self, rng):
        assert draw_slots([], 30, rng) == {}

    def test_negative_w_rejected(self, rng):
        with pytest.raises(ValueError):
            draw_slots([1], -1, rng)


class TestResolveSlotted:
    def test_unique_min_wins(self):
        winner, collided = resolve_slotted({1: 5, 2: 3, 3: 9})
        assert winner == 2 and not collided

    def test_tied_min_collides(self):
        winner, collided = resolve_slotted({1: 3, 2: 3, 3: 9})
        assert winner is None and collided

    def test_empty(self):
        assert resolve_slotted({}) == (None, False)
