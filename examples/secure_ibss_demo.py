#!/usr/bin/env python
"""Security walk-through: four attacks against a synchronized IBSS.

Reproduces section 4's security analysis as running code:

1. an *external forger* floods secure-looking beacons without a
   registered hash chain - every one is rejected by uTESLA;
2. a *replay attacker* re-broadcasts stale captured beacons - rejected by
   the interval safety check;
3. a *guard-tuned insider* (compromised station) seizes the reference
   role - the guard time bounds it to dragging the shared virtual clock,
   the network stays internally synchronized;
4. the same insider gets greedy (shave above the guard) - rejected, and
   an honest station retakes the reference role.

Run:  python examples/secure_ibss_demo.py
"""

from repro.core.config import SstspConfig
from repro.core.sstsp import SstspProtocol
from repro.network.churn import ChurnEvent
from repro.network.ibss import AttackerSpec, ScenarioSpec, build_network
from repro.network.node import Node
from repro.security.attacks import AttackWindow, ExternalForger, ReplayAttacker
from repro.sim.units import S


def window_max(trace, a_s, b_s):
    return float(trace.window(a_s * S, b_s * S).max_diff_us.max())


def print_phase(title, trace, attack=(10.0, 20.0), end=30.0):
    print(f"  max clock difference: before={window_max(trace, 3, attack[0]):7.1f} us"
          f"  during={window_max(trace, attack[0] + 1, attack[1]):7.1f} us"
          f"  after={window_max(trace, attack[1] + 2, end):7.1f} us")


def scenario(n=15, seed=7, duration_s=30.0):
    return ScenarioSpec(n=n, seed=seed, duration_s=duration_s)


def attach_attacker(runner, protocol_cls, spec, **kw):
    """Add one malicious station to a built network."""
    runner_nodes = runner.nodes
    attacker_id = max(node.node_id for node in runner_nodes) + 1
    reference_protocol = runner_nodes[0].protocol
    node = Node(attacker_id, runner_nodes[0].hw.__class__(rate=1.00002))
    node.protocol = protocol_cls(
        attacker_id,
        reference_protocol.config,
        reference_protocol.backend,
        __import__("numpy").random.default_rng(999),
        window=AttackWindow.from_seconds(10.0, 20.0, spec.beacon_period_us),
        **kw,
    )
    node.include_in_metrics = False
    runner.nodes.append(node)
    runner._by_id[attacker_id] = node
    return node


def main() -> None:
    print("=" * 70)
    print("1) external forger: no registered chain")
    print("=" * 70)
    # The forger cannot influence any clock, but by occupying the channel
    # it degrades to a jamming-grade denial of service (which the paper
    # rules out of scope). We enable the recovery extension (the paper's
    # proposed future work) so the network heals itself afterwards.
    spec = scenario()
    runner = build_network(
        "sstsp", spec, sstsp_config=SstspConfig(recovery_rejection_threshold=10)
    )
    forger = attach_attacker(runner, ExternalForger, spec)
    result = runner.run()
    rejections = sum(
        node.protocol.stats.rejections_by_reason.get("unknown_sender", 0)
        + node.protocol.stats.rejections_by_reason.get("bad_key", 0)
        for node in result.nodes
        if isinstance(node.protocol, SstspProtocol)
        and node.node_id != forger.node_id
    )
    adjusted_from_forger = any(
        forger.node_id in node.protocol._samples
        for node in result.nodes
        if node.node_id != forger.node_id
    )
    print(f"  forged frames sent: {forger.protocol.forged_frames}, "
          f"pipeline rejections at receivers: {rejections}")
    print(f"  any clock influenced by the forger: {adjusted_from_forger}")
    print_phase("forger", result.trace)
    assert rejections > 0 and not adjusted_from_forger
    # channel suppression degrades to jamming (out of the paper's scope),
    # but with the recovery extension the network heals itself afterwards
    assert window_max(result.trace, 25, 30) < 25.0
    print("  -> jamming-grade DoS while active, but zero clock influence; "
          "recovered after the window")

    print()
    print("=" * 70)
    print("2) replay attacker: stale beacons re-broadcast 3 BPs late")
    print("=" * 70)
    spec = scenario()
    runner = build_network("sstsp", spec)
    replayer = attach_attacker(runner, ReplayAttacker, spec, delay_periods=3)
    result = runner.run()
    stale_rejections = sum(
        node.protocol.stats.rejections_by_reason.get("unsafe_interval", 0)
        for node in result.nodes
        if node.node_id != replayer.node_id
    )
    print(f"  replayed frames: {replayer.protocol.replayed_frames}, "
          f"stale-interval rejections: {stale_rejections}")
    print_phase("replay", result.trace)
    assert replayer.protocol.replayed_frames == 0 or stale_rejections > 0

    print()
    print("=" * 70)
    print("3) guard-tuned insider: 40 us/BP shave under a 250 us guard")
    print("=" * 70)
    spec = ScenarioSpec(
        n=15, seed=7, duration_s=30.0,
        attacker=AttackerSpec(start_s=10.0, end_s=20.0, shave_per_period_us=40.0),
    )
    result = build_network("sstsp", spec).run()
    print_phase("insider", result.trace)
    print(f"  virtual clock dragged {result.trace.mean_vs_true_us[-1]:.0f} us vs "
          "true time - synchronized, but to the attacker's timeline")
    assert window_max(result.trace, 11, 20) < 100.0

    print()
    print("=" * 70)
    print("4) greedy insider: 900 us/BP shave trips the guard")
    print("=" * 70)
    spec = ScenarioSpec(
        n=15, seed=7, duration_s=30.0,
        attacker=AttackerSpec(start_s=10.0, end_s=20.0, shave_per_period_us=900.0),
    )
    result = build_network("sstsp", spec).run()
    guard_rejections = sum(
        node.protocol.guard.stats.rejected
        for node in result.nodes
        if isinstance(node.protocol, SstspProtocol) and node.include_in_metrics
    )
    print(f"  guard rejections across the network: {guard_rejections}")
    print_phase("greedy insider", result.trace)
    assert guard_rejections > 0
    assert window_max(result.trace, 25, 30) < 25.0
    print("  -> an honest station retook the reference role; the network "
          "re-synchronized")


if __name__ == "__main__":
    main()
