"""Deterministic work counters + hierarchical span profiler.

The counters' load-bearing contract (the ``TestTracingParity`` style,
see ``tests/test_differential_parity.py``): ``count()`` draws no
randomness, reads no clock and mutates no simulation state, so a counted
run is *bit-identical* to an uncounted one on every lane — and the tally
itself is a pure function of the spec and seed, byte-identical across
repeats, tracing states and worker counts. That exactness is what lets
``repro bench-gate`` compare work with zero tolerance and ``repro
profile diff`` act as a determinism check.

The span profiler's contract: only ``obs/profile.py`` reads the host
clock (the D002 carve-out), attribution is exact under an injected fake
clock, and the Chrome trace-event export is schema-valid.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.fastlane import run_sstsp_vectorized
from repro.multihop.runner import MultiHopSpec, run_multihop
from repro.multihop.topology import Topology
from repro.network.ibss import ScenarioSpec, build_network
from repro.obs import observe_run
from repro.obs.counters import (
    WORK_METRIC_PREFIX,
    WorkCounters,
    count,
    count_work,
    counting_enabled,
    counts_to_metrics,
    current_counters,
    diff_counts,
    format_report,
    load_counts_json,
    merge_counts,
    work_lane,
    write_counts_json,
)
from repro.obs.profile import (
    Profiler,
    SpanProfiler,
    profile_spans,
    span,
    span_profiling_enabled,
)
from repro.obs.profilecli import main as profile_main
from repro.sweep import JobSpec, SweepOptions, run_sweep

SPEC = ScenarioSpec(n=10, seed=4, duration_s=10.0)
MH_SPEC = MultiHopSpec(topology=Topology.chain(6), seed=3, duration_s=8.0)


def _trace_arrays(trace):
    arrays = [
        trace.times_us,
        trace.max_diff_us,
        trace.mean_vs_true_us,
        trace.present_counts,
        trace.reference_ids,
    ]
    if trace.values_us is not None:
        arrays.append(trace.values_us)
    return arrays


def _assert_bit_identical(a, b):
    for left, right in zip(_trace_arrays(a), _trace_arrays(b)):
        assert np.array_equal(left, right, equal_nan=True)


class TestWorkCountersApi:
    def test_disabled_count_is_a_noop(self):
        assert not counting_enabled()
        assert current_counters() is None
        count("engine.heap_push")  # must not raise, must not record
        count("engine.heap_push", 100)
        assert not counting_enabled()

    def test_count_work_installs_and_restores_the_sink(self):
        with count_work() as work:
            assert counting_enabled()
            assert current_counters() is work
            count("a")
            count("a", 2)
            count("b", 5)
        assert not counting_enabled()
        assert work.snapshot() == {"a": 3, "b": 5}

    def test_lanes_nest_and_the_innermost_owns_the_work(self):
        with count_work() as work:
            count("outside")
            with work_lane("multihop/coop"):
                count("phy.per_draw")
                with work_lane("singlehop/sstsp"):
                    count("phy.per_draw", 2)
                count("phy.per_draw")
        assert work.snapshot() == {
            "multihop/coop/phy.per_draw": 2,
            "outside": 1,
            "singlehop/sstsp/phy.per_draw": 2,
        }
        assert work.total("phy.per_draw") == 4
        assert work.total("outside") == 1

    def test_work_lane_without_a_sink_is_a_noop(self):
        with work_lane("fastlane/sstsp"):
            count("phy.per_draw")
        assert not counting_enabled()

    def test_merge_diff_metrics_and_report(self):
        total = merge_counts({"a": 1}, {"a": 2, "b": 3})
        assert total == {"a": 3, "b": 3}
        assert counts_to_metrics({"b": 3, "a": 1}) == {
            f"{WORK_METRIC_PREFIX}a": 1,
            f"{WORK_METRIC_PREFIX}b": 3,
        }
        # absent keys diff as zero, identical tallies diff as empty
        assert diff_counts({"a": 1}, {"a": 1}) == []
        assert diff_counts({"a": 1, "b": 2}, {"a": 3}) == [
            ("a", 1, 3), ("b", 2, 0),
        ]
        report = format_report({"a": 1, "bb": 2})
        assert report == "# work counters\na   1\nbb  2\n"
        assert format_report({}) == "# work counters\n(no work counted)\n"

    def test_counts_json_roundtrip_is_byte_stable(self, tmp_path):
        counts = WorkCounters()
        counts.add("b", 2)
        counts.add("a")
        one = str(tmp_path / "one.json")
        two = str(tmp_path / "two.json")
        write_counts_json(one, counts.snapshot())
        write_counts_json(two, {"b": 2, "a": 1})
        with open(one, "rb") as fh_one, open(two, "rb") as fh_two:
            assert fh_one.read() == fh_two.read()
        assert load_counts_json(one) == {"a": 1, "b": 2}


class TestCountingParity:
    """Counted runs are bit-identical to uncounted ones on every lane,
    and the tally itself is deterministic."""

    def test_oo_lane_bit_identical_with_counting(self):
        plain = build_network("sstsp", SPEC).run()
        with count_work() as work:
            counted = build_network("sstsp", SPEC).run()
        _assert_bit_identical(plain.trace, counted.trace)
        assert plain.successful_beacons == counted.successful_beacons
        snapshot = work.snapshot()
        assert snapshot, "instrumented run counted no work"
        assert all(key.startswith("singlehop/sstsp/") for key in snapshot)
        assert work.total("engine.dispatch") > 0
        assert work.total("phy.per_draw") > 0

    def test_vec_lane_bit_identical_with_counting(self):
        plain = run_sstsp_vectorized(SPEC)
        with count_work() as work:
            counted = run_sstsp_vectorized(SPEC)
        _assert_bit_identical(plain.trace, counted.trace)
        snapshot = work.snapshot()
        assert snapshot
        assert all(key.startswith("fastlane/sstsp/") for key in snapshot)
        assert work.total("mac.slot_draws") > 0

    def test_multihop_lane_bit_identical_with_counting(self):
        plain = run_multihop(MH_SPEC)
        with count_work() as work:
            counted = run_multihop(MH_SPEC)
        _assert_bit_identical(plain.trace, counted.trace)
        assert plain.per_hop_error_us == counted.per_hop_error_us
        assert plain.beacons_sent == counted.beacons_sent
        snapshot = work.snapshot()
        assert snapshot
        assert all(key.startswith("multihop/sstsp/") for key in snapshot)

    def test_tally_identical_with_tracing_on_and_off(self):
        with count_work() as bare:
            run_multihop(MH_SPEC)
        with count_work() as traced, observe_run() as obs:
            run_multihop(MH_SPEC)
        assert obs.event_count > 0
        assert bare.snapshot() == traced.snapshot()

    def test_repeated_tallies_are_byte_identical(self):
        snapshots = []
        for _ in range(2):
            with count_work() as work:
                run_sstsp_vectorized(SPEC)
            snapshots.append(
                json.dumps(work.snapshot(), sort_keys=True)
            )
        assert snapshots[0] == snapshots[1]


class TestSweepWorkMetrics:
    """The orchestrator folds per-job work counters into the observed
    metrics; the roll-up is identical at any worker count."""

    @staticmethod
    def _specs():
        return [
            JobSpec.make(
                "scenario_trace",
                {"protocol": "sstsp", "lane": "vec", "scenario": "quick",
                 "n": 5, "m": 4, "seed": seed},
                root_seed=seed,
            )
            for seed in (1, 2)
        ]

    @staticmethod
    def _sweep_end_work(log_path):
        with open(log_path, encoding="utf-8") as fh:
            records = [json.loads(line) for line in fh]
        end = records[-1]
        assert end["event"] == "sweep_end"
        return {
            key: value
            for key, value in end["metrics"]["counters"].items()
            if key.startswith(WORK_METRIC_PREFIX)
        }

    def test_work_rolls_up_identically_across_worker_counts(self, tmp_path):
        tallies = {}
        for workers in (1, 4):
            log_path = tmp_path / f"w{workers}.jsonl"
            run_sweep(
                "quick",
                self._specs(),
                SweepOptions(
                    workers=workers,
                    trace_dir=str(tmp_path / f"t{workers}"),
                    log_path=str(log_path),
                ),
            )
            tallies[workers] = self._sweep_end_work(log_path)
        assert tallies[1], "sweep_end carries no work counters"
        assert any(
            key.startswith(f"{WORK_METRIC_PREFIX}fastlane/sstsp/")
            for key in tallies[1]
        )
        assert tallies[1] == tallies[4]


class _FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestSpanProfiler:
    def test_nested_attribution_with_a_fake_clock(self):
        clock = _FakeClock()
        profiler = SpanProfiler(clock=clock)
        with profiler.span("outer"):
            clock.now = 1.0
            with profiler.span("inner"):
                clock.now = 3.0
            clock.now = 4.0
        with profiler.span("outer"):
            clock.now = 5.0
        tree = profiler.span_tree()
        assert len(tree) == 1
        outer = tree[0]
        assert outer["name"] == "outer"
        assert outer["count"] == 2
        assert outer["total_s"] == 5.0  # 4.0 + 1.0
        assert outer["self_s"] == 3.0  # children took 2.0
        (inner,) = outer["children"]
        assert inner == {
            "name": "inner", "count": 1, "total_s": 2.0, "self_s": 2.0,
            "children": [],
        }
        # the flat Profiler view keeps working on a span profiler
        assert profiler.totals() == {"inner": 2.0, "outer": 5.0}
        assert profiler.counts() == {"inner": 1, "outer": 2}
        assert "outer" in profiler.format_tree()

    def test_chrome_trace_schema(self):
        clock = _FakeClock()
        profiler = SpanProfiler(clock=clock)
        with profiler.span("outer"):
            clock.now = 1.0
            with profiler.span("inner"):
                clock.now = 3.0
            clock.now = 4.0
        trace = profiler.chrome_trace()
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        assert [event["name"] for event in events] == ["inner", "outer"]
        for event in events:
            assert event["ph"] == "X"
            assert event["pid"] == 0 and event["tid"] == 0
            assert event["ts"] >= 0.0 and event["dur"] >= 0.0
        inner, outer = events
        assert inner["ts"] == 1e6 and inner["dur"] == 2e6
        assert inner["cat"] == "outer"
        assert inner["args"]["path"] == "outer/inner"
        assert outer["ts"] == 0.0 and outer["dur"] == 4e6
        assert outer["cat"] == "root"

    def test_write_chrome_trace_is_valid_json(self, tmp_path):
        clock = _FakeClock()
        profiler = SpanProfiler(clock=clock)
        with profiler.span("a"):
            clock.now = 1.0
        path = profiler.write_chrome_trace(str(tmp_path / "trace.json"))
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
        assert payload["traceEvents"][0]["name"] == "a"

    def test_free_span_is_a_noop_until_installed(self):
        assert not span_profiling_enabled()
        with span("anything"):
            pass  # no profiler installed: must not record or raise
        with profile_spans() as profiler:
            assert span_profiling_enabled()
            with span("phase"):
                pass
        assert not span_profiling_enabled()
        assert profiler.counts() == {"phase": 1}

    def test_runner_spans_reach_the_installed_profiler(self):
        with profile_spans() as profiler:
            run_multihop(MH_SPEC)
        counts = profiler.counts()
        assert counts["multihop.period"] > 0
        assert counts["multihop.receptions"] > 0
        paths = {
            "/".join(path) for path, _, _ in profiler._spans
        }
        assert "multihop.period/multihop.receptions" in sorted(paths)

    def test_format_summary_handles_zero_and_absent_wall(self):
        profiler = Profiler()
        assert profiler.format_summary() == "no profiled sections"
        profiler.add("engine", 1.5)
        assert profiler.format_summary() == "engine 1.50s"
        # wall_s=0.0 is a real value (a sub-resolution sweep), not
        # "absent": it must neither divide by zero nor show percentages
        assert profiler.format_summary(0.0) == "engine 1.50s"
        assert profiler.format_summary(3.0) == "engine 1.50s (50%)"


class TestProfileCli:
    ARGS = [
        "run", "multihop_run",
        "--param", "topology=chain",
        "--param", "n=5",
        "--param", "duration_s=4.0",
        "--seed", "3",
    ]

    @staticmethod
    def _artifacts(out_dir, suffix=""):
        names = sorted(os.listdir(out_dir))
        counters = [n for n in names if n.endswith(f"{suffix}.counters.json")]
        chrome = [n for n in names if n.endswith(f"{suffix}.chrome.json")]
        return counters, chrome

    def test_run_twice_and_diff_is_clean(self, tmp_path, capsys):
        out_dir = str(tmp_path / "profile")
        assert profile_main(self.ARGS + ["--out-dir", out_dir]) == 0
        assert profile_main(
            self.ARGS + ["--out-dir", out_dir, "--suffix", ".run2"]
        ) == 0
        capsys.readouterr()
        counters2, chrome2 = self._artifacts(out_dir, ".run2")
        assert len(counters2) == 1 and len(chrome2) == 1
        first = [
            name for name in sorted(os.listdir(out_dir))
            if name.endswith(".counters.json") and ".run2" not in name
        ]
        assert len(first) == 1
        a = os.path.join(out_dir, first[0])
        b = os.path.join(out_dir, counters2[0])
        with open(a, "rb") as fh_a, open(b, "rb") as fh_b:
            assert fh_a.read() == fh_b.read(), "counters not deterministic"
        assert profile_main(["diff", a, b]) == 0
        assert "identical" in capsys.readouterr().out
        # the chrome trace is schema-valid (wall times, so not byte-stable)
        with open(os.path.join(out_dir, chrome2[0]), encoding="utf-8") as fh:
            trace = json.load(fh)
        assert trace["displayTimeUnit"] == "ms"
        assert trace["traceEvents"], "profile run recorded no spans"
        assert {"multihop.period", "job"} <= {
            event["name"] for event in trace["traceEvents"]
        }
        assert all(event["ph"] == "X" for event in trace["traceEvents"])

    def test_diff_flags_drift_and_exits_nonzero(self, tmp_path, capsys):
        a = str(tmp_path / "a.counters.json")
        b = str(tmp_path / "b.counters.json")
        write_counts_json(a, {"multihop/sstsp/engine.dispatch": 10})
        write_counts_json(b, {"multihop/sstsp/engine.dispatch": 11})
        assert profile_main(["diff", a, b]) == 1
        assert "DRIFT" in capsys.readouterr().out
