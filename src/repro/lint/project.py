"""The project model: import graph + per-module symbol tables.

The D-series rules are per-file; the T/E/R families need to see the
whole tree at once — a timestamp minted in ``protocols/`` flows through
``multihop/`` into ``clocks/``, and whether a call's argument unit
matches the parameter can only be judged against the *callee's*
signature, which usually lives in another module. This module builds
the lightweight cross-module view the flow rules consume:

* one :class:`ModuleInfo` per parsed file — dotted module name, import
  aliases, imported-``repro``-module edges, and a symbol table of
  top-level functions, classes (keyed by class name, carrying the
  ``__init__`` signature) and methods (``"Class.method"``);
* a :class:`ProjectModel` over all of them, resolving dotted call paths
  to :class:`FunctionSig` entries, following one-hop re-exports through
  package ``__init__`` files (``repro.obs.emit`` ->
  ``repro.obs.events.emit``).

Everything here is a plain ``ast`` pass — no imports are executed, so
building the model over a tree that does not even import cleanly is
fine, and the linter stays dependency-free.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.lint.rules import build_aliases
from repro.lint.timebase import unit_of_annotation, unit_of_identifier

#: How many re-export hops :meth:`ProjectModel.resolve_function` follows
#: before giving up (cycles in ``__init__`` re-exports are pathological).
_MAX_REEXPORT_HOPS = 5


def module_name(rel: str) -> str:
    """Dotted module name for a package-relative path.

    ``"mac/contention.py"`` -> ``"repro.mac.contention"``;
    ``"obs/__init__.py"`` -> ``"repro.obs"``; the bare package
    ``"__init__.py"`` -> ``"repro"``.
    """
    parts = rel.split("/")
    if parts[-1] == "__init__.py":
        parts = parts[:-1]
    elif parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    return ".".join(["repro"] + [p for p in parts if p])


@dataclass(frozen=True)
class ParamInfo:
    """One parameter of a recorded signature."""

    name: str
    #: Inferred unit domain (suffix convention or ``Annotated``), if any.
    unit: Optional[str]


@dataclass(frozen=True)
class FunctionSig:
    """The callable surface of one function, method or constructor."""

    #: Symbol name within its module (``"resolve_neighborhood"``,
    #: ``"ClockChain"`` for a constructor, ``"ClockChain.hw_at"``).
    qualname: str
    #: Dotted module the symbol is defined in.
    module: str
    #: Positional-capable parameters in order (``self``/``cls`` already
    #: stripped for methods and constructors).
    params: Tuple[ParamInfo, ...]
    #: Keyword-only parameters.
    kwonly: Tuple[ParamInfo, ...]
    #: Whether the signature absorbs extra positionals / keywords.
    has_var_positional: bool = False
    has_var_keyword: bool = False
    #: Inferred unit of the return value (name suffix or ``Annotated``
    #: return annotation), if any.
    returns_unit: Optional[str] = None

    def param_named(self, name: str) -> Optional[ParamInfo]:
        """The declared parameter called ``name``, if any."""
        for param in self.params + self.kwonly:
            if param.name == name:
                return param
        return None


@dataclass
class ModuleInfo:
    """Everything the project model records about one parsed file."""

    #: Package-relative posix path (``"mac/contention.py"``).
    rel: str
    #: Dotted module name (``"repro.mac.contention"``).
    module: str
    #: Local name -> dotted import path (see ``build_aliases``).
    aliases: Dict[str, str] = field(default_factory=dict)
    #: Symbol table: function / class / ``"Class.method"`` -> signature.
    functions: Dict[str, FunctionSig] = field(default_factory=dict)
    #: Dotted ``repro.*`` modules this module imports (the import graph's
    #: outgoing edges, in first-occurrence order).
    imports: Tuple[str, ...] = ()


def _param_info(arg: ast.arg) -> ParamInfo:
    unit = unit_of_annotation(arg.annotation)
    if unit is None:
        unit = unit_of_identifier(arg.arg)
    return ParamInfo(arg.arg, unit)


def _signature(
    func: ast.AST, qualname: str, module: str, *, drop_first: bool = False
) -> FunctionSig:
    args = func.args  # type: ignore[attr-defined]
    positional = list(args.posonlyargs) + list(args.args)
    if drop_first and positional:
        positional = positional[1:]
    returns_unit = unit_of_annotation(getattr(func, "returns", None))
    if returns_unit is None:
        returns_unit = unit_of_identifier(getattr(func, "name", ""))
    return FunctionSig(
        qualname=qualname,
        module=module,
        params=tuple(_param_info(a) for a in positional),
        kwonly=tuple(_param_info(a) for a in args.kwonlyargs),
        has_var_positional=args.vararg is not None,
        has_var_keyword=args.kwarg is not None,
        returns_unit=returns_unit,
    )


def _is_staticmethod(func: ast.AST) -> bool:
    for decorator in getattr(func, "decorator_list", []):
        if isinstance(decorator, ast.Name) and decorator.id == "staticmethod":
            return True
    return False


def _repro_imports(tree: ast.AST) -> Tuple[str, ...]:
    """Outgoing ``repro.*`` import edges of one module, deduplicated."""
    seen: List[str] = []
    for node in ast.walk(tree):
        targets: List[str] = []
        if isinstance(node, ast.Import):
            targets = [n.name for n in node.names]
        elif isinstance(node, ast.ImportFrom) and not node.level and node.module:
            targets = [node.module]
        for target in targets:
            if (target == "repro" or target.startswith("repro.")) and (
                target not in seen
            ):
                seen.append(target)
    return tuple(seen)


def build_module_info(rel: str, tree: ast.AST) -> ModuleInfo:
    """Symbol-table one parsed module (top level only, by design)."""
    dotted = module_name(rel)
    functions: Dict[str, FunctionSig] = {}
    body = getattr(tree, "body", [])
    for node in body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions[node.name] = _signature(node, node.name, dotted)
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                drop = not _is_staticmethod(item)
                qual = f"{node.name}.{item.name}"
                sig = _signature(item, qual, dotted, drop_first=drop)
                functions[qual] = sig
                if item.name == "__init__":
                    # The class name itself is callable: constructing it
                    # matches the __init__ signature minus self.
                    functions[node.name] = FunctionSig(
                        qualname=node.name,
                        module=dotted,
                        params=sig.params,
                        kwonly=sig.kwonly,
                        has_var_positional=sig.has_var_positional,
                        has_var_keyword=sig.has_var_keyword,
                        returns_unit=None,
                    )
    return ModuleInfo(
        rel=rel,
        module=dotted,
        aliases=build_aliases(tree),
        functions=functions,
        imports=_repro_imports(tree),
    )


class ProjectModel:
    """The cross-module view: every linted module's :class:`ModuleInfo`."""

    def __init__(self, infos: Iterable[ModuleInfo]) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        for info in infos:
            self.modules[info.module] = info

    def module_for(self, rel: str) -> Optional[ModuleInfo]:
        """The info recorded for a package-relative path, if any."""
        return self.modules.get(module_name(rel))

    def import_edges(self) -> Dict[str, Tuple[str, ...]]:
        """Module -> imported ``repro.*`` modules (the import graph)."""
        return {name: info.imports for name, info in sorted(self.modules.items())}

    def resolve_function(
        self, dotted: str, _hops: int = 0
    ) -> Optional[FunctionSig]:
        """Resolve a dotted path to a recorded signature, if possible.

        Splits ``repro.mac.contention.resolve_neighborhood`` into the
        longest known module prefix plus a symbol path (one or two
        components: ``f``, ``Class``, ``Class.method``), following
        re-exports through package ``__init__`` aliases for up to
        ``_MAX_REEXPORT_HOPS`` hops.
        """
        if _hops > _MAX_REEXPORT_HOPS:
            return None
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:cut])
            info = self.modules.get(module)
            if info is None:
                continue
            symbol = ".".join(parts[cut:])
            sig = info.functions.get(symbol)
            if sig is not None:
                return sig
            # One-hop re-export: `from repro.obs.events import emit` in
            # obs/__init__.py makes "repro.obs.emit" an alias.
            head = parts[cut]
            target = info.aliases.get(head)
            if target is not None:
                tail = ".".join(parts[cut + 1 :])
                full = f"{target}.{tail}" if tail else target
                return self.resolve_function(full, _hops + 1)
            return None
        return None

    def resolve_call(
        self, call: ast.Call, info: ModuleInfo
    ) -> Optional[FunctionSig]:
        """Resolve a call site in ``info``'s module to a signature.

        Bare names try the module's own top-level symbols first, then
        its import aliases; attribute chains resolve through aliases
        (``contention.resolve_neighborhood`` with ``from repro.mac
        import contention``). Method calls on objects (``self.x(...)``,
        ``obj.method(...)``) are not resolved — that would need type
        inference — and return None.
        """
        func = call.func
        if isinstance(func, ast.Name):
            own = info.functions.get(func.id)
            if own is not None:
                return own
            target = info.aliases.get(func.id)
            if target is not None:
                return self.resolve_function(target)
            return None
        if isinstance(func, ast.Attribute):
            parts: List[str] = []
            current: ast.expr = func
            while isinstance(current, ast.Attribute):
                parts.append(current.attr)
                current = current.value
            if not isinstance(current, ast.Name):
                return None
            base = info.aliases.get(current.id)
            if base is None:
                return None
            parts.append(base)
            return self.resolve_function(".".join(reversed(parts)))
        return None
