"""Traffic and storage overhead models (paper section 3.4).

The paper argues SSTSP's security costs are modest: the *number* of
beacons is unchanged versus TSF, each beacon grows from 56 to 92 bytes
(two 128-bit hash values plus an interval index), per-node chain storage
can be reduced to ``log2(n)`` elements via fractal traversal, and
receivers buffer at most two BPs of beacons (300-500 bytes). These
functions compute the same accounting from first principles and - for the
chain strategies - from *measured* counters, so the benchmark can check
the claims instead of restating them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.crypto.fractal import FractalHashChain
from repro.crypto.hashchain import DenseHashChain, SeedOnlyHashChain
from repro.crypto.primitives import HASH_BYTES
from repro.phy.params import (
    PhyParams,
    SSTSP_BEACON_BYTES,
    TSF_BEACON_BYTES,
)
from repro.sim.units import S


@dataclass(frozen=True)
class OverheadReport:
    """Per-protocol beacon overhead summary."""

    beacon_bytes: int
    beacons_per_second: float
    bytes_per_second: float
    airtime_us_per_beacon: float
    airtime_fraction: float


def beacon_overhead(
    secure: bool,
    phy: PhyParams,
    beacon_period_us: float = 0.1 * S,
) -> OverheadReport:
    """Overhead of one protocol's beaconing (one beacon per BP)."""
    size = SSTSP_BEACON_BYTES if secure else TSF_BEACON_BYTES
    airtime_slots = 7 if secure else 4
    airtime = airtime_slots * phy.slot_time_us
    per_second = S / beacon_period_us
    return OverheadReport(
        beacon_bytes=size,
        beacons_per_second=per_second,
        bytes_per_second=size * per_second,
        airtime_us_per_beacon=airtime,
        airtime_fraction=airtime / beacon_period_us,
    )


def traffic_overhead_ratio() -> float:
    """SSTSP beacon bytes over TSF beacon bytes (the paper's 92/56)."""
    return SSTSP_BEACON_BYTES / TSF_BEACON_BYTES


def traffic_overhead(
    duration_s: float,
    beacon_period_us: float = 0.1 * S,
) -> dict:
    """Total beacon bytes on air over ``duration_s`` for both protocols.

    The beacon *count* is identical by construction (one successful beacon
    per BP in either protocol), which is the paper's headline claim.
    """
    beacons = duration_s * S / beacon_period_us
    return {
        "beacons": beacons,
        "tsf_bytes": beacons * TSF_BEACON_BYTES,
        "sstsp_bytes": beacons * SSTSP_BEACON_BYTES,
        "ratio": traffic_overhead_ratio(),
    }


def receiver_buffer_bytes(periods_buffered: int = 2) -> int:
    """Memory to buffer the last ``periods_buffered`` BPs of beacons
    (paper: "in most cases 300-500 bytes")."""
    if periods_buffered < 0:
        raise ValueError("periods_buffered must be >= 0")
    # Beacon body + per-entry bookkeeping (interval, reception record).
    per_entry = SSTSP_BEACON_BYTES + 2 * 8 + 4
    return periods_buffered * per_entry


@dataclass(frozen=True)
class ChainStorageRow:
    """Measured cost of one hash-chain storage strategy."""

    strategy: str
    resident_elements: int
    resident_bytes: int
    hash_ops_for_traversal: int


def chain_storage_report(length: int, samples: int = 64) -> list:
    """Measure all three chain-storage strategies over a ``length`` chain.

    ``samples`` chain elements are accessed in uTESLA disclosure order;
    the resident-element and hash-operation counters come from the
    implementations themselves (measured, not assumed).
    """
    if samples > length:
        raise ValueError("samples must be <= length")
    seed = b"\x42" * HASH_BYTES
    rows = []

    dense = DenseHashChain(seed, length)
    for j in range(1, samples + 1):
        dense.key_for_interval(j)
    rows.append(
        ChainStorageRow(
            "dense",
            dense.storage_elements(),
            dense.storage_elements() * HASH_BYTES,
            0,
        )
    )

    seed_only = SeedOnlyHashChain(seed, length)
    for j in range(1, samples + 1):
        seed_only.key_for_interval(j)
    rows.append(
        ChainStorageRow(
            "seed-only",
            seed_only.storage_elements(),
            seed_only.storage_elements() * HASH_BYTES,
            seed_only.hash_operations,
        )
    )

    fractal = FractalHashChain(seed, length)
    for j in range(1, samples + 1):
        fractal.key_for_interval(j)
    rows.append(
        ChainStorageRow(
            "fractal",
            fractal.storage_elements(),
            fractal.storage_elements() * HASH_BYTES,
            fractal.hash_operations,
        )
    )
    return rows


def fractal_storage_bound(length: int) -> int:
    """The paper's quoted bound: ``log2(n)`` elements (plus constants)."""
    return math.ceil(math.log2(max(2, length)))
