"""TATSP - Tiered ATSP (Lai & Zhou, AINA 2003; paper reference [4]).

The improved ATSP variant the paper summarises: stations are dynamically
classified into three tiers by clock speed. Tier-1 stations (believed
fastest) compete every BP, tier-2 "once in a while", tier-3 "rarely".
Classification is driven by how often a station is beaten (adopts a
received, later timestamp) within a sliding window: never beaten -> tier 1,
occasionally -> tier 2, often -> tier 3.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.clocks.oscillator import TsfTimer
from repro.mac.beacon import BeaconFrame
from repro.protocols.base import RxContext, TxIntent
from repro.protocols.tsf import TsfConfig, TsfProtocol


@dataclass(frozen=True)
class TatspConfig(TsfConfig):
    """TATSP parameters on top of the TSF ones."""

    #: Contention interval of tier-2 stations ("once in a while").
    tier2_interval: int = 10
    #: Contention interval of tier-3 stations ("rarely").
    tier3_interval: int = 50
    #: Sliding window (BPs) over which beat events are counted.
    window: int = 40
    #: Beat count (within the window) above which a station is tier 3.
    tier3_beats: int = 4

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 1 <= self.tier2_interval <= self.tier3_interval:
            raise ValueError("need 1 <= tier2_interval <= tier3_interval")
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.tier3_beats < 1:
            raise ValueError("tier3_beats must be >= 1")


class TatspProtocol(TsfProtocol):
    """One station's TATSP driver."""

    protocol_name = "tatsp"

    def __init__(
        self,
        node_id: int,
        timer: TsfTimer,
        config: TatspConfig,
        rng: np.random.Generator,
    ) -> None:
        super().__init__(node_id, timer, config, rng)
        self.config: TatspConfig = config
        self.tier = 1  # optimistic start, like ATSP's I = 1
        self._beaten_this_period = False
        self._beat_history: deque = deque(maxlen=config.window)
        self._countdown = 0

    def current_interval(self) -> int:
        """Contention interval implied by the current tier."""
        if self.tier == 1:
            return 1
        if self.tier == 2:
            return self.config.tier2_interval
        return self.config.tier3_interval

    def begin_period(self, period: int) -> Optional[TxIntent]:
        if self._countdown > 0:
            self._countdown -= 1
            return None
        self._countdown = self.current_interval() - 1
        return super().begin_period(period)

    def on_beacon(self, frame: BeaconFrame, rx: RxContext) -> None:
        before = self.adoptions
        super().on_beacon(frame, rx)
        if self.adoptions > before:
            self._beaten_this_period = True

    def end_period(
        self, period: int, heard_beacon: bool, transmitted: bool, tx_success: bool
    ) -> None:
        self._beat_history.append(1 if self._beaten_this_period else 0)
        self._beaten_this_period = False
        beats = sum(self._beat_history)
        full_window = len(self._beat_history) == self.config.window
        if beats == 0 and full_window:
            new_tier = 1
        elif beats > self.config.tier3_beats:
            new_tier = 3
        elif beats > 0:
            new_tier = 2
        else:
            new_tier = self.tier  # window not yet representative
        if new_tier != self.tier:
            self.tier = new_tier
            self._countdown = min(self._countdown, self.current_interval() - 1)
