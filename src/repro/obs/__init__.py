"""Observability layer: event tracing, metrics, and profiling.

Three concerns, three modules:

* :mod:`repro.obs.events` — the structured event-tracing bus the kernel
  emits protocol events onto (strict no-op when disabled);
* :mod:`repro.obs.registry` — counters / gauges / histogram summaries,
  per-run with per-sweep roll-up;
* :mod:`repro.obs.profile` — opt-in wall-clock section timers, confined
  to the orchestration layer.

See ``docs/observability.md`` for the event catalog and usage.
"""

from repro.obs.events import (
    EVENT_CATALOG,
    TRACE_SCHEMA_VERSION,
    RunObserver,
    current_observer,
    emit,
    observe_run,
    observe_value,
    read_events,
    tracing_enabled,
)
from repro.obs.events_schema import EVENT_SCHEMAS, EventSpec, validate_record
from repro.obs.profile import NULL_PROFILER, NullProfiler, Profiler
from repro.obs.registry import HistogramSummary, MetricsRegistry, merge_snapshots

__all__ = [
    "EVENT_CATALOG",
    "EVENT_SCHEMAS",
    "EventSpec",
    "TRACE_SCHEMA_VERSION",
    "validate_record",
    "RunObserver",
    "current_observer",
    "emit",
    "observe_run",
    "observe_value",
    "read_events",
    "tracing_enabled",
    "HistogramSummary",
    "MetricsRegistry",
    "merge_snapshots",
    "NULL_PROFILER",
    "NullProfiler",
    "Profiler",
]
