"""Parallel sweep orchestration with content-addressed result caching.

Every experiment in :mod:`repro.experiments` is an ``axes x seeds`` grid
of *independent* simulation runs. This package turns such a grid into a
list of frozen, content-addressable :class:`~repro.sweep.spec.JobSpec`\\ s
and executes them:

* :mod:`repro.sweep.grid` — declarative grid expansion (cartesian
  product, deterministic order);
* :mod:`repro.sweep.spec` — the frozen job spec, its stable ``job_key``,
  the spec hash, and the scheduling-independent per-job seed derivation
  ``seed = hash(root_seed, job_key)``;
* :mod:`repro.sweep.cache` — an on-disk content-addressed result cache
  keyed by ``hash(job_key + code-version salt)``;
* :mod:`repro.sweep.jobs` — the registry mapping job kinds to the
  module-level functions that execute them (importable by worker
  processes);
* :mod:`repro.sweep.orchestrator` — the executor: a
  ``ProcessPoolExecutor`` fan-out for ``workers > 1`` with the plain
  serial loop as the ``workers == 1`` degenerate case, plus progress/ETA
  on stderr and a machine-readable JSONL run log.

Results are returned in *spec order* regardless of worker scheduling and
every job re-seeds from its own spec, so the same grid produces
byte-identical outputs at any worker count — ``tests/test_sweep.py``
asserts exactly that.
"""

from repro.sweep.cache import CACHE_SALT, ResultCache
from repro.sweep.grid import expand_grid
from repro.sweep.jobs import register_job, resolve_job
from repro.sweep.orchestrator import (
    SweepOptions,
    SweepResult,
    add_sweep_arguments,
    run_sweep,
    sweep_options_from_args,
)
from repro.sweep.spec import JobSpec, canonical_json, derive_seed

__all__ = [
    "CACHE_SALT",
    "JobSpec",
    "ResultCache",
    "SweepOptions",
    "SweepResult",
    "add_sweep_arguments",
    "canonical_json",
    "derive_seed",
    "expand_grid",
    "register_job",
    "resolve_job",
    "run_sweep",
    "sweep_options_from_args",
]
