"""One-way hash chains.

A chain of length ``n`` over seed ``s`` is ``v_0 = s, v_j = h(v_{j-1})``;
the paper writes ``v_j = h^j(s_i)``. The *anchor* ``v_n = h^n(s)`` is
published through an authenticated out-of-band mechanism (section 3.2
assumes one exists; :class:`HashChainRegistry` plays that role here).

uTESLA key assignment (section 3.3): the key protecting the beacon of
interval ``j`` is ``h^{n-j}(s)``; the beacon of interval ``j`` *discloses*
``h^{n-j+1}(s)`` - the key of interval ``j-1`` - letting receivers
authenticate the previous interval's beacon.

Three storage strategies implement a common interface:

=====================  ==========  ======================================
strategy               storage     element access cost
=====================  ==========  ======================================
:class:`DenseHashChain`    O(n)    O(1)
:class:`SeedOnlyHashChain` O(1)    O(j) hashes
fractal (see
:mod:`repro.crypto.fractal`)  O(log n)  O(log n) amortised, in
                                   disclosure order
=====================  ==========  ======================================
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Optional, Tuple

from repro.crypto.primitives import HASH_BYTES, constant_time_eq, hash128, hash128_iter


class HashChain(ABC):
    """Common interface of hash-chain storage strategies."""

    def __init__(self, seed: bytes, length: int) -> None:
        if length < 1:
            raise ValueError(f"chain length must be >= 1, got {length}")
        if not seed:
            raise ValueError("seed must be non-empty bytes")
        self._seed = bytes(seed)
        self._length = int(length)

    @property
    def length(self) -> int:
        """``n``: number of hash applications from seed to anchor."""
        return self._length

    @property
    def anchor(self) -> bytes:
        """The published commitment ``h^n(seed)``."""
        return self.element(self._length)

    @abstractmethod
    def element(self, j: int) -> bytes:
        """``h^j(seed)`` for ``0 <= j <= n``."""

    def key_for_interval(self, interval: int) -> bytes:
        """uTESLA key of beacon interval ``interval``: ``h^{n-j}(seed)``.

        Valid intervals are ``1..n`` (interval ``n`` would use the seed
        itself; senders should retire the chain before reaching it).
        """
        self._check_interval(interval)
        return self.element(self._length - interval)

    def disclosed_key_for_interval(self, interval: int) -> bytes:
        """Key disclosed *inside* the beacon of ``interval``:
        ``h^{n-j+1}(seed)``, the key of interval ``interval - 1``."""
        self._check_interval(interval)
        return self.element(self._length - interval + 1)

    def _check_interval(self, interval: int) -> None:
        if not 1 <= interval <= self._length:
            raise ValueError(
                f"interval must be in [1, {self._length}], got {interval}"
            )

    def storage_elements(self) -> int:
        """Number of chain elements this strategy keeps resident."""
        return 1  # seed only, unless overridden


class DenseHashChain(HashChain):
    """Precompute and store all ``n + 1`` elements: O(n) space, O(1) access."""

    def __init__(self, seed: bytes, length: int) -> None:
        super().__init__(seed, length)
        elements = [bytes(seed) if len(seed) == HASH_BYTES else hash128(seed)]
        # Normalise an arbitrary-size seed to one hash width first so that
        # element(0) has the same length as every other element.
        value = elements[0]
        for _ in range(length):
            value = hash128(value)
            elements.append(value)
        self._elements = elements

    def element(self, j: int) -> bytes:
        if not 0 <= j <= self._length:
            raise ValueError(f"element index must be in [0, {self._length}], got {j}")
        return self._elements[j]

    def storage_elements(self) -> int:
        return self._length + 1


class SeedOnlyHashChain(HashChain):
    """Store only the seed; recompute each element on demand (O(j) hashes)."""

    def __init__(self, seed: bytes, length: int) -> None:
        super().__init__(seed, length)
        self._base = bytes(seed) if len(seed) == HASH_BYTES else hash128(seed)
        self.hash_operations = 0

    def element(self, j: int) -> bytes:
        if not 0 <= j <= self._length:
            raise ValueError(f"element index must be in [0, {self._length}], got {j}")
        self.hash_operations += j
        return hash128_iter(self._base, j)

    def storage_elements(self) -> int:
        return 1


def verify_element(
    candidate: bytes,
    claimed_index: int,
    anchor: bytes,
    length: int,
    cache: Optional[Tuple[int, bytes]] = None,
) -> Tuple[bool, int]:
    """Verify that ``candidate`` is ``h^claimed_index(seed)`` of the chain
    committed to by ``anchor = h^length(seed)``.

    Parameters
    ----------
    cache:
        Optionally ``(index, value)`` of a *previously verified* element
        with ``index > claimed_index``; verification then only hashes up to
        that element instead of all the way to the anchor (the paper's
        "store previously authenticated disclosed key to reduce processing
        overhead ... only one hash operation is needed instead of j - 1").

    Returns
    -------
    (ok, hash_operations):
        Whether verification succeeded, and how many hash applications it
        cost (for the overhead model).
    """
    if not 0 <= claimed_index <= length:
        return False, 0
    if cache is not None:
        cache_index, cache_value = cache
        if claimed_index < cache_index <= length:
            steps = cache_index - claimed_index
            return (
                constant_time_eq(hash128_iter(candidate, steps), cache_value),
                steps,
            )
        if cache_index == claimed_index:
            return constant_time_eq(candidate, cache_value), 0
    steps = length - claimed_index
    return constant_time_eq(hash128_iter(candidate, steps), anchor), steps


class HashChainRegistry:
    """Trusted distribution of chain anchors (the paper's section 3.2 service).

    The paper assumes every node can publish an authenticated last element
    ``h^n(s_i)`` via public-key signatures, symmetric pre-distribution [11]
    or non-cryptographic channels [12]; the registry abstracts whichever is
    used. It is the *only* trusted component in the reproduction.
    """

    def __init__(self) -> None:
        self._anchors: Dict[int, Tuple[bytes, int]] = {}

    def publish(self, node_id: int, anchor: bytes, length: int) -> None:
        """Register node ``node_id``'s anchor. Re-publication must match
        (a node cannot silently swap its chain)."""
        existing = self._anchors.get(node_id)
        if existing is not None and existing != (anchor, length):
            raise ValueError(
                f"node {node_id} attempted to re-publish a different anchor"
            )
        self._anchors[node_id] = (bytes(anchor), int(length))

    def lookup(self, node_id: int) -> Optional[Tuple[bytes, int]]:
        """``(anchor, length)`` for ``node_id``, or None if never published."""
        return self._anchors.get(node_id)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._anchors

    def __len__(self) -> int:
        return len(self._anchors)
