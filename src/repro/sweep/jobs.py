"""The job-kind registry.

Kinds map to ``"module.path:function"`` strings resolved lazily with
:mod:`importlib` — *inside the worker process*, at execution time. Two
things fall out of keeping the table string-valued:

* no import cycles: experiment modules import the orchestrator while
  their job functions are referenced here by name only;
* worker-friendliness: a :class:`~repro.sweep.spec.JobSpec` is pure data,
  so submitting one to a ``ProcessPoolExecutor`` never tries to pickle a
  closure or a bound method — the worker re-imports the function from the
  path recorded here.

A job function takes the spec and returns a picklable result:
``def job(spec: JobSpec) -> Any``.
"""

from __future__ import annotations

import importlib
import os
from typing import Any, Callable, Dict, Optional

from repro.sweep.failpolicy import INJECT_ENV_VAR, maybe_inject_failure
from repro.sweep.spec import JobSpec

#: Built-in job kinds. Experiment-layer functions are referenced by
#: dotted path (resolved lazily) to keep this module import-light.
_REGISTRY: Dict[str, str] = {
    # one protocol scenario -> trace payload (fig1-fig4)
    "scenario_trace": "repro.experiments.jobs:run_scenario_trace",
    # one (m, replica) Table 1 cell -> {latency_us, error_us}
    "table1_cell": "repro.experiments.jobs:run_table1_cell",
    # ablation rows (one sweep point each)
    "ablation_guard": "repro.experiments.ablations:job_guard_point",
    "ablation_l": "repro.experiments.ablations:job_l_point",
    "ablation_m": "repro.experiments.ablations:job_m_point",
    # one randomized chaos plan -> PlanOutcome
    "chaos_plan": "repro.experiments.chaos:job_chaos_plan",
    # one multi-hop scenario -> flat summary payload
    "multihop_run": "repro.experiments.multihop:job_multihop_run",
    # one (protocol, scenario, replica) shootout cell -> flat payload
    "shootout_run": "repro.experiments.shootout:job_shootout_run",
}


def register_job(kind: str, path: str) -> None:
    """Register (or override) a job kind.

    ``path`` is ``"module.path:function"``; the module must be importable
    by worker processes (i.e. a real module, not ``__main__``).
    """
    if ":" not in path:
        raise ValueError(f"job path must be 'module:function', got {path!r}")
    _REGISTRY[kind] = path


def resolve_job(kind: str) -> Callable[[JobSpec], Any]:
    """Import and return the function executing ``kind``."""
    try:
        path = _REGISTRY[kind]
    except KeyError:
        raise KeyError(
            f"unknown job kind {kind!r}; known: {sorted(_REGISTRY)}"
        ) from None
    module_name, _, func_name = path.partition(":")
    module = importlib.import_module(module_name)
    try:
        return getattr(module, func_name)
    except AttributeError:
        raise ImportError(f"{path!r} names no function {func_name!r}") from None


def execute_job(
    spec: JobSpec, attempt: int = 1, inject: Optional[str] = None
) -> Any:
    """Resolve and run one job (the function workers execute).

    ``attempt`` is 1-based and only feeds the deterministic
    failure-injection hook: an explicit ``inject`` pattern (normally the
    orchestrator's ``FailurePolicy.inject``), or the ``SSTSP_FAIL_INJECT``
    environment variable when none is given, fails the first *k* attempts
    of matching jobs (:func:`repro.sweep.failpolicy.should_inject`) so
    retry paths are exercised reproducibly. Results never depend on
    ``attempt`` — every attempt re-seeds from the spec alone.
    """
    pattern = inject if inject is not None else os.environ.get(INJECT_ENV_VAR)
    maybe_inject_failure(spec, attempt, pattern)
    return resolve_job(spec.kind)(spec)
