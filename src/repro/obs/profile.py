"""Opt-in wall-clock section profiling for the orchestration layer.

Everything below the orchestrator takes time from the simulation engine
— reprolint's D002 rule enforces that a host-clock read anywhere in the
simulation stack is an error, because wall time makes results a
function of machine load. Profiling, however, is *about* wall time:
"where did this sweep's 40 seconds go — engine, crypto, cache?" is a
question only the host clock answers.

This module is the single sanctioned home for those reads. It is
allowlisted for D002 alongside ``sweep/orchestrator.py`` (see
:class:`repro.lint.rules.LintConfig.wallclock_allow`), and the contract
that keeps the carve-out safe is:

* a :class:`Profiler` may be *driven* from anywhere, but only this
  module ever calls ``time.perf_counter`` — instrumented code holds a
  section handle, never a clock;
* profiling never feeds back into simulation decisions: a
  :class:`Profiler` accumulates durations for *reporting* (the sweep
  summary line, the run-log ``profile`` record) and nothing in the
  result path reads them;
* everything defaults to :data:`NULL_PROFILER`, whose sections cost two
  attribute lookups and read no clock, so profiling is pay-for-use.

Phase names are free-form; the orchestrator uses ``cache`` (result
cache lookups and write-backs), ``engine`` (job execution, which for
secure-beacon scenarios is dominated by the crypto backend) and ``log``
(run-log writes).
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Dict, List, Optional, Tuple


class _Section:
    """One timed section; used as a context manager."""

    __slots__ = ("_profiler", "_name", "_start")

    def __init__(self, profiler: "Profiler", name: str) -> None:
        self._profiler = profiler
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Section":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._profiler.add(self._name, time.perf_counter() - self._start)


class _NullSection:
    """A section that reads no clock and records nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSection":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_SECTION = _NullSection()


class Profiler:
    """Accumulates wall-clock seconds per named phase.

    ::

        profiler = Profiler()
        with profiler.section("cache"):
            ...
        profiler.totals()  # {"cache": 0.0123}
    """

    enabled: bool = True

    def __init__(self) -> None:
        self._seconds: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}

    def section(self, name: str) -> _Section:
        """A context manager timing one ``name`` phase entry."""
        return _Section(self, name)

    def add(self, name: str, seconds: float) -> None:
        """Record ``seconds`` spent in phase ``name``."""
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds
        self._counts[name] = self._counts.get(name, 0) + 1

    def totals(self) -> Dict[str, float]:
        """Seconds per phase, sorted by phase name."""
        return {name: round(self._seconds[name], 6) for name in sorted(self._seconds)}

    def counts(self) -> Dict[str, int]:
        """Section entries per phase, sorted by phase name."""
        return {name: self._counts[name] for name in sorted(self._counts)}

    def format_summary(self, wall_s: Optional[float] = None) -> str:
        """One human-readable line: ``phase 1.2s (60%), ...``."""
        totals = self.totals()
        if not totals:
            return "no profiled sections"
        parts: List[str] = []
        for name, seconds in sorted(totals.items(), key=lambda kv: -kv[1]):
            if wall_s is not None and wall_s > 0.0:
                parts.append(f"{name} {seconds:.2f}s ({100.0 * seconds / wall_s:.0f}%)")
            else:
                parts.append(f"{name} {seconds:.2f}s")
        return ", ".join(parts)


class _SpanSection:
    """One nested span; used as a context manager."""

    __slots__ = ("_profiler", "_name")

    def __init__(self, profiler: "SpanProfiler", name: str) -> None:
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_SpanSection":
        self._profiler.enter_span(self._name)
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._profiler.exit_span()


class SpanProfiler(Profiler):
    """Hierarchical spans with parent/child self-time attribution.

    Extends the flat phase accumulator with a span *stack*: nested
    :meth:`span` sections aggregate per **path** (``engine`` →
    ``multihop.period`` → ``multihop.receptions``), each node carrying
    call count, total time and *self* time (total minus child spans), so
    a hot leaf is visible even when its parent dominates the totals.
    Completed spans are also kept as a timeline for the Chrome
    trace-event exporter (:meth:`chrome_trace`), loadable in Perfetto,
    chrome://tracing and speedscope.

    ``clock`` defaults to ``time.perf_counter`` — this module's D002
    carve-out — and is injectable so tests can drive spans with a fake
    clock and assert exact attributions.

    :meth:`section` delegates to :meth:`span` and every closed span also
    feeds the flat :meth:`Profiler.add` accumulator under its leaf name,
    so orchestrator-level consumers (``totals()``/``format_summary``)
    keep working unchanged on a span profiler.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        super().__init__()
        self._clock: Callable[[], float] = (
            clock if clock is not None else time.perf_counter
        )
        #: Open spans: ``[name, start, child_time]`` frames.
        self._stack: List[List[Any]] = []
        self._origin: Optional[float] = None
        #: path tuple -> ``[count, total, self_time]`` (seconds).
        self._nodes: Dict[Tuple[str, ...], List[Any]] = {}
        #: Completed spans: ``(path, start_rel_s, dur_s)`` in close order.
        self._spans: List[Tuple[Tuple[str, ...], float, float]] = []

    def span(self, name: str) -> _SpanSection:
        """A context manager opening one nested ``name`` span."""
        return _SpanSection(self, name)

    def section(self, name: str) -> _SpanSection:  # type: ignore[override]
        """Sections on a span profiler are spans (nesting-aware)."""
        return self.span(name)

    def enter_span(self, name: str) -> None:
        """Open a span (prefer the :meth:`span` context manager)."""
        now = self._clock()
        if self._origin is None:
            self._origin = now
        self._stack.append([name, now, 0.0])

    def exit_span(self) -> None:
        """Close the innermost open span and attribute its time."""
        now = self._clock()
        name, start, child_time = self._stack.pop()
        dur_s = now - start
        path = tuple(frame[0] for frame in self._stack) + (name,)
        node = self._nodes.get(path)
        if node is None:
            node = [0, 0.0, 0.0]
            self._nodes[path] = node
        node[0] += 1
        node[1] += dur_s
        node[2] += dur_s - child_time
        if self._stack:
            self._stack[-1][2] += dur_s
        origin = self._origin if self._origin is not None else start
        self._spans.append((path, start - origin, dur_s))
        self.add(name, dur_s)

    # -- reporting -----------------------------------------------------

    def span_tree(self) -> List[Dict[str, Any]]:
        """The aggregated span forest, children key-sorted.

        Each node: ``{"name", "count", "total_s", "self_s", "children"}``
        with seconds rounded to 1 µs. Only *closed* spans appear.
        """
        roots: List[Dict[str, Any]] = []
        index: Dict[Tuple[str, ...], Dict[str, Any]] = {}
        for path in sorted(self._nodes):
            count, total, self_time = self._nodes[path]
            node: Dict[str, Any] = {
                "name": path[-1],
                "count": count,
                "total_s": round(total, 6),
                "self_s": round(self_time, 6),
                "children": [],
            }
            index[path] = node
            parent = index.get(path[:-1])
            if parent is not None:
                parent["children"].append(node)
            else:
                roots.append(node)
        return roots

    def format_tree(self) -> str:
        """Indented text rendering of :meth:`span_tree`."""
        lines: List[str] = []

        def walk(node: Dict[str, Any], depth: int) -> None:
            lines.append(
                f"{'  ' * depth}{node['name']}  "
                f"total {node['total_s']:.6f}s  self {node['self_s']:.6f}s  "
                f"x{node['count']}"
            )
            for child in node["children"]:
                walk(child, depth + 1)

        for root in self.span_tree():
            walk(root, 0)
        if not lines:
            return "no spans recorded"
        return "\n".join(lines)

    def chrome_trace(self) -> Dict[str, Any]:
        """The run as Chrome trace-event JSON (the ``X`` complete-event
        form): one event per closed span, timestamps/durations in
        microseconds relative to the first span's start. Load the file
        in Perfetto (ui.perfetto.dev), chrome://tracing or speedscope.
        """
        events: List[Dict[str, Any]] = []
        for path, start_rel_s, dur_s in self._spans:
            events.append(
                {
                    "name": path[-1],
                    "cat": "/".join(path[:-1]) if len(path) > 1 else "root",
                    "ph": "X",
                    "ts": round(start_rel_s * 1e6, 3),
                    "dur": round(dur_s * 1e6, 3),
                    "pid": 0,
                    "tid": 0,
                    "args": {"path": "/".join(path)},
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str) -> str:
        """Serialize :meth:`chrome_trace` to ``path``; returns it."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.chrome_trace(), fh, sort_keys=True, indent=1)
            fh.write("\n")
        return path


#: The installed span profiler driving :func:`span`; None disables it.
_SPAN_PROFILER: Optional[SpanProfiler] = None


def span(name: str) -> "_SpanSection | _NullSection":
    """A span on the installed profiler (free no-op section when off).

    The kernel-side hook: runners open phase spans with ``with
    span("multihop.receptions"):`` while never touching a clock
    themselves — only this module reads ``time.perf_counter``, keeping
    the reprolint D002 carve-out set unchanged.
    """
    profiler = _SPAN_PROFILER
    if profiler is not None:
        return profiler.span(name)
    return _NULL_SECTION


def span_profiling_enabled() -> bool:
    """Whether a span profiler is installed."""
    return _SPAN_PROFILER is not None


class profile_spans:
    """Context manager installing a :class:`SpanProfiler` for :func:`span`.

    ::

        with profile_spans() as profiler:
            run_multihop(spec)
        profiler.write_chrome_trace("trace.json")

    The previous profiler (normally None) is restored on exit,
    exceptions included. Pass an existing profiler to also capture
    orchestration-side sections on the same timeline.
    """

    def __init__(self, profiler: Optional[SpanProfiler] = None) -> None:
        self.profiler = profiler if profiler is not None else SpanProfiler()
        self._previous: Optional[SpanProfiler] = None

    def __enter__(self) -> SpanProfiler:
        global _SPAN_PROFILER
        self._previous = _SPAN_PROFILER
        _SPAN_PROFILER = self.profiler
        return self.profiler

    def __exit__(self, *exc_info: object) -> None:
        global _SPAN_PROFILER
        _SPAN_PROFILER = self._previous


class NullProfiler(Profiler):
    """The disabled profiler: sections read no clock, totals are empty."""

    enabled = False

    def section(self, name: str) -> _NullSection:  # type: ignore[override]
        return _NULL_SECTION

    def add(self, name: str, seconds: float) -> None:
        pass


#: Shared disabled instance (stateless, safe to reuse everywhere).
NULL_PROFILER = NullProfiler()
