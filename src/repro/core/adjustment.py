"""The SSTSP clock-adjustment solution (paper equations (2)-(5)).

On receiving the reference beacon of interval ``j`` (at local hardware
time ``t_i^j``), a node computes a new adjusted-clock segment ``(k^j,
b^j)`` from its two most recent *authenticated* reference samples
``(t_i^{j-1}, ts_ref^{j-1})`` and ``(t_i^{j-2}, ts_ref^{j-2})``, subject
to four constraints:

* (2) continuity at ``t_i^j``: the old and new segments agree there;
* (3) convergence: the new segment meets the reference clock at the
  *expected* reception of beacon ``j + m``;
* (4) linearity: local hardware time and reference time are related
  linearly, with slope estimated from the sample pair;
* (5) the expected emission time of beacon ``j + m`` is ``T^{j+m}``.

Solving gives the closed form printed in the paper. This module provides
both that verbatim closed form (:func:`paper_closed_form`) and an
algebraically equivalent two-step derivation (:func:`solve_adjustment`)
that is easier to audit: first estimate the hardware-per-reference rate
``R`` from the sample pair, then draw the line through the continuity
point and the convergence target. Property tests assert the two agree to
float precision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class AdjustmentSample:
    """One authenticated reference observation.

    Attributes
    ----------
    interval:
        uTESLA/beacon interval index ``j`` the sample came from.
    local_hw_time:
        ``t_i^j``: the node's hardware clock at reception.
    ref_timestamp:
        ``ts_ref^j``: the estimated reference time at the same instant
        (timestamp + known latency + receive jitter).
    """

    interval: int
    local_hw_time: float
    ref_timestamp: float


class DegenerateSamplesError(ValueError):
    """Raised when the sample pair cannot support a rate estimate."""


def solve_adjustment(
    prev_k: float,
    prev_b: float,
    t_now: float,
    newest: AdjustmentSample,
    older: AdjustmentSample,
    target_ref_time: float,
) -> Tuple[float, float]:
    """Solve equations (2)-(5) for ``(k^j, b^j)``.

    Parameters
    ----------
    prev_k, prev_b:
        The active segment ``(k^{j-1}, b^{j-1})``.
    t_now:
        ``t_i^j``: local hardware time of the current (just received,
        not yet authenticated) reference beacon.
    newest, older:
        The two most recent authenticated samples (``j-1`` and ``j-2`` in
        the paper; any two distinct recent samples work - the equations
        never require adjacency, only linearity over the spanned window).
    target_ref_time:
        ``(ts_ref^{j+m})^*``: the reference-time value the adjusted clock
        must meet, i.e. ``T^{j+m}`` plus the known reception latency.

    Returns
    -------
    (k, b):
        The new segment. Raises :class:`DegenerateSamplesError` if the
        samples are unusable (coincident, non-monotone, or the implied
        meeting point is not in the future).
    """
    d_ts = newest.ref_timestamp - older.ref_timestamp
    d_hw = newest.local_hw_time - older.local_hw_time
    if d_ts <= 0.0 or d_hw <= 0.0:
        raise DegenerateSamplesError(
            f"non-increasing sample pair: d_hw={d_hw}, d_ts={d_ts}"
        )
    # (4): hardware microseconds per reference microsecond.
    rate = d_hw / d_ts
    # Expected local hardware time of beacon j+m, by extrapolating the
    # reference timeline through the newest sample: (t_i^{j+m})^*.
    t_target = newest.local_hw_time + rate * (target_ref_time - newest.ref_timestamp)
    if t_target <= t_now:
        raise DegenerateSamplesError(
            f"target hardware time {t_target} not after t_now {t_now}"
        )
    # (2): continuity - the new segment passes through the current point.
    c_now = prev_k * t_now + prev_b
    # (3) + (5): the new segment passes through the convergence target.
    k = (target_ref_time - c_now) / (t_target - t_now)
    b = c_now - k * t_now
    return k, b


def paper_closed_form(
    prev_k: float,
    prev_b: float,
    t_now: float,
    t_1: float,
    ts_1: float,
    t_2: float,
    ts_2: float,
    big_t: float,
) -> Tuple[float, float]:
    """The closed form exactly as printed in the paper (section 3.3).

    ``t_1, ts_1`` are ``t_i^{j-1}, ts_ref^{j-1}``; ``t_2, ts_2`` are the
    ``j-2`` pair; ``big_t`` is ``T^{j+m}`` (with any latency constant the
    caller folds in). Kept verbatim - including its less numerically
    transparent grouping - as a cross-check oracle for
    :func:`solve_adjustment`.
    """
    c_now = prev_k * t_now + prev_b
    numerator = (big_t - c_now) * (ts_1 - ts_2)
    denominator = (t_1 - t_2) * (big_t - ts_1) + (t_1 - t_now) * (ts_1 - ts_2)
    if denominator == 0.0:
        raise DegenerateSamplesError("paper closed form denominator is zero")
    k = numerator / denominator
    b = -numerator * t_now / denominator + c_now
    return k, b


def predicted_error_ratio(m: int, beacon_period_us: float, d_us: float) -> float:
    """Lemma 1's per-BP contraction factor of the synchronization error.

    ``D_i^{n+1} / D_i^n < d / (m*BP - d)`` for ``m = 1`` and
    ``< (m-1)*BP / (m*BP - d)`` for ``m > 1``, where ``d`` bounds the
    emission delay ``d_n``. The factor is < 1 (geometric convergence)
    whenever ``d < BP / 2`` for ``m = 1`` and always for ``m > 1``.
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    if not 0 <= d_us < m * beacon_period_us:
        raise ValueError("d must be in [0, m*BP)")
    if m == 1:
        return d_us / (m * beacon_period_us - d_us)
    return (m - 1) * beacon_period_us / (m * beacon_period_us - d_us)


def periods_to_converge(
    initial_error_us: float,
    threshold_us: float,
    m: int,
    beacon_period_us: float,
    d_us: float = 0.0,
) -> int:
    """Lemma 1's bound on BPs until the error drops below ``threshold_us``.

    ``ceil(log_ratio(threshold / initial))`` with the contraction ratio of
    :func:`predicted_error_ratio`; 0 if already below the threshold.
    """
    import math

    if initial_error_us <= threshold_us:
        return 0
    ratio = predicted_error_ratio(m, beacon_period_us, d_us)
    if ratio <= 0.0:
        return 1
    if ratio >= 1.0:
        raise ValueError("no convergence: contraction ratio >= 1")
    return math.ceil(math.log(threshold_us / initial_error_us) / math.log(ratio))


def reference_change_ratio(m: int, l: int) -> float:
    """Lemma 2's error amplification across a reference change.

    ``D_i^+ / D_i^- = (m - l - 3) / m + o(1)``; the magnitude is minimised
    (0) at ``m = l + 3`` and bounded by ``l + 2`` even at ``m = 1``.
    """
    if m < 1 or l < 1:
        raise ValueError("m and l must be >= 1")
    return (m - l - 3) / m


def optimal_m(l: int) -> int:
    """The ``m`` minimising Lemma 2's amplification: ``l + 3``."""
    if l < 1:
        raise ValueError("l must be >= 1")
    return l + 3


def error_bound_after_change(
    sync_error_us: float, m: int, l: int, epsilon_us: float
) -> float:
    """Paper section 3.4: error bound right after a reference change:
    ``|((m - l - 3) / m)| * syn_err + 2 * epsilon``."""
    return abs(reference_change_ratio(m, l)) * sync_error_us + 2.0 * epsilon_us
