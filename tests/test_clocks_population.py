"""Unit tests for the vectorised clock population."""

import numpy as np
import pytest

from repro.clocks.oscillator import HardwareClock
from repro.clocks.population import ClockPopulation
from repro.sim.units import S


def test_sample_shapes_and_bounds(rng):
    pop = ClockPopulation.sample(200, rng, drift_ppm=100.0, initial_offset_us=112.0)
    assert len(pop) == 200
    assert np.all(np.abs(pop.rates - 1.0) <= 1e-4)
    assert np.all(np.abs(pop.offsets) <= 112.0)


def test_read_all_matches_scalar_clocks(rng):
    pop = ClockPopulation.sample(50, rng, initial_offset_us=30.0)
    t = 12_345.678
    vector = pop.read_all(t)
    for i in range(50):
        assert vector[i] == pytest.approx(pop.clock(i).read(t))


def test_read_all_reuses_buffer(rng):
    pop = ClockPopulation.sample(10, rng)
    out = np.empty(10)
    result = pop.read_all(55.0, out=out)
    assert result is out


def test_from_clocks_round_trip():
    clocks = [HardwareClock(rate=1.0 + i * 1e-6, initial_offset=i) for i in range(5)]
    pop = ClockPopulation.from_clocks(clocks)
    assert pop.clock(3).rate == clocks[3].rate
    assert pop.clock(3).initial_offset == clocks[3].initial_offset


def test_fastest_is_max_rate(rng):
    pop = ClockPopulation.sample(100, rng)
    assert pop.rates[pop.fastest()] == pop.rates.max()


def test_max_pairwise_spread_grows_linearly(rng):
    pop = ClockPopulation.sample(100, rng, drift_ppm=100.0)
    s1 = pop.max_pairwise_spread(1.0 * S)
    s10 = pop.max_pairwise_spread(10.0 * S)
    assert s10 == pytest.approx(10 * s1, rel=1e-6)
    # ~2 * 100 ppm spread over 1 s is ~200 us with 100 nodes sampled
    assert 100.0 < s1 <= 200.0


def test_shape_validation():
    with pytest.raises(ValueError):
        ClockPopulation(np.ones(3), np.zeros(4))
    with pytest.raises(ValueError):
        ClockPopulation(np.array([1.0, -0.5]), np.zeros(2))
