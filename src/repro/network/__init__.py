"""Network harness: nodes, churn, the per-BP runner, scenario builders.

:class:`~repro.network.runner.NetworkRunner` drives one IBSS: each beacon
period it collects transmission intents, resolves the contention cascade
on the true-time axis, pushes the winning beacon through the lossy
channel, dispatches receptions and end-of-period hooks, applies churn and
records the max-clock-difference trace.
"""

from repro.network.node import Node
from repro.network.churn import ChurnEvent, ChurnSchedule
from repro.network.runner import NetworkRunner, RunnerParams, RunResult
from repro.network.ibss import (
    build_network,
    build_sstsp_network,
    build_tsf_network,
)

__all__ = [
    "Node",
    "ChurnEvent",
    "ChurnSchedule",
    "NetworkRunner",
    "RunnerParams",
    "RunResult",
    "build_network",
    "build_tsf_network",
    "build_sstsp_network",
]
