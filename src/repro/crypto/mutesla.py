"""uTESLA broadcast authentication (Perrig et al. [2], as used by SSTSP).

uTESLA authenticates broadcasts with *delayed key disclosure*: time is
divided into intervals; the packet of interval ``j`` is MACed under a key
``K_j`` drawn from a one-way chain and still secret during interval ``j``;
the packet of interval ``j + 1`` discloses ``K_j``, at which point
receivers (a) verify ``K_j`` against the sender's published anchor and
(b) authenticate the *buffered* packet of interval ``j``. Security rests
on the receiver being loosely synchronized: it must be able to reject a
packet claiming interval ``j`` when ``K_j`` might already be disclosed -
SSTSP's coarse phase provides exactly that loose synchronization.

The SSTSP instantiation (paper section 3.3): intervals are beacon periods;
the beacon expected at ``T_0 + j * BP`` is secured with the chain element
``h^{n-j}(s)``, valid over ``[T_0 + j*BP - BP/2, T_0 + j*BP + BP/2]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.crypto.hashchain import HashChain, verify_element
from repro.crypto.primitives import constant_time_eq, hash128_iter, hmac128
from repro.obs.counters import count
from repro.obs.events import emit


@dataclass(frozen=True)
class IntervalSchedule:
    """Maps times to uTESLA interval indices.

    Attributes
    ----------
    t0_us:
        Chain start time ``T_0`` (synchronized-time axis).
    interval_us:
        Interval length; the beacon period in SSTSP.
    length:
        Chain length ``n``; intervals run ``1..n``.
    """

    t0_us: float
    interval_us: float
    length: int

    def __post_init__(self) -> None:
        if self.interval_us <= 0:
            raise ValueError("interval_us must be > 0")
        if self.length < 1:
            raise ValueError("length must be >= 1")

    def interval_of(self, time_us: float) -> int:
        """Interval whose validity window contains ``time_us``.

        Interval ``j`` covers ``[T0 + j*BP - BP/2, T0 + j*BP + BP/2)``,
        i.e. nearest-integer rounding of ``(t - T0) / BP``.
        """
        return int(round((time_us - self.t0_us) / self.interval_us))

    def nominal_time(self, interval: int) -> float:
        """Expected beacon emission time ``T^j = T_0 + j * BP``."""
        return self.t0_us + interval * self.interval_us

    def contains(self, interval: int) -> bool:
        """Whether ``interval`` is a usable chain interval."""
        return 1 <= interval <= self.length


@dataclass(frozen=True)
class SecuredPacket:
    """``<payload, j, MAC_{K_j}(payload, j), K_{j-1}>`` on the wire."""

    payload: bytes
    interval: int
    mac_tag: bytes
    disclosed_key: bytes


@dataclass(frozen=True)
class AuthenticatedMessage:
    """A payload whose MAC verified after its key was disclosed."""

    payload: bytes
    interval: int
    sender: int


class MuTeslaSender:
    """Sender side: secure one packet per interval with the chain key."""

    def __init__(self, node_id: int, chain: HashChain, schedule: IntervalSchedule) -> None:
        if chain.length != schedule.length:
            raise ValueError(
                f"chain length {chain.length} != schedule length {schedule.length}"
            )
        self.node_id = node_id
        self.chain = chain
        self.schedule = schedule

    def secure(self, payload: bytes, interval: int) -> SecuredPacket:
        """Build the on-wire packet for ``interval``."""
        if not self.schedule.contains(interval):
            raise ValueError(f"interval {interval} outside chain schedule")
        key = self.chain.key_for_interval(interval)
        tag = hmac128(key, payload + b"|" + str(interval).encode())
        disclosed = self.chain.disclosed_key_for_interval(interval)
        return SecuredPacket(payload, interval, tag, disclosed)


@dataclass
class _SenderState:
    """Receiver-side per-sender verification state."""

    anchor: bytes
    length: int
    #: ``(chain position, value)`` of the newest verified element; lets key
    #: verification hash only the gap instead of all the way to the anchor.
    verified: Optional[Tuple[int, bytes]] = None
    #: Packets awaiting key disclosure, by interval.
    pending: Dict[int, SecuredPacket] = field(default_factory=dict)
    hash_operations: int = 0
    rejected_unsafe_interval: int = 0
    rejected_bad_key: int = 0
    rejected_bad_mac: int = 0
    authenticated: int = 0


class MuTeslaReceiver:
    """Receiver side: safety check, key verification, delayed authentication.

    One receiver instance handles any number of senders, keyed by their
    published anchors (looked up once and pinned).
    """

    #: How many unauthenticated packets to buffer per sender. SSTSP needs
    #: the previous interval only; the paper's section 3.4 budgets buffering
    #: "the synchronization beacons received during last 2 BPs".
    MAX_PENDING: int = 2

    def __init__(self, schedule: IntervalSchedule, owner: Optional[int] = None) -> None:
        self.schedule = schedule
        self.owner = owner
        self._senders: Dict[int, _SenderState] = {}

    def register_sender(self, sender: int, anchor: bytes, length: int) -> None:
        """Pin a sender's published anchor (from the trusted registry)."""
        state = self._senders.get(sender)
        if state is not None:
            if state.anchor != anchor or state.length != length:
                raise ValueError(f"conflicting anchor for sender {sender}")
            return
        self._senders[sender] = _SenderState(anchor=bytes(anchor), length=length)

    def knows_sender(self, sender: int) -> bool:
        """Whether the sender's anchor is pinned."""
        return sender in self._senders

    def sender_stats(self, sender: int) -> Optional[_SenderState]:
        """Verification counters for ``sender`` (None if unknown)."""
        return self._senders.get(sender)

    def receive(
        self,
        sender: int,
        packet: SecuredPacket,
        local_time_us: float,
    ) -> List[AuthenticatedMessage]:
        """Process one packet received at synchronized local time
        ``local_time_us``; return any packets that became authenticated.

        Implements the paper's check sequence:

        1. *Safety / freshness*: the packet's claimed interval must be the
           receiver's current interval (otherwise its key may already be
           public and the MAC proves nothing).
        2. *Key verification*: the disclosed key must hash to the pinned
           anchor (or to a previously verified element).
        3. *Delayed authentication*: the disclosed key authenticates the
           buffered packet of the previous interval.

        The packet itself is buffered and only ever released by a *later*
        packet's disclosure - beacon ``j`` "cannot be used for clock
        adjustment until its integrity is verified".
        """
        state = self._senders.get(sender)
        if state is None:
            return []
        j = packet.interval
        # 1. Safety condition.
        if j != self.schedule.interval_of(local_time_us) or not self.schedule.contains(j):
            state.rejected_unsafe_interval += 1
            emit(
                "mutesla_reject",
                t_us=local_time_us,
                node=self.owner,
                sender=sender,
                interval=j,
                reason="unsafe_interval",
            )
            return []
        # 2. Disclosed key is h^{n-j+1}(s), i.e. chain position n - j + 1.
        disclosed_position = state.length - j + 1
        ok, cost = verify_element(
            packet.disclosed_key,
            disclosed_position,
            state.anchor,
            state.length,
            cache=state.verified,
        )
        state.hash_operations += cost
        count("crypto.verify")
        count("crypto.hash_ops", cost)
        if not ok:
            state.rejected_bad_key += 1
            emit(
                "mutesla_reject",
                t_us=local_time_us,
                node=self.owner,
                sender=sender,
                interval=j,
                reason="bad_key",
            )
            return []
        if state.verified is None or disclosed_position < state.verified[0]:
            state.verified = (disclosed_position, packet.disclosed_key)
        # 3. Authenticate every buffered packet of an interval before j with
        # the now-disclosed key. The key of interval i < j - 1 derives from
        # the disclosed key of interval j - 1 by hashing forward
        # (key_i = h^{(j-1)-i}(K_{j-1})), so a lost beacon does not strand
        # older buffered packets.
        released: List[AuthenticatedMessage] = []
        for interval in sorted(i for i in state.pending if i < j):
            buffered = state.pending.pop(interval)
            key_i = hash128_iter(packet.disclosed_key, (j - 1) - interval)
            state.hash_operations += (j - 1) - interval
            count("crypto.hash_ops", (j - 1) - interval)
            count("crypto.auth_check")
            expected = hmac128(
                key_i,
                buffered.payload + b"|" + str(buffered.interval).encode(),
            )
            if constant_time_eq(expected, buffered.mac_tag):
                state.authenticated += 1
                released.append(
                    AuthenticatedMessage(buffered.payload, buffered.interval, sender)
                )
                emit(
                    "mutesla_auth",
                    t_us=local_time_us,
                    node=self.owner,
                    sender=sender,
                    interval=interval,
                )
            else:
                state.rejected_bad_mac += 1
                emit(
                    "mutesla_reject",
                    t_us=local_time_us,
                    node=self.owner,
                    sender=sender,
                    interval=interval,
                    reason="bad_mac",
                )
        # Buffer this packet until its own key is disclosed.
        state.pending[j] = packet
        count("crypto.defer")
        emit(
            "mutesla_defer",
            t_us=local_time_us,
            node=self.owner,
            sender=sender,
            interval=j,
        )
        while len(state.pending) > self.MAX_PENDING:
            state.pending.pop(min(state.pending))
        return released
