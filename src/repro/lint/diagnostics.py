"""Diagnostic records and baseline files.

A :class:`Diagnostic` is one finding: a file position plus a stable rule
code and message. Baselines grandfather pre-existing findings so the
gate "no *new* findings" can be enforced before the backlog reaches
zero: a baseline is a JSON multiset of ``(path, code, message)`` keys —
deliberately *line-independent*, so editing unrelated parts of a file
does not churn it — and suppression consumes one baseline entry per
matching finding, which means a *second* occurrence of a grandfathered
finding still fails the gate.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Counter as CounterT
from typing import Iterable, List, Tuple

#: The line-independent identity a baseline stores per finding.
BaselineKey = Tuple[str, str, str]

#: A multiset of grandfathered findings (key -> remaining count).
Baseline = CounterT[BaselineKey]

_BASELINE_VERSION = 1


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding at a file position.

    Attributes
    ----------
    path:
        The linted file, as given to the engine (posix separators).
    line, col:
        1-based line and 0-based column of the offending node.
    code:
        Stable rule code (``D001`` … ``D006``; ``D000`` for files the
        engine could not parse).
    message:
        Human-readable description. Stable for a given construct — it
        never embeds line numbers — so it can key a baseline entry.
    """

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """The canonical one-line ``path:line:col: CODE message`` form."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def baseline_key(self) -> BaselineKey:
        """Line-independent identity used for baseline matching."""
        return (self.path, self.code, self.message)

    def as_dict(self) -> dict:
        """JSON-ready form for ``--format json`` (keys sorted on dump)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


#: Version of the ``--format json`` report document, independent of the
#: baseline format version.
REPORT_VERSION = 1


def render_json(diagnostics: Iterable[Diagnostic], files_checked: int) -> str:
    """The ``--format json`` report, byte-stable for a given finding set.

    Findings are sorted by (path, line, col, code, message) and the
    document serialised with sorted keys and a trailing newline, so the
    same tree yields the identical byte stream on every run and
    platform — CI archives it as an artifact and may diff it directly.
    """
    ordered = sorted(
        diagnostics, key=lambda d: (d.path, d.line, d.col, d.code, d.message)
    )
    payload = {
        "version": REPORT_VERSION,
        "files_checked": files_checked,
        "finding_count": len(ordered),
        "findings": [d.as_dict() for d in ordered],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def load_baseline(path: Path) -> Baseline:
    """Read a baseline file written by :func:`write_baseline`.

    Raises ``ValueError`` on a malformed or wrong-version file — a
    silently ignored baseline would disable the gate it implements.
    """
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or data.get("version") != _BASELINE_VERSION:
        raise ValueError(f"unsupported baseline file {path}")
    baseline: Baseline = Counter()
    for entry in data.get("entries", []):
        key = (str(entry["path"]), str(entry["code"]), str(entry["message"]))
        baseline[key] += int(entry.get("count", 1))
    return baseline


def write_baseline(path: Path, diagnostics: Iterable[Diagnostic]) -> None:
    """Write the baseline that grandfathers exactly ``diagnostics``.

    Entries are sorted and counted so the file is deterministic for a
    given finding set and diffs minimally under edits.
    """
    counts: Baseline = Counter(d.baseline_key() for d in diagnostics)
    entries = [
        {"path": p, "code": c, "message": m, "count": n}
        for (p, c, m), n in sorted(counts.items())
    ]
    payload = {"version": _BASELINE_VERSION, "entries": entries}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")


def apply_baseline(
    diagnostics: Iterable[Diagnostic], baseline: Baseline
) -> List[Diagnostic]:
    """Return the findings *not* covered by ``baseline``.

    Multiset semantics: each baseline entry absorbs at most ``count``
    matching findings, so regressions that duplicate a grandfathered
    finding are still reported.
    """
    remaining = Counter(baseline)
    fresh: List[Diagnostic] = []
    for diag in diagnostics:
        key = diag.baseline_key()
        if remaining[key] > 0:
            remaining[key] -= 1
        else:
            fresh.append(diag)
    return fresh
