"""Tests for the multi-hop extension (topology + runner)."""

import numpy as np
import pytest

from repro.multihop import MultiHopRunner, MultiHopSpec, Topology
from repro.multihop.runner import run_multihop
from repro.sim.units import S


class TestTopology:
    def test_chain(self):
        topo = Topology.chain(5)
        assert topo.n == 5
        assert topo.neighbors(0) == (1,)
        assert topo.neighbors(2) == (1, 3)
        assert topo.diameter() == 4

    def test_grid(self):
        topo = Topology.grid(3, 4)
        assert topo.n == 12
        assert topo.degree(0) == 2  # corner
        assert topo.degree(5) == 4  # interior
        assert topo.is_connected()

    def test_grid_diagonal(self):
        plain = Topology.grid(3, 3)
        diag = Topology.grid(3, 3, diagonal=True)
        assert diag.degree(4) > plain.degree(4)

    def test_full_mesh(self):
        topo = Topology.full_mesh(6)
        assert topo.degree(0) == 5
        assert topo.diameter() == 1

    def test_unit_disk_connected(self, rng):
        topo = Topology.unit_disk(30, rng, area_m=800.0, radius_m=300.0)
        assert topo.is_connected()
        assert topo.n == 30

    def test_unit_disk_gives_up(self, rng):
        with pytest.raises(RuntimeError):
            Topology.unit_disk(
                50, rng, area_m=100_000.0, radius_m=10.0, max_attempts=3
            )

    def test_hop_distances(self):
        topo = Topology.chain(5)
        hops = topo.hop_distances(0)
        assert hops == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_node_labels_validated(self):
        import networkx as nx

        graph = nx.Graph()
        graph.add_edge("a", "b")
        with pytest.raises(ValueError):
            Topology(graph)


class TestSpecValidation:
    def test_root_in_topology(self):
        with pytest.raises(ValueError):
            MultiHopSpec(topology=Topology.chain(3), root=5)

    def test_stride_must_exceed_airtime(self):
        with pytest.raises(ValueError):
            MultiHopSpec(topology=Topology.chain(3), hop_stride_slots=7)

    def test_relay_probability_bounds(self):
        with pytest.raises(ValueError):
            MultiHopSpec(topology=Topology.chain(3), relay_probability=0.0)


class TestMultiHopSync:
    def test_chain_synchronizes_all_hops(self):
        spec = MultiHopSpec(topology=Topology.chain(8), seed=3, duration_s=25.0)
        result = run_multihop(spec)
        assert set(result.per_hop_error_us) == set(range(1, 8))
        # every hop well inside a beacon period; near hops at paper accuracy
        assert result.per_hop_error_us[1] < 10.0
        assert all(v < 1_000.0 for v in result.per_hop_error_us.values())

    def test_error_grows_with_hop_distance(self):
        spec = MultiHopSpec(topology=Topology.chain(10), seed=4, duration_s=30.0)
        result = run_multihop(spec)
        errors = [result.per_hop_error_us[h] for h in sorted(result.per_hop_error_us)]
        # monotone-ish growth: far hops strictly worse than near hops
        assert errors[-1] > errors[0]
        assert np.median(errors[5:]) > np.median(errors[:3])

    def test_grid_synchronizes(self):
        spec = MultiHopSpec(topology=Topology.grid(5, 5), seed=3, duration_s=30.0)
        result = run_multihop(spec)
        # near hops at single-hop accuracy; deep hops amplified but bounded
        # well inside a beacon period
        assert all(result.per_hop_error_us[h] < 100.0 for h in range(1, 6))
        assert max(result.per_hop_error_us.values()) < 10_000.0
        assert result.trace.present_counts[-1] == 25

    def test_unit_disk_synchronizes(self, rng):
        topo = Topology.unit_disk(30, rng, area_m=900.0, radius_m=320.0)
        spec = MultiHopSpec(topology=topo, seed=5, duration_s=30.0)
        result = run_multihop(spec)
        assert result.per_hop_error_us[1] < 10.0

    def test_full_mesh_degenerates_to_single_hop(self):
        spec = MultiHopSpec(topology=Topology.full_mesh(12), seed=3, duration_s=20.0)
        result = run_multihop(spec)
        assert set(result.per_hop_error_us) == {1}
        assert result.per_hop_error_us[1] < 10.0

    def test_deterministic(self):
        spec = MultiHopSpec(topology=Topology.chain(6), seed=7, duration_s=10.0)
        a = run_multihop(spec).trace.max_diff_us
        b = run_multihop(spec).trace.max_diff_us
        assert np.array_equal(a, b)

    def test_root_failover(self):
        spec = MultiHopSpec(topology=Topology.grid(3, 3), seed=3, duration_s=30.0)
        runner = MultiHopRunner(spec)
        runner.leave_at[150] = [spec.root]
        result = runner.run()
        assert result.root_changes >= 1
        assert result.root != spec.root
        # re-synchronized around the new root by the end
        tail = result.trace.window(25.0 * S, 30.0 * S)
        assert float(np.median(tail.max_diff_us)) < 500.0

    def test_node_return_reacquires(self):
        spec = MultiHopSpec(topology=Topology.chain(5), seed=3, duration_s=20.0)
        runner = MultiHopRunner(spec)
        runner.leave_at[50] = [3]
        runner.return_at[100] = [3]
        result = runner.run()
        # node 3 away; downstream nodes may transiently detach too
        assert 2 <= result.trace.present_counts.min() <= 4
        assert result.trace.present_counts[-1] == 5
        tail = result.trace.window(15.0 * S, 20.0 * S)
        assert float(tail.max_diff_us.max()) < 500.0

    def test_collisions_counted(self):
        spec = MultiHopSpec(topology=Topology.grid(4, 4), seed=3, duration_s=10.0)
        result = run_multihop(spec)
        assert result.collisions_at_receivers >= 0
        assert result.beacons_sent > 0
