"""The sweep manifest: resumable run state keyed by spec hashes.

``run_sweep`` maintains one manifest per named sweep
(``results/sweep_logs/<name>.manifest.json`` by default) recording, for
every job in the sweep, whether it **completed**, was **quarantined**,
or is still **pending**. The manifest is flushed when the sweep ends —
normally, on a job failure under ``on_error="raise"``, or on a
SIGINT/SIGTERM drain — so an interrupted run always leaves an accurate
record behind.

Jobs are keyed by the full (unsalted) spec hash, the same identity the
result cache is addressed by, which is what makes ``--resume`` work:
a resumed sweep re-checks the cache for every spec, executes only what
the manifest + cache do not already cover, and ends with the manifest
marked fully completed. The manifest never stores result *values* —
those live in the content-addressed cache — so it stays small however
large the job payloads are.

Writes are atomic (temp file + ``os.replace``) and the JSON is
sorted-key, so a manifest is a deterministic function of the sweep's
state, not of dict insertion history.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence

from repro.sweep.spec import JobSpec

#: Bump on breaking changes to the manifest layout. Loaders reject a
#: newer schema rather than misreading it.
MANIFEST_SCHEMA_VERSION = 1

#: The statuses a job may hold in a manifest.
JOB_STATUSES = ("pending", "completed", "quarantined")


@dataclass
class SweepManifest:
    """Completed/quarantined/pending state of one named sweep."""

    sweep: str
    salt: str
    jobs: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    @classmethod
    def fresh(
        cls, sweep: str, specs: Sequence[JobSpec], salt: str
    ) -> "SweepManifest":
        """A manifest with every job of ``specs`` marked pending."""
        manifest = cls(sweep=sweep, salt=salt)
        for seq, spec in enumerate(specs):
            manifest.jobs[spec.spec_hash()] = {
                "seq": seq,
                "kind": spec.kind,
                "status": "pending",
                "attempts": 0,
            }
        return manifest

    def mark(
        self,
        spec: JobSpec,
        status: str,
        attempts: Optional[int] = None,
        reason: Optional[str] = None,
    ) -> None:
        """Set one job's status (plus attempt count / failure reason)."""
        if status not in JOB_STATUSES:
            raise ValueError(f"unknown manifest status {status!r}")
        entry = self.jobs.setdefault(
            spec.spec_hash(), {"seq": len(self.jobs), "kind": spec.kind}
        )
        entry["status"] = status
        if attempts is not None:
            entry["attempts"] = attempts
        if reason is not None:
            entry["reason"] = reason
        elif "reason" in entry:
            del entry["reason"]

    def status(self, spec: JobSpec) -> Optional[str]:
        """The recorded status of ``spec``, or None if unknown."""
        entry = self.jobs.get(spec.spec_hash())
        return None if entry is None else entry.get("status")

    def counts(self) -> Dict[str, int]:
        """``{status: count}`` over every job (all statuses present)."""
        totals = {status: 0 for status in JOB_STATUSES}
        for key in sorted(self.jobs):
            status = self.jobs[key].get("status", "pending")
            totals[status] = totals.get(status, 0) + 1
        return totals

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready projection (sorted job keys)."""
        return {
            "schema": MANIFEST_SCHEMA_VERSION,
            "sweep": self.sweep,
            "salt": self.salt,
            "counts": self.counts(),
            "jobs": {key: self.jobs[key] for key in sorted(self.jobs)},
        }

    def save(self, path: str) -> str:
        """Atomically write the manifest to ``path``; returns the path."""
        directory = os.path.dirname(path) or "."
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=directory, prefix=".tmp-manifest-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(self.to_dict(), fh, sort_keys=True, indent=1)
                fh.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    @classmethod
    def load(cls, path: str) -> "SweepManifest":
        """Read a manifest back; rejects a newer schema than this reader."""
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        schema = payload.get("schema")
        if schema is not None and schema > MANIFEST_SCHEMA_VERSION:
            raise ValueError(
                f"manifest schema {schema} is newer than supported "
                f"{MANIFEST_SCHEMA_VERSION}: {path}"
            )
        return cls(
            sweep=payload.get("sweep", ""),
            salt=payload.get("salt", ""),
            jobs=dict(payload.get("jobs", {})),
        )


def default_manifest_path(name: str) -> str:
    """The CLI-default manifest location for sweep ``name``."""
    root = os.environ.get("SSTSP_RESULTS_DIR", "results")
    return os.path.join(root, "sweep_logs", f"{name}.manifest.json")
