"""SSTSP - the paper's contribution.

The Scalable Secure Time Synchronization Procedure replaces TSF's
every-node beacon contention with a *reference node* elected once (via the
TSF contention mechanism) that thereafter beacons at the start of every BP
with no random delay, while everyone else slews a piecewise-linear
adjusted clock toward it; beacons are authenticated with uTESLA and
sanity-checked against a guard time.

* :mod:`repro.core.config` - all protocol parameters in one dataclass.
* :mod:`repro.core.adjustment` - the closed-form ``(k, b)`` solution of
  equations (2)-(5).
* :mod:`repro.core.guard` - the guard-time check.
* :mod:`repro.core.backend` - beacon protection backends: real uTESLA
  crypto, or a "modeled" backend preserving every accept/reject decision
  at zero byte-level cost (for large-N sweeps; cross-validated).
* :mod:`repro.core.coarse` - the coarse synchronization phase for joiners.
* :mod:`repro.core.sstsp` - the per-node protocol driver / state machine.
"""

from repro.core.config import SstspConfig
from repro.core.adjustment import (
    AdjustmentSample,
    paper_closed_form,
    solve_adjustment,
)
from repro.core.guard import GuardPolicy, GuardStats
from repro.core.backend import (
    BeaconVerdict,
    CryptoBackend,
    FullCryptoBackend,
    ModeledCryptoBackend,
)
from repro.core.coarse import CoarseSynchronizer
from repro.core.sstsp import SstspProtocol, SstspState

__all__ = [
    "SstspConfig",
    "AdjustmentSample",
    "solve_adjustment",
    "paper_closed_form",
    "GuardPolicy",
    "GuardStats",
    "CryptoBackend",
    "FullCryptoBackend",
    "ModeledCryptoBackend",
    "BeaconVerdict",
    "CoarseSynchronizer",
    "SstspProtocol",
    "SstspState",
]
