"""Tests for the fault-injection subsystem and the chaos soak harness."""

import numpy as np
import pytest

from repro.core.config import SstspConfig
from repro.experiments.chaos import (
    ChaosLimits,
    lemma2_loss_bound,
    outcome_fingerprint,
    run_chaos,
    run_plan,
)
from repro.experiments.chaos import PlanOutcome, _check_invariants
from repro.faults import FaultInjector, FaultPlan, FaultSpec, random_plan
from repro.multihop.runner import MultiHopRunner, MultiHopSpec
from repro.multihop.topology import Topology
from repro.network.churn import REFERENCE_MARKER
from repro.network.ibss import ScenarioSpec, build_sstsp_network


def make_runner(n=8, seed=3, duration_s=10.0, plan=None, config=None):
    spec = ScenarioSpec(n=n, seed=seed, duration_s=duration_s)
    runner = build_sstsp_network(spec, config=config)
    if plan is not None:
        runner.attach_injector(FaultInjector(plan))
    return runner


class TestFaultSpec:
    def test_node_kinds_require_node_id(self):
        for kind in ("freq_step", "clock_jump", "crash"):
            with pytest.raises(ValueError):
                FaultSpec(kind, 10)

    def test_channel_kinds_reject_node_id(self):
        with pytest.raises(ValueError):
            FaultSpec("jam", 10, 5, node_id=3)

    def test_windowed_kinds_need_duration(self):
        with pytest.raises(ValueError):
            FaultSpec("stall", 10, 0, node_id=1)
        with pytest.raises(ValueError):
            FaultSpec("partition", 10, 0, magnitude=0.5)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("meteor", 10, node_id=1)

    def test_magnitude_ranges(self):
        with pytest.raises(ValueError):
            FaultSpec("loss_burst", 10, 5, magnitude=1.5)
        with pytest.raises(ValueError):
            FaultSpec("partition", 10, 5, magnitude=1.0)
        with pytest.raises(ValueError):
            FaultSpec("clock_jump", 10, node_id=1, magnitude=float("nan"))

    def test_covers_and_end_period(self):
        spec = FaultSpec("stall", 10, 5, node_id=1)
        assert spec.end_period == 15
        assert spec.covers(10) and spec.covers(14)
        assert not spec.covers(9) and not spec.covers(15)
        instant = FaultSpec("clock_jump", 7, node_id=1, magnitude=10.0)
        assert instant.end_period == 7

    def test_dict_round_trip(self):
        spec = FaultSpec("crash", 20, 15, node_id=REFERENCE_MARKER)
        assert FaultSpec.from_dict(spec.to_dict()) == spec


class TestFaultPlan:
    def test_faults_sorted_by_start(self):
        plan = FaultPlan(
            faults=(
                FaultSpec("jam", 30, 3),
                FaultSpec("crash", 10, 5, node_id=1),
            )
        )
        assert [f.start_period for f in plan] == [10, 30]

    def test_len_and_kinds(self):
        plan = FaultPlan(
            faults=(
                FaultSpec("crash", 10, 5, node_id=1),
                FaultSpec("jam", 30, 3),
            )
        )
        assert len(plan) == 2
        assert plan.kinds() == ["crash", "jam"]

    def test_last_affected_period(self):
        plan = FaultPlan(
            faults=(
                FaultSpec("crash", 10, 50, node_id=1),
                FaultSpec("jam", 30, 3),
            )
        )
        assert plan.last_affected_period() == 60
        assert FaultPlan().last_affected_period() == 0

    def test_dict_round_trip(self):
        plan = FaultPlan(
            faults=(
                FaultSpec("loss_burst", 12, 6, magnitude=0.5),
                FaultSpec("freq_step", 9, node_id=2, magnitude=-80.0),
            ),
            name="round-trip",
            seed=99,
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan


class TestRandomPlan:
    def test_faults_respect_bounds(self):
        rng = np.random.default_rng(5)
        plan = random_plan(rng, periods=300, node_ids=list(range(10)),
                           first_period=40, last_period=200)
        assert len(plan) >= 1
        for fault in plan:
            assert fault.start_period >= 40
            assert fault.end_period <= 200

    def test_reference_crash_included(self):
        rng = np.random.default_rng(5)
        plan = random_plan(rng, periods=300, node_ids=[0, 1, 2])
        crashes = [
            f for f in plan
            if f.kind == "crash" and f.node_id == REFERENCE_MARKER
        ]
        assert len(crashes) >= 1

    def test_deterministic_given_rng(self):
        a = random_plan(np.random.default_rng(8), 300, list(range(6)))
        b = random_plan(np.random.default_rng(8), 300, list(range(6)))
        assert a == b

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            random_plan(np.random.default_rng(1), 300, [0, 1],
                        first_period=250, last_period=200)
        with pytest.raises(ValueError):
            random_plan(np.random.default_rng(1), 300, [])


class TestInjectorClockFaults:
    def test_freq_step_is_value_continuous(self):
        runner = make_runner(plan=FaultPlan())
        node = runner.nodes[0]
        bp = runner.params.beacon_period_us
        before = node.hw.read(5 * bp)
        old_rate = node.hw.rate
        runner.injector._step_rate(5, node, 150.0)
        assert node.hw.read(5 * bp) == pytest.approx(before, abs=1e-6)
        assert node.hw.rate == pytest.approx(old_rate * (1 + 150e-6))

    def test_freq_step_applied_during_run(self):
        plan = FaultPlan(
            faults=(FaultSpec("freq_step", 5, node_id=0, magnitude=100.0),)
        )
        runner = make_runner(duration_s=1.0, plan=plan)
        base_rate = runner.nodes[0].hw.rate
        runner.run()
        assert runner.nodes[0].hw.rate == pytest.approx(base_rate * (1 + 100e-6))

    def test_freq_ramp_accumulates_over_window(self):
        plan = FaultPlan(
            faults=(FaultSpec("freq_ramp", 3, 4, node_id=1, magnitude=200.0),)
        )
        runner = make_runner(duration_s=1.0, plan=plan)
        base_rate = runner.nodes[1].hw.rate
        runner.run()
        # four per-period increments of 50 ppm each
        expected = base_rate * (1 + 50e-6) ** 4
        assert runner.nodes[1].hw.rate == pytest.approx(expected, rel=1e-9)

    def test_clock_jump_shifts_hardware_time(self):
        plan = FaultPlan(
            faults=(FaultSpec("clock_jump", 4, node_id=2, magnitude=250.0),)
        )
        runner = make_runner(duration_s=1.0, plan=plan)
        node = runner.nodes[2]
        bp = runner.params.beacon_period_us
        before = node.hw.read(10 * bp)
        runner.run()
        assert node.hw.read(10 * bp) == pytest.approx(before + 250.0, abs=1e-6)


class TestInjectorNodeFaults:
    def test_crash_and_restart(self):
        plan = FaultPlan(
            faults=(FaultSpec("crash", 10, 20, node_id=3),)
        )
        runner = make_runner(duration_s=5.0, plan=plan)
        result = runner.run()
        # absent for exactly the crash window, present again afterwards
        assert result.trace.present_counts.min() == 7
        assert runner.nodes[3].present
        assert any("crash node 3" in line for line in runner.injector.log)
        assert any("restart node 3" in line for line in runner.injector.log)

    def test_crash_without_restart_is_permanent(self):
        plan = FaultPlan(faults=(FaultSpec("crash", 10, 0, node_id=3),))
        runner = make_runner(duration_s=3.0, plan=plan)
        runner.run()
        assert not runner.nodes[3].present

    def test_reference_crash_recorded(self):
        plan = FaultPlan(
            faults=(FaultSpec("crash", 30, 20, node_id=REFERENCE_MARKER),)
        )
        runner = make_runner(duration_s=8.0, plan=plan)
        result = runner.run()
        assert len(runner.injector.reference_crashes) == 1
        period, crashed = runner.injector.reference_crashes[0]
        assert period == 30
        # a (possibly different) reference exists again at the end
        assert result.trace.reference_ids[-1] >= 0

    def test_reference_marker_with_no_reference_skips(self):
        plan = FaultPlan(
            faults=(FaultSpec("crash", 1, 5, node_id=REFERENCE_MARKER),)
        )
        runner = make_runner(duration_s=1.0, plan=plan)
        runner.run()
        assert runner.injector.reference_crashes == []
        assert any("skipped" in line for line in runner.injector.log)

    def test_stall_keeps_node_present_but_frozen(self):
        plan = FaultPlan(faults=(FaultSpec("stall", 10, 8, node_id=4),))
        runner = make_runner(duration_s=3.0, plan=plan)
        result = runner.run()
        assert result.trace.present_counts.min() == 8  # never absent
        assert runner.injector.stalled_ids(10) == frozenset({4})
        assert runner.injector.stalled_ids(17) == frozenset({4})
        assert runner.injector.stalled_ids(18) == frozenset()


class TestInjectorChannelFaults:
    def test_jam_window_installed_and_drops_frames(self):
        plan = FaultPlan(faults=(FaultSpec("jam", 5, 4),))
        runner = make_runner(duration_s=2.0, plan=plan)
        runner.run()
        bp = runner.params.beacon_period_us
        assert runner.channel.is_jammed(6 * bp)
        assert not runner.channel.is_jammed(9.5 * bp)
        assert runner.channel.stats.jammed_drops > 0

    def test_loss_burst_blocks_and_clears(self):
        plan = FaultPlan(faults=(FaultSpec("loss_burst", 5, 6, magnitude=1.0),))
        runner = make_runner(duration_s=2.0, plan=plan)
        runner.run()
        assert runner.channel.stats.per_drops > 0
        assert any("loss_burst cleared" in line for line in runner.injector.log)
        # override removed: a fresh broadcast at per=0 base rate delivers
        runner.channel.phy = runner.channel.phy.__class__(packet_error_rate=0.0)
        assert runner.channel.broadcast(0, [1, 2], 1e9, 10) == [1, 2]

    def test_partition_groups_and_heal(self):
        plan = FaultPlan(faults=(FaultSpec("partition", 6, 5, magnitude=0.5),))
        runner = make_runner(n=8, duration_s=0.1, plan=plan)
        injector = runner.injector
        injector.on_period_start(6)
        groups = injector.partition_groups(6)
        assert groups is not None
        sizes = [list(groups.values()).count(g) for g in (0, 1)]
        assert sorted(sizes) == [4, 4]
        assert injector.partition_groups(10) is not None
        assert injector.partition_groups(11) is None

    def test_partition_heals_during_run(self):
        plan = FaultPlan(faults=(FaultSpec("partition", 6, 5, magnitude=0.4),))
        runner = make_runner(duration_s=3.0, plan=plan)
        result = runner.run()
        assert any("partition healed" in line for line in runner.injector.log)
        # one network again at the end: exactly one reference
        refs = [n for n in result.nodes if n.protocol.is_reference()]
        assert len(refs) == 1

    def test_unbound_injector_raises(self):
        injector = FaultInjector(FaultPlan())
        with pytest.raises(RuntimeError):
            injector.on_period_start(1)


class TestChaosHarness:
    def test_limits_validation(self):
        with pytest.raises(ValueError):
            ChaosLimits(eval_periods=200, tail_periods=100)
        with pytest.raises(ValueError):
            ChaosLimits(converged_bound_us=500.0, tail_bound_us=100.0)

    def test_lemma2_loss_bound_value(self):
        # 2 * 100 ppm * (4 + 2) * 0.1 s = 120 us
        assert lemma2_loss_bound() == pytest.approx(120.0)

    def test_chaos_soak_reelects_after_reference_crash(self):
        # Regression: every injected reference crash is followed by a
        # re-election within the bounded period count, across >= 5
        # randomized plans, and every other invariant holds too.
        limits = ChaosLimits()
        outcomes = run_chaos(5, seed=3, limits=limits)
        assert len(outcomes) == 5
        assert all(o.ok for o in outcomes), [o.failures for o in outcomes]
        total_crashes = sum(o.reference_crashes for o in outcomes)
        assert total_crashes >= 5
        for o in outcomes:
            assert len(o.reelect_delays) == o.reference_crashes
            assert all(1 <= d <= limits.reelect_within for d in o.reelect_delays)

    def test_chaos_is_deterministic(self):
        a = outcome_fingerprint(run_plan(1, 11))
        b = outcome_fingerprint(run_plan(1, 11))
        assert a == b

    def test_different_seeds_differ(self):
        a = outcome_fingerprint(run_plan(0, 11))
        b = outcome_fingerprint(run_plan(0, 12))
        assert a["plan"] != b["plan"] or a["tail_max_us"] != b["tail_max_us"]

    def test_hardened_config_profile(self):
        cfg = SstspConfig.hardened()
        assert cfg.recovery_rejection_threshold is not None
        assert cfg.coarse_silence_watchdog_periods is not None
        assert cfg.free_run_clamp_after is not None
        assert cfg.coarse_min_survivors >= 2
        assert cfg.election_backoff_cap > 1
        assert SstspConfig.hardened(election_backoff_cap=2).election_backoff_cap == 2


def make_multihop_runner(topology, duration_s, plan=None, seed=3, **overrides):
    spec = MultiHopSpec(
        topology=topology, seed=seed, duration_s=duration_s, **overrides
    )
    runner = MultiHopRunner(spec)
    if plan is not None:
        runner.attach_injector(FaultInjector(plan))
    return runner


class TestMultiHopFaults:
    """The injector drives the multi-hop lane through the same period
    hooks as the single-hop runner — no separate code path."""

    def test_relay_crash_and_restart_on_chain(self):
        # Crash a mid-chain relay for fewer periods than the downstream
        # resync threshold: its subtree free-runs, then rejoins cleanly.
        plan = FaultPlan(faults=(FaultSpec("crash", 20, 8, node_id=2),))
        runner = make_multihop_runner(Topology.chain(6), 15.0, plan)
        result = runner.run()
        log = runner.injector.log
        assert any("crash node 2" in line for line in log)
        assert any("restart node 2" in line for line in log)
        assert runner.nodes[2].present
        pc = result.trace.present_counts
        # absent (and only it) for exactly the crash window...
        assert list(pc[19:27]) == [5] * 8
        # ...and the whole chain synchronized again well before the end
        assert pc[-40:].min() == 6
        assert all(n.protocol.is_synchronized() for n in runner.nodes)
        assert result.trace.max_diff_us[-40:].max() < 100.0

    def test_jam_window_respects_lemma2_loss_bound(self):
        # A global jam blacks out `lost` consecutive beacon periods; every
        # station free-runs, so the spread may open — but no further than
        # Lemma 2's loss-aware bound — and must collapse again afterwards.
        lost = 5
        plan = FaultPlan(faults=(FaultSpec("jam", 60, lost),))
        runner = make_multihop_runner(Topology.chain(4), 12.0, plan)
        result = runner.run()
        assert runner.channel.stats.jammed_drops > 0
        bp = runner.spec.beacon_period_us
        bound = lemma2_loss_bound(runner.spec.drift_ppm, bp, lost)
        md = result.trace.max_diff_us
        # spread across the jam window and its recovery obeys the bound
        assert md[59:70].max() < bound
        # and the network re-converges to its pre-jam error level
        assert md[-30:].max() < 2.0 * md[40:59].max()

    def test_scoped_jam_hits_only_target_neighborhood(self):
        # A receiver-scoped jam (one neighbourhood of the chain) is not a
        # global outage: untouched stations never miss a beat, jammed ones
        # drop frames but stay inside the resync window and recover.
        spec = MultiHopSpec(topology=Topology.chain(6), seed=3, duration_s=10.0)
        runner = MultiHopRunner(spec)
        bp = spec.beacon_period_us
        runner.channel.add_jam_window(
            40 * bp, 46 * bp, receivers=frozenset({4, 5})
        )
        result = runner.run()
        assert not runner.channel.is_jammed(42 * bp)  # not global
        assert runner.channel.stats.jammed_drops > 0
        # nobody fell out of sync: the outage stayed under the resync
        # threshold, so present+synced count never dips mid-run
        assert result.trace.present_counts[30:60].min() == 6
        assert all(n.protocol.is_synchronized() for n in runner.nodes)

    def test_chaos_invariants_evaluate_on_multihop(self):
        # The chaos harness's invariant checker runs against a multi-hop
        # runner unchanged: reference-crash bookkeeping, re-election
        # delay, trace monotonicity and per-node clock audits all resolve
        # through the shared kernel surface.
        plan = FaultPlan(
            faults=(FaultSpec("crash", 30, 0, node_id=REFERENCE_MARKER),)
        )
        runner = make_multihop_runner(Topology.chain(5), 15.0, plan)
        result = runner.run()
        outcome = PlanOutcome(index=0, scenario_seed=3, plan=plan)
        limits = ChaosLimits()
        _check_invariants(outcome, runner, result.trace, limits)
        assert outcome.ok, outcome.failures
        assert outcome.reference_crashes == 1
        assert outcome.reelect_delays == (1,)
        assert runner.root != 0 and runner.root >= 0
        assert result.root_changes == 1
