"""Unit tests for the named RNG stream registry."""

import numpy as np
import pytest

from repro.sim.rng import RngRegistry


def test_same_name_same_stream_object():
    rngs = RngRegistry(1)
    assert rngs.get("a", 1) is rngs.get("a", 1)


def test_reproducible_across_registries():
    a = RngRegistry(42).get("backoff", 7)
    b = RngRegistry(42).get("backoff", 7)
    assert np.array_equal(a.random(16), b.random(16))


def test_different_names_are_independent():
    rngs = RngRegistry(42)
    a = rngs.get("x").random(8)
    b = RngRegistry(42)
    # consume a different stream first: "x" must be unaffected
    b.get("y").random(100)
    assert np.array_equal(a, b.get("x").random(8))


def test_different_seeds_differ():
    a = RngRegistry(1).get("s").random(8)
    b = RngRegistry(2).get("s").random(8)
    assert not np.array_equal(a, b)


def test_string_and_int_components():
    rngs = RngRegistry(5)
    rngs.get("proto", 3)
    rngs.get("proto", "three")
    assert len(rngs) == 2


def test_fork_changes_streams_reproducibly():
    base = RngRegistry(9)
    f1 = base.fork(1)
    f2 = RngRegistry(9).fork(1)
    assert np.array_equal(f1.get("a").random(4), f2.get("a").random(4))
    assert not np.array_equal(
        RngRegistry(9).get("a").random(4), RngRegistry(9).fork(1).get("a").random(4)
    )


def test_rejects_negative_seed():
    with pytest.raises(ValueError):
        RngRegistry(-1)


def test_rejects_empty_name():
    with pytest.raises(ValueError):
        RngRegistry(1).get()


def test_rejects_negative_int_component():
    with pytest.raises(ValueError):
        RngRegistry(1).get("a", -3)


def test_rejects_unsupported_component_type():
    with pytest.raises(TypeError):
        RngRegistry(1).get("a", 3.14)


def test_iteration_lists_created_streams():
    rngs = RngRegistry(1)
    rngs.get("a")
    rngs.get("b", 2)
    assert set(rngs) == {("a",), ("b", 2)}
