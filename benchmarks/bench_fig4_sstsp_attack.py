"""Fig. 4 bench: SSTSP under the guard-tuned insider attacker.

Shape under test: the attacker seizes the reference role yet the victim
network's maximum clock difference stays bounded near its no-attack level
(vs TSF's drift-scale blow-up), while the shared virtual clock is
silently dragged - and everything recovers when the attack ends.
"""

from __future__ import annotations

from conftest import paper_rows

from repro.core.config import SstspConfig
from repro.experiments.scenarios import quick_spec
from repro.fastlane import run_sstsp_vectorized
from repro.network.ibss import AttackerSpec
from repro.sim.units import S


def _run_fig4():
    spec = quick_spec(
        200, seed=1, duration_s=60.0,
        attacker=AttackerSpec(start_s=20.0, end_s=40.0, shave_per_period_us=40.0),
    )
    return run_sstsp_vectorized(spec, config=SstspConfig(m=4))


def test_fig4_sstsp_under_attack(benchmark):
    import numpy as np

    result = benchmark.pedantic(_run_fig4, rounds=1, iterations=1)
    trace = result.trace
    before = float(trace.window(10 * S, 20 * S).max_diff_us.max())
    during = float(trace.window(21 * S, 40 * S).max_diff_us.max())
    after = float(np.median(trace.window(50 * S, 61 * S).max_diff_us))
    drag = float(trace.mean_vs_true_us[-1])
    assert during < 100.0            # bounded: no desynchronization
    assert after < 20.0              # clean recovery (median; event spikes ok)
    assert drag < -1_000.0           # ...but the virtual clock was dragged
    paper_rows(
        benchmark,
        "fig4: SSTSP + insider attacker (200 nodes)",
        [
            f"before={before:.1f}us during={during:.1f}us after={after:.1f}us",
            f"virtual clock dragged {drag:.0f}us vs true time",
            "paper: the attacker cannot desynchronize the network even as "
            "the reference",
        ],
    )
