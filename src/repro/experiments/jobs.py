"""Sweep job functions shared by the figure/table experiments.

Each function is module-level (worker processes re-import it by dotted
path, see :mod:`repro.sweep.jobs`), takes one frozen
:class:`~repro.sweep.spec.JobSpec` and returns a picklable payload. All
simulation randomness comes from the seed recorded *in the spec*, so a
job's result is a pure function of its spec — the property the result
cache and the parallel/serial byte-identity guarantee both rest on.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.analysis.metrics import INDUSTRY_THRESHOLD_US, sync_latency_us
from repro.core.config import SstspConfig
from repro.experiments.scenarios import paper_spec, quick_spec
from repro.network.ibss import AttackerSpec, ScenarioSpec
from repro.phy.params import SSTSP_BEACON_AIRTIME_SLOTS
from repro.sweep.spec import JobSpec


def _scenario_from_params(params: Dict[str, Any]) -> ScenarioSpec:
    """Rebuild the ScenarioSpec a job describes."""
    attacker: Optional[AttackerSpec] = None
    if params.get("attack_start_s") is not None:
        kwargs: Dict[str, Any] = {
            "start_s": params["attack_start_s"],
            "end_s": params["attack_end_s"],
        }
        if params.get("attack_shave_us") is not None:
            kwargs["shave_per_period_us"] = params["attack_shave_us"]
        attacker = AttackerSpec(**kwargs)
    builder = paper_spec if params.get("scenario", "paper") == "paper" else quick_spec
    kwargs = {
        "n": params["n"],
        "seed": params["seed"],
        "attacker": attacker,
        "initial_offset_us": params.get("initial_offset_us", 0.0),
    }
    if params.get("duration_s") is not None:
        kwargs["duration_s"] = params["duration_s"]
    return builder(**kwargs)


def sstsp_config_for(spec: ScenarioSpec, m: int) -> SstspConfig:
    """The SSTSP config the paper experiments run: 7-slot beacons at the
    scenario's PHY timing, aggressiveness ``m``."""
    return SstspConfig(
        beacon_period_us=spec.beacon_period_us,
        slot_time_us=spec.phy.slot_time_us,
        m=m,
        rx_latency_us=(
            SSTSP_BEACON_AIRTIME_SLOTS * spec.phy.slot_time_us
            + spec.phy.propagation_delay_us
        ),
    )


def run_scenario_trace(job: JobSpec) -> Dict[str, Any]:
    """One protocol scenario → its trace payload (fig1–fig4 unit of work).

    Params: ``protocol`` (tsf|sstsp), ``lane`` (vec|oo), ``scenario``
    (paper|quick), ``n``, ``seed``, optional ``duration_s``, ``m``,
    ``initial_offset_us`` and attacker knobs (``attack_start_s``,
    ``attack_end_s``, ``attack_shave_us``).
    """
    params = job.params_dict()
    protocol = params["protocol"]
    lane = params.get("lane", "vec")
    spec = _scenario_from_params(params)
    if protocol == "sstsp":
        config = sstsp_config_for(spec, params.get("m", 4))
        if lane == "oo":
            from repro.network.ibss import build_network

            result = build_network("sstsp", spec, sstsp_config=config).run()
            return {
                "trace": result.trace,
                "reference_changes": result.trace.reference_changes(),
            }
        if lane != "vec":
            raise ValueError(f"unknown lane {lane!r}")
        from repro.fastlane import run_sstsp_vectorized

        result = run_sstsp_vectorized(spec, config=config)
        return {
            "trace": result.trace,
            "reference_changes": result.reference_changes,
        }
    if protocol != "tsf":
        raise ValueError(f"unknown protocol {protocol!r}")
    if lane == "oo":
        from repro.network.ibss import build_network

        result = build_network("tsf", spec).run()
        return {"trace": result.trace, "reference_changes": None}
    if lane != "vec":
        raise ValueError(f"unknown lane {lane!r}")
    from repro.fastlane import run_tsf_vectorized

    return {"trace": run_tsf_vectorized(spec).trace, "reference_changes": None}


def run_table1_cell(job: JobSpec) -> Dict[str, Optional[float]]:
    """One (m, replica) Table 1 cell: latency to threshold + tail error.

    Params: ``m``, ``n``, ``seed`` (already replica-offset), ``duration_s``,
    ``initial_offset_us``.
    """
    from repro.fastlane import run_sstsp_vectorized

    params = job.params_dict()
    spec = quick_spec(
        params["n"],
        seed=params["seed"],
        duration_s=params["duration_s"],
        initial_offset_us=params["initial_offset_us"],
    )
    config = sstsp_config_for(spec, params["m"])
    trace = run_sstsp_vectorized(spec, config=config).trace
    latency = sync_latency_us(trace, INDUSTRY_THRESHOLD_US)
    return {
        "latency_us": latency,
        "error_us": trace.steady_state_error_us(),
    }
