"""Beaconless asymmetric one-way dissemination (Huan et al. style).

Modeled after the energy-efficient WSN scheme of Huan, Kim, Lee, Kim &
Ko (arXiv:1906.09037): time flows strictly *one way* from the source,
timestamps ride piggyback on frames a node was sending anyway (here: a
bare 34-byte piggyback frame, no authentication material), and receivers
compensate skew by **least-squares regression** over a sliding window of
one-way observations instead of exchanging two-way handshakes.

Differences from SSTSP relaying, deliberately kept (they are the
scheme's identity, and the shootout measures their cost):

* **No security envelope** — no uTESLA pending buffer, no per-hop guard
  window; every decoded frame becomes a sample immediately. Cheaper and
  faster to converge, but a forged timestamp would be consumed as-is.
* **Asymmetric duty cycle** — relays disseminate every other period
  (``_DUTY_CYCLE``), halving beacon traffic; the regression window
  tolerates the sparser sampling because one-way samples are cheap.
* **Windowed regression** — offset *and* skew come from an 8-sample
  ordinary-least-squares fit of (local hardware time → upstream time),
  the paper's asymmetric high-precision estimator, rather than the
  two-sample closed form of SSTSP equations (2)-(5).

The correction is applied as a *slew*: the adjusted clock is re-sloped,
continuously at the current instant, to intersect the regression line
one beacon period ahead — so the clock never steps and
``audit_no_leaps`` holds for this protocol too.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.clocks.adjusted import AdjustedClock, MonotonicityError
from repro.clocks.chain import ClockChain
from repro.phy.params import (
    BEACONLESS_BEACON_AIRTIME_SLOTS,
    BEACONLESS_BEACON_BYTES,
)
from repro.protocols.multihop_base import (
    MultiHopContext,
    MultiHopFrame,
    MultiHopProtocol,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.multihop.runner import MultiHopSpec

#: Relays disseminate every other period (the scheme's energy asymmetry).
_DUTY_CYCLE = 2
#: Sliding regression window (samples).
_WINDOW = 8
#: Discard samples older than this many periods (a stale window would
#: drag the fit after an upstream change or long outage).
_MAX_SAMPLE_AGE = 40


class BeaconlessProtocol(MultiHopProtocol):
    """One station's beaconless dissemination driver."""

    protocol_name = "beaconless"
    beacon_bytes = BEACONLESS_BEACON_BYTES
    beacon_airtime_slots = BEACONLESS_BEACON_AIRTIME_SLOTS

    def __init__(
        self, node_id: int, chain: ClockChain, spec: "MultiHopSpec"
    ) -> None:
        super().__init__(node_id, chain, spec)
        #: (period, hw_on_grid, upstream_time) observations.
        self.samples: List[Tuple[int, float, float]] = []

    def reset_sync(self) -> None:
        super().reset_sync()
        self.samples.clear()

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------

    def begin_period(self, period: int, ctx: MultiHopContext) -> Optional[float]:
        spec = self.spec
        if self.node_id == ctx.root:
            return 0.0
        if ctx.orphan_election and self.hop == 1 and self.silent >= spec.l:
            slot = int(ctx.slot_rng.integers(0, self._backoff_range()))
            return slot * spec.slot_time_us
        if (
            self.hop is not None
            and self.hop >= 1
            and self.adjustments >= 1
            and (period + self.node_id) % _DUTY_CYCLE == 0
        ):
            slot = int(ctx.slot_rng.integers(0, self._backoff_range()))
            return (self.hop * spec.hop_stride_slots + slot) * spec.slot_time_us
        return None

    def make_frame(
        self, period: int, delay_us: float, tx_true: float, ctx: MultiHopContext
    ) -> MultiHopFrame:
        nominal = period * self.spec.beacon_period_us
        hop = (
            0
            if self.node_id == ctx.root
            else (self.hop if self.hop is not None else 0)
        )
        return MultiHopFrame(
            sender=self.node_id,
            hop=hop,
            interval=period,
            tx_true=tx_true,
            timestamp=nominal,
            delay_us=delay_us,
        )

    def _backoff_range(self) -> int:
        return max(1, self.spec.hop_stride_slots - self.spec.airtime_slots)

    # ------------------------------------------------------------------
    # Reception: windowed least squares over one-way samples
    # ------------------------------------------------------------------

    def on_receptions(
        self, period: int, decoded: List[MultiHopFrame], ctx: MultiHopContext
    ) -> bool:
        spec = self.spec
        decoded.sort(key=lambda tx: (tx.hop, tx.tx_true))
        best = decoded[0]
        current = next(
            (tx for tx in decoded if tx.sender == self.upstream), None
        )
        if current is not None and best.hop >= current.hop:
            chosen = current
        elif current is not None:
            chosen = best  # strictly better hop: re-hang
        elif self.upstream is None or self.silent >= 2 * spec.l:
            chosen = best
        else:
            return False  # upstream quiet this period; stay patient
        arrival = chosen.tx_true + ctx.rx_latency_us
        jitter = ctx.sample_timestamp_error()
        hw = self.chain.hw.read(arrival) - chosen.delay_us
        est = chosen.timestamp + ctx.rx_latency_us + jitter
        self.silent = 0
        if self.hop is None:
            # first contact: one-shot offset alignment, then regress
            local = self.clock.read_current(hw)
            self.chain.adjusted = AdjustedClock(
                self.clock.k, self.clock.b + (est - local)
            )
            self.hop = chosen.hop + 1
            self.upstream = chosen.sender
            self.samples.clear()
            return True
        if chosen.sender != self.upstream:
            # one-way scheme: no stickiness ceremony, but the regression
            # window only ever mixes samples from a single upstream
            self.upstream = chosen.sender
            self.samples.clear()
        self.hop = chosen.hop + 1
        self.samples.append((period, hw, est))
        del self.samples[: -_WINDOW]
        while self.samples and period - self.samples[0][0] > _MAX_SAMPLE_AGE:
            self.samples.pop(0)
        self._refit(period, hw)
        return True

    def _refit(self, period: int, hw_now: float) -> None:
        """OLS fit of upstream time over local hardware time; slew the
        adjusted clock onto the fitted line over one beacon period."""
        spec = self.spec
        if len(self.samples) < 2:
            return
        n = len(self.samples)
        mean_hw = sum(s[1] for s in self.samples) / n
        mean_est = sum(s[2] for s in self.samples) / n
        var = sum((s[1] - mean_hw) ** 2 for s in self.samples)
        if var <= 0.0:
            return
        cov = sum(
            (s[1] - mean_hw) * (s[2] - mean_est) for s in self.samples
        )
        k_fit = cov / var
        if abs(k_fit - 1.0) > spec.k_clamp:
            return
        b_fit = mean_est - k_fit * mean_hw
        # Converge onto the fitted line at the *next expected update*
        # (one duty cycle out), continuously from now. A shorter horizon
        # would overshoot the line and keep overshooting until the next
        # refit — an oscillation that compounds per hop.
        horizon = _DUTY_CYCLE * spec.beacon_period_us
        current = self.clock.read_current(hw_now)
        target = k_fit * (hw_now + horizon) + b_fit
        slope = (target - current) / horizon
        if abs(slope - 1.0) > spec.k_clamp:
            # far off the line (fresh join, post-outage): step the window
            # limit — take the clamped slope and let later fits finish
            slope = min(max(slope, 1.0 - spec.k_clamp), 1.0 + spec.k_clamp)
        try:
            self.clock.adjust(slope, current - slope * hw_now, hw_now)
        except MonotonicityError:
            return
        self.adjustments += 1

    # ------------------------------------------------------------------
    # Silence
    # ------------------------------------------------------------------

    def end_period(self, period: int, accepted: bool, ctx: MultiHopContext) -> None:
        spec = self.spec
        if accepted:
            return
        self.silent += 1
        if self.silent > 4 * spec.l and self.upstream is not None:
            self.samples.clear()
            self.upstream = None
        if self.silent > spec.resync_after_periods and self.hop is not None:
            self.reset_sync()
