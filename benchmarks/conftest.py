"""Shared helpers for the benchmark suite.

Each ``bench_*`` module regenerates one paper table/figure (or an
ablation) at a reduced-but-shape-preserving scale, asserts the paper's
qualitative claim, attaches the reproduced rows to the benchmark record
via ``benchmark.extra_info``, and prints them so that
``pytest benchmarks/ --benchmark-only -s`` shows the same rows/series the
paper reports. The full-scale reproductions live in
``repro.experiments`` (``sstsp-experiment <name>``).
"""

from __future__ import annotations

import os
import sys

import pytest

from repro.obs import count_work
from repro.sweep import SweepOptions


def pytest_addoption(parser):
    """The orchestrator knobs, shared by every sweep-driven bench.

    Mirrors the experiment CLIs' ``--workers`` / ``--cache-dir``
    (prefixed to avoid clashing with pytest's own options).
    """
    parser.addoption(
        "--sweep-workers",
        type=int,
        default=None,
        help="worker processes for sweep-driven benches "
        "(default: SSTSP_BENCH_WORKERS or 1)",
    )
    parser.addoption(
        "--sweep-cache-dir",
        default=None,
        help="content-addressed result cache directory (default: off — a "
        "benchmark that replays pickles measures the cache, not the "
        "simulator)",
    )
    parser.addoption(
        "--bench-json",
        default=None,
        metavar="PATH",
        help="serialize per-benchmark wall-time medians and numeric "
        "extra_info accuracy metrics to a schema-versioned BENCH json "
        "(compare against a baseline with `repro bench-gate`)",
    )
    parser.addoption(
        "--bench-label",
        default="local",
        help="label recorded in the --bench-json file (e.g. the PR number)",
    )


def pytest_sessionfinish(session, exitstatus):
    """Emit the ``--bench-json`` trajectory file from this session's
    pytest-benchmark records (see ``repro.analysis.benchgate``)."""
    path = session.config.getoption("--bench-json")
    if not path:
        return
    from repro.analysis.benchgate import bench_record, write_bench_json

    bench_session = getattr(session.config, "_benchmarksession", None)
    records = []
    for bench in getattr(bench_session, "benchmarks", []):
        if bench.has_error or not bench.stats.rounds:
            continue
        stats = bench.stats
        extra_info = dict(bench.extra_info)
        # measure_work() stashes the deterministic counters here; they
        # get their own record field (gated exactly), not an extra.
        work = extra_info.pop("work", None)
        records.append(
            bench_record(
                fullname=bench.fullname,
                median_s=stats.median,
                mean_s=stats.mean,
                stddev_s=stats.stddev if stats.rounds > 1 else 0.0,
                min_s=stats.min,
                rounds=stats.rounds,
                iterations=bench.iterations,
                group=bench.group,
                extra_info=extra_info,
                work=work,
            )
        )
    out = write_bench_json(
        path, session.config.getoption("--bench-label"), records
    )
    print(f"\nbench json: {len(records)} benchmark(s) written to {out}",
          file=sys.stderr)


@pytest.fixture
def sweep_options(request) -> SweepOptions:
    """How bench modules drive the sweep orchestrator.

    Caching stays off unless ``--sweep-cache-dir`` opts in.
    ``--sweep-workers`` (or the ``SSTSP_BENCH_WORKERS`` env) opts into
    parallel fan-out (results are identical at any worker count, only
    the wall clock moves, so the recorded rows stay comparable across
    machines).
    """
    workers = request.config.getoption("--sweep-workers")
    if workers is None:
        workers = int(os.environ.get("SSTSP_BENCH_WORKERS", "1"))
    return SweepOptions(
        workers=workers,
        cache_dir=request.config.getoption("--sweep-cache-dir"),
    )


def measure_work(benchmark, fn, *args, **kwargs):
    """Run ``fn`` once under the deterministic work counters and attach
    the tally to the benchmark record (``BENCH_*.json``'s ``work`` field).

    Deliberately *outside* the timed rounds: counting adds a dict update
    per instrumented site, so the measured wall times stay comparable
    with pre-counter baselines. The counters themselves are a pure
    function of the workload — byte-identical on every machine — which
    is what lets ``repro bench-gate`` compare them with zero tolerance.
    Returns ``fn``'s result so callers can assert on it.
    """
    with count_work() as work:
        result = fn(*args, **kwargs)
    benchmark.extra_info["work"] = work.snapshot()
    return result


def paper_rows(benchmark, name: str, rows) -> None:
    """Attach reproduced rows to the benchmark record and print them."""
    rows = list(rows)
    benchmark.extra_info[name] = rows
    print(f"\n--- {name} ---", file=sys.stderr)
    for row in rows:
        print("   ", row, file=sys.stderr)
