"""Stateful property test: uTESLA's security invariant.

Whatever mix of honest deliveries, drops, replays, tamperings and
forgeries a receiver sees, two invariants must hold:

1. *Authenticity*: every payload the receiver releases as authenticated
   was produced, unmodified, by the legitimate sender for that interval.
2. *Freshness*: a packet is only ever accepted for buffering during its
   own interval.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hashchain import DenseHashChain
from repro.crypto.mutesla import (
    IntervalSchedule,
    MuTeslaReceiver,
    MuTeslaSender,
    SecuredPacket,
)

BP = 100_000.0
N = 64

actions = st.lists(
    st.sampled_from(["deliver", "drop", "replay", "tamper", "forge", "stale"]),
    min_size=4,
    max_size=40,
)


@given(actions=actions, seed=st.integers(0, 2**16))
@settings(max_examples=60, deadline=None)
def test_only_genuine_fresh_payloads_authenticate(actions, seed):
    rng = np.random.default_rng(seed)
    chain = DenseHashChain(seed.to_bytes(4, "big") + b"\x00" * 12, N)
    schedule = IntervalSchedule(0.0, BP, N)
    sender = MuTeslaSender(1, chain, schedule)
    receiver = MuTeslaReceiver(schedule)
    receiver.register_sender(1, chain.anchor, N)

    genuine = {}  # interval -> payload bytes
    history = []  # packets an attacker could have captured
    released = []

    for j, action in enumerate(actions, start=1):
        if j > N:
            break
        local = j * BP + float(rng.uniform(-1_000, 1_000))
        payload = b"m%d" % j
        packet = sender.secure(payload, j)
        genuine[j] = payload
        history.append(packet)
        if action == "deliver":
            released += receiver.receive(1, packet, local)
        elif action == "drop":
            pass
        elif action == "replay" and len(history) > 1:
            old = history[int(rng.integers(0, len(history) - 1))]
            released += receiver.receive(1, old, local)
        elif action == "tamper":
            evil = SecuredPacket(
                b"EVIL" + payload, packet.interval, packet.mac_tag,
                packet.disclosed_key,
            )
            released += receiver.receive(1, evil, local)
        elif action == "forge":
            evil = SecuredPacket(
                payload, packet.interval,
                bytes(rng.integers(0, 256, 16, dtype=np.uint8)),
                bytes(rng.integers(0, 256, 16, dtype=np.uint8)),
            )
            released += receiver.receive(1, evil, local)
        elif action == "stale":
            # honest packet delivered two intervals late
            released += receiver.receive(1, packet, local + 2 * BP)

    for message in released:
        assert message.sender == 1
        # authenticity: the released payload is exactly what the honest
        # sender produced for that interval
        assert genuine.get(message.interval) == message.payload


@given(
    drops=st.sets(st.integers(2, 30), max_size=15),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=40, deadline=None)
def test_all_delivered_intervals_eventually_authenticate(drops, seed):
    """Liveness: with only losses (no attacks), every delivered interval
    whose successor window sees another delivery is eventually released."""
    chain = DenseHashChain(seed.to_bytes(4, "big") + b"\x01" * 12, N)
    schedule = IntervalSchedule(0.0, BP, N)
    sender = MuTeslaSender(1, chain, schedule)
    receiver = MuTeslaReceiver(schedule)
    receiver.register_sender(1, chain.anchor, N)

    delivered = []
    released = []
    for j in range(1, 32):
        packet = sender.secure(b"p%d" % j, j)
        if j in drops:
            continue
        released += receiver.receive(1, packet, j * BP)
        delivered.append(j)
    # every delivered interval except possibly the most recent buffered
    # ones (MAX_PENDING) must have been released
    released_intervals = {m.interval for m in released}
    for j in delivered[: -receiver.MAX_PENDING]:
        assert j in released_intervals
