"""Tests for the benchmark-trajectory gate (``repro bench-gate``).

Covers the BENCH_*.json format (byte-stable write, schema-versioned
load), the comparison semantics (noise band, noise floor, missing/new,
accuracy drift, exact work-counter gating), the CLI exit codes, and —
the acceptance criterion — that the committed ``BENCH_10.json`` baseline
passes a self-gate while a synthetic 2x slowdown or an injected
work-counter regression of it fails.
"""

from __future__ import annotations

import copy
import json
import os

import pytest

from repro.analysis.benchgate import (
    BENCH_SCHEMA_VERSION,
    GateReport,
    bench_record,
    compare_bench,
    load_bench_json,
    main,
    write_bench_json,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE = os.path.join(REPO_ROOT, "BENCH_10.json")


def record(name: str, median: float, extra=None, work=None):
    return bench_record(
        fullname=name,
        median_s=median,
        mean_s=median,
        stddev_s=median / 10.0,
        min_s=median * 0.9,
        rounds=5,
        iterations=1,
        group="g",
        extra_info=extra or {},
        work=work,
    )


def payload(*records_):
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "label": "test",
        "benchmarks": {r["fullname"]: r for r in records_},
    }


class TestFormat:
    def test_write_load_roundtrip_and_byte_stability(self, tmp_path):
        records = [record("b", 0.02), record("a", 0.01, {"err_us": 3.5})]
        path_one = str(tmp_path / "one.json")
        path_two = str(tmp_path / "two.json")
        write_bench_json(path_one, "7", records)
        write_bench_json(path_two, "7", list(reversed(records)))
        with open(path_one, "rb") as fh_one, open(path_two, "rb") as fh_two:
            # Record order must not matter: the table is keyed and
            # serialized with sorted keys.
            assert fh_one.read() == fh_two.read()
        loaded = load_bench_json(path_one)
        assert loaded["label"] == "7"
        assert loaded["benchmarks"]["a"]["extra"] == {"err_us": 3.5}
        assert loaded["benchmarks"]["b"]["median_s"] == 0.02

    def test_extra_info_keeps_numeric_scalars_only(self):
        rec = record(
            "x", 0.01,
            {"err_us": 1.5, "n": 4, "flag": True, "rows": [1, 2], "s": "hi"},
        )
        assert rec["extra"] == {"err_us": 1.5, "n": 4.0}

    def test_newer_schema_rejected(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps({
            "schema": BENCH_SCHEMA_VERSION + 1, "label": "x", "benchmarks": {},
        }))
        with pytest.raises(ValueError, match="schema"):
            load_bench_json(str(path))

    def test_missing_benchmarks_table_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": BENCH_SCHEMA_VERSION}))
        with pytest.raises(ValueError, match="benchmarks"):
            load_bench_json(str(path))


class TestCompare:
    def test_identical_is_clean(self):
        base = payload(record("a", 0.05), record("b", 0.10))
        report = compare_bench(copy.deepcopy(base), base)
        assert report.compared == 2
        assert not report.regressions and not report.improvements
        assert not report.failed(strict=True, extra_tolerance=0.0)

    def test_2x_slowdown_regresses(self):
        base = payload(record("a", 0.05))
        cur = payload(record("a", 0.10))
        report = compare_bench(cur, base, tolerance=0.5)
        assert report.regressions == ["a"]
        assert report.failed(strict=False, extra_tolerance=None)

    def test_within_band_passes_and_big_speedup_is_reported(self):
        base = payload(record("slow", 0.10), record("fast", 0.10))
        cur = payload(record("slow", 0.14), record("fast", 0.04))
        report = compare_bench(cur, base, tolerance=0.5)
        assert not report.regressions
        assert report.improvements == ["fast"]
        assert not report.failed(strict=True, extra_tolerance=None)

    def test_noise_floor_skips_fast_benchmarks(self):
        # 5us median, 100x slower: still skipped — scheduler noise.
        base = payload(record("tiny", 5e-6))
        cur = payload(record("tiny", 5e-4))
        report = compare_bench(cur, base, min_wall_s=1e-3)
        assert report.compared == 0
        assert report.skipped_fast == 1
        assert not report.failed(strict=True, extra_tolerance=None)

    def test_missing_gates_only_under_strict(self):
        base = payload(record("kept", 0.05), record("gone", 0.05))
        cur = payload(record("kept", 0.05), record("added", 0.05))
        report = compare_bench(cur, base)
        assert report.missing == ["gone"]
        assert report.new == ["added"]
        assert not report.failed(strict=False, extra_tolerance=None)
        assert report.failed(strict=True, extra_tolerance=None)

    def test_extra_drift_reports_by_default_and_gates_on_request(self):
        base = payload(record("a", 0.05, {"err_us": 10.0}))
        cur = payload(record("a", 0.05, {"err_us": 13.0}))
        report = compare_bench(cur, base)
        assert report.extra_drift == ["a:err_us"]
        assert not report.failed(strict=True, extra_tolerance=None)
        gated = compare_bench(cur, base, extra_tolerance=0.1)
        assert gated.failed(strict=False, extra_tolerance=0.1)
        tolerant = compare_bench(cur, base, extra_tolerance=0.5)
        assert tolerant.extra_drift == []

    def test_negative_tolerance_rejected(self):
        base = payload(record("a", 0.05))
        with pytest.raises(ValueError, match="tolerance"):
            compare_bench(base, base, tolerance=-0.1)

    def test_report_failed_priorities(self):
        report = GateReport(regressions=["x"])
        assert report.failed(strict=False, extra_tolerance=None)

    def test_identical_work_is_clean_and_counted(self):
        base = payload(record("a", 0.05, work={"engine.dispatch": 100}))
        report = compare_bench(copy.deepcopy(base), base)
        assert report.work_compared == 1
        assert report.work_drift == []
        assert not report.failed(strict=True, extra_tolerance=0.0)

    def test_work_drift_fails_with_zero_tolerance(self):
        # One extra counted op — far inside any wall-time noise band —
        # must fail: the counters are machine-independent.
        base = payload(record("a", 0.05, work={"engine.dispatch": 100}))
        cur = payload(record("a", 0.05, work={"engine.dispatch": 101}))
        report = compare_bench(cur, base, tolerance=10.0)
        assert not report.regressions
        assert report.work_drift == ["a:engine.dispatch"]
        assert report.failed(strict=False, extra_tolerance=None)
        assert not report.failed(
            strict=False, extra_tolerance=None, gate_work=False
        )

    def test_work_counter_appearing_or_vanishing_is_drift(self):
        base = payload(record("a", 0.05, work={"engine.dispatch": 100}))
        cur = payload(record(
            "a", 0.05, work={"engine.dispatch": 100, "phy.per_draw": 7}
        ))
        report = compare_bench(cur, base)
        assert report.work_drift == ["a:phy.per_draw"]
        assert compare_bench(base, cur).work_drift == ["a:phy.per_draw"]

    def test_baselines_without_work_skip_the_work_gate(self):
        # Pre-counter baselines (and benches that don't measure work)
        # must not fail the gate just because the field is empty.
        old = payload(record("a", 0.05))
        new = payload(record("a", 0.05, work={"engine.dispatch": 100}))
        for cur, base in ((new, old), (old, new), (old, copy.deepcopy(old))):
            report = compare_bench(cur, base)
            assert report.work_compared == 0
            assert report.work_drift == []
            assert not report.failed(strict=True, extra_tolerance=None)


class TestCli:
    def test_exit_codes(self, tmp_path, capsys):
        base_path = str(tmp_path / "base.json")
        same_path = str(tmp_path / "same.json")
        slow_path = str(tmp_path / "slow.json")
        write_bench_json(base_path, "base", [record("a", 0.05)])
        write_bench_json(same_path, "same", [record("a", 0.055)])
        write_bench_json(slow_path, "slow", [record("a", 0.10)])
        assert main([same_path, "--baseline", base_path]) == 0
        assert "bench-gate: OK" in capsys.readouterr().out
        assert main([slow_path, "--baseline", base_path]) == 1
        captured = capsys.readouterr()
        assert "REGRESSED" in captured.out
        assert "FAIL" in captured.err

    def test_no_work_gate_flag_downgrades_work_drift(self, tmp_path, capsys):
        base_path = str(tmp_path / "base.json")
        drift_path = str(tmp_path / "drift.json")
        write_bench_json(
            base_path, "base", [record("a", 0.05, work={"ops": 10})]
        )
        write_bench_json(
            drift_path, "drift", [record("a", 0.05, work={"ops": 11})]
        )
        assert main([drift_path, "--baseline", base_path]) == 1
        captured = capsys.readouterr()
        assert "WORK" in captured.out
        assert "1 work drift(s)" in captured.out
        assert main([
            drift_path, "--baseline", base_path, "--no-work-gate",
        ]) == 0
        assert "WORK" in capsys.readouterr().out


class TestCommittedBaseline:
    """Acceptance: the repo's own BENCH_10.json gates correctly."""

    def test_baseline_exists_and_loads(self):
        payload_ = load_bench_json(BASELINE)
        assert payload_["label"] == "10"
        assert payload_["benchmarks"], "baseline must not be empty"
        assert (
            "benchmarks/bench_shootout.py::test_shootout_suite"
            in payload_["benchmarks"]
        )
        # At least one benchmark must sit above the default noise floor,
        # otherwise the gate compares nothing and guards nothing.
        gateable = [
            rec for rec in payload_["benchmarks"].values()
            if rec["median_s"] >= 1e-3
        ]
        assert gateable
        # The baseline must carry deterministic work counters so the
        # zero-tolerance work gate actually has something to compare.
        with_work = [
            rec for rec in payload_["benchmarks"].values() if rec.get("work")
        ]
        assert with_work, "baseline carries no work counters"

    def test_self_gate_passes(self, tmp_path, capsys):
        assert main([BASELINE, "--baseline", BASELINE, "--strict"]) == 0

    def test_synthetic_2x_slowdown_fails(self, tmp_path, capsys):
        payload_ = load_bench_json(BASELINE)
        slowed = copy.deepcopy(payload_)
        for rec in slowed["benchmarks"].values():
            rec["median_s"] = rec["median_s"] * 2.0
        slow_path = tmp_path / "BENCH_slow.json"
        slow_path.write_text(json.dumps(slowed))
        assert main([
            str(slow_path), "--baseline", BASELINE, "--tolerance", "0.5",
        ]) == 1

    def test_injected_work_regression_fails(self, tmp_path, capsys):
        """Acceptance: +1 counted op on one benchmark fails the gate
        even with a wall-time tolerance wide enough to hide anything."""
        payload_ = load_bench_json(BASELINE)
        drifted = copy.deepcopy(payload_)
        bumped = False
        for rec in sorted(
            drifted["benchmarks"], key=lambda name: name
        ):
            work = drifted["benchmarks"][rec].get("work") or {}
            for key in sorted(work):
                work[key] += 1
                bumped = True
                break
            if bumped:
                break
        assert bumped, "baseline carries no work counters to perturb"
        drift_path = tmp_path / "BENCH_drift.json"
        drift_path.write_text(json.dumps(drifted))
        assert main([
            str(drift_path), "--baseline", BASELINE, "--tolerance", "10.0",
        ]) == 1
        captured = capsys.readouterr()
        assert "WORK" in captured.out
        assert main([
            str(drift_path), "--baseline", BASELINE, "--tolerance", "10.0",
            "--no-work-gate",
        ]) == 0
